//! Cross-crate integration tests through the `oneshot` facade: the
//! substrate (`core`), the VM, and the thread systems working together,
//! plus sanity-scale versions of the paper's experiments.

use oneshot::core::{Config, OverflowPolicy};
use oneshot::threads::{Strategy, ThreadSystem};
use oneshot::vm::{Pipeline, Vm, VmConfig};

#[test]
fn facade_reexports_work_together() {
    let mut vm = Vm::with_config(VmConfig {
        stack: Config { segment_slots: 512, copy_bound: 128, ..Config::default() },
        ..VmConfig::default()
    });
    let v =
        vm.eval_str("(define (sum n) (if (zero? n) 0 (+ n (sum (- n 1))))) (sum 5000)").unwrap();
    assert_eq!(vm.display_value(&v), "12502500");
    assert!(vm.stats().stack.overflows > 10);
}

#[test]
fn thread_systems_share_results_across_strategies() {
    let mut answers = Vec::new();
    for strategy in Strategy::ALL {
        let mut ts = ThreadSystem::new(strategy);
        ts.eval("(define acc '())").unwrap();
        match strategy {
            Strategy::Cps => {
                ts.eval(
                    "(define (job-cps i)
                       (lambda (k)
                         (cps-call (lambda ()
                           (set! acc (cons (* i i) acc))
                           (k 0)))))",
                )
                .unwrap();
                for i in 0..6 {
                    ts.spawn(&format!("(job-cps {i})")).unwrap();
                }
            }
            _ => {
                ts.eval("(define (job i) (lambda () (set! acc (cons (* i i) acc))))").unwrap();
                for i in 0..6 {
                    ts.spawn(&format!("(job {i})")).unwrap();
                }
            }
        }
        ts.run(4).unwrap();
        answers.push(ts.eval_to_string("(reverse acc)").unwrap());
    }
    assert_eq!(answers[0], answers[1]);
    assert_eq!(answers[1], answers[2]);
    assert_eq!(answers[0], "(0 1 4 9 16 25)");
}

#[test]
fn experiment_shapes_hold_at_sanity_scale() {
    // E2: one-shot tak is not slower and copies nothing.
    let rows = oneshot_bench::experiments::tak_experiment(12, 6, 0);
    assert_eq!(rows[1].m.delta.stack.slots_copied, 0);
    assert!(rows[0].m.delta.stack.slots_copied > 0);

    // E3: one-shot overflow copies far less.
    let rows = oneshot_bench::experiments::overflow_experiment(2, 20_000);
    assert!(rows[1].m.delta.stack.slots_copied > 5 * rows[0].m.delta.stack.slots_copied.max(1));

    // E1: a single figure-5 point runs for every strategy.
    for s in Strategy::ALL {
        let p = oneshot_bench::experiments::figure5_point(s, 2, 4, 8);
        assert!(p.ms >= 0.0);
    }
}

#[test]
fn direct_and_cps_agree_through_the_facade() {
    let src = "(define (tak x y z)
                 (if (not (< y x)) z
                     (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))
               (tak 10 5 0)";
    let mut d = Vm::new();
    let expected = d.eval_str(src).map(|v| d.write_value(&v)).unwrap();
    let mut c = Vm::with_config(VmConfig { pipeline: Pipeline::Cps, ..VmConfig::default() });
    let got = c.eval_str(src).map(|v| c.write_value(&v)).unwrap();
    assert_eq!(got, expected);
}

#[test]
fn overflow_policies_agree_on_results() {
    for policy in [OverflowPolicy::OneShot, OverflowPolicy::MultiShot] {
        let mut vm = Vm::with_config(VmConfig {
            stack: Config {
                segment_slots: 256,
                copy_bound: 64,
                overflow_policy: policy,
                ..Config::default()
            },
            ..VmConfig::default()
        });
        let v = vm
            .eval_str("(define (build n) (if (zero? n) '() (cons n (build (- n 1))))) (length (build 3000))")
            .unwrap();
        assert_eq!(vm.display_value(&v), "3000", "{policy:?}");
    }
}

#[test]
fn sexp_reader_feeds_the_vm() {
    use oneshot::sexp::read_all;
    let forms = read_all("(+ 1 2) (* 3 4)").unwrap();
    assert_eq!(forms.len(), 2);
    let mut vm = Vm::new();
    let v = vm.eval_str("(* 3 4)").unwrap();
    assert_eq!(vm.display_value(&v), "12");
}
