//! A concurrent echo server where every connection is a green thread.
//!
//! The whole scenario — listeners, per-connection handlers, and the load
//! generator's clients — runs as Scheme jobs on one [`Pool`]: a handler
//! blocked in `(tcp-read c 4096)` is a sealed one-shot continuation, not
//! an OS thread, so thousands of open connections cost thousands of stack
//! segments and nothing else. The pool's reactor multiplexes all of their
//! fds over a single `poll(2)` loop.
//!
//! Topology: connections are sharded across workers. Each shard worker
//! gets a pinned setup job that binds one loopback listener *per
//! connection* (so a wakeup never herds N accepters onto one fd) and a
//! pinned handler green thread per listener; clients are unpinned jobs
//! that connect, echo `rounds` messages, verify each one, and close.
//!
//! ```text
//! cargo run --release --example server                  # demo load
//! cargo run --release --example server -- --smoke       # CI: 100 conns,
//! #   asserts every echo verified, zero leaked jobs, zero leaked
//! #   sockets, all heap segments reclaimed, clean shutdown
//! cargo run --release --example server -- --conns 2000 --workers 2
//! ```

use std::time::{Duration, Instant};

use oneshot::prelude::*;

/// Pinned per shard worker: bind `n` listeners into the worker's globals,
/// define the handler library, return the port list.
fn setup_src(n: usize) -> String {
    format!(
        "(define listeners
           (let loop ((i 0) (acc '()))
             (if (< i {n})
                 (loop (+ i 1) (cons (tcp-listen 0) acc))
                 (list->vector (reverse acc)))))
         (define (serve-echo lst)
           (let ((c (tcp-accept lst)))
             (let loop ()
               (let ((d (tcp-read c 4096)))
                 (if (eq? d 'eof)
                     (begin (tcp-close c) (tcp-close lst) 'served)
                     (begin (tcp-write c d) (loop)))))))
         (let loop ((i 0) (acc '()))
           (if (< i {n})
               (loop (+ i 1) (cons (tcp-local-port (vector-ref listeners i)) acc))
               (reverse acc)))"
    )
}

/// Pinned to every worker (clients are unpinned, so every VM needs it):
/// the verifying echo client.
const CLIENT_LIB: &str = "(define (read-n s n acc)
       (if (>= (string-length acc) n)
           acc
           (let ((d (tcp-read s 4096)))
             (if (eq? d 'eof) acc (read-n s n (string-append acc d))))))
     (define (echo-client port msg rounds)
       (let ((s (tcp-connect port)))
         (let loop ((i 0) (bad 0))
           (if (< i rounds)
               (begin
                 (tcp-write s msg)
                 (let ((r (read-n s (string-length msg) \"\")))
                   (loop (+ i 1) (if (string=? r msg) bad (+ bad 1)))))
               (begin (tcp-close s)
                      (if (zero? bad) 'ok (list 'bad bad)))))))
     'lib";

/// Pinned per worker after the drain: report (live-sockets . in-use
/// segments). Cached segments are excluded — a drained continuation's
/// segments land in the reuse cache, which is recycling, not leakage.
const AUDIT: &str = "(cons (%net-live) (cdr (assq 'live-uncached-segments (vm-stats))))";

fn arg_val(args: &[String], name: &str) -> Option<usize> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).and_then(|v| v.parse().ok())
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let conns = arg_val(&args, "--conns").unwrap_or(if smoke { 100 } else { 400 });
    let workers = arg_val(&args, "--workers").unwrap_or(2).max(1);
    let rounds = arg_val(&args, "--rounds").unwrap_or(2);

    let pool = Pool::builder()
        .workers(workers)
        .resident_cap(2 * conns.div_ceil(workers) + 8)
        .fuel_slice(2048)
        .build()
        .expect("pool spawns");
    println!("echo server: {conns} connections x {rounds} rounds on {workers} workers");

    // Shard setup: listeners + handler library, pinned one per worker.
    let per_shard: Vec<usize> =
        (0..workers).map(|w| conns / workers + usize::from(w < conns % workers)).collect();
    let mut ports: Vec<(usize, u16)> = Vec::with_capacity(conns); // (worker, port)
    for (w, &n) in per_shard.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let shown = pool
            .submit(JobSpec::new(format!("setup-{w}"), setup_src(n)).pin(w))
            .expect("submit setup")
            .wait()
            .result
            .expect("listeners bind");
        for p in shown.trim_matches(['(', ')']).split_whitespace() {
            ports.push((w, p.parse().expect("port list")));
        }
    }
    assert_eq!(ports.len(), conns);
    for w in 0..workers {
        let ok = pool
            .submit(JobSpec::new(format!("client-lib-{w}"), CLIENT_LIB).pin(w))
            .expect("submit lib")
            .wait()
            .result
            .expect("client lib loads");
        assert_eq!(ok, "lib");
    }

    // One pinned handler green thread per listener, then the load: one
    // unpinned client per connection, each with a distinct payload.
    let t0 = Instant::now();
    let handlers: Vec<_> = ports
        .iter()
        .enumerate()
        .map(|(i, &(w, _))| {
            let slot = per_shard[..w].iter().sum::<usize>();
            pool.submit(
                JobSpec::new(
                    format!("handler-{i}"),
                    format!("(serve-echo (vector-ref listeners {}))", i - slot),
                )
                .pin(w)
                .deadline(Duration::from_secs(120)),
            )
            .expect("submit handler")
        })
        .collect();
    let clients: Vec<_> = ports
        .iter()
        .enumerate()
        .map(|(i, &(_, port))| {
            pool.submit(
                JobSpec::new(
                    format!("client-{i}"),
                    format!("(echo-client {port} \"payload-{i}-abcdefgh\" {rounds})"),
                )
                .deadline(Duration::from_secs(120)),
            )
            .expect("submit client")
        })
        .collect();

    let mut latencies: Vec<Duration> = Vec::with_capacity(conns);
    let mut bad = 0usize;
    for h in &clients {
        let outcome = h.wait();
        match outcome.result.as_deref() {
            Ok("ok") => latencies.push(outcome.latency),
            other => {
                bad += 1;
                eprintln!("client {} failed: {other:?}", outcome.name);
            }
        }
    }
    for h in &handlers {
        if h.wait().result.as_deref() != Ok("served") {
            bad += 1;
        }
    }
    let wall = t0.elapsed();

    // Leak audit while the workers are still alive: every socket closed,
    // every blocked continuation's segments back in the cache.
    let mut leaked_sockets = 0i64;
    let mut live_segments = 0i64;
    for w in 0..workers {
        let shown = pool
            .submit(JobSpec::new(format!("audit-{w}"), AUDIT).pin(w))
            .expect("submit audit")
            .wait()
            .result
            .expect("audit runs");
        let (socks, segs) = shown.trim_matches(['(', ')']).split_once(" . ").expect("audit pair");
        leaked_sockets += socks.parse::<i64>().expect("sockets");
        live_segments += segs.parse::<i64>().expect("segments");
    }

    latencies.sort();
    let echoes = (conns * rounds) as f64;
    println!(
        "{echoes:.0} echoes in {:.1} ms  =>  {:.0} echoes/s",
        wall.as_secs_f64() * 1e3,
        echoes / wall.as_secs_f64()
    );
    println!(
        "client latency p50={:.1} ms  p99={:.1} ms  max={:.1} ms",
        percentile(&latencies, 0.50).as_secs_f64() * 1e3,
        percentile(&latencies, 0.99).as_secs_f64() * 1e3,
        percentile(&latencies, 1.0).as_secs_f64() * 1e3,
    );

    let report = pool.shutdown_timeout(Duration::from_secs(60)).expect("clean shutdown");
    let c = report.counters;
    println!(
        "counters: {} submitted, {} completed, {} failed; io_blocked={} io_wakeups={} \
         blocked_highwater={}",
        c.submitted, c.completed, c.failed, c.io_blocked, c.io_wakeups, c.blocked_highwater
    );
    println!("leak audit: {leaked_sockets} open sockets, {live_segments} live stack segments");

    if smoke {
        assert_eq!(bad, 0, "every echo must verify");
        assert_eq!(c.failed, 0, "no job may fail");
        assert_eq!(c.completed, c.submitted, "zero leaked jobs");
        assert_eq!(leaked_sockets, 0, "zero leaked sockets");
        // The audit job itself runs on a handful of live segments; the
        // bound catches any per-connection segment leak at conns scale.
        assert!(
            live_segments < 16 * workers as i64,
            "segments were not reclaimed: {live_segments}"
        );
        println!("SMOKE OK: {conns} connections served and verified, clean shutdown");
    }
}
