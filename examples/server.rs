//! A concurrent echo server where every connection is a green thread.
//!
//! The server side is [`Pool::serve`]: ONE shared `AF_INET` listener
//! whose accepted connections are distributed least-loaded/round-robin
//! across the per-worker reactors. Each accepted socket is adopted into
//! its worker's VM and handled by a green thread that fetches it with
//! `(conn-take)` — a handler blocked in `(tcp-read c 4096)` is a sealed
//! one-shot continuation, not an OS thread, so thousands of open
//! connections cost thousands of stack segments and nothing else. The
//! load generator's clients run as unpinned guest jobs on the same pool,
//! connecting to the shared port.
//!
//! ```text
//! cargo run --release --example server                  # demo load
//! cargo run --release --example server -- --smoke       # CI: 100 conns,
//! #   asserts every echo verified, zero leaked jobs, zero leaked
//! #   sockets, all heap segments reclaimed, clean shutdown
//! cargo run --release --example server -- --conns 2000 --workers 2
//! ```
//!
//! `ONESHOT_REACTOR=poll|epoll` selects the readiness backend (default:
//! epoll where available).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use oneshot::prelude::*;

/// The per-connection echo handler: take the adopted socket, echo every
/// chunk until EOF.
const HANDLER: &str = "(let ((c (conn-take)))
       (let loop ()
         (let ((d (tcp-read c 4096)))
           (if (eq? d 'eof)
               (begin (tcp-close c) 'served)
               (begin (tcp-write c d) (loop))))))";

/// Pinned to every worker (clients are unpinned, so every VM needs it):
/// the verifying echo client.
const CLIENT_LIB: &str = "(define (read-n s n acc)
       (if (>= (string-length acc) n)
           acc
           (let ((d (tcp-read s 4096)))
             (if (eq? d 'eof) acc (read-n s n (string-append acc d))))))
     (define (echo-client port msg rounds)
       (let ((s (tcp-connect port)))
         (let loop ((i 0) (bad 0))
           (if (< i rounds)
               (begin
                 (tcp-write s msg)
                 (let ((r (read-n s (string-length msg) \"\")))
                   (loop (+ i 1) (if (string=? r msg) bad (+ bad 1)))))
               (begin (tcp-close s)
                      (if (zero? bad) 'ok (list 'bad bad)))))))
     'lib";

/// Pinned per worker after the drain: report (live-sockets . in-use
/// segments). Cached segments are excluded — a drained continuation's
/// segments land in the reuse cache, which is recycling, not leakage.
const AUDIT: &str = "(cons (%net-live) (cdr (assq 'live-uncached-segments (vm-stats))))";

fn arg_val(args: &[String], name: &str) -> Option<usize> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).and_then(|v| v.parse().ok())
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let conns = arg_val(&args, "--conns").unwrap_or(if smoke { 100 } else { 400 });
    let workers = arg_val(&args, "--workers").unwrap_or(2).max(1);
    let rounds = arg_val(&args, "--rounds").unwrap_or(2);

    let pool = Pool::builder()
        .workers(workers)
        .resident_cap(2 * conns.div_ceil(workers) + 8)
        .fuel_slice(2048)
        .build()
        .expect("pool spawns");
    println!(
        "echo server: {conns} connections x {rounds} rounds on {workers} workers \
         ({} backend)",
        pool.reactor_backend()
    );

    for w in 0..workers {
        let ok = pool
            .submit(JobSpec::new(format!("client-lib-{w}"), CLIENT_LIB).pin(w))
            .expect("submit lib")
            .wait()
            .result
            .expect("client lib loads");
        assert_eq!(ok, "lib");
    }

    // One shared listener; each accept becomes a handler green thread on
    // whichever worker the acceptor picked.
    let served = Arc::new(AtomicU64::new(0));
    let handler_bad = Arc::new(AtomicU64::new(0));
    let (served_cb, bad_cb) = (Arc::clone(&served), Arc::clone(&handler_bad));
    let handler = JobSpec::new("echo-handler", HANDLER)
        .deadline(Duration::from_secs(120))
        .on_complete(move |o| {
            if o.result.as_deref() == Ok("served") {
                served_cb.fetch_add(1, Ordering::Relaxed);
            } else {
                bad_cb.fetch_add(1, Ordering::Relaxed);
            }
        });
    let serve = pool.serve("127.0.0.1:0", handler).expect("shared listener binds");
    let port = serve.port();

    // The load: one unpinned client job per connection, all against the
    // one shared port. The main thread samples the accept-queue depth
    // while the storm runs.
    let t0 = Instant::now();
    let clients: Vec<_> = (0..conns)
        .map(|i| {
            pool.submit(
                JobSpec::new(
                    format!("client-{i}"),
                    format!("(echo-client {port} \"payload-{i}-abcdefgh\" {rounds})"),
                )
                .deadline(Duration::from_secs(120)),
            )
            .expect("submit client")
        })
        .collect();

    let mut accept_depth_peak = 0usize;
    let mut latencies: Vec<Duration> = Vec::with_capacity(conns);
    let mut bad = 0usize;
    for h in &clients {
        // Sample between waits: cheap, and the storm is long enough that
        // the peak shows up.
        accept_depth_peak = accept_depth_peak.max(pool.accept_queue_depth());
        let outcome = h.wait();
        match outcome.result.as_deref() {
            Ok("ok") => latencies.push(outcome.latency),
            other => {
                bad += 1;
                eprintln!("client {} failed: {other:?}", outcome.name);
            }
        }
    }
    // Every client closed; wait for the handlers to see EOF and finish.
    let drain_deadline = Instant::now() + Duration::from_secs(60);
    while served.load(Ordering::Relaxed) + handler_bad.load(Ordering::Relaxed) < conns as u64 {
        assert!(Instant::now() < drain_deadline, "handlers drained");
        std::thread::sleep(Duration::from_millis(5));
    }
    let wall = t0.elapsed();
    serve.stop();
    bad += handler_bad.load(Ordering::Relaxed) as usize;

    // Leak audit while the workers are still alive: every socket closed,
    // every blocked continuation's segments back in the cache.
    let mut leaked_sockets = 0i64;
    let mut live_segments = 0i64;
    for w in 0..workers {
        let shown = pool
            .submit(JobSpec::new(format!("audit-{w}"), AUDIT).pin(w))
            .expect("submit audit")
            .wait()
            .result
            .expect("audit runs");
        let (socks, segs) = shown.trim_matches(['(', ')']).split_once(" . ").expect("audit pair");
        leaked_sockets += socks.parse::<i64>().expect("sockets");
        live_segments += segs.parse::<i64>().expect("segments");
    }

    latencies.sort();
    let echoes = (conns * rounds) as f64;
    println!(
        "{echoes:.0} echoes in {:.1} ms  =>  {:.0} echoes/s",
        wall.as_secs_f64() * 1e3,
        echoes / wall.as_secs_f64()
    );
    println!(
        "client latency p50={:.1} ms  p99={:.1} ms  max={:.1} ms",
        percentile(&latencies, 0.50).as_secs_f64() * 1e3,
        percentile(&latencies, 0.99).as_secs_f64() * 1e3,
        percentile(&latencies, 1.0).as_secs_f64() * 1e3,
    );

    let report = pool.shutdown_timeout(Duration::from_secs(60)).expect("clean shutdown");
    let c = report.counters;
    println!(
        "counters: {} submitted, {} completed, {} failed; io_blocked={} io_wakeups={} \
         blocked_highwater={}",
        c.submitted, c.completed, c.failed, c.io_blocked, c.io_wakeups, c.blocked_highwater
    );
    println!(
        "accepts: {} total, per-worker {:?}; accept-queue depth peak {} (sampled) / {} \
         (highwater), {} shed",
        serve.accepted(),
        c.accepts_per_worker,
        accept_depth_peak,
        c.accept_queue_highwater,
        c.accept_overflow
    );
    println!("leak audit: {leaked_sockets} open sockets, {live_segments} live stack segments");

    if smoke {
        assert_eq!(bad, 0, "every echo must verify and every handler must serve");
        assert_eq!(c.failed, 0, "no job may fail");
        assert_eq!(serve.accepted(), conns as u64, "one accept per connection");
        assert_eq!(
            c.accepts_per_worker.iter().sum::<u64>(),
            conns as u64,
            "every accept routed to a worker"
        );
        assert_eq!(c.accept_overflow, 0, "no connection shed");
        assert_eq!(leaked_sockets, 0, "zero leaked sockets");
        // The audit job itself runs on a handful of live segments; the
        // bound catches any per-connection segment leak at conns scale.
        assert!(
            live_segments < 16 * workers as i64,
            "segments were not reclaimed: {live_segments}"
        );
        println!("SMOKE OK: {conns} connections served and verified, clean shutdown");
    }
}
