//! The paper's motivating application: a green-thread system where every
//! context switch is a one-shot continuation capture.
//!
//! Runs the same preemptive workload under all three thread systems and
//! prints how much stack copying each one performed — the quantity the
//! one-shot mechanism eliminates.
//!
//! ```text
//! cargo run --release --example threads
//! ```

use oneshot::threads::{Strategy, ThreadSystem};
use oneshot::vm::Vm;

fn main() {
    println!("10 threads x fib(14), preemptive switch every 8 calls\n");
    println!(
        "{:<10} {:>9} {:>14} {:>14} {:>12}",
        "system", "ms", "slots-copied", "closures", "captures"
    );
    for strategy in Strategy::ALL {
        let mut ts = ThreadSystem::new(strategy);
        match strategy {
            Strategy::Cps => {
                ts.eval(
                    "(define (fib-cps n k)
                       (cps-call (lambda ()
                         (if (< n 2) (k n)
                             (fib-cps (- n 1) (lambda (a)
                               (fib-cps (- n 2) (lambda (b) (k (+ a b))))))))))",
                )
                .unwrap();
                for _ in 0..10 {
                    ts.spawn("(lambda (k) (fib-cps 14 k))").unwrap();
                }
            }
            _ => {
                ts.eval("(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))").unwrap();
                for _ in 0..10 {
                    ts.spawn("(lambda () (fib 14))").unwrap();
                }
            }
        }
        let before = ts.stats();
        let start = std::time::Instant::now();
        ts.run(8).unwrap();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let d = ts.stats().delta_since(&before);
        println!(
            "{:<10} {:>9.1} {:>14} {:>14} {:>12}",
            strategy.label(),
            ms,
            d.stack.slots_copied,
            d.heap.closures_allocated,
            d.stack.captures_one + d.stack.captures_multi,
        );
    }

    // Cooperative threads with explicit yields, driven from Rust. The VM
    // comes from the builder so the embedder controls its configuration.
    println!("\ncooperative pipeline (call/1cc):");
    let mut ts = ThreadSystem::with_vm(Strategy::Call1Cc, Vm::builder().build());
    ts.eval("(define log '())").unwrap();
    ts.spawn(
        "(lambda ()
           (for-each (lambda (x)
                       (set! log (cons (list 'produced x) log))
                       (thread-yield!))
                     '(1 2 3)))",
    )
    .unwrap();
    ts.spawn(
        "(lambda ()
           (let loop ((n 3))
             (if (> n 0)
                 (begin
                   (set! log (cons 'consumed log))
                   (thread-yield!)
                   (loop (- n 1))))))",
    )
    .unwrap();
    ts.run(0).unwrap();
    println!("  {}", ts.eval_to_string("(reverse log)").unwrap());
}
