//! A small interactive REPL over the oneshot VM.
//!
//! ```text
//! cargo run --release --example repl
//! ```
//!
//! Meta-commands: `,stats` prints the control-representation counters,
//! `,trace` the recent control events, `,ops` the opcode histogram,
//! `,quit` exits.

use std::io::{self, BufRead, Write};

use oneshot::vm::{ProbeSpec, Vm};

fn main() {
    let mut vm = Vm::builder().probe(ProbeSpec::Ring(32)).opcode_histogram(true).build();
    let stdin = io::stdin();
    let mut out = io::stdout();
    println!("oneshot scheme — call/cc and call/1cc on segmented stacks");
    println!("(,stats for counters, ,trace for control events, ,ops for opcodes, ,quit to exit)");
    loop {
        print!("> ");
        let _ = out.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        match line {
            "" => continue,
            ",quit" | ",q" => break,
            ",stats" => {
                let s = vm.stats();
                println!(
                    "instructions={} calls={} captures(multi/one)={}/{} \
                     reinstates(multi/one)={}/{} copied-slots={} overflows={} \
                     promotions={} heap-words={} collections={}",
                    s.instructions,
                    s.calls,
                    s.stack.captures_multi,
                    s.stack.captures_one,
                    s.stack.reinstates_multi,
                    s.stack.reinstates_one,
                    s.stack.slots_copied,
                    s.stack.overflows,
                    s.stack.promotions,
                    s.heap.words_allocated,
                    s.heap.collections,
                );
                continue;
            }
            ",trace" => {
                let t = vm.trace_dump();
                if t.is_empty() {
                    println!("(no control events recorded)");
                } else {
                    print!("{t}");
                }
                continue;
            }
            ",ops" => {
                for (mnemonic, count) in vm.opcode_histogram().unwrap_or_default() {
                    println!("{mnemonic:<16} {count}");
                }
                continue;
            }
            _ => {}
        }
        match vm.eval_str(line) {
            Ok(v) => {
                let text = vm.take_output();
                if !text.is_empty() {
                    print!("{text}");
                    if !text.ends_with('\n') {
                        println!();
                    }
                }
                println!("{}", vm.write_value(&v));
            }
            Err(e) => println!("{e}"),
        }
    }
}
