//! The execution subsystem end to end: a worker pool running Scheme jobs
//! as engine-preempted green threads, with work stealing, fuel budgets,
//! and job-level fault isolation.
//!
//! ```text
//! cargo run --release --example pool
//! ```

use std::time::Instant;

use oneshot::exec::{ErrorKind, JobSpec, Pool};

fn main() {
    let pool = Pool::builder().workers(4).fuel_slice(1024).build().expect("pool spawns");
    println!("pool: {} workers, 1024-call fuel slices\n", pool.worker_count());

    // A mixed load: CPU-bound fib, I/O-style sleeps (the OS thread blocks,
    // so these overlap across workers), one runaway loop with a fuel
    // budget, and one job that dies with a Scheme type error.
    let start = Instant::now();
    let mut handles = Vec::new();
    for n in [16, 18, 20] {
        handles.push(
            pool.submit(JobSpec::new(
                format!("fib-{n}"),
                format!(
                    "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib {n})"
                ),
            ))
            .expect("submit"),
        );
    }
    for i in 0..4 {
        handles.push(
            pool.submit(JobSpec::new(format!("io-{i}"), "(begin (sleep-ms 40) 'served)"))
                .expect("submit"),
        );
    }
    handles.push(
        pool.submit(JobSpec::new("runaway", "(let loop ((i 0)) (loop (+ i 1)))").fuel(20_000))
            .expect("submit"),
    );
    handles.push(pool.submit(JobSpec::new("type-error", "(car 42)")).expect("submit"));

    for h in &handles {
        let outcome = h.wait();
        match &outcome.result {
            Ok(v) => println!(
                "{:<12} => {v:<8} ({} slices, {:.1} ms)",
                outcome.name,
                outcome.slices,
                outcome.latency.as_secs_f64() * 1e3
            ),
            Err(e) if e.kind() == ErrorKind::FuelExhausted => {
                println!("{:<12} => {e}", outcome.name);
            }
            Err(e) => println!("{:<12} => error ({}): {e}", outcome.name, e.kind()),
        }
    }
    println!("\nall outcomes in {:.1} ms wall", start.elapsed().as_secs_f64() * 1e3);

    let report = pool.shutdown().expect("clean shutdown");
    let c = report.counters;
    println!(
        "counters: {} completed, {} failed ({} timed out), {} steals, {} requeues",
        c.completed, c.failed, c.timed_out, c.steals, c.requeues
    );
    for w in &report.workers {
        println!(
            "worker {}: {} ok, {} failed, {} slices, {} instructions, {} slots copied",
            w.worker, w.jobs_ok, w.jobs_failed, w.slices, w.vm.instructions, w.vm.slots_copied
        );
    }
}
