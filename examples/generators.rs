//! Generators and backtracking: where one-shot continuations suffice and
//! where multi-shot continuations are genuinely needed (§2 of the paper).
//!
//! ```text
//! cargo run --release --example generators
//! ```

use oneshot::vm::Vm;

fn main() {
    let mut vm = Vm::builder().build();

    // A generator: each suspension is resumed exactly once, so every
    // capture can be one-shot — no stack copying anywhere.
    let v = vm
        .eval_str(
            "
        (define (make-generator producer)
          ;; producer: (yield) -> any
          (define return-k #f)
          (define resume-k #f)
          (define (yield x)
            (call/1cc (lambda (k)
              (set! resume-k k)
              (return-k x))))
          (define started #f)
          (lambda ()
            (call/1cc (lambda (k)
              (set! return-k k)
              (if started
                  (resume-k 0)
                  (begin
                    (set! started #t)
                    (producer yield)
                    (return-k 'exhausted)))))))

        (define squares
          (make-generator
            (lambda (yield)
              (for-each (lambda (i) (yield (* i i))) '(1 2 3 4 5)))))

        (list (squares) (squares) (squares) (squares))",
        )
        .unwrap();
    println!("one-shot generator   => {}", vm.display_value(&v));
    let s = vm.stats();
    println!("  captures-one={} copied-slots={}", s.stack.captures_one, s.stack.slots_copied);

    // Nondeterministic choice needs multi-shot continuations: each choice
    // point is re-entered once per alternative (the paper: "one-shot
    // continuations cannot be used to implement nondeterminism").
    let v = vm
        .eval_str(
            "
        (define fail #f)
        (define (amb . choices)
          (call/cc (lambda (k)
            (define old-fail fail)
            (define (try choices)
              (if (null? choices)
                  (begin (set! fail old-fail) (fail #f))
                  (begin
                    (call/cc (lambda (retry)
                      (set! fail (lambda (ignore) (retry 'next)))
                      (k (car choices))))
                    (try (cdr choices)))))
            (try choices))))

        ;; A Pythagorean triple, found by backtracking.
        (call/cc (lambda (done)
          (set! fail (lambda (ignore) (done 'none)))
          (let ((a (amb 1 2 3 4 5 6 7 8))
                (b (amb 1 2 3 4 5 6 7 8))
                (c (amb 1 2 3 4 5 6 7 8)))
            (if (and (< a b) (= (+ (* a a) (* b b)) (* c c)))
                (done (list a b c))
                (fail #f)))))",
        )
        .unwrap();
    println!("amb backtracking     => {}", vm.display_value(&v));

    // Trying the same with call/1cc fails on the second use of a choice
    // point — exactly the error the one-shot restriction defines.
    let e = vm
        .eval_str(
            "
        (define fail2 #f)
        (define (amb1 . choices)
          (call/1cc (lambda (k)
            (define (try choices)
              (if (null? choices)
                  (fail2 #f)
                  (begin
                    (call/1cc (lambda (retry)
                      (set! fail2 (lambda (ignore) (retry 'next)))
                      (k (car choices))))
                    (try (cdr choices)))))
            (try choices))))
        (call/cc (lambda (done)
          (let ((a (amb1 1 2)))
            (if (= a 2) (done a) (fail2 #f)))))",
        )
        .unwrap_err();
    println!("amb via call/1cc     => {e}");
}
