//! Quickstart: the embedder surface in one import — evaluate Scheme,
//! capture one-shot continuations, then run jobs on a pool with fuel
//! preemption, deadlines, and green-thread I/O.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::time::{Duration, Instant};

use oneshot::prelude::*;

fn main() {
    // --- Direct evaluation: one VM, one thread. -------------------------
    let mut vm = Vm::new();
    let v =
        vm.eval_str("(call/1cc (lambda (k) (+ 1 (k 41))))").expect("a one-shot escape evaluates");
    println!("one-shot escape      => {}", vm.display_value(&v));

    // Invoking a one-shot continuation twice is detected, not undefined.
    let e = vm
        .eval_str(
            "(define k1 #f)
             (+ 0 (call/1cc (lambda (k) (set! k1 k) 0)))
             (k1 1)  ; the implicit return already shot it
             'unreachable",
        )
        .unwrap_err();
    println!("second shot          => {e}");

    // --- The pool: jobs as engine-preempted green threads. --------------
    let pool = Pool::builder().workers(2).fuel_slice(1024).build().expect("pool spawns");

    // The fluent JobSpec carries the whole execution policy.
    let fib = pool
        .submit(
            JobSpec::new(
                "fib-20",
                "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 20)",
            )
            .fuel(10_000_000)
            .deadline(Duration::from_secs(10)),
        )
        .expect("submit");

    // Blocking I/O is a green-thread suspension, not a held worker: eight
    // 50 ms waits on two workers overlap into ~one wait.
    let t0 = Instant::now();
    let sleepers: Vec<_> = (0..8)
        .map(|i| {
            pool.submit(JobSpec::new(format!("nap-{i}"), "(begin (timer-wait 50) 'woke)"))
                .expect("submit")
        })
        .collect();
    for h in &sleepers {
        assert_eq!(h.wait().result.as_deref(), Ok("woke"));
    }
    println!("8 overlapped naps    => {:.0} ms wall", t0.elapsed().as_secs_f64() * 1e3);
    println!("(fib 20)             => {}", fib.wait().result.expect("fib completes"));

    // Every failure is one Error with a stable kind.
    let err = pool
        .submit(JobSpec::new("runaway", "(let loop ((i 0)) (loop (+ i 1)))").fuel(20_000))
        .expect("submit")
        .wait()
        .result
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::FuelExhausted);
    println!("runaway job          => {err}");

    let report = pool.shutdown().expect("clean shutdown");
    let c = report.counters;
    println!(
        "counters: {} completed, {} failed, {} timer waits, {} reactor wakeups",
        c.completed, c.failed, c.timer_waits, c.io_wakeups
    );
}
