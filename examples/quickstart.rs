//! Quickstart: evaluate Scheme, capture continuations both ways, inspect
//! the control-representation counters.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use oneshot::vm::{ProbeSpec, Vm, VmError};

fn main() -> Result<(), VmError> {
    // The builder is the primary construction path; a counting probe makes
    // the control-event totals resettable per region (`Vm::probe_reset`).
    let mut vm = Vm::builder().probe(ProbeSpec::Counting).build();

    // Ordinary Scheme.
    let v = vm.eval_str(
        "(define (fact n) (if (< n 2) 1 (* n (fact (- n 1)))))
         (fact 12)",
    )?;
    println!("(fact 12)            => {}", vm.display_value(&v));

    // A multi-shot continuation: captured once, used as a nonlocal exit.
    let v = vm.eval_str(
        "(call/cc (lambda (exit)
           (for-each (lambda (x) (if (> x 3) (exit x))) '(1 2 5 9))
           'not-found))",
    )?;
    println!("nonlocal exit        => {}", vm.display_value(&v));

    // A one-shot continuation: same use, but the system never has to copy
    // the stack — capture encapsulates the segment, invoke swaps it back.
    let v = vm.eval_str("(call/1cc (lambda (k) (+ 1 (k 41))))")?;
    println!("one-shot escape      => {}", vm.display_value(&v));

    // Invoking a one-shot continuation twice is detected.
    let e = vm
        .eval_str(
            "(define k1 #f)
             (+ 0 (call/1cc (lambda (k) (set! k1 k) 0)))
             (k1 1)  ; the implicit return already shot it
             'unreachable",
        )
        .unwrap_err();
    println!("second shot          => {e}");

    // Deep recursion crosses many stack segments; overflow is an implicit
    // call/1cc, so unwinding copies nothing. The probe attributes the
    // events to just this region.
    vm.probe_reset();
    let v = vm.eval_str(
        "(define (sum n) (if (zero? n) 0 (+ n (sum (- n 1)))))
         (sum 200000)",
    )?;
    let d = vm.probe_stats().expect("a counting probe is installed");
    println!("(sum 200000)         => {}", vm.display_value(&v));
    println!(
        "  overflows={} underflows={} one-shot-reinstatements={} slots-copied={}",
        d.overflows, d.underflows, d.reinstates_one, d.slots_copied
    );
    Ok(())
}
