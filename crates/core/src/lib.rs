//! Segmented-stack representation of control with one-shot and multi-shot
//! continuations.
//!
//! This crate implements the control representation described in
//! *Bruggeman, Waddell, Dybvig — "Representing Control in the Presence of
//! One-Shot Continuations"* (PLDI 1996). The logical control stack is a
//! linked list of fixed-size *stack segments*; each segment is a true stack
//! of frames, and a *stack record* describes the portion of a segment owned
//! by the running computation. First-class continuations are captured by
//! converting stack records into [`Kont`] objects:
//!
//! * **Multi-shot** continuations ([`SegStack::capture_multi`], the
//!   traditional `call/cc`) *seal* the occupied portion of the current
//!   segment — no copying at capture time — and shorten the current segment.
//!   Reinstatement copies the saved frames back, bounded by a *copy bound*
//!   with lazy splitting at frame boundaries.
//! * **One-shot** continuations ([`SegStack::capture_one`], `call/1cc`)
//!   encapsulate the entire segment and take a fresh segment from a
//!   *segment cache*. Reinstatement is O(1): the current segment is
//!   discarded into the cache and control simply returns to the saved
//!   segment. Invoking a one-shot continuation twice is an error.
//! * One-shot continuations captured as part of a multi-shot continuation
//!   are *promoted* to multi-shot status ([`PromotionStrategy`]), either by
//!   an eager walk of the continuation chain (the paper's implementation)
//!   or by a shared boxed flag (the paper's proposed bounded-time variant).
//! * **Stack overflow** is treated as an implicit one-shot capture with
//!   *hysteresis*: a few frames are copied up into the fresh segment so an
//!   immediate return does not bounce between segments
//!   ([`OverflowPolicy`]).
//!
//! The crate is generic over the slot type `S` stored in stack frames, so it
//! can be tested in isolation and reused by any embedder; the `oneshot-vm`
//! crate instantiates it with Scheme values.
//!
//! # Example
//!
//! ```
//! use oneshot_core::{Config, SegStack, Reinstated};
//!
//! // Slots are plain integers; 0 is the underflow marker, and a return
//! // address `r` encodes a frame displacement `r` (see `FrameWalker`).
//! let mut st: SegStack<i64> = SegStack::new(Config::default(), 0);
//! let walker = |s: &i64| if *s > 0 { Some(*s as usize) } else { None };
//!
//! // Push a frame: return address with displacement 4, then a local.
//! let fp = st.fp();
//! st.push_frame(4, 100);
//! st.set(st.fp() + 1, 42);
//!
//! // Capture the continuation of this point, one-shot.
//! let k = st.capture_one(2).expect("non-empty stack");
//!
//! // ... control goes elsewhere; later the continuation is invoked:
//! match st.reinstate(k, &walker).unwrap() {
//!     Reinstated { ret, .. } => assert_eq!(ret, 100),
//! }
//! // A second invocation is detected and rejected.
//! assert!(st.reinstate(k, &walker).is_err());
//! ```

// Unsafe is denied by default and allowed in exactly two leaf modules
// (`arena`, `stack`): the debug-asserted unchecked slot accessors on the
// segmented stack's hot paths. Every `unsafe` block there restates the
// invariant it relies on and is covered by a `debug_assert!`, so the
// debug-profile CI step runs the whole suite with the checks on.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod config;
mod error;
mod fault;
mod kont;
pub mod probe;
mod stack;
mod stats;

pub use config::{Config, OneShotPolicy, OverflowPolicy, PromotionStrategy};
pub use error::{ConfigError, ControlError};
pub use fault::{FaultClock, FaultPlan};
pub use kont::{Kont, KontId, KontKind};
pub use probe::{ControlProbe, CountingProbe, NoopProbe, ProbeEvent, RingTraceProbe};
pub use stack::{FrameWalker, Overflow, Reinstated, SegStack, SegmentId, Underflow};
pub use stats::Stats;
