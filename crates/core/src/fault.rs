//! Deterministic fault injection for robustness testing.
//!
//! A [`FaultPlan`] describes *when* faults fire — "fail the Nth heap
//! allocation", "force a premature stack overflow at the Nth segment
//! check", "expire the engine timer early" — as plain countdowns. The
//! plan is either written out explicitly by a test or derived from a seed
//! with [`FaultPlan::seeded`], using the same xorshift64\* generator the
//! benchmark harness uses, so a chaos schedule is reproducible from a
//! single integer.
//!
//! Each countdown is armed as a [`FaultClock`] at the site that consumes
//! it (the heap allocator, the segmented stack's `ensure`, the VM's timer
//! tick). A disarmed clock is a `None` check on the hot path — release
//! builds with no plan configured pay one predictable branch, in the same
//! spirit as the [`probe`](crate::probe) layer.

/// A single-shot countdown: fires exactly once, after `n - 1` ticks have
/// passed, then disarms itself.
///
/// `FaultClock::default()` is disarmed and never fires.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultClock {
    remaining: Option<u64>,
}

impl FaultClock {
    /// A clock that fires on the `n`-th call to [`FaultClock::tick`]
    /// (1-based). `arm(0)` is treated as `arm(1)`: the next tick fires.
    #[must_use]
    pub fn arm(n: u64) -> Self {
        FaultClock { remaining: Some(n.max(1)) }
    }

    /// A disarmed clock that never fires.
    #[must_use]
    pub fn disarmed() -> Self {
        FaultClock::default()
    }

    /// Whether the clock is armed and will eventually fire.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.remaining.is_some()
    }

    /// Advances the clock. Returns `true` exactly once — on the tick the
    /// countdown reaches zero — and disarms the clock afterwards.
    #[inline]
    pub fn tick(&mut self) -> bool {
        match self.remaining {
            None => false,
            Some(1) => {
                self.remaining = None;
                true
            }
            Some(n) => {
                self.remaining = Some(n - 1);
                false
            }
        }
    }
}

/// A deterministic schedule of injected faults, one optional countdown per
/// fault site.
///
/// All fields count *events at the site* (allocations, ensure checks,
/// timer ticks), not instructions, so a plan is stable across unrelated
/// code changes at other sites.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub struct FaultPlan {
    /// Fail the Nth heap allocation (1-based), surfacing as a catchable
    /// `out-of-memory` condition at the next safe point.
    pub alloc_fault_after: Option<u64>,
    /// Force a premature stack-segment ceiling at the Nth `ensure` check
    /// (1-based), surfacing as a catchable `stack-overflow` condition.
    pub segment_fault_after: Option<u64>,
    /// Force the engine timer to expire at the Nth safe-point tick
    /// (1-based), surfacing as a catchable `fuel-exhausted` condition when
    /// no timer-interrupt handler is installed.
    pub timer_fault_after: Option<u64>,
}

impl FaultPlan {
    /// A plan with every fault site disarmed.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Derives a plan from `seed`: each fault site independently gets a
    /// countdown drawn uniformly from `1..=horizon`, or is left disarmed
    /// (each site is armed with probability 3/4). The generator is
    /// xorshift64\*, matching the harness PRNG, so the same seed always
    /// yields the same schedule.
    #[must_use]
    pub fn seeded(seed: u64, horizon: u64) -> Self {
        let mut x = if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed };
        let mut next = move || {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            x = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
            x
        };
        let horizon = horizon.max(1);
        let mut draw = move || {
            let r = next();
            // Armed with probability 3/4; countdown uniform in 1..=horizon.
            (r & 3 != 0).then(|| 1 + (r >> 2) % horizon)
        };
        FaultPlan {
            alloc_fault_after: draw(),
            segment_fault_after: draw(),
            timer_fault_after: draw(),
        }
    }

    /// Sets the allocation-fault countdown (the struct is
    /// `#[non_exhaustive]`, so plans are built with these setters).
    #[must_use]
    pub fn with_alloc_fault(mut self, n: u64) -> Self {
        self.alloc_fault_after = Some(n);
        self
    }

    /// Sets the segment-fault countdown.
    #[must_use]
    pub fn with_segment_fault(mut self, n: u64) -> Self {
        self.segment_fault_after = Some(n);
        self
    }

    /// Sets the timer-fault countdown.
    #[must_use]
    pub fn with_timer_fault(mut self, n: u64) -> Self {
        self.timer_fault_after = Some(n);
        self
    }

    /// Whether the plan injects anything at all.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.alloc_fault_after.is_some()
            || self.segment_fault_after.is_some()
            || self.timer_fault_after.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_fires_exactly_once() {
        let mut c = FaultClock::arm(3);
        assert!(!c.tick());
        assert!(!c.tick());
        assert!(c.tick());
        assert!(!c.tick());
        assert!(!c.is_armed());
    }

    #[test]
    fn disarmed_clock_never_fires() {
        let mut c = FaultClock::disarmed();
        for _ in 0..100 {
            assert!(!c.tick());
        }
    }

    #[test]
    fn arm_zero_fires_next_tick() {
        let mut c = FaultClock::arm(0);
        assert!(c.tick());
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(42, 1000);
        let b = FaultPlan::seeded(42, 1000);
        assert_eq!(a, b);
        // Countdowns respect the horizon.
        for n in
            [a.alloc_fault_after, a.segment_fault_after, a.timer_fault_after].into_iter().flatten()
        {
            assert!((1..=1000).contains(&n));
        }
    }

    #[test]
    fn seeds_differ() {
        // Not a strong statistical claim — just that the seed is used.
        let plans: Vec<_> = (0..16).map(|s| FaultPlan::seeded(s, 1 << 20)).collect();
        let distinct = plans.iter().collect::<std::collections::HashSet<_>>().len();
        assert!(distinct > 8, "expected varied plans, got {distinct} distinct");
    }
}
