//! Unit tests for the segmented stack, using a miniature frame discipline
//! that mirrors the VM's call protocol: every frame holds its return
//! address at the base, frames have a fixed maximum size, and an overflow
//! check runs at each simulated function entry.

use super::*;
use crate::error::ControlError;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Slot {
    Val(i64),
    Ret { pc: usize, disp: usize },
    Marker,
}

type St = SegStack<Slot>;

const MAXF: usize = 8;

fn walker(s: &Slot) -> Option<usize> {
    match s {
        Slot::Ret { disp, .. } => Some(*disp),
        _ => None,
    }
}

fn small_cfg() -> Config {
    Config {
        segment_slots: 64,
        copy_bound: 24,
        hysteresis_slots: 0,
        min_headroom: MAXF,
        cache_limit: 8,
        ..Config::default()
    }
}

fn new_st(cfg: Config) -> St {
    SegStack::new(cfg, Slot::Marker)
}

/// Simulates a function entry: overflow check with only the return address
/// live above `fp`.
fn enter(st: &mut St) {
    st.ensure(MAXF, 1, &walker);
}

/// Simulates a call with frame displacement `d`, tagging the return address
/// with `pc` so tests can observe where control resumes.
fn call(st: &mut St, d: usize, pc: usize) {
    assert!(d <= MAXF);
    st.push_frame(d, Slot::Ret { pc, disp: d });
    enter(st);
}

/// Simulates a return; panics on underflow (use `st.underflow` for that).
fn ret(st: &mut St) -> usize {
    let r = st.get(st.fp()).clone();
    match r {
        Slot::Ret { pc, disp } => {
            st.pop_frame(disp);
            pc
        }
        other => panic!("expected return address at fp, found {other:?}"),
    }
}

/// Delivers a reinstatement result the way a return point would: pops the
/// frame by the displacement encoded in the return address and reports its
/// pc tag.
fn resume(st: &mut St, r: &Reinstated<Slot>) -> usize {
    match &r.ret {
        Slot::Ret { pc, disp } => {
            st.pop_frame(*disp);
            *pc
        }
        other => panic!("expected return address, found {other:?}"),
    }
}

fn at_marker(st: &St) -> bool {
    *st.get(st.fp()) == Slot::Marker
}

#[test]
fn frames_push_and_pop() {
    let mut st = new_st(small_cfg());
    assert!(at_marker(&st));
    call(&mut st, 4, 1);
    st.set(st.fp() + 1, Slot::Val(10));
    call(&mut st, 3, 2);
    assert_eq!(ret(&mut st), 2);
    assert_eq!(*st.get(st.fp() + 1), Slot::Val(10));
    assert_eq!(ret(&mut st), 1);
    assert!(at_marker(&st));
}

#[test]
fn capture_multi_at_empty_top_level_returns_none() {
    let mut st = new_st(small_cfg());
    assert_eq!(st.capture_multi(), None);
    assert_eq!(st.stats().captures_empty, 1);
}

#[test]
fn capture_multi_seals_without_copying() {
    let mut st = new_st(small_cfg());
    call(&mut st, 4, 7);
    let copied_before = st.stats().slots_copied;
    let k = st.capture_multi().expect("non-empty");
    assert_eq!(st.stats().slots_copied, copied_before, "capture copies nothing");
    assert_eq!(st.base(), st.fp(), "record shortened to the frame pointer");
    assert!(at_marker(&st), "sealed frame's return address replaced by handler");
    let kont = st.kont(k);
    assert_eq!(kont.occupied(), kont.owned(), "multi-shot invariant");
    assert!(!kont.is_one_shot_by_sizes());
    assert_eq!(kont.occupied(), 4);
}

#[test]
fn multi_shot_reinstates_repeatedly() {
    let mut st = new_st(small_cfg());
    call(&mut st, 4, 7);
    st.set(st.fp() + 1, Slot::Val(42));
    // fp now points at the frame whose ret has pc=7; capture here. The
    // value 42 lives *below* the seal boundary? No: fp+1 is above fp, so it
    // is dead at capture time. Store a value in the caller frame instead.
    call(&mut st, 3, 8);
    let k = st.capture_multi().expect("non-empty");
    for _ in 0..3 {
        // Wander off: push junk frames, then come back.
        call(&mut st, 5, 99);
        call(&mut st, 5, 98);
        let r = st.reinstate(k, &walker).unwrap();
        assert!(!r.one_shot);
        assert_eq!(r.ret, Slot::Ret { pc: 8, disp: 3 });
        // Deliver: pop the frame as the return point would.
        st.pop_frame(3);
        assert_eq!(*st.get(st.fp() + 1), Slot::Val(42), "caller locals preserved");
        // Climb back up so the next iteration starts from a clean spot.
        call(&mut st, 3, 8);
        let k2 = st.capture_multi().unwrap();
        assert!(
            st.kont(k2).occupied() >= 3,
            "the re-pushed frame (and any reinstated residue) is sealed"
        );
    }
    assert!(st.stats().reinstates_multi >= 3);
}

#[test]
fn one_shot_capture_takes_whole_segment_and_fresh_current() {
    let mut st = new_st(small_cfg());
    call(&mut st, 4, 7);
    let segs_before = st.segment_count();
    let k = st.capture_one(2).expect("non-empty");
    assert!(st.kont(k).is_one_shot_by_sizes(), "sizes differ for one-shots");
    assert!(st.kont(k).is_live_one_shot());
    assert_eq!(st.fp(), 0, "fresh segment starts at its base");
    assert!(at_marker(&st));
    assert_eq!(st.segment_count(), segs_before + 1);
}

#[test]
fn one_shot_reinstates_in_constant_time_and_only_once() {
    let mut st = new_st(small_cfg());
    call(&mut st, 4, 7);
    call(&mut st, 3, 8);
    st.set(st.fp() + 1, Slot::Val(5));
    call(&mut st, 2, 9);
    let k = st.capture_one(2).expect("non-empty");
    let copied_before = st.stats().slots_copied;
    let r = st.reinstate(k, &walker).unwrap();
    assert!(r.one_shot);
    assert_eq!(r.ret, Slot::Ret { pc: 9, disp: 2 });
    assert_eq!(st.stats().slots_copied, copied_before, "one-shot reinstatement copies nothing");
    st.pop_frame(2);
    assert_eq!(*st.get(st.fp() + 1), Slot::Val(5));
    // Second shot is an error.
    assert_eq!(st.reinstate(k, &walker), Err(ControlError::AlreadyShot));
    assert!(st.kont(k).is_shot());
    assert_eq!(st.stats().shots, 1);
}

#[test]
fn returning_from_capture_context_underflows_into_link() {
    let mut st = new_st(small_cfg());
    call(&mut st, 4, 7);
    let _k = st.capture_one(2).expect("non-empty");
    // The fresh record is empty; simulate the passed procedure returning
    // normally: control underflows into the captured continuation.
    assert!(at_marker(&st));
    match st.underflow(&walker).unwrap() {
        Underflow::Resumed(r) => {
            assert!(r.one_shot);
            assert_eq!(r.ret, Slot::Ret { pc: 7, disp: 4 });
        }
        Underflow::Exhausted => panic!("link existed"),
    }
    st.pop_frame(4);
    // Return once more: the chain is exhausted.
    assert!(at_marker(&st));
    match st.underflow(&walker).unwrap() {
        Underflow::Exhausted => {}
        other => panic!("expected exhaustion, got {other:?}"),
    }
}

#[test]
fn tail_position_capture_reuses_link() {
    let mut st = new_st(small_cfg());
    call(&mut st, 4, 7);
    let k1 = st.capture_multi().expect("non-empty");
    // fp is now at the record base: a capture here is in tail position.
    let k2 = st.capture_multi().expect("link exists");
    assert_eq!(k1, k2, "empty capture returns the link, allocating nothing");
    let k3 = st.capture_one(2).expect("link exists");
    assert_eq!(k1, k3);
    assert_eq!(st.stats().captures_empty, 2);
}

#[test]
fn eager_walk_promotion_converts_chain_up_to_first_multi() {
    let mut st = new_st(small_cfg());
    call(&mut st, 4, 1);
    let m0 = st.capture_multi().unwrap();
    call(&mut st, 4, 2);
    let o1 = st.capture_one(2).unwrap();
    call(&mut st, 4, 3);
    let o2 = st.capture_one(2).unwrap();
    call(&mut st, 4, 4);
    assert!(st.kont(o1).is_live_one_shot());
    assert!(st.kont(o2).is_live_one_shot());
    let _m = st.capture_multi().unwrap();
    assert!(matches!(st.kont(o1).kind(), KontKind::MultiShot), "promoted");
    assert!(matches!(st.kont(o2).kind(), KontKind::MultiShot), "promoted");
    assert!(matches!(st.kont(m0).kind(), KontKind::MultiShot));
    assert_eq!(st.stats().promotions, 2);
    // Promotion restored the multi-shot size invariant.
    assert!(!st.kont(o1).is_one_shot_by_sizes());
    // A promoted one-shot may now be invoked repeatedly.
    let r1 = st.reinstate(o2, &walker).unwrap();
    assert!(!r1.one_shot, "promoted continuations take the copying path");
    st.pop_frame(4);
    call(&mut st, 4, 9);
    let r2 = st.reinstate(o2, &walker).unwrap();
    assert_eq!(r1.ret, r2.ret);
}

#[test]
fn promotion_stops_at_multi_shot_boundary() {
    let mut st = new_st(small_cfg());
    call(&mut st, 4, 1);
    let o_low = st.capture_one(2).unwrap();
    call(&mut st, 4, 2);
    let _m = st.capture_multi().unwrap(); // promotes o_low
    assert_eq!(st.stats().promotion_steps, 1);
    call(&mut st, 4, 3);
    let _m2 = st.capture_multi().unwrap();
    // The second capture stops at the multi-shot immediately below; no
    // further steps are taken even though o_low sits deeper in the chain.
    assert_eq!(st.stats().promotion_steps, 1);
    assert!(matches!(st.kont(o_low).kind(), KontKind::MultiShot));
}

#[test]
fn shared_flag_promotion_is_constant_time_and_promotes_whole_chain() {
    let cfg = Config { promotion: PromotionStrategy::SharedFlag, ..small_cfg() };
    let mut st = new_st(cfg);
    call(&mut st, 4, 1);
    let o1 = st.capture_one(2).unwrap();
    call(&mut st, 4, 2);
    let o2 = st.capture_one(2).unwrap();
    call(&mut st, 4, 3);
    let _m = st.capture_multi().unwrap();
    assert_eq!(st.stats().promotion_steps, 0, "no chain walk under SharedFlag");
    assert_eq!(st.stats().promotions, 1, "one flag set promotes the chain");
    assert!(!st.kont(o1).is_live_one_shot());
    assert!(!st.kont(o2).is_live_one_shot());
    // Promoted one-shots reinstate via the copying path.
    let r = st.reinstate(o2, &walker).unwrap();
    assert!(!r.one_shot);
}

#[test]
fn overflow_one_shot_relocates_active_frame_and_returns_without_copying() {
    let mut st = new_st(small_cfg());
    let mut pcs = Vec::new();
    // Push enough frames to overflow the 64-slot segment a few times.
    for i in 0..40 {
        call(&mut st, 6, i);
        pcs.push(i);
    }
    assert!(st.stats().overflows >= 2, "expected overflows, got {:?}", st.stats());
    let copied_at_peak = st.stats().slots_copied;
    // Unwind all the way down; underflows reinstate the implicit one-shot
    // continuations in O(1).
    let mut expected = pcs.clone();
    while let Some(expect) = expected.pop() {
        let pc = if at_marker(&st) {
            match st.underflow(&walker).unwrap() {
                Underflow::Resumed(r) => {
                    assert!(r.one_shot, "overflow continuations are one-shot");
                    assert_eq!(st.stats().slots_copied, copied_at_peak);
                    resume(&mut st, &r)
                }
                Underflow::Exhausted => panic!("frames remain"),
            }
        } else {
            ret(&mut st)
        };
        assert_eq!(pc, expect);
    }
    assert!(at_marker(&st));
    assert!(matches!(st.underflow(&walker).unwrap(), Underflow::Exhausted));
    assert_eq!(st.stats().slots_copied, copied_at_peak, "no copying on underflow");
}

#[test]
fn overflow_multi_shot_policy_copies_on_underflow() {
    let cfg = Config { overflow_policy: OverflowPolicy::MultiShot, ..small_cfg() };
    let mut st = new_st(cfg);
    for i in 0..40 {
        call(&mut st, 6, i);
    }
    assert!(st.stats().overflows >= 2);
    let copied_at_peak = st.stats().slots_copied;
    for expect in (0..40).rev() {
        let pc = if at_marker(&st) {
            match st.underflow(&walker).unwrap() {
                Underflow::Resumed(r) => {
                    assert!(!r.one_shot);
                    resume(&mut st, &r)
                }
                Underflow::Exhausted => panic!("frames remain"),
            }
        } else {
            ret(&mut st)
        };
        assert_eq!(pc, expect);
    }
    assert!(
        st.stats().slots_copied > copied_at_peak,
        "multi-shot overflow policy pays copying on the way down"
    );
}

#[test]
fn hysteresis_relocates_extra_frames() {
    let cfg = Config { hysteresis_slots: 20, ..small_cfg() };
    let mut st = new_st(cfg);
    for i in 0..20 {
        call(&mut st, 6, i);
    }
    assert!(st.stats().overflows >= 1);
    // With hysteresis, each overflow relocates multiple frames: copied
    // slots exceed overflows * live(1).
    let s = st.stats();
    assert!(
        s.slots_copied > s.overflows,
        "hysteresis should copy more than the bare return address"
    );
    // And the stack still unwinds correctly.
    for expect in (0..20).rev() {
        let pc = if at_marker(&st) {
            match st.underflow(&walker).unwrap() {
                Underflow::Resumed(r) => resume(&mut st, &r),
                Underflow::Exhausted => panic!("frames remain"),
            }
        } else {
            ret(&mut st)
        };
        assert_eq!(pc, expect);
    }
}

#[test]
fn copy_bound_splits_large_continuations_lazily() {
    let cfg = Config { segment_slots: 512, copy_bound: 24, ..small_cfg() };
    let mut st = new_st(cfg);
    for i in 0..30 {
        call(&mut st, 6, i); // 180 occupied slots, no overflow
    }
    assert_eq!(st.stats().overflows, 0);
    let k = st.capture_multi().unwrap();
    assert!(st.kont(k).occupied() > 24 * 2);
    let konts_before = st.kont_count();
    let r = st.reinstate(k, &walker).unwrap();
    assert_eq!(r.ret, Slot::Ret { pc: 29, disp: 6 });
    assert!(st.stats().splits >= 1, "large continuation was split");
    assert!(st.kont_count() > konts_before, "split created bottom parts");
    // Each reinstatement copies at most the bound.
    assert!(st.stats().slots_copied <= 24 * (st.stats().reinstates_multi + 1));
    // Unwind through the split chain: every frame comes back in order.
    st.pop_frame(6);
    for expect in (0..29).rev() {
        let pc = if at_marker(&st) {
            match st.underflow(&walker).unwrap() {
                Underflow::Resumed(r) => resume(&mut st, &r),
                Underflow::Exhausted => panic!("frames remain"),
            }
        } else {
            ret(&mut st)
        };
        assert_eq!(pc, expect);
    }
    // Invoke the (now split) continuation again: still works.
    let r2 = st.reinstate(k, &walker).unwrap();
    assert_eq!(r2.ret, Slot::Ret { pc: 29, disp: 6 });
}

#[test]
fn segment_cache_recycles_one_shot_segments() {
    let mut st = new_st(small_cfg());
    call(&mut st, 4, 1);
    let mut k = st.capture_one(2).expect("non-empty");
    let allocated_after_warmup = st.stats().segments_allocated;
    for i in 0..100 {
        // Typical one-shot pattern (§3.2): capture, then immediately invoke
        // a previously saved one-shot.
        call(&mut st, 4, 100 + i);
        let next = st.capture_one(2).expect("non-empty");
        let r = st.reinstate(k, &walker).unwrap();
        assert!(r.one_shot);
        st.pop_frame(4);
        k = next;
    }
    let s = st.stats();
    assert!(
        s.segments_allocated <= allocated_after_warmup + 1,
        "steady-state capture/invoke cycles are served by the cache: {s:?}"
    );
    assert!(s.cache_hits >= 99);
}

#[test]
fn disabling_cache_allocates_every_time() {
    let cfg = Config { cache_limit: 0, ..small_cfg() };
    let mut st = new_st(cfg);
    call(&mut st, 4, 1);
    let mut k = st.capture_one(2).expect("non-empty");
    let before = st.stats().segments_allocated;
    for i in 0..50 {
        call(&mut st, 4, 100 + i);
        let next = st.capture_one(2).expect("non-empty");
        st.reinstate(k, &walker).unwrap();
        st.pop_frame(4);
        k = next;
    }
    let s = st.stats();
    assert_eq!(s.cache_hits, 0);
    assert!(
        s.segments_allocated >= before + 50,
        "every cycle allocates a fresh segment without the cache"
    );
}

#[test]
fn seal_with_pad_bounds_fragmentation() {
    // 100 "threads", each a shallow one-shot continuation, as in §3.4.
    let fresh = {
        let mut st = new_st(Config { cache_limit: 0, ..small_cfg() });
        for i in 0..100 {
            call(&mut st, 4, i);
            st.capture_one(2).unwrap();
        }
        st.resident_slots()
    };
    let padded = {
        let cfg = Config {
            segment_slots: 4096,
            oneshot_policy: OneShotPolicy::SealWithPad(16),
            cache_limit: 0,
            min_headroom: MAXF,
            ..Config::default()
        };
        let mut st = new_st(cfg);
        for i in 0..100 {
            call(&mut st, 4, i);
            st.capture_one(2).unwrap();
        }
        st.resident_slots()
    };
    assert!(padded < 3 * 4096, "sealing with pad packs many continuations per segment");
    // `fresh` used 64-slot segments and still allocated one per capture.
    assert!(fresh >= 100 * 64 / 2);
}

#[test]
fn seal_with_pad_continuations_still_work() {
    let cfg = Config {
        segment_slots: 256,
        copy_bound: 24,
        min_headroom: MAXF,
        oneshot_policy: OneShotPolicy::SealWithPad(MAXF),
        ..Config::default()
    };
    let mut st = new_st(cfg);
    call(&mut st, 4, 1);
    st.set(st.fp() + 1, Slot::Val(11));
    call(&mut st, 3, 2);
    let k = st.capture_one(2).expect("non-empty");
    assert!(st.kont(k).is_one_shot_by_sizes());
    assert!(st.kont(k).owned() < 256, "only a padded prefix is encapsulated");
    call(&mut st, 4, 50);
    let r = st.reinstate(k, &walker).unwrap();
    assert!(r.one_shot);
    assert_eq!(r.ret, Slot::Ret { pc: 2, disp: 3 });
    st.pop_frame(3);
    assert_eq!(*st.get(st.fp() + 1), Slot::Val(11));
}

#[test]
fn gc_sweep_frees_unmarked_konts_but_keeps_current_chain() {
    let mut st = new_st(small_cfg());
    call(&mut st, 4, 1);
    let dead = st.capture_multi().unwrap();
    call(&mut st, 4, 2);
    let live = st.capture_multi().unwrap();
    call(&mut st, 4, 3);
    let chained = st.capture_multi().unwrap(); // part of the current chain
    assert_eq!(st.kont_count(), 3);
    st.begin_gc();
    // Mark only `live` (as if only it were referenced from the heap); the
    // current chain keeps `chained` and — through links — everything below.
    assert!(st.mark_kont(live));
    assert!(!st.mark_kont(live), "already marked");
    // Trace its link like an embedder would.
    let mut cursor = st.kont_link(live);
    while let Some(id) = cursor {
        if !st.mark_kont(id) {
            break;
        }
        cursor = st.kont_link(id);
    }
    st.sweep(false);
    assert!(st.kont_alive(live));
    assert!(st.kont_alive(chained), "current chain survives unmarked");
    assert!(st.kont_alive(dead), "reachable through live's link");
    // Now drop everything reachable only from the heap.
    st.begin_gc();
    st.sweep(false);
    assert!(st.kont_alive(chained) && st.kont_alive(live) && st.kont_alive(dead));
    // chained links live links dead: all on the current chain. Cut the
    // chain by clearing the stack, then sweep again.
    st.clear_to_empty();
    st.begin_gc();
    st.sweep(true);
    assert_eq!(st.kont_count(), 0);
    assert_eq!(st.cache_len(), 0, "flush_cache drops cached segments");
}

#[test]
fn clear_to_empty_exhausts_immediately() {
    let mut st = new_st(small_cfg());
    call(&mut st, 4, 1);
    let _k = st.capture_multi().unwrap();
    call(&mut st, 4, 2);
    st.clear_to_empty();
    assert!(at_marker(&st));
    assert!(matches!(st.underflow(&walker).unwrap(), Underflow::Exhausted));
}

#[test]
fn shot_konts_report_empty_slices_and_survive_marking() {
    let mut st = new_st(small_cfg());
    call(&mut st, 4, 1);
    let k = st.capture_one(2).unwrap();
    assert!(!st.kont_slice(k).is_empty());
    st.reinstate(k, &walker).unwrap();
    assert!(st.kont_slice(k).is_empty(), "shot continuations hold no slots");
    st.begin_gc();
    st.mark_kont(k);
    st.sweep(false);
    assert!(st.kont_alive(k));
    assert_eq!(st.reinstate(k, &walker), Err(ControlError::AlreadyShot));
}

#[test]
fn dead_continuation_is_reported() {
    let mut st = new_st(small_cfg());
    call(&mut st, 4, 1);
    let k = st.capture_multi().unwrap();
    st.clear_to_empty();
    st.begin_gc();
    st.sweep(false);
    assert!(!st.kont_alive(k));
    assert_eq!(st.reinstate(k, &walker), Err(ControlError::DeadContinuation));
}

#[test]
fn deep_recursion_survives_many_overflow_cycles() {
    // The E3 scenario in miniature: recur deeply, unwind, repeat; after the
    // first round the cache supplies every segment.
    let mut st = new_st(Config { cache_limit: 32, ..small_cfg() });
    for round in 0..5 {
        for i in 0..200 {
            call(&mut st, 5, i);
        }
        for expect in (0..200).rev() {
            let pc = if at_marker(&st) {
                match st.underflow(&walker).unwrap() {
                    Underflow::Resumed(r) => resume(&mut st, &r),
                    Underflow::Exhausted => panic!("frames remain"),
                }
            } else {
                ret(&mut st)
            };
            assert_eq!(pc, expect);
        }
        assert!(at_marker(&st));
        if round > 0 {
            // Steady state reached: the cache absorbs all segment churn.
            let s = st.stats();
            assert!(s.cache_hits > 0);
        }
    }
    let s = st.stats();
    assert!(s.segments_allocated < 30, "cache bounds total allocation across rounds: {s:?}");
}

#[test]
fn stats_deltas_capture_benchmark_regions() {
    let mut st = new_st(small_cfg());
    let before = *st.stats();
    call(&mut st, 4, 1);
    let _ = st.capture_one(2);
    let delta = st.stats().delta_since(&before);
    assert_eq!(delta.captures_one, 1);
    assert_eq!(delta.captures_multi, 0);
}
