//! The segmented stack and its continuation operations.
//!
//! See the crate-level documentation for the model. Absolute *slot indices*
//! index into the current segment; the *frame pointer* `fp` is such an
//! index, pointing at the base of the active frame (which holds the frame's
//! return address, per §3.1 of the paper). There is deliberately no stack
//! pointer: the embedder adjusts `fp` by compile-time displacements before
//! and after calls, exactly as the paper's compiler does.
//!
//! # The paper's figures, in ASCII
//!
//! Figure 1 — the segmented stack model. A logical stack is a list of
//! segments linked through records; each frame holds its return address at
//! the base:
//!
//! ```text
//!        current record                segment
//!   ┌──────────────────────┐      ┌──────────────┐◄─ end
//!   │ segment  ────────────┼───┐  │   (free)     │
//!   │ base, size           │   │  ├──────────────┤
//!   │ link ──► older kont  │   │  │ local m      │
//!   └──────────────────────┘   │  │ ...          │
//!                              │  │ argument n   │
//!                 fp ──────────┼─►│ return addr  │◄─ frame base
//!                              │  ├──────────────┤
//!                              │  │ caller frames│
//!                              └─►│ [marker]     │◄─ record base
//!                                 └──────────────┘
//! ```
//!
//! Figure 2 — capture. `call/cc` ([`SegStack::capture_multi`]) seals the
//! occupied portion `[base, fp)` into a continuation and keeps the
//! remainder as the current record; `call/1cc`
//! ([`SegStack::capture_one`]) encapsulates the *whole* segment
//! (`size != current_size`) and takes a fresh segment from the cache:
//!
//! ```text
//!   call/cc:  [ sealed kont │ new current record ]   (same segment)
//!   call/1cc: [ whole segment → kont ]  +  fresh segment from cache
//! ```
//!
//! Figure 3 — multi-shot reinstatement copies the saved slots back into
//! the current segment ([`SegStack::reinstate`], multi path), splitting
//! first when the saved portion exceeds the copy bound.
//!
//! Figure 4 — one-shot reinstatement swaps segments in O(1): the current
//! segment is discarded into the cache, the continuation's record becomes
//! current, and the continuation is marked *shot* (the paper sets both
//! size fields to −1).
//!
//! # Frame walking
//!
//! Operations that must find frame boundaries (splitting at the copy bound,
//! overflow hysteresis) take a *walker*: a function mapping a return-address
//! slot to the displacement between the frame holding it and its caller's
//! frame. The paper stores this displacement in the code stream immediately
//! before each return point; a bytecode embedder typically keeps it in a
//! side table keyed by return PC. The walker returns `None` for the
//! underflow marker (or any non-return-address slot), which terminates a
//! walk.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::arena::Arena;
use crate::config::{Config, OneShotPolicy, OverflowPolicy, PromotionStrategy};
use crate::error::ControlError;
use crate::fault::FaultClock;
use crate::kont::{Kont, KontId, KontKind};
use crate::probe::{ControlProbe, NoopProbe};
use crate::stats::Stats;

/// Identifies a physical stack segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegmentId(pub(crate) u32);

impl SegmentId {
    /// The raw index, useful for rendering probe traces.
    pub fn index(self) -> u32 {
        self.0
    }
}

/// Maps a return-address slot to the displacement between the frame holding
/// it and its caller's frame (see the module docs on frame walking).
///
/// A blanket implementation covers any `Fn(&S) -> Option<usize>`, so plain
/// closures and `fn` items remain valid walkers; implement the trait
/// directly when the mapping carries state (a side table keyed by return
/// PC, say) that a capturing closure cannot express ergonomically.
pub trait FrameWalker<S> {
    /// The frame displacement for `slot`, or `None` when `slot` is not a
    /// return address (e.g. the underflow marker), which terminates a walk.
    fn frame_disp(&self, slot: &S) -> Option<usize>;
}

impl<S, F: Fn(&S) -> Option<usize>> FrameWalker<S> for F {
    #[inline]
    fn frame_disp(&self, slot: &S) -> Option<usize> {
        self(slot)
    }
}

#[derive(Debug)]
struct Segment<S> {
    slots: Box<[S]>,
    /// Number of continuations referencing this segment, plus one if it is
    /// the current segment. A segment with `rc == 0` is dead (or cached).
    rc: u32,
    /// Whether the segment has the default capacity and is therefore
    /// eligible for the segment cache.
    default_size: bool,
}

/// The result of reinstating a continuation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct Reinstated<S> {
    /// The return address through which control resumes: the embedder
    /// should deliver the continuation's value and jump here. The frame
    /// pointer has already been repositioned.
    pub ret: S,
    /// Whether the O(1) one-shot path was taken (no copying).
    pub one_shot: bool,
}

/// The result of returning through the base of the current segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Underflow<S> {
    /// The link continuation was reinstated; resume through this result.
    Resumed(Reinstated<S>),
    /// The continuation chain is exhausted: the program is complete.
    Exhausted,
}

/// The action taken by [`SegStack::ensure`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Overflow {
    /// The frame fits; nothing happened.
    Fits,
    /// The stack overflowed and was handled per [`OverflowPolicy`]; the
    /// frame pointer has moved to the relocated frame in a new segment.
    Handled,
    /// The segment ceiling ([`Config::max_segments`]) was hit — or an
    /// injected segment fault fired — and nothing was allocated. The stack
    /// is unchanged. An injected fault arms the *grace* period itself; for a
    /// real ceiling the embedder may first reclaim dead segments and retry,
    /// then call [`SegStack::enter_overflow_grace`] so the frames needed to
    /// unwind (e.g. raise a catchable `stack-overflow` condition) can be
    /// pushed past the ceiling. The grace period ends when segments are
    /// released back below the ceiling, when a continuation is explicitly
    /// reinstated, or when the stack is cleared.
    Ceiling,
}

/// A segmented control stack (Figures 1–4 of the paper).
///
/// `S` is the slot type stored in frames — typically a tagged value type
/// that can also represent return addresses and the underflow marker.
///
/// `P` is the [`ControlProbe`] receiving fine-grained control events. It
/// defaults to [`NoopProbe`], whose empty inlined callbacks monomorphize to
/// nothing — instrumentation is free unless a real probe is installed with
/// [`SegStack::with_probe`].
#[derive(Debug)]
pub struct SegStack<S, P: ControlProbe = NoopProbe> {
    segs: Arena<Segment<S>>,
    konts: Arena<Kont<S>>,
    /// Free list of default-size segments (§3.2's stack segment cache).
    cache: Vec<SegmentId>,
    cfg: Config,
    marker: S,
    /// Minimum headroom guaranteed above `fp` after any reinstatement; the
    /// embedder raises this to its maximum static frame size.
    reserve: usize,
    // --- the current stack record (Figure 1) ---
    cur_seg: SegmentId,
    cur_base: usize,
    cur_end: usize,
    cur_link: Option<KontId>,
    fp: usize,
    stats: Stats,
    probe: P,
    /// Injected segment-fault countdown: when it fires, the next `ensure`
    /// reports [`Overflow::Ceiling`] regardless of actual occupancy.
    fault: FaultClock,
    /// While set, `ensure` neither ticks nor fires the fault countdown
    /// (critical sections such as winder entries).
    fault_deferred: bool,
    /// Whether the ceiling is temporarily waived so the embedder can unwind
    /// (set by an injected fault or [`SegStack::enter_overflow_grace`];
    /// cleared when occupancy drops back under the ceiling, a continuation
    /// is explicitly reinstated, or the stack is cleared).
    grace: bool,
    /// Highest `resident_slots()` ever observed (gauge; see
    /// [`SegStack::resident_slots_highwater`]).
    resident_highwater: usize,
}

impl<S: Clone> SegStack<S> {
    /// Creates a stack with one large initial segment, an empty cache, and
    /// the given underflow `marker`, which is installed in the base slot of
    /// every stack record. The stack carries the free [`NoopProbe`]; use
    /// [`SegStack::with_probe`] to instrument it.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`Config::validate`]; use `validate` first for
    /// a recoverable error.
    pub fn new(cfg: Config, marker: S) -> Self {
        Self::with_probe(cfg, marker, NoopProbe)
    }
}

impl<S: Clone, P: ControlProbe> SegStack<S, P> {
    /// Like [`SegStack::new`], but events are reported to `probe` (see
    /// [`ControlProbe`]).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`Config::validate`]; use `validate` first for
    /// a recoverable error.
    pub fn with_probe(cfg: Config, marker: S, probe: P) -> Self {
        cfg.validate().expect("invalid segmented stack configuration");
        let reserve = cfg.min_headroom;
        let mut st = SegStack {
            segs: Arena::new(),
            konts: Arena::new(),
            cache: Vec::new(),
            cfg,
            marker,
            reserve,
            cur_seg: SegmentId(0),
            cur_base: 0,
            cur_end: 0,
            cur_link: None,
            fp: 0,
            stats: Stats::default(),
            probe,
            fault: FaultClock::disarmed(),
            fault_deferred: false,
            grace: false,
            resident_highwater: 0,
        };
        let seg = st.alloc_segment(st.cfg.segment_slots);
        st.cur_seg = seg;
        st.cur_end = st.cfg.segment_slots;
        st.set(0, st.marker.clone());
        st
    }

    /// The installed control probe.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// The installed control probe, mutably — for resetting counters or
    /// draining a trace ring mid-run.
    pub fn probe_mut(&mut self) -> &mut P {
        &mut self.probe
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The configuration this stack was created with.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Operation counters.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The current frame pointer (an absolute slot index).
    #[inline]
    pub fn fp(&self) -> usize {
        self.fp
    }

    /// Repositions the frame pointer. The embedder is responsible for
    /// keeping it within the current record.
    #[inline]
    pub fn set_fp(&mut self, fp: usize) {
        debug_assert!(fp >= self.cur_base && fp < self.cur_end);
        self.fp = fp;
    }

    /// Base slot index of the current stack record.
    pub fn base(&self) -> usize {
        self.cur_base
    }

    /// One past the last slot available to the current record.
    pub fn end(&self) -> usize {
        self.cur_end
    }

    /// Slots available above the frame pointer.
    pub fn headroom(&self) -> usize {
        self.cur_end - self.fp
    }

    /// The continuation the current record returns into, if any.
    pub fn current_link(&self) -> Option<KontId> {
        self.cur_link
    }

    /// The current segment.
    ///
    /// The unchecked arena access is sound because `cur_seg` always names a
    /// live segment: it is only ever set to a freshly allocated/obtained
    /// segment or to a continuation's segment (kept alive by its rc), and
    /// the "current" reference is counted in that rc.
    #[allow(unsafe_code)]
    #[inline]
    fn cur(&self) -> &Segment<S> {
        // SAFETY: see the doc comment — `cur_seg` is live by construction.
        unsafe { self.segs.get_unchecked(self.cur_seg.0) }
    }

    /// The current segment, mutably (same invariant as [`SegStack::cur`]).
    #[allow(unsafe_code)]
    #[inline]
    fn cur_mut(&mut self) -> &mut Segment<S> {
        // SAFETY: see `cur` — `cur_seg` is live by construction.
        unsafe { self.segs.get_unchecked_mut(self.cur_seg.0) }
    }

    /// Reads the slot at absolute index `i` in the current segment.
    ///
    /// The bounds check is a `debug_assert`: the caller must keep `i`
    /// inside the current segment. Embedder indices are frame-relative
    /// displacements validated by [`SegStack::ensure`] at frame entry, so
    /// the per-access check is pure overhead on the dispatch hot path; the
    /// debug-profile test run keeps the assertion armed.
    #[allow(unsafe_code)]
    #[inline]
    pub fn get(&self, i: usize) -> &S {
        let seg = self.cur();
        debug_assert!(i < seg.slots.len(), "slot read out of segment: {i}");
        // SAFETY: `i` is within the current segment per the documented
        // contract (debug-asserted above).
        unsafe { seg.slots.get_unchecked(i) }
    }

    /// Writes the slot at absolute index `i` in the current segment.
    ///
    /// Same contract as [`SegStack::get`]: the bounds check is a
    /// `debug_assert`, and `i` must lie inside the current segment.
    #[allow(unsafe_code)]
    #[inline]
    pub fn set(&mut self, i: usize, v: S) {
        let seg = self.cur_mut();
        debug_assert!(i < seg.slots.len(), "slot write out of segment: {i}");
        // SAFETY: `i` is within the current segment per the documented
        // contract (debug-asserted above).
        unsafe { *seg.slots.get_unchecked_mut(i) = v };
    }

    /// A slice of the current segment, `[lo, hi)` — used by embedder GCs to
    /// trace the live portion of the running stack.
    ///
    /// # Panics
    ///
    /// Panics if the range is outside the current segment (GC-rate, not
    /// dispatch-rate, so the checked index stays).
    pub fn slice(&self, lo: usize, hi: usize) -> &[S] {
        &self.cur().slots[lo..hi]
    }

    /// Pushes a frame: writes `ret` at `fp + disp` and advances the frame
    /// pointer there, mirroring the paper's pre-call adjustment.
    ///
    /// # Panics
    ///
    /// Panics if the new frame base lies outside the current record; call
    /// [`SegStack::ensure`] first.
    #[inline]
    pub fn push_frame(&mut self, disp: usize, ret: S) {
        let nfp = self.fp + disp;
        debug_assert!(nfp < self.cur_end, "frame pushed past segment end; missing ensure()");
        self.set(nfp, ret);
        self.fp = nfp;
    }

    /// Pops a frame: moves the frame pointer down by `disp`, mirroring the
    /// paper's post-return adjustment.
    #[inline]
    pub fn pop_frame(&mut self, disp: usize) {
        debug_assert!(self.fp >= self.cur_base + disp);
        self.fp -= disp;
    }

    /// Looks up a continuation object.
    ///
    /// # Panics
    ///
    /// Panics if `id` refers to a collected continuation.
    pub fn kont(&self, id: KontId) -> &Kont<S> {
        self.konts.get(id.0)
    }

    /// Whether `id` refers to a live (uncollected) continuation object.
    pub fn kont_alive(&self, id: KontId) -> bool {
        self.konts.contains(id.0)
    }

    /// The occupied saved slots of a continuation — what a multi-shot
    /// reinstatement would copy. Empty for shot continuations.
    #[allow(unsafe_code)]
    pub fn kont_slice(&self, id: KontId) -> &[S] {
        let k = self.konts.get(id.0);
        match k.kind {
            KontKind::Shot => &[],
            _ => {
                // SAFETY: an unshot continuation holds an rc on its
                // segment, so `k.seg` is live; `base + cur` never exceeds
                // the sealed extent recorded at capture (debug-asserted).
                let seg = unsafe { self.segs.get_unchecked(k.seg.0) };
                debug_assert!(k.base + k.cur <= seg.slots.len());
                unsafe { seg.slots.get_unchecked(k.base..k.base + k.cur) }
            }
        }
    }

    /// Number of live continuation objects.
    pub fn kont_count(&self) -> usize {
        self.konts.len()
    }

    /// Number of live segments (including cached ones).
    pub fn segment_count(&self) -> usize {
        self.segs.len()
    }

    /// Number of segments currently in the cache.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Number of live segments *excluding* cached ones — the occupancy
    /// measure the [`Config::max_segments`] ceiling is checked against.
    pub fn live_segment_count(&self) -> usize {
        self.segs.len() - self.cache.len()
    }

    /// Whether the stack is in the post-[`Overflow::Ceiling`] grace period
    /// during which the ceiling is waived.
    pub fn in_overflow_grace(&self) -> bool {
        self.grace
    }

    /// Arms the injected segment fault: the `n`-th subsequent
    /// [`SegStack::ensure`] check (1-based) reports [`Overflow::Ceiling`]
    /// even though the stack has room — the deterministic "premature
    /// overflow" fault of a [`FaultPlan`](crate::FaultPlan).
    pub fn arm_segment_fault(&mut self, n: u64) {
        self.fault = FaultClock::arm(n);
    }

    /// Whether an injected segment fault is armed and has not fired yet.
    /// (To tell an injected ceiling from a real one after the fact, check
    /// [`SegStack::in_overflow_grace`]: only the injected fault arms the
    /// grace period itself.)
    pub fn segment_fault_armed(&self) -> bool {
        self.fault.is_armed()
    }

    /// Defers the injected segment fault: while `on`, [`SegStack::ensure`]
    /// neither ticks nor fires the fault countdown. Embedders set this
    /// around checks made in critical sections (e.g. `dynamic-wind` winder
    /// entries) where an asynchronous fault would unbalance bookkeeping;
    /// the countdown is preserved, not consumed.
    pub fn defer_segment_fault(&mut self, on: bool) {
        self.fault_deferred = on;
    }

    /// Total slot capacity of all live segments — the resident stack memory
    /// measure used by the fragmentation experiment (E7). Includes cached
    /// segments.
    pub fn resident_slots(&self) -> usize {
        self.segs.iter().map(|(_, s)| s.slots.len()).sum()
    }

    /// The highest [`SegStack::resident_slots`] ever observed — a gauge
    /// (not a counter), sampled whenever a segment is allocated. Multiply
    /// by the embedder's slot size for the segment-bytes highwater metric.
    pub fn resident_slots_highwater(&self) -> usize {
        self.resident_highwater
    }

    /// Raises the post-reinstatement headroom guarantee to at least
    /// `slots`. Embedders call this with their maximum static frame size so
    /// that resumed code can never write past a segment end between two
    /// overflow checks.
    pub fn raise_reserve(&mut self, slots: usize) {
        self.reserve = self.reserve.max(slots);
    }

    // ------------------------------------------------------------------
    // Capture (Figure 2)
    // ------------------------------------------------------------------

    /// Captures the current continuation as a multi-shot continuation
    /// (`call/cc`): seals the occupied portion of the current segment and
    /// shortens the current record. No slots are copied. One-shot
    /// continuations in the chain are promoted per the configured
    /// [`PromotionStrategy`] (§3.3).
    ///
    /// Returns `None` when the continuation chain is empty and the stack is
    /// empty — the continuation is then "return from the program".
    pub fn capture_multi(&mut self) -> Option<KontId> {
        self.promote_chain();
        let occupied = self.fp - self.cur_base;
        if occupied == 0 {
            // Proper tail recursion (§3.2): the link is the continuation.
            self.stats.captures_empty += 1;
            self.probe.capture_empty();
            return self.cur_link;
        }
        self.stats.captures_multi += 1;
        let ret = self.get(self.fp).clone();
        let k = Kont {
            seg: self.cur_seg,
            base: self.cur_base,
            size: occupied,
            cur: occupied,
            ret,
            link: self.cur_link,
            kind: KontKind::MultiShot,
            mark: false,
        };
        self.segs.get_mut(self.cur_seg.0).rc += 1;
        let id = KontId(self.konts.insert(k));
        self.probe.capture_multi(id, self.cur_seg, occupied);
        // The remainder of the segment becomes the current record.
        self.cur_base = self.fp;
        self.cur_link = Some(id);
        let fp = self.fp;
        let m = self.marker.clone();
        self.set(fp, m);
        Some(id)
    }

    /// Captures the current continuation as a one-shot continuation
    /// (`call/1cc`): encapsulates the segment in the continuation without
    /// copying and installs a new current segment per the configured
    /// [`OneShotPolicy`]. `need` is the number of slots the embedder will
    /// write above the new frame pointer before the next overflow check.
    ///
    /// Returns `None` under the same conditions as
    /// [`SegStack::capture_multi`]. When the stack is empty the link is
    /// reused and no segment changes occur (tail rule).
    pub fn capture_one(&mut self, need: usize) -> Option<KontId> {
        let occupied = self.fp - self.cur_base;
        if occupied == 0 {
            self.stats.captures_empty += 1;
            self.probe.capture_empty();
            return self.cur_link;
        }
        self.stats.captures_one += 1;
        let ret = self.get(self.fp).clone();
        let flag = self.inherit_flag();

        match self.cfg.oneshot_policy {
            OneShotPolicy::SealWithPad(pad) => {
                let pad = pad.max(self.reserve);
                let seal_end = self.fp + pad;
                let room_after = self.cur_end.saturating_sub(seal_end);
                if room_after > need.max(self.reserve) {
                    // Seal at a fixed displacement above the occupied
                    // portion; the remainder stays current (§3.4).
                    let k = Kont {
                        seg: self.cur_seg,
                        base: self.cur_base,
                        size: seal_end - self.cur_base,
                        cur: occupied,
                        ret,
                        link: self.cur_link,
                        kind: KontKind::OneShot { promoted: flag },
                        mark: false,
                    };
                    self.segs.get_mut(self.cur_seg.0).rc += 1;
                    let id = KontId(self.konts.insert(k));
                    self.probe.capture_one(id, self.cur_seg, occupied);
                    self.probe.seal(id, self.cur_seg, pad);
                    self.cur_base = seal_end;
                    self.cur_link = Some(id);
                    self.fp = seal_end;
                    let m = self.marker.clone();
                    self.set(seal_end, m);
                    return Some(id);
                }
                // Not enough room: fall through to a fresh segment, sealing
                // the whole segment as in the basic scheme.
            }
            OneShotPolicy::FreshSegment => {}
        }

        // Basic scheme (§3.2): the continuation takes the entire segment.
        let k = Kont {
            seg: self.cur_seg,
            base: self.cur_base,
            size: self.cur_end - self.cur_base,
            cur: occupied,
            ret,
            link: self.cur_link,
            kind: KontKind::OneShot { promoted: flag },
            mark: false,
        };
        // The continuation takes over the current record's reference.
        let id = KontId(self.konts.insert(k));
        self.probe.capture_one(id, self.cur_seg, occupied);
        let new_seg = self.obtain_segment(need.max(self.reserve) + 1);
        self.install_record(new_seg, Some(id));
        Some(id)
    }

    /// The shared promotion flag for a new one-shot continuation: inherited
    /// from the link when it is an unpromoted one-shot (so a whole chain
    /// shares one flag), fresh otherwise. Under [`PromotionStrategy::
    /// EagerWalk`] the flag is never set, but maintaining it is cheap and
    /// keeps the two strategies structurally identical.
    fn inherit_flag(&self) -> Arc<AtomicBool> {
        if let Some(l) = self.cur_link {
            if let KontKind::OneShot { promoted } = &self.konts.get(l.0).kind {
                if !promoted.load(Ordering::Relaxed) {
                    return promoted.clone();
                }
            }
        }
        Arc::new(AtomicBool::new(false))
    }

    /// Promotes every live one-shot continuation reachable through the
    /// current link chain, stopping at the first continuation that is not a
    /// live one-shot (§3.3: the operation that created a multi-shot
    /// continuation already promoted everything below it).
    fn promote_chain(&mut self) {
        match self.cfg.promotion {
            PromotionStrategy::SharedFlag => {
                if let Some(l) = self.cur_link {
                    if let KontKind::OneShot { promoted } = &self.konts.get(l.0).kind {
                        if !promoted.load(Ordering::Relaxed) {
                            promoted.store(true, Ordering::Relaxed);
                            self.stats.promotions += 1;
                            self.probe.promotion(l, false);
                        }
                    }
                }
            }
            PromotionStrategy::EagerWalk => {
                let mut cursor = self.cur_link;
                while let Some(id) = cursor {
                    let k = self.konts.get_mut(id.0);
                    match &k.kind {
                        KontKind::OneShot { promoted } if !promoted.load(Ordering::Relaxed) => {
                            // Promotion sets the size of a one-shot
                            // continuation equal to its current size,
                            // restoring the multi-shot invariant. The
                            // segment tail it owned beyond the occupied
                            // portion is abandoned (fragmentation, §3.4).
                            k.size = k.cur;
                            k.kind = KontKind::MultiShot;
                            self.stats.promotions += 1;
                            self.stats.promotion_steps += 1;
                            cursor = k.link;
                            self.probe.promotion(id, true);
                        }
                        _ => break,
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Reinstatement (Figures 3 and 4)
    // ------------------------------------------------------------------

    /// Reinstates continuation `id`, repositioning the frame pointer at its
    /// saved frame. The embedder should deliver the continuation's value
    /// and jump through the returned return address.
    ///
    /// One-shot continuations are reinstated in O(1) by discarding the
    /// current segment into the cache (Figure 4); multi-shot continuations
    /// are copied into the current segment, splitting first if the saved
    /// portion exceeds the copy bound (Figure 3).
    ///
    /// `walker` maps a return-address slot to its frame displacement (see
    /// [`FrameWalker`] and the module docs); it is consulted only when
    /// splitting.
    ///
    /// # Errors
    ///
    /// [`ControlError::AlreadyShot`] if `id` was a one-shot continuation
    /// that has already been invoked; [`ControlError::DeadContinuation`] if
    /// `id` was collected.
    pub fn reinstate<W>(&mut self, id: KontId, walker: &W) -> Result<Reinstated<S>, ControlError>
    where
        W: FrameWalker<S> + ?Sized,
    {
        // An explicit reinstatement transfers control out of whatever extent
        // overflowed, so any ceiling grace period is over: the next ensure
        // re-checks occupancy (after the embedder's collect-and-retry).
        self.grace = false;
        self.reinstate_inner(id, walker)
    }

    /// [`SegStack::reinstate`] minus the grace-period reset — the underflow
    /// path resumes the *same* logical extent (returning into a caller's
    /// frames), which must not end a grace period that is letting error
    /// delivery run above the ceiling.
    fn reinstate_inner<W>(&mut self, id: KontId, walker: &W) -> Result<Reinstated<S>, ControlError>
    where
        W: FrameWalker<S> + ?Sized,
    {
        if !self.konts.contains(id.0) {
            return Err(ControlError::DeadContinuation);
        }
        enum Path {
            Shot,
            One,
            Multi,
        }
        let path = match &self.konts.get(id.0).kind {
            KontKind::Shot => Path::Shot,
            KontKind::OneShot { promoted } if !promoted.load(Ordering::Relaxed) => Path::One,
            _ => Path::Multi,
        };
        match path {
            Path::Shot => Err(ControlError::AlreadyShot),
            Path::One => Ok(self.reinstate_one(id)),
            Path::Multi => Ok(self.reinstate_multi(id, walker)),
        }
    }

    /// Figure 4: O(1) one-shot reinstatement. The current segment is
    /// discarded (into the cache if unshared), the continuation's record
    /// becomes current, and the continuation is marked shot.
    fn reinstate_one(&mut self, id: KontId) -> Reinstated<S> {
        self.stats.reinstates_one += 1;
        self.stats.shots += 1;
        self.probe.reinstate(id, self.konts.get(id.0).seg, true, 0);
        let k = self.konts.get_mut(id.0);
        let (seg, base, size, cur, link) = (k.seg, k.base, k.size, k.cur, k.link);
        let ret = std::mem::replace(&mut k.ret, self.marker.clone());
        // Mark shot (the paper sets both size fields to -1).
        k.kind = KontKind::Shot;
        k.size = 0;
        k.cur = 0;
        // The current record's reference moves off the old segment...
        let old = self.cur_seg;
        self.release_segment(old);
        // ...and takes over the continuation's reference to its segment.
        self.cur_seg = seg;
        self.cur_base = base;
        self.cur_end = base + size;
        self.cur_link = link;
        self.fp = base + cur;
        Reinstated { ret, one_shot: true }
    }

    /// Figure 3: multi-shot reinstatement by copying, with lazy splitting
    /// at frame boundaries when the saved portion exceeds the copy bound.
    fn reinstate_multi<W>(&mut self, mut id: KontId, walker: &W) -> Reinstated<S>
    where
        W: FrameWalker<S> + ?Sized,
    {
        self.stats.reinstates_multi += 1;
        if self.konts.get(id.0).cur > self.cfg.copy_bound {
            id = self.split(id, walker);
        }
        let (src_seg, src_base, n, link) = {
            let k = self.konts.get(id.0);
            (k.seg, k.base, k.cur, k.link)
        };
        let ret = self.konts.get(id.0).ret.clone();

        // Make room at the base of the current record; if the record is too
        // short, move to a fresh (possibly oversized) segment. The source
        // segment is kept alive by the continuation's own reference.
        if self.cur_end - self.cur_base < n + self.reserve + 1 {
            let old = self.cur_seg;
            self.release_segment(old);
            let seg = self.obtain_segment(n + self.reserve + 1);
            self.install_record(seg, link);
        } else {
            self.cur_link = link;
        }

        // Copy the saved frames to the base of the current record.
        self.stats.slots_copied += n as u64;
        self.probe.reinstate(id, src_seg, false, n);
        self.copy_slots(src_seg, src_base, self.cur_seg, self.cur_base, n);
        // Patch the underflow marker into the copy: the bottom frame of the
        // record must return into the link. (For an unsplit continuation
        // the source base slot already holds the marker; for a split one it
        // holds a real return address owned by the bottom part.)
        let b = self.cur_base;
        let m = self.marker.clone();
        self.set(b, m);
        self.fp = self.cur_base + n;
        Reinstated { ret, one_shot: false }
    }

    /// Splits continuation `id` at a frame boundary so that its occupied
    /// portion does not exceed the copy bound, mutating it in place into
    /// the top part linked to a freshly created bottom part (§3.2). Returns
    /// `id` (now the top part). The split persists, so repeated invocations
    /// of the same large continuation split at most once per boundary.
    fn split<W>(&mut self, id: KontId, walker: &W) -> KontId
    where
        W: FrameWalker<S> + ?Sized,
    {
        let (seg, base, cur, ret) = {
            let k = self.konts.get(id.0);
            (k.seg, k.base, k.cur, k.ret.clone())
        };
        let top = base + cur;
        // Walk down from the top frame until the portion above the cursor
        // would exceed the bound; split off as much as possible (§3.2).
        let mut x = top;
        let mut r = ret;
        while let Some(d) = walker.frame_disp(&r) {
            if d == 0 || d > x - base {
                break;
            }
            let nx = x - d;
            if top - nx > self.cfg.copy_bound {
                break;
            }
            x = nx;
            if x == base {
                break;
            }
            r = self.segs.get(seg.0).slots[x].clone();
        }
        if x == top || x == base {
            // A single frame exceeds the bound (or nothing to split):
            // give up and copy whole. The paper notes splitting off a
            // single frame is always sufficient under its compiler's frame
            // size limits; we degrade gracefully instead.
            return id;
        }
        self.stats.splits += 1;
        let link = self.konts.get(id.0).link;
        let boundary_ret = self.segs.get(seg.0).slots[x].clone();
        let bottom = Kont {
            seg,
            base,
            size: x - base,
            cur: x - base,
            ret: boundary_ret,
            link,
            kind: KontKind::MultiShot,
            mark: false,
        };
        self.segs.get_mut(seg.0).rc += 1;
        let bottom_id = KontId(self.konts.insert(bottom));
        let k = self.konts.get_mut(id.0);
        k.base = x;
        k.size = top - x;
        k.cur = top - x;
        k.link = Some(bottom_id);
        self.probe.split(id, bottom_id, x - base);
        id
    }

    // ------------------------------------------------------------------
    // Underflow and overflow (§3.2)
    // ------------------------------------------------------------------

    /// Handles a return through the base of the current record (the slot
    /// holding the underflow marker): reinstates the link continuation
    /// implicitly, or reports that the continuation chain is exhausted.
    ///
    /// # Errors
    ///
    /// Propagates [`ControlError::AlreadyShot`] when the link is a one-shot
    /// continuation that has already been invoked through another path.
    pub fn underflow<W>(&mut self, walker: &W) -> Result<Underflow<S>, ControlError>
    where
        W: FrameWalker<S> + ?Sized,
    {
        debug_assert_eq!(self.fp, self.cur_base, "underflow away from record base");
        self.stats.underflows += 1;
        self.probe.underflow(self.cur_seg);
        match self.cur_link {
            None => Ok(Underflow::Exhausted),
            Some(link) => Ok(Underflow::Resumed(self.reinstate_inner(link, walker)?)),
        }
    }

    /// Ensures the active frame can grow to `need` slots above the frame
    /// pointer, handling stack overflow per the configured
    /// [`OverflowPolicy`] if not (§3.2). `live` is the number of slots at
    /// and above `fp` that are currently live (at least 1, for the return
    /// address at the frame base) and must be relocated with the frame.
    ///
    /// On overflow, the old segment is encapsulated in an implicit
    /// continuation and the top frames — bounded by the hysteresis
    /// setting — are copied into a fresh segment.
    ///
    /// When a segment ceiling is configured ([`Config::max_segments`]) or
    /// an injected segment fault fires ([`SegStack::arm_segment_fault`]),
    /// this can instead report [`Overflow::Ceiling`]: nothing is allocated
    /// and the embedder is expected to unwind (the ceiling is waived until
    /// occupancy drops back under it, so the unwinding itself can grow the
    /// stack).
    pub fn ensure<W>(&mut self, need: usize, live: usize, walker: &W) -> Overflow
    where
        W: FrameWalker<S> + ?Sized,
    {
        debug_assert!(live >= 1 && live <= need);
        if self.fault.is_armed() && !self.fault_deferred && self.fault.tick() && !self.grace {
            self.grace = true;
            return Overflow::Ceiling;
        }
        if self.fp + need <= self.cur_end {
            return Overflow::Fits;
        }
        if !self.grace
            && self.cfg.max_segments > 0
            && self.live_segment_count() >= self.cfg.max_segments
        {
            // The occupancy count may be pinned by dead segments awaiting a
            // sweep; the embedder decides whether to reclaim and retry or to
            // unwind (calling [`SegStack::enter_overflow_grace`] first so the
            // unwinding itself can grow the stack).
            return Overflow::Ceiling;
        }
        self.overflow(need, live, walker);
        Overflow::Handled
    }

    /// Begins the post-ceiling grace period: the segment ceiling is waived
    /// so that error-delivery machinery can push frames past it. The grace
    /// period ends when occupancy drops back under the ceiling, when a
    /// continuation is explicitly reinstated (control has escaped the
    /// overflowing extent), or when the stack is cleared.
    pub fn enter_overflow_grace(&mut self) {
        self.grace = true;
    }

    fn overflow<W>(&mut self, need: usize, live: usize, walker: &W)
    where
        W: FrameWalker<S> + ?Sized,
    {
        self.stats.overflows += 1;
        // Choose the relocation boundary: at least the active frame moves;
        // hysteresis moves up to `hysteresis_slots` more (§3.2).
        let mut x = self.fp;
        if self.cfg.hysteresis_slots > 0 {
            let mut r = self.get(self.fp).clone();
            while x > self.cur_base {
                let Some(d) = walker.frame_disp(&r) else { break };
                if d == 0 || d > x - self.cur_base {
                    break;
                }
                let nx = x - d;
                if self.fp + live - nx > self.cfg.hysteresis_slots {
                    break;
                }
                x = nx;
                if x == self.cur_base {
                    break;
                }
                r = self.get(x).clone();
            }
        }
        let relocated = self.fp + live - x;
        let old_seg = self.cur_seg;
        let occupied = x - self.cur_base;

        let created = if occupied == 0 {
            // The whole record relocates; no continuation is created (the
            // empty-capture rule) and the old segment loses the current
            // record's reference. (Defer the release until after the copy
            // below.)
            None
        } else {
            let ret = self.get(x).clone();
            let kind = match self.cfg.overflow_policy {
                OverflowPolicy::OneShot => KontKind::OneShot { promoted: self.inherit_flag() },
                OverflowPolicy::MultiShot => KontKind::MultiShot,
            };
            if matches!(self.cfg.overflow_policy, OverflowPolicy::MultiShot) {
                // An implicit call/cc must promote the chain below (§3.3).
                self.promote_chain();
            }
            let size = match kind {
                KontKind::MultiShot => occupied,
                _ => self.cur_end - self.cur_base,
            };
            let k = Kont {
                seg: self.cur_seg,
                base: self.cur_base,
                size,
                cur: occupied,
                ret,
                link: self.cur_link,
                kind,
                mark: false,
            };
            self.segs.get_mut(self.cur_seg.0).rc += 1;
            Some(KontId(self.konts.insert(k)))
        };
        let link = created.or(self.cur_link);

        let new_seg = self.obtain_segment(relocated + need - live + self.reserve);
        // Copy the relocated frames to the base of the new segment.
        self.stats.slots_copied += relocated as u64;
        self.probe.overflow(created, old_seg, new_seg, relocated);
        self.copy_slots(old_seg, x, new_seg, 0, relocated);
        let new_fp = self.fp - x;
        self.cur_seg = new_seg;
        self.cur_base = 0;
        self.cur_end = self.segs.get(new_seg.0).slots.len();
        self.cur_link = link;
        self.fp = new_fp;
        // The bottom relocated frame returns into the implicit continuation
        // (or straight into the old link when the record was empty, in
        // which case slot 0 already held the marker and this is a no-op).
        let m = self.marker.clone();
        self.set(0, m);
        // The current record's reference leaves the old segment. When a
        // continuation was created it holds its own reference, so the
        // segment survives; when the record was empty the segment may drop
        // to the cache here.
        self.release_segment(old_seg);
    }

    /// Abandons the current record and installs a fresh empty record with
    /// no link — the state in which returning from the bottom frame ends
    /// the program. Used by embedders to implement invocation of the empty
    /// ("halt") continuation. Captured continuations are unaffected.
    pub fn clear_to_empty(&mut self) {
        let old = self.cur_seg;
        self.release_segment(old);
        let seg = self.obtain_segment(self.cfg.segment_slots);
        self.install_record(seg, None);
        self.grace = false;
    }

    // ------------------------------------------------------------------
    // Segment management (§3.2's cache)
    // ------------------------------------------------------------------

    fn alloc_segment(&mut self, min_slots: usize) -> SegmentId
    where
        S: Clone,
    {
        let cap = min_slots.max(self.cfg.segment_slots);
        self.stats.segments_allocated += 1;
        self.stats.segment_slots_allocated += cap as u64;
        let slots = vec![self.marker.clone(); cap].into_boxed_slice();
        let default_size = cap == self.cfg.segment_slots;
        let id = SegmentId(self.segs.insert(Segment { slots, rc: 1, default_size }));
        self.resident_highwater = self.resident_highwater.max(self.resident_slots());
        self.probe.segment_alloc(id, cap);
        id
    }

    /// Obtains a segment with at least `min_slots` capacity: from the cache
    /// when possible (§3.2), else freshly allocated.
    fn obtain_segment(&mut self, min_slots: usize) -> SegmentId {
        if min_slots <= self.cfg.segment_slots {
            if let Some(seg) = self.cache.pop() {
                self.stats.cache_hits += 1;
                self.probe.cache_hit(seg);
                self.segs.get_mut(seg.0).rc = 1;
                return seg;
            }
        }
        self.alloc_segment(min_slots)
    }

    /// Drops one reference to `seg`; caches or frees it when unreferenced.
    fn release_segment(&mut self, seg: SegmentId) {
        let s = self.segs.get_mut(seg.0);
        debug_assert!(s.rc > 0);
        s.rc -= 1;
        if s.rc == 0 {
            if s.default_size && self.cache.len() < self.cfg.cache_limit {
                self.stats.cache_returns += 1;
                self.probe.cache_return(seg);
                self.cache.push(seg);
            } else {
                self.segs.remove(seg.0);
            }
        }
        // End the ceiling grace period once occupancy drops back under the
        // ceiling (injected faults fire once, so grace is done either way).
        if self.grace
            && (self.cfg.max_segments == 0 || self.live_segment_count() < self.cfg.max_segments)
        {
            self.grace = false;
        }
    }

    /// Installs a fresh record covering all of `seg`, linked to `link`.
    fn install_record(&mut self, seg: SegmentId, link: Option<KontId>) {
        self.cur_seg = seg;
        self.cur_base = 0;
        self.cur_end = self.segs.get(seg.0).slots.len();
        self.cur_link = link;
        self.fp = 0;
        let m = self.marker.clone();
        self.set(0, m);
    }

    /// Copies `n` slots between (possibly identical) segments.
    fn copy_slots(
        &mut self,
        src: SegmentId,
        src_at: usize,
        dst: SegmentId,
        dst_at: usize,
        n: usize,
    ) {
        if src == dst {
            let seg = self.segs.get_mut(src.0);
            debug_assert!(src_at + n <= dst_at || dst_at + n <= src_at);
            for i in 0..n {
                seg.slots[dst_at + i] = seg.slots[src_at + i].clone();
            }
        } else {
            // Split-borrow both segments and clone straight across — no
            // temporary buffer on the reinstate/overflow path.
            let (s, d) = self.segs.get2_mut(src.0, dst.0);
            d.slots[dst_at..dst_at + n].clone_from_slice(&s.slots[src_at..src_at + n]);
        }
    }

    // ------------------------------------------------------------------
    // Garbage collection interface
    // ------------------------------------------------------------------

    /// Begins a collection: clears all continuation marks. The embedder
    /// then marks roots with [`SegStack::mark_kont`] (tracing slot values
    /// itself via [`SegStack::kont_slice`]) and finishes with
    /// [`SegStack::sweep`].
    pub fn begin_gc(&mut self) {
        for id in self.konts.indices() {
            self.konts.get_mut(id).mark = false;
        }
    }

    /// Marks continuation `id`; returns `true` when newly marked (the
    /// embedder should then trace its slice and its link).
    pub fn mark_kont(&mut self, id: KontId) -> bool {
        let k = self.konts.get_mut(id.0);
        if k.mark {
            false
        } else {
            k.mark = true;
            true
        }
    }

    /// The link of continuation `id` (for embedder tracing).
    pub fn kont_link(&self, id: KontId) -> Option<KontId> {
        self.konts.get(id.0).link
    }

    /// Completes a collection: frees unmarked continuations and any
    /// segments that become unreferenced. The current link chain is always
    /// preserved regardless of marks. When `flush_cache` is set, cached
    /// segments are freed too (the paper notes the storage manager may
    /// discard them).
    pub fn sweep(&mut self, flush_cache: bool) {
        // The current chain is implicitly live.
        let mut cursor = self.cur_link;
        while let Some(id) = cursor {
            let k = self.konts.get_mut(id.0);
            if k.mark {
                break;
            }
            k.mark = true;
            cursor = k.link;
        }
        for id in self.konts.indices() {
            if !self.konts.get(id).mark {
                let k = self.konts.remove(id);
                if !matches!(k.kind, KontKind::Shot) {
                    self.release_segment(k.seg);
                }
            }
        }
        if flush_cache {
            while let Some(seg) = self.cache.pop() {
                self.segs.remove(seg.0);
            }
        }
    }
}

#[cfg(test)]
mod tests;
