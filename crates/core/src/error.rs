//! Error types for continuation operations.

use std::error::Error;
use std::fmt;

/// An invalid [`Config`](crate::Config).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: &'static str,
}

impl ConfigError {
    pub(crate) fn new(message: &'static str) -> Self {
        ConfigError { message }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid segmented stack configuration: {}", self.message)
    }
}

impl Error for ConfigError {}

/// A runtime control error.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ControlError {
    /// A one-shot continuation was invoked a second time. The paper marks a
    /// shot continuation by setting both of its size fields to -1; we carry
    /// the shot state explicitly and report the error to the embedder.
    AlreadyShot,
    /// A continuation identifier did not refer to a live continuation
    /// (e.g. it was collected by a GC sweep the embedder requested).
    DeadContinuation,
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlError::AlreadyShot => {
                write!(f, "attempt to invoke shot one-shot continuation")
            }
            ControlError::DeadContinuation => {
                write!(f, "attempt to use a collected continuation")
            }
        }
    }
}

impl Error for ControlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_without_period() {
        let s = ControlError::AlreadyShot.to_string();
        assert!(s.starts_with("attempt"));
        assert!(!s.ends_with('.'));
        let c = ConfigError::new("x").to_string();
        assert!(c.contains("x"));
    }
}
