//! Control-event probes: fine-grained observability for the segmented stack.
//!
//! Every interesting transition of a [`SegStack`](crate::SegStack) — capture,
//! reinstatement, overflow, underflow, promotion, splitting, sealing, and
//! segment-cache traffic — is reported to a [`ControlProbe`] chosen by the
//! embedder at construction time ([`SegStack::with_probe`]
//! (crate::SegStack::with_probe)). The probe is a *type parameter* of the
//! stack, so the default [`NoopProbe`] monomorphizes to empty inlined calls
//! and costs nothing on the hot paths.
//!
//! Three probes ship with the crate:
//!
//! * [`NoopProbe`] — the default; statically inlined away.
//! * [`CountingProbe`] — aggregates events into a [`Stats`] value that
//!   exactly reproduces [`SegStack::stats`](crate::SegStack::stats), field
//!   for field. Useful for attributing counters to a *region* of a workload
//!   by swapping totals in and out.
//! * [`RingTraceProbe`] — records the last *N* events, with segment ids and
//!   slot counts, for post-mortem debugging of control-heavy code.
//!
//! # Event ↔ counter correspondence
//!
//! | Callback | `Stats` fields |
//! |---|---|
//! | [`capture_multi`](ControlProbe::capture_multi) | `captures_multi` |
//! | [`capture_one`](ControlProbe::capture_one) | `captures_one` |
//! | [`capture_empty`](ControlProbe::capture_empty) | `captures_empty` |
//! | [`reinstate`](ControlProbe::reinstate) | `reinstates_one`/`reinstates_multi`, `shots`, `slots_copied` |
//! | [`overflow`](ControlProbe::overflow) | `overflows`, `slots_copied` |
//! | [`underflow`](ControlProbe::underflow) | `underflows` |
//! | [`promotion`](ControlProbe::promotion) | `promotions`, `promotion_steps` |
//! | [`split`](ControlProbe::split) | `splits` |
//! | [`seal`](ControlProbe::seal) | — (`SealWithPad` detail) |
//! | [`cache_hit`](ControlProbe::cache_hit)/[`cache_return`](ControlProbe::cache_return) | `cache_hits`, `cache_returns` |
//! | [`segment_alloc`](ControlProbe::segment_alloc) | `segments_allocated`, `segment_slots_allocated` |
//!
//! # Ordering guarantees
//!
//! A continuation id appears in a [`reinstate`](ControlProbe::reinstate)
//! event only after it was *introduced* by an earlier `capture_one`,
//! `capture_multi`, `overflow` (implicit capture, `kont: Some(..)`), or
//! `split` (the freshly created bottom part) event. `capture_empty` returns
//! an already-introduced continuation (the tail rule) and introduces
//! nothing. The property test in `tests/probe.rs` checks this invariant
//! against randomized workloads.

use std::collections::VecDeque;
use std::fmt;

use crate::kont::KontId;
use crate::stack::SegmentId;
use crate::stats::Stats;

/// Receiver for fine-grained control events from a
/// [`SegStack`](crate::SegStack).
///
/// All methods default to no-ops, so a probe implements only what it needs.
/// Methods take `&mut self`: the probe is owned by the stack and mutated in
/// place (retrieve it with [`SegStack::probe`](crate::SegStack::probe) /
/// [`probe_mut`](crate::SegStack::probe_mut)).
pub trait ControlProbe {
    /// A multi-shot capture (`call/cc`) sealed `slots` occupied slots of
    /// `seg` into continuation `kont`.
    #[inline]
    fn capture_multi(&mut self, kont: KontId, seg: SegmentId, slots: usize) {
        let _ = (kont, seg, slots);
    }

    /// A one-shot capture (`call/1cc`) encapsulated `slots` occupied slots
    /// of `seg` into continuation `kont`.
    #[inline]
    fn capture_one(&mut self, kont: KontId, seg: SegmentId, slots: usize) {
        let _ = (kont, seg, slots);
    }

    /// A capture found the record empty and returned the existing link
    /// continuation (the proper-tail-recursion rule); nothing was created.
    #[inline]
    fn capture_empty(&mut self) {}

    /// A `SealWithPad` one-shot capture sealed continuation `kont` in place,
    /// leaving `pad` spare slots above the occupied portion; the remainder
    /// of `seg` stays current (no segment switch).
    #[inline]
    fn seal(&mut self, kont: KontId, seg: SegmentId, pad: usize) {
        let _ = (kont, seg, pad);
    }

    /// Continuation `kont` (saved in `seg`) was reinstated. `one_shot` is
    /// true for the O(1) segment-swap path (`slots_copied == 0`); otherwise
    /// `slots_copied` slots were copied back onto the stack.
    #[inline]
    fn reinstate(&mut self, kont: KontId, seg: SegmentId, one_shot: bool, slots_copied: usize) {
        let _ = (kont, seg, one_shot, slots_copied);
    }

    /// The stack overflowed: `slots_moved` live slots relocated from `from`
    /// to `to`, and the remainder of `from` was encapsulated in the implicit
    /// continuation `kont` (`None` when the record was empty and no
    /// continuation was needed).
    #[inline]
    fn overflow(
        &mut self,
        kont: Option<KontId>,
        from: SegmentId,
        to: SegmentId,
        slots_moved: usize,
    ) {
        let _ = (kont, from, to, slots_moved);
    }

    /// A return ran off the base of the current record in `seg`; the link
    /// continuation is being reinstated (a matching [`reinstate`]
    /// (ControlProbe::reinstate) event follows), or the program is complete.
    #[inline]
    fn underflow(&mut self, seg: SegmentId) {
        let _ = seg;
    }

    /// One-shot continuation `kont` was promoted to multi-shot status.
    /// `walked` is true under `EagerWalk` (the object was rewritten in a
    /// chain walk — one step per event) and false under `SharedFlag` (one
    /// flag flip promoted the whole chain).
    #[inline]
    fn promotion(&mut self, kont: KontId, walked: bool) {
        let _ = (kont, walked);
    }

    /// Continuation `kont` exceeded the copy bound and was split at a frame
    /// boundary: `bottom` is the freshly created bottom part holding
    /// `slots` slots.
    #[inline]
    fn split(&mut self, kont: KontId, bottom: KontId, slots: usize) {
        let _ = (kont, bottom, slots);
    }

    /// Segment `seg` was taken from the segment cache.
    #[inline]
    fn cache_hit(&mut self, seg: SegmentId) {
        let _ = seg;
    }

    /// Segment `seg` became unreferenced and was returned to the cache.
    #[inline]
    fn cache_return(&mut self, seg: SegmentId) {
        let _ = seg;
    }

    /// A fresh segment `seg` with `slots` capacity was allocated.
    #[inline]
    fn segment_alloc(&mut self, seg: SegmentId, slots: usize) {
        let _ = (seg, slots);
    }
}

/// The default probe: every callback is an empty inlined default, so probed
/// call sites compile to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopProbe;

impl ControlProbe for NoopProbe {}

/// A probe that aggregates events into a [`Stats`] value.
///
/// The totals exactly reproduce [`SegStack::stats`](crate::SegStack::stats):
/// after any operation sequence, `stack.probe().stats() == *stack.stats()`.
/// Unlike the built-in counters the probe can be swapped or reset mid-run,
/// which is how the bench harness attributes events to workload phases.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingProbe {
    stats: Stats,
}

impl CountingProbe {
    /// A probe with zeroed totals.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated totals.
    pub fn stats(&self) -> Stats {
        self.stats
    }

    /// Resets all totals to zero.
    pub fn reset(&mut self) {
        self.stats = Stats::default();
    }
}

impl ControlProbe for CountingProbe {
    fn capture_multi(&mut self, _kont: KontId, _seg: SegmentId, _slots: usize) {
        self.stats.captures_multi += 1;
    }
    fn capture_one(&mut self, _kont: KontId, _seg: SegmentId, _slots: usize) {
        self.stats.captures_one += 1;
    }
    fn capture_empty(&mut self) {
        self.stats.captures_empty += 1;
    }
    fn reinstate(&mut self, _kont: KontId, _seg: SegmentId, one_shot: bool, slots_copied: usize) {
        if one_shot {
            self.stats.reinstates_one += 1;
            self.stats.shots += 1;
        } else {
            self.stats.reinstates_multi += 1;
            self.stats.slots_copied += slots_copied as u64;
        }
    }
    fn overflow(
        &mut self,
        _kont: Option<KontId>,
        _from: SegmentId,
        _to: SegmentId,
        slots_moved: usize,
    ) {
        self.stats.overflows += 1;
        self.stats.slots_copied += slots_moved as u64;
    }
    fn underflow(&mut self, _seg: SegmentId) {
        self.stats.underflows += 1;
    }
    fn promotion(&mut self, _kont: KontId, walked: bool) {
        self.stats.promotions += 1;
        self.stats.promotion_steps += u64::from(walked);
    }
    fn split(&mut self, _kont: KontId, _bottom: KontId, _slots: usize) {
        self.stats.splits += 1;
    }
    fn cache_hit(&mut self, _seg: SegmentId) {
        self.stats.cache_hits += 1;
    }
    fn cache_return(&mut self, _seg: SegmentId) {
        self.stats.cache_returns += 1;
    }
    fn segment_alloc(&mut self, _seg: SegmentId, slots: usize) {
        self.stats.segments_allocated += 1;
        self.stats.segment_slots_allocated += slots as u64;
    }
}

/// One recorded control event (see [`RingTraceProbe`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProbeEvent {
    /// See [`ControlProbe::capture_multi`].
    CaptureMulti {
        /// The created continuation.
        kont: KontId,
        /// The segment whose occupied portion was sealed.
        seg: SegmentId,
        /// Occupied slots sealed.
        slots: usize,
    },
    /// See [`ControlProbe::capture_one`].
    CaptureOne {
        /// The created continuation.
        kont: KontId,
        /// The encapsulated segment.
        seg: SegmentId,
        /// Occupied slots encapsulated.
        slots: usize,
    },
    /// See [`ControlProbe::capture_empty`].
    CaptureEmpty,
    /// See [`ControlProbe::seal`].
    Seal {
        /// The sealed continuation.
        kont: KontId,
        /// The segment sealed in place.
        seg: SegmentId,
        /// Spare slots left above the occupied portion.
        pad: usize,
    },
    /// See [`ControlProbe::reinstate`].
    Reinstate {
        /// The reinstated continuation.
        kont: KontId,
        /// The segment holding its saved frames.
        seg: SegmentId,
        /// Whether the O(1) one-shot path was taken.
        one_shot: bool,
        /// Slots copied (zero on the one-shot path).
        slots_copied: usize,
    },
    /// See [`ControlProbe::overflow`].
    Overflow {
        /// The implicit continuation, if one was created.
        kont: Option<KontId>,
        /// The overflowed segment.
        from: SegmentId,
        /// The fresh segment.
        to: SegmentId,
        /// Live slots relocated.
        slots_moved: usize,
    },
    /// See [`ControlProbe::underflow`].
    Underflow {
        /// The segment whose record base was crossed.
        seg: SegmentId,
    },
    /// See [`ControlProbe::promotion`].
    Promotion {
        /// The promoted continuation.
        kont: KontId,
        /// True under `EagerWalk`, false under `SharedFlag`.
        walked: bool,
    },
    /// See [`ControlProbe::split`].
    Split {
        /// The split continuation (now the top part).
        kont: KontId,
        /// The freshly created bottom part.
        bottom: KontId,
        /// Slots held by the bottom part.
        slots: usize,
    },
    /// See [`ControlProbe::cache_hit`].
    CacheHit {
        /// The reused segment.
        seg: SegmentId,
    },
    /// See [`ControlProbe::cache_return`].
    CacheReturn {
        /// The cached segment.
        seg: SegmentId,
    },
    /// See [`ControlProbe::segment_alloc`].
    SegmentAlloc {
        /// The new segment.
        seg: SegmentId,
        /// Its slot capacity.
        slots: usize,
    },
}

impl fmt::Display for ProbeEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ProbeEvent::CaptureMulti { kont, seg, slots } => {
                write!(f, "capture/cc   k{} seg{} ({slots} slots)", kont.index(), seg.index())
            }
            ProbeEvent::CaptureOne { kont, seg, slots } => {
                write!(f, "capture/1cc  k{} seg{} ({slots} slots)", kont.index(), seg.index())
            }
            ProbeEvent::CaptureEmpty => write!(f, "capture      (empty record, link reused)"),
            ProbeEvent::Seal { kont, seg, pad } => {
                write!(f, "seal         k{} seg{} (pad {pad})", kont.index(), seg.index())
            }
            ProbeEvent::Reinstate { kont, seg, one_shot, slots_copied } => {
                if one_shot {
                    write!(f, "reinstate    k{} seg{} (one-shot, O(1))", kont.index(), seg.index())
                } else {
                    write!(
                        f,
                        "reinstate    k{} seg{} (copied {slots_copied} slots)",
                        kont.index(),
                        seg.index()
                    )
                }
            }
            ProbeEvent::Overflow { kont, from, to, slots_moved } => match kont {
                Some(k) => write!(
                    f,
                    "overflow     seg{} -> seg{} (moved {slots_moved} slots, implicit k{})",
                    from.index(),
                    to.index(),
                    k.index()
                ),
                None => write!(
                    f,
                    "overflow     seg{} -> seg{} (moved {slots_moved} slots)",
                    from.index(),
                    to.index()
                ),
            },
            ProbeEvent::Underflow { seg } => write!(f, "underflow    seg{}", seg.index()),
            ProbeEvent::Promotion { kont, walked } => {
                let how = if walked { "eager walk" } else { "shared flag" };
                write!(f, "promote      k{} ({how})", kont.index())
            }
            ProbeEvent::Split { kont, bottom, slots } => {
                write!(
                    f,
                    "split        k{} -> bottom k{} ({slots} slots)",
                    kont.index(),
                    bottom.index()
                )
            }
            ProbeEvent::CacheHit { seg } => write!(f, "cache hit    seg{}", seg.index()),
            ProbeEvent::CacheReturn { seg } => write!(f, "cache return seg{}", seg.index()),
            ProbeEvent::SegmentAlloc { seg, slots } => {
                write!(f, "seg alloc    seg{} ({slots} slots)", seg.index())
            }
        }
    }
}

/// A probe recording the last *N* events in a ring buffer, for post-mortem
/// debugging: when control-heavy code misbehaves, the trace shows the exact
/// capture/reinstate/overflow sequence that led there, with segment ids and
/// slot counts.
#[derive(Debug, Clone, Default)]
pub struct RingTraceProbe {
    buf: VecDeque<ProbeEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingTraceProbe {
    /// A probe keeping the most recent `capacity` events (0 keeps nothing).
    pub fn new(capacity: usize) -> Self {
        RingTraceProbe { buf: VecDeque::with_capacity(capacity), capacity, dropped: 0 }
    }

    fn push(&mut self, ev: ProbeEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &ProbeEvent> {
        self.buf.iter()
    }

    /// Number of retained events (at most the capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of events that fell off the front of the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clears the buffer (the dropped count resets too).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.dropped = 0;
    }
}

impl ControlProbe for RingTraceProbe {
    fn capture_multi(&mut self, kont: KontId, seg: SegmentId, slots: usize) {
        self.push(ProbeEvent::CaptureMulti { kont, seg, slots });
    }
    fn capture_one(&mut self, kont: KontId, seg: SegmentId, slots: usize) {
        self.push(ProbeEvent::CaptureOne { kont, seg, slots });
    }
    fn capture_empty(&mut self) {
        self.push(ProbeEvent::CaptureEmpty);
    }
    fn seal(&mut self, kont: KontId, seg: SegmentId, pad: usize) {
        self.push(ProbeEvent::Seal { kont, seg, pad });
    }
    fn reinstate(&mut self, kont: KontId, seg: SegmentId, one_shot: bool, slots_copied: usize) {
        self.push(ProbeEvent::Reinstate { kont, seg, one_shot, slots_copied });
    }
    fn overflow(
        &mut self,
        kont: Option<KontId>,
        from: SegmentId,
        to: SegmentId,
        slots_moved: usize,
    ) {
        self.push(ProbeEvent::Overflow { kont, from, to, slots_moved });
    }
    fn underflow(&mut self, seg: SegmentId) {
        self.push(ProbeEvent::Underflow { seg });
    }
    fn promotion(&mut self, kont: KontId, walked: bool) {
        self.push(ProbeEvent::Promotion { kont, walked });
    }
    fn split(&mut self, kont: KontId, bottom: KontId, slots: usize) {
        self.push(ProbeEvent::Split { kont, bottom, slots });
    }
    fn cache_hit(&mut self, seg: SegmentId) {
        self.push(ProbeEvent::CacheHit { seg });
    }
    fn cache_return(&mut self, seg: SegmentId) {
        self.push(ProbeEvent::CacheReturn { seg });
    }
    fn segment_alloc(&mut self, seg: SegmentId, slots: usize) {
        self.push(ProbeEvent::SegmentAlloc { seg, slots });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_only_the_tail() {
        let mut p = RingTraceProbe::new(3);
        for i in 0..5 {
            p.cache_hit(SegmentId(i));
        }
        assert_eq!(p.len(), 3);
        assert_eq!(p.dropped(), 2);
        let segs: Vec<u32> = p
            .events()
            .map(|e| match e {
                ProbeEvent::CacheHit { seg } => seg.index(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(segs, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_ring_retains_nothing() {
        let mut p = RingTraceProbe::new(0);
        p.capture_empty();
        assert!(p.is_empty());
        assert_eq!(p.dropped(), 1);
    }

    #[test]
    fn counting_probe_mirrors_event_semantics() {
        let mut p = CountingProbe::new();
        p.capture_multi(KontId(0), SegmentId(0), 8);
        p.capture_one(KontId(1), SegmentId(0), 4);
        p.capture_empty();
        p.reinstate(KontId(1), SegmentId(0), true, 0);
        p.reinstate(KontId(0), SegmentId(0), false, 8);
        p.overflow(None, SegmentId(0), SegmentId(1), 5);
        p.promotion(KontId(2), true);
        p.promotion(KontId(3), false);
        let s = p.stats();
        assert_eq!(s.captures_multi, 1);
        assert_eq!(s.captures_one, 1);
        assert_eq!(s.captures_empty, 1);
        assert_eq!(s.reinstates_one, 1);
        assert_eq!(s.shots, 1);
        assert_eq!(s.reinstates_multi, 1);
        assert_eq!(s.slots_copied, 13); // 8 reinstated + 5 relocated
        assert_eq!(s.overflows, 1);
        assert_eq!(s.promotions, 2);
        assert_eq!(s.promotion_steps, 1);
        p.reset();
        assert_eq!(p.stats(), Stats::default());
    }

    #[test]
    fn events_render_symbolically() {
        let ev = ProbeEvent::Reinstate {
            kont: KontId(3),
            seg: SegmentId(1),
            one_shot: true,
            slots_copied: 0,
        };
        assert_eq!(ev.to_string(), "reinstate    k3 seg1 (one-shot, O(1))");
        let ov = ProbeEvent::Overflow {
            kont: None,
            from: SegmentId(0),
            to: SegmentId(2),
            slots_moved: 7,
        };
        assert_eq!(ov.to_string(), "overflow     seg0 -> seg2 (moved 7 slots)");
    }
}
