//! Tuning knobs for the segmented stack.

use crate::error::ConfigError;

/// How one-shot capture obtains the new current segment (§3.2 / §3.4 of the
/// paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OneShotPolicy {
    /// Encapsulate the entire current segment in the continuation and take a
    /// fresh segment (from the segment cache when possible). This is the
    /// basic scheme of §3.2; it is fastest but can fragment memory when many
    /// shallow one-shot continuations (e.g. threads) are live at once.
    FreshSegment,
    /// Seal the segment at the given displacement (in slots) above the
    /// occupied portion and keep the remainder as the current segment
    /// (§3.4). This bounds the unoccupied memory encapsulated per
    /// continuation at the cost of more frequent overflows. Falls back to a
    /// fresh segment when the remainder would be too small to be useful.
    SealWithPad(usize),
}

/// How stack overflow is handled (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OverflowPolicy {
    /// Overflow is an implicit `call/1cc`: the old segment is encapsulated
    /// in a one-shot continuation and returning into it is O(1). Hysteresis
    /// (see [`Config::hysteresis_slots`]) copies the top few frames up to
    /// avoid bouncing. This is the paper's recommendation — deeply recursive
    /// programs incur no copying on stack underflow.
    OneShot,
    /// Overflow is an implicit `call/cc`: the occupied portion is sealed
    /// into a multi-shot continuation. Returning into it copies frames back
    /// (subject to the copy bound). Used as the baseline in experiment E3.
    MultiShot,
}

/// How one-shot continuations are promoted to multi-shot status when they
/// are captured as part of a multi-shot continuation (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PromotionStrategy {
    /// Walk the continuation chain, converting each one-shot continuation
    /// until a multi-shot continuation is found. Linear per capture, but a
    /// one-shot continuation can be promoted only once, so there is no
    /// quadratic behaviour. This is what the paper implements.
    EagerWalk,
    /// Share a boxed flag among all one-shot continuations in a chain and
    /// promote them all simultaneously by setting the flag — the paper's
    /// proposed (but unimplemented) bounded-time `call/cc`. We implement it
    /// and compare both in experiment E8.
    SharedFlag,
}

/// Configuration for a [`SegStack`](crate::SegStack).
///
/// The defaults mirror the paper: 16 KB segments (here expressed as 4096
/// slots — slots play the role of machine words), a copy bound well below
/// the segment size, and a little hysteresis on overflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Capacity, in slots, of a freshly allocated segment. The paper's
    /// default stack size is 16 KB, i.e. 4096 32-bit words.
    pub segment_slots: usize,
    /// Maximum number of slots copied by a single multi-shot reinstatement;
    /// larger continuations are split lazily at frame boundaries (§3.2).
    pub copy_bound: usize,
    /// On overflow, up to this many slots worth of topmost frames are copied
    /// into the fresh segment so that an immediate return does not bounce
    /// straight back into a full segment (§3.2). Zero disables hysteresis.
    pub hysteresis_slots: usize,
    /// Policy for obtaining the new segment on one-shot capture.
    pub oneshot_policy: OneShotPolicy,
    /// Policy for stack overflow.
    pub overflow_policy: OverflowPolicy,
    /// Promotion strategy for one-shot continuations captured by `call/cc`.
    pub promotion: PromotionStrategy,
    /// Maximum number of default-size segments kept in the segment cache.
    /// Zero disables the cache entirely (the ablation of experiment E5; the
    /// paper found call/1cc-intensive programs "unacceptably slow" without
    /// it).
    pub cache_limit: usize,
    /// Minimum headroom, in slots, required above the occupied portion when
    /// `SealWithPad` keeps the remainder of a segment as the current
    /// segment; below this the policy falls back to a fresh segment.
    pub min_headroom: usize,
    /// Ceiling on the number of *live* (non-cached) segments the stack may
    /// hold. When growing past the ceiling, [`SegStack::ensure`]
    /// (crate::SegStack::ensure) reports [`Overflow::Ceiling`]
    /// (crate::Overflow::Ceiling) instead of allocating, letting the
    /// embedder unwind (e.g. raise a catchable `stack-overflow`
    /// condition). Zero — the default — disables the ceiling.
    pub max_segments: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            segment_slots: 4096,
            copy_bound: 1024,
            hysteresis_slots: 128,
            oneshot_policy: OneShotPolicy::FreshSegment,
            overflow_policy: OverflowPolicy::OneShot,
            promotion: PromotionStrategy::EagerWalk,
            cache_limit: 64,
            min_headroom: 64,
            max_segments: 0,
        }
    }
}

impl Config {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns an error when the segment size is too small to host the copy
    /// bound plus headroom (a reinstated multi-shot portion must always fit
    /// in a default-size segment), or when any size is zero where a positive
    /// value is required.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.segment_slots < 16 {
            return Err(ConfigError::new("segment_slots must be at least 16"));
        }
        if self.copy_bound == 0 {
            return Err(ConfigError::new("copy_bound must be positive"));
        }
        if self.copy_bound + self.min_headroom > self.segment_slots {
            return Err(ConfigError::new(
                "copy_bound plus min_headroom must not exceed segment_slots",
            ));
        }
        if let OneShotPolicy::SealWithPad(pad) = self.oneshot_policy {
            if pad == 0 {
                return Err(ConfigError::new("SealWithPad displacement must be positive"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        Config::default().validate().unwrap();
    }

    #[test]
    fn rejects_tiny_segments() {
        let cfg = Config { segment_slots: 4, ..Config::default() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_copy_bound_exceeding_segment() {
        let cfg =
            Config { segment_slots: 64, copy_bound: 64, min_headroom: 16, ..Config::default() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_zero_pad() {
        let cfg = Config { oneshot_policy: OneShotPolicy::SealWithPad(0), ..Config::default() };
        assert!(cfg.validate().is_err());
    }
}
