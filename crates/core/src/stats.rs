//! Operation counters.
//!
//! The paper's evaluation reports allocation volumes and copying costs; the
//! VM layer adds instruction counts on top. All counters here are
//! monotonically increasing and hardware-independent, so the experiment
//! harness can report deterministic numbers alongside wall-clock times.

/// Counters maintained by a [`SegStack`](crate::SegStack).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct Stats {
    /// Segments allocated from the system (cache misses included the first
    /// time a segment is created).
    pub segments_allocated: u64,
    /// Slot capacity of all segments ever allocated — the paper's
    /// "allocates less memory" measurements for stacks.
    pub segment_slots_allocated: u64,
    /// Fresh-segment requests satisfied by the segment cache (§3.2).
    pub cache_hits: u64,
    /// Segments returned to the cache.
    pub cache_returns: u64,
    /// Multi-shot captures performed (`call/cc`).
    pub captures_multi: u64,
    /// One-shot captures performed (`call/1cc`).
    pub captures_one: u64,
    /// Empty-stack captures that reused the link instead of allocating a
    /// continuation (the proper-tail-recursion rule of §3.2).
    pub captures_empty: u64,
    /// Multi-shot reinstatements (copying).
    pub reinstates_multi: u64,
    /// One-shot reinstatements (O(1) segment swap).
    pub reinstates_one: u64,
    /// Slots copied by multi-shot reinstatement, overflow hysteresis, and
    /// splitting combined — the copying overhead the one-shot mechanism
    /// eliminates.
    pub slots_copied: u64,
    /// Continuation splits performed to honour the copy bound.
    pub splits: u64,
    /// One-shot continuations promoted to multi-shot status (§3.3).
    pub promotions: u64,
    /// Continuation-chain links walked during promotion (measures the
    /// eager-walk cost; stays 0 under `SharedFlag`).
    pub promotion_steps: u64,
    /// Stack overflows handled.
    pub overflows: u64,
    /// Stack underflows handled (returns through a segment base).
    pub underflows: u64,
    /// One-shot continuations marked shot.
    pub shots: u64,
}

impl Stats {
    /// Difference `self - earlier`, counter by counter.
    ///
    /// Useful for measuring a single benchmark region:
    /// take a snapshot before, subtract after.
    #[must_use]
    pub fn delta_since(&self, earlier: &Stats) -> Stats {
        Stats {
            segments_allocated: self.segments_allocated - earlier.segments_allocated,
            segment_slots_allocated: self.segment_slots_allocated - earlier.segment_slots_allocated,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_returns: self.cache_returns - earlier.cache_returns,
            captures_multi: self.captures_multi - earlier.captures_multi,
            captures_one: self.captures_one - earlier.captures_one,
            captures_empty: self.captures_empty - earlier.captures_empty,
            reinstates_multi: self.reinstates_multi - earlier.reinstates_multi,
            reinstates_one: self.reinstates_one - earlier.reinstates_one,
            slots_copied: self.slots_copied - earlier.slots_copied,
            splits: self.splits - earlier.splits,
            promotions: self.promotions - earlier.promotions,
            promotion_steps: self.promotion_steps - earlier.promotion_steps,
            overflows: self.overflows - earlier.overflows,
            underflows: self.underflows - earlier.underflows,
            shots: self.shots - earlier.shots,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_counter_wise() {
        let a = Stats { segments_allocated: 3, slots_copied: 100, ..Stats::default() };
        let b = Stats { segments_allocated: 5, slots_copied: 150, ..Stats::default() };
        let d = b.delta_since(&a);
        assert_eq!(d.segments_allocated, 2);
        assert_eq!(d.slots_copied, 50);
        assert_eq!(d.overflows, 0);
    }
}
