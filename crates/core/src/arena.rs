//! A minimal slotted arena with index reuse.
//!
//! Both stack segments and continuation objects live in arenas owned by the
//! [`SegStack`](crate::SegStack); identifiers are plain indices. Freed slots
//! are kept on a free list and reused, which keeps identifiers small and
//! allocation cheap — the same role the heap allocator plays for stack
//! records in the paper's Chez Scheme implementation.

/// A slotted arena mapping `u32` indices to values of type `T`.
#[derive(Debug, Clone)]
pub(crate) struct Arena<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
    live: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Arena { slots: Vec::new(), free: Vec::new(), live: 0 }
    }
}

impl<T> Arena<T> {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Inserts a value, returning its index.
    pub(crate) fn insert(&mut self, value: T) -> u32 {
        self.live += 1;
        match self.free.pop() {
            Some(idx) => {
                debug_assert!(self.slots[idx as usize].is_none());
                self.slots[idx as usize] = Some(value);
                idx
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("arena index overflow");
                self.slots.push(Some(value));
                idx
            }
        }
    }

    /// Removes and returns the value at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not occupied.
    pub(crate) fn remove(&mut self, idx: u32) -> T {
        let v = self.slots[idx as usize].take().expect("arena slot already free");
        self.free.push(idx);
        self.live -= 1;
        v
    }

    pub(crate) fn get(&self, idx: u32) -> &T {
        self.slots[idx as usize].as_ref().expect("arena slot is free")
    }

    pub(crate) fn get_mut(&mut self, idx: u32) -> &mut T {
        self.slots[idx as usize].as_mut().expect("arena slot is free")
    }

    /// Like [`Arena::get`] without the bounds/occupancy checks (they become
    /// `debug_assert`s).
    ///
    /// # Safety
    ///
    /// `idx` must refer to a live (inserted, not removed) entry.
    #[allow(unsafe_code)]
    #[inline]
    pub(crate) unsafe fn get_unchecked(&self, idx: u32) -> &T {
        debug_assert!(self.contains(idx), "arena index {idx} is not live");
        // SAFETY: the caller guarantees `idx` is live, so the slot exists
        // and holds `Some`.
        unsafe { self.slots.get_unchecked(idx as usize).as_ref().unwrap_unchecked() }
    }

    /// Like [`Arena::get_mut`] without the bounds/occupancy checks.
    ///
    /// # Safety
    ///
    /// `idx` must refer to a live (inserted, not removed) entry.
    #[allow(unsafe_code)]
    #[inline]
    pub(crate) unsafe fn get_unchecked_mut(&mut self, idx: u32) -> &mut T {
        debug_assert!(self.contains(idx), "arena index {idx} is not live");
        // SAFETY: as for `get_unchecked`.
        unsafe { self.slots.get_unchecked_mut(idx as usize).as_mut().unwrap_unchecked() }
    }

    /// Two distinct live entries, mutably — the split borrow behind
    /// cross-segment slot copies.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either entry is free.
    pub(crate) fn get2_mut(&mut self, a: u32, b: u32) -> (&mut T, &mut T) {
        assert_ne!(a, b, "get2_mut needs distinct indices");
        let (lo, hi, swap) = if a < b { (a, b, false) } else { (b, a, true) };
        let (left, right) = self.slots.split_at_mut(hi as usize);
        let x = left[lo as usize].as_mut().expect("arena slot is free");
        let y = right[0].as_mut().expect("arena slot is free");
        if swap {
            (y, x)
        } else {
            (x, y)
        }
    }

    pub(crate) fn contains(&self, idx: u32) -> bool {
        (idx as usize) < self.slots.len() && self.slots[idx as usize].is_some()
    }

    /// Number of live entries.
    pub(crate) fn len(&self) -> usize {
        self.live
    }

    /// Iterates over `(index, value)` pairs of live entries.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| s.as_ref().map(|v| (i as u32, v)))
    }

    /// Indices of all live entries (snapshot).
    pub(crate) fn indices(&self) -> Vec<u32> {
        self.slots.iter().enumerate().filter_map(|(i, s)| s.as_ref().map(|_| i as u32)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_reuses_indices() {
        let mut a = Arena::new();
        let i = a.insert("a");
        let j = a.insert("b");
        assert_eq!(*a.get(i), "a");
        assert_eq!(*a.get(j), "b");
        assert_eq!(a.len(), 2);
        assert_eq!(a.remove(i), "a");
        assert_eq!(a.len(), 1);
        assert!(!a.contains(i));
        let k = a.insert("c");
        assert_eq!(k, i, "freed index is reused");
        assert_eq!(*a.get(k), "c");
    }

    #[test]
    fn iter_visits_only_live() {
        let mut a = Arena::new();
        let i = a.insert(1);
        let _j = a.insert(2);
        a.remove(i);
        let seen: Vec<i32> = a.iter().map(|(_, v)| *v).collect();
        assert_eq!(seen, vec![2]);
    }

    #[test]
    #[should_panic(expected = "already free")]
    fn double_remove_panics() {
        let mut a = Arena::new();
        let i = a.insert(0u8);
        a.remove(i);
        a.remove(i);
    }
}
