//! Continuation objects.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::stack::SegmentId;

/// Identifies a continuation object owned by a [`SegStack`](crate::SegStack).
///
/// Identifiers are stable until the continuation is collected by
/// [`SegStack::sweep`](crate::SegStack::sweep).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KontId(pub(crate) u32);

impl KontId {
    /// The raw index, useful for embedding into tagged value representations.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Reconstructs an identifier from [`KontId::index`].
    pub fn from_index(index: u32) -> Self {
        KontId(index)
    }
}

/// The flavour and state of a continuation.
///
/// The shared promotion flag is an `Arc<AtomicBool>` rather than an
/// `Rc<Cell<bool>>` solely so a whole `SegStack` (and the VM embedding it)
/// is `Send` and can migrate between executor worker threads; a stack is
/// only ever *used* by one thread at a time, so all accesses are relaxed.
#[derive(Debug, Clone)]
pub enum KontKind {
    /// A traditional multi-shot continuation: may be invoked any number of
    /// times; reinstatement copies the saved frames.
    MultiShot,
    /// A one-shot continuation that has not yet been invoked. Carries the
    /// shared promotion flag used by
    /// [`PromotionStrategy::SharedFlag`](crate::PromotionStrategy::SharedFlag);
    /// under `EagerWalk` promotion rewrites the kind to `MultiShot` instead.
    OneShot {
        /// Set when every one-shot continuation in this chain has been
        /// promoted to multi-shot status by a `call/cc` capture.
        promoted: Arc<AtomicBool>,
    },
    /// A one-shot continuation that has been invoked; invoking it again is
    /// an error. (The paper represents this state by setting both size
    /// fields to -1.)
    Shot,
}

impl PartialEq for KontKind {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (KontKind::MultiShot, KontKind::MultiShot) => true,
            (KontKind::Shot, KontKind::Shot) => true,
            (KontKind::OneShot { promoted: a }, KontKind::OneShot { promoted: b }) => {
                a.load(Ordering::Relaxed) == b.load(Ordering::Relaxed)
            }
            _ => false,
        }
    }
}

impl Eq for KontKind {}

/// A continuation object: a sealed stack record (Figure 2 of the paper).
///
/// A continuation owns the slice `[base, base + size)` of its segment, of
/// which `[base, base + cur)` is occupied by frames. For multi-shot
/// continuations `size == cur` always; for live one-shot continuations the
/// two differ (the segment's unoccupied tail is encapsulated too) — the
/// paper uses exactly this inequality to distinguish the two varieties, and
/// [`Kont::is_one_shot_by_sizes`] exposes the same test.
#[derive(Debug, Clone)]
pub struct Kont<S> {
    /// The segment holding the saved frames.
    pub(crate) seg: SegmentId,
    /// Absolute slot index of the base of the saved region.
    pub(crate) base: usize,
    /// Total slots owned (from `base`).
    pub(crate) size: usize,
    /// Occupied slots (the "current size" field of Figure 2); the saved
    /// frame pointer is `base + cur`.
    pub(crate) cur: usize,
    /// The return address of the most recent frame — the slot value through
    /// which control resumes when the continuation is invoked.
    pub(crate) ret: S,
    /// The next (older) continuation in the chain, if any.
    pub(crate) link: Option<KontId>,
    /// Flavour and state.
    pub(crate) kind: KontKind,
    /// GC mark bit, managed by the embedder via
    /// [`SegStack::mark_kont`](crate::SegStack::mark_kont).
    pub(crate) mark: bool,
}

impl<S> Kont<S> {
    /// The next (older) continuation in the chain, or `None` at the root.
    pub fn link(&self) -> Option<KontId> {
        self.link
    }

    /// The saved return address of the most recent frame — what control
    /// resumes through when the continuation is invoked. Stack walkers
    /// (debuggers, exception handlers; §3.1 of the paper) start here.
    pub fn ret(&self) -> &S {
        &self.ret
    }

    /// The flavour and state of this continuation.
    pub fn kind(&self) -> &KontKind {
        &self.kind
    }

    /// Occupied slots — the number of slots a multi-shot reinstatement of
    /// this continuation would copy.
    pub fn occupied(&self) -> usize {
        self.cur
    }

    /// Total slots owned, including the unoccupied tail encapsulated by a
    /// one-shot capture. Drives the fragmentation measurements of §3.4.
    pub fn owned(&self) -> usize {
        self.size
    }

    /// Whether this continuation has been shot (invoked as a one-shot).
    pub fn is_shot(&self) -> bool {
        matches!(self.kind, KontKind::Shot)
    }

    /// Whether this continuation currently behaves as a live one-shot:
    /// it is of one-shot kind and its shared promotion flag is unset.
    pub fn is_live_one_shot(&self) -> bool {
        match &self.kind {
            KontKind::OneShot { promoted } => !promoted.load(Ordering::Relaxed),
            _ => false,
        }
    }

    /// The paper's size-field test: a continuation is one-shot exactly when
    /// its total size and current size differ. Kept for fidelity and used by
    /// debug assertions; the authoritative state is [`Kont::kind`].
    pub fn is_one_shot_by_sizes(&self) -> bool {
        self.size != self.cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(kind: KontKind, size: usize, cur: usize) -> Kont<u32> {
        Kont { seg: SegmentId(0), base: 0, size, cur, ret: 0, link: None, kind, mark: false }
    }

    #[test]
    fn size_field_test_matches_kind_for_fresh_konts() {
        let multi = mk(KontKind::MultiShot, 10, 10);
        assert!(!multi.is_one_shot_by_sizes());
        let one = mk(KontKind::OneShot { promoted: Arc::new(AtomicBool::new(false)) }, 64, 10);
        assert!(one.is_one_shot_by_sizes());
        assert!(one.is_live_one_shot());
    }

    #[test]
    fn shared_flag_promotion_is_visible() {
        let flag = Arc::new(AtomicBool::new(false));
        let k = mk(KontKind::OneShot { promoted: flag.clone() }, 64, 10);
        assert!(k.is_live_one_shot());
        flag.store(true, Ordering::Relaxed);
        assert!(!k.is_live_one_shot());
    }

    #[test]
    fn kont_id_round_trips_through_index() {
        let id = KontId(7);
        assert_eq!(KontId::from_index(id.index()), id);
    }
}
