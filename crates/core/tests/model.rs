//! Model-based property test for the segmented stack.
//!
//! A naive reference model implements first-class continuation *semantics*
//! with full snapshots (cloned frame vectors, no segments, no cache, no copy
//! bounds, no hysteresis). Random operation sequences are run against both
//! the model and [`SegStack`]; every observable — resumed pc tags, frame
//! locals, shot errors, exhaustion — must agree under every configuration.
//! This exercises exactly the machinery the paper adds: all the segment
//! management must be semantically invisible.

use std::cell::Cell;
use std::rc::Rc;

use oneshot_core::{
    Config, ControlError, OneShotPolicy, OverflowPolicy, PromotionStrategy, Reinstated, SegStack,
    Underflow,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// The slot type and walker shared with the real stack
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Slot {
    Val(i64),
    Ret { pc: u32, disp: usize },
    Marker,
}

fn walker(s: &Slot) -> Option<usize> {
    match s {
        Slot::Ret { disp, .. } => Some(*disp),
        _ => None,
    }
}

const MAXF: usize = 8;
const HEADROOM: usize = 2 * MAXF;

// ---------------------------------------------------------------------
// Reference model: continuation chains as Rc snapshots
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
struct Frame {
    pc: u32,
    disp: usize,
    local: Option<i64>,
}

#[derive(Debug)]
struct MKont {
    frames: Vec<Frame>,
    parent: Option<Rc<MKont>>,
    one_shot: bool,
    promoted: Cell<bool>,
    used: Cell<bool>,
}

#[derive(Debug, Default)]
struct Model {
    frames: Vec<Frame>,
    link: Option<Rc<MKont>>,
}

#[derive(Debug, PartialEq)]
enum Outcome {
    Pc(u32),
    Exhausted,
    Shot,
}

impl Model {
    fn call(&mut self, pc: u32, disp: usize, local: Option<i64>) {
        self.frames.push(Frame { pc, disp, local });
    }

    fn promote(&self) {
        let mut cursor = self.link.clone();
        while let Some(k) = cursor {
            // The real walk stops at the first continuation that is not a
            // live one-shot — including shot (used) ones.
            if k.one_shot && !k.promoted.get() && !k.used.get() {
                k.promoted.set(true);
                cursor = k.parent.clone();
            } else {
                break;
            }
        }
    }

    fn capture(&mut self, one_shot: bool) -> Option<Rc<MKont>> {
        if !one_shot {
            self.promote();
        }
        if self.frames.is_empty() {
            return self.link.clone();
        }
        let mut frames = std::mem::take(&mut self.frames);
        if let Some(top) = frames.last_mut() {
            // The top frame's local lives above the frame pointer and is
            // not part of the sealed region; only its return address (the
            // continuation's ret field) survives.
            top.local = None;
        }
        let k = Rc::new(MKont {
            frames,
            parent: self.link.take(),
            one_shot,
            promoted: Cell::new(false),
            used: Cell::new(false),
        });
        self.link = Some(k.clone());
        Some(k)
    }

    /// Returns from the current frame (or underflows), reporting what the
    /// resumed return point observes. In `lenient` mode a used one-shot is
    /// promoted and restored instead of erroring — the behaviour the real
    /// stack exhibits when an implicit multi-shot capture (the `MultiShot`
    /// overflow policy) has already promoted it.
    fn ret(&mut self, lenient: bool) -> Outcome {
        loop {
            if let Some(f) = self.frames.pop() {
                return Outcome::Pc(f.pc);
            }
            match self.link.clone() {
                None => return Outcome::Exhausted,
                Some(k) => {
                    if let Err(()) = self.restore(&k, lenient) {
                        return Outcome::Shot;
                    }
                }
            }
        }
    }

    fn restore(&mut self, k: &Rc<MKont>, lenient: bool) -> Result<(), ()> {
        if k.one_shot && !k.promoted.get() {
            if k.used.get() {
                if !lenient {
                    return Err(());
                }
                // The real implementation promoted this continuation via an
                // implicit call/cc; promotion is permanent.
                k.promoted.set(true);
            } else {
                k.used.set(true);
            }
        }
        self.frames = k.frames.clone();
        self.link = k.parent.clone();
        Ok(())
    }

    fn invoke(&mut self, k: &Option<Rc<MKont>>, lenient: bool) -> Outcome {
        match k {
            None => {
                self.frames.clear();
                self.link = None;
                Outcome::Exhausted
            }
            Some(k) => {
                if self.restore(k, lenient).is_err() {
                    return Outcome::Shot;
                }
                // Delivering the value pops the saved top frame.
                let f = self.frames.pop().expect("captured frames are non-empty");
                Outcome::Pc(f.pc)
            }
        }
    }

    fn top_local(&self) -> Option<i64> {
        self.frames.last().and_then(|f| f.local)
    }
}

// ---------------------------------------------------------------------
// Driver for the real stack mirroring the model's observables
// ---------------------------------------------------------------------

struct Real {
    st: SegStack<Slot>,
}

impl Real {
    fn new(cfg: Config) -> Self {
        Real { st: SegStack::new(cfg, Slot::Marker) }
    }

    fn call(&mut self, pc: u32, disp: usize, local: Option<i64>) {
        self.st.push_frame(disp, Slot::Ret { pc, disp });
        self.st.ensure(MAXF + 2, 1, &walker);
        if let Some(v) = local {
            let fp = self.st.fp();
            self.st.set(fp + 1, Slot::Val(v));
        }
    }

    fn deliver(&mut self, r: &Reinstated<Slot>) -> Outcome {
        match &r.ret {
            Slot::Ret { pc, disp } => {
                self.st.pop_frame(*disp);
                Outcome::Pc(*pc)
            }
            other => panic!("bad return address {other:?}"),
        }
    }

    fn ret(&mut self) -> Outcome {
        let top = self.st.get(self.st.fp()).clone();
        match top {
            Slot::Ret { pc, disp } => {
                self.st.pop_frame(disp);
                Outcome::Pc(pc)
            }
            Slot::Marker => match self.st.underflow(&walker) {
                Ok(Underflow::Exhausted) => Outcome::Exhausted,
                Ok(Underflow::Resumed(r)) => self.deliver(&r),
                Err(ControlError::AlreadyShot) => Outcome::Shot,
                Err(e) => panic!("unexpected error {e}"),
            },
            other => panic!("unexpected slot at fp: {other:?}"),
        }
    }

    fn invoke(&mut self, k: &Option<oneshot_core::KontId>) -> Outcome {
        match k {
            None => {
                self.st.clear_to_empty();
                Outcome::Exhausted
            }
            Some(id) => match self.st.reinstate(*id, &walker) {
                Ok(r) => self.deliver(&r),
                Err(ControlError::AlreadyShot) => Outcome::Shot,
                Err(e) => panic!("unexpected error {e}"),
            },
        }
    }

    fn at_marker(&self) -> bool {
        *self.st.get(self.st.fp()) == Slot::Marker
    }

    fn top_local(&self) -> Option<i64> {
        match self.st.get(self.st.fp()) {
            Slot::Ret { disp, .. } if *disp >= 2 => match self.st.get(self.st.fp() + 1) {
                Slot::Val(v) => Some(*v),
                _ => None,
            },
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------
// Operations and configurations
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Call { pc: u32, disp: usize, local: Option<i64> },
    Ret,
    CaptureOne,
    CaptureMulti,
    Invoke(usize),
    Gc,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u32..10_000, 2usize..=MAXF, proptest::option::of(any::<i64>()))
            .prop_map(|(pc, disp, local)| Op::Call { pc, disp, local }),
        3 => Just(Op::Ret),
        1 => Just(Op::CaptureOne),
        1 => Just(Op::CaptureMulti),
        2 => (0usize..16).prop_map(Op::Invoke),
        1 => Just(Op::Gc),
    ]
}

fn config_strategy() -> impl Strategy<Value = Config> {
    (
        prop_oneof![Just(64usize), Just(128), Just(512)],
        prop_oneof![Just(16usize), Just(24), Just(48)],
        prop_oneof![Just(0usize), Just(16), Just(32)],
        prop_oneof![Just(OverflowPolicy::OneShot), Just(OverflowPolicy::MultiShot)],
        prop_oneof![
            Just(OneShotPolicy::FreshSegment),
            Just(OneShotPolicy::SealWithPad(MAXF)),
            Just(OneShotPolicy::SealWithPad(32)),
        ],
        prop_oneof![Just(0usize), Just(4), Just(64)],
    )
        .prop_map(|(segment_slots, copy_bound, hysteresis_slots, overflow, oneshot, cache)| {
            Config {
                segment_slots,
                copy_bound,
                hysteresis_slots,
                overflow_policy: overflow,
                oneshot_policy: oneshot,
                promotion: PromotionStrategy::EagerWalk,
                cache_limit: cache,
                min_headroom: HEADROOM,
                max_segments: 0,
            }
        })
}

fn run(cfg: Config, ops: Vec<Op>) {
    // Invoking a one-shot continuation twice "is an error" — a may-error
    // the system is permitted not to detect. The real stack legitimately
    // loses the check in two situations the model cannot see: implicit
    // call/cc captures (MultiShot overflow policy) promote chains, and a
    // tail-position call/1cc can return an existing multi-shot continuation
    // (e.g. the bottom part of a copy-bound split). The model therefore
    // follows the real outcome in the permissive direction only: whenever
    // the real stack reports Shot, the strict model must agree.
    let lenient_base = true;
    let _ = &cfg;
    let mut model = Model::default();
    let mut real = Real::new(cfg);
    let mut mkonts: Vec<Option<Rc<MKont>>> = Vec::new();
    let mut rkonts: Vec<Option<oneshot_core::KontId>> = Vec::new();

    for op in ops {
        match op {
            Op::Call { pc, disp, local } => {
                model.call(pc, disp, local);
                real.call(pc, disp, local);
            }
            Op::Ret => {
                let r = real.ret();
                let lenient = lenient_base && r != Outcome::Shot;
                let m = model.ret(lenient);
                assert_eq!(m, r, "return outcomes diverged");
            }
            Op::CaptureOne => {
                mkonts.push(model.capture(true));
                rkonts.push(real.st.capture_one(2));
            }
            Op::CaptureMulti => {
                mkonts.push(model.capture(false));
                rkonts.push(real.st.capture_multi());
            }
            Op::Invoke(i) => {
                if mkonts.is_empty() {
                    continue;
                }
                let i = i % mkonts.len();
                let mk = mkonts[i].clone();
                let rk = rkonts[i];
                let r = real.invoke(&rk);
                let lenient = lenient_base && r != Outcome::Shot;
                let m = model.invoke(&mk, lenient);
                assert_eq!(m, r, "invoke outcomes diverged at kont {i}");
            }
            Op::Gc => {
                real.st.begin_gc();
                // The embedder (this test) keeps every captured kont alive.
                let mut work: Vec<oneshot_core::KontId> =
                    rkonts.iter().flatten().copied().collect();
                while let Some(id) = work.pop() {
                    if real.st.mark_kont(id) {
                        if let Some(l) = real.st.kont_link(id) {
                            work.push(l);
                        }
                    }
                }
                real.st.sweep(false);
            }
        }
        // The real record holds only a suffix of the logical frames (the
        // rest live in parent continuations), so the local is comparable
        // only when the real frame pointer sits on an actual frame.
        if let (Some(v), false) = (model.top_local(), real.at_marker()) {
            assert_eq!(real.top_local(), Some(v), "frame locals diverged");
        }
    }

    // Drain both stacks completely and compare the full unwind trace.
    for _ in 0..100_000 {
        let r = real.ret();
        let lenient = lenient_base && r != Outcome::Shot;
        let m = model.ret(lenient);
        assert_eq!(m, r, "drain outcomes diverged");
        if !matches!(m, Outcome::Pc(_)) {
            break;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

    #[test]
    fn segmented_stack_matches_snapshot_model(
        cfg in config_strategy(),
        ops in proptest::collection::vec(op_strategy(), 0..140),
    ) {
        run(cfg, ops);
    }
}

/// A fixed deep-recursion scenario under the smallest configuration, as a
/// deterministic regression anchor alongside the random cases.
#[test]
fn deep_recursion_matches_model() {
    let cfg = Config {
        segment_slots: 64,
        copy_bound: 16,
        hysteresis_slots: 16,
        min_headroom: HEADROOM,
        cache_limit: 4,
        ..Config::default()
    };
    let mut ops = Vec::new();
    for i in 0..300u32 {
        ops.push(Op::Call { pc: i, disp: 2 + (i as usize % 6), local: Some(i as i64) });
        if i % 37 == 0 {
            ops.push(Op::CaptureOne);
        }
        if i % 53 == 0 {
            ops.push(Op::CaptureMulti);
        }
    }
    for i in 0..40 {
        ops.push(Op::Invoke(i % 13));
        ops.push(Op::Ret);
        ops.push(Op::Gc);
    }
    run(cfg, ops);
}

#[test]
fn split_artifact_tail_capture_regression() {
    // Minimal case found by proptest: a promoted one-shot is reinstated
    // with splitting; a later tail-position call/1cc returns the split's
    // multi-shot bottom part, so a double invocation is (permissibly) not
    // detected. The model must tolerate the missing may-error.
    let cfg = Config {
        segment_slots: 64,
        copy_bound: 16,
        hysteresis_slots: 0,
        oneshot_policy: OneShotPolicy::FreshSegment,
        overflow_policy: OverflowPolicy::OneShot,
        promotion: PromotionStrategy::EagerWalk,
        cache_limit: 0,
        min_headroom: 16,
        max_segments: 0,
    };
    let ops = vec![
        Op::Call { pc: 0, disp: 5, local: None },
        Op::Call { pc: 1, disp: 8, local: None },
        Op::Call { pc: 2, disp: 4, local: None },
        Op::CaptureOne,
        Op::CaptureOne,
        Op::CaptureOne,
        Op::CaptureOne,
        Op::CaptureOne,
        Op::CaptureMulti,
        Op::CaptureOne,
        Op::Invoke(0),
        Op::CaptureOne,
        Op::Invoke(7),
        Op::CaptureOne,
        Op::Ret,
        Op::Invoke(8),
    ];
    run(cfg, ops);
}
