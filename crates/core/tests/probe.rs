//! Integration tests for the control-probe layer.
//!
//! Two properties are checked against randomized workloads (plus
//! deterministic anchors):
//!
//! 1. **Counting parity** — a [`CountingProbe`] installed at construction
//!    accumulates totals identical to the stack's own [`Stats`] counters,
//!    field for field, after every operation — including under the
//!    `SharedFlag` promotion strategy and the `SealWithPad` one-shot
//!    policy.
//! 2. **Event ordering** — in a [`RingTraceProbe`] trace, every
//!    `Reinstate` event names a continuation previously *introduced* by a
//!    `CaptureOne`, `CaptureMulti`, `Overflow` (implicit, `kont: Some`),
//!    or `Split` (bottom part) event, and one-shot reinstatements copy
//!    nothing.

use std::collections::HashSet;

use oneshot_core::{
    Config, ControlError, ControlProbe, CountingProbe, KontId, OneShotPolicy, OverflowPolicy,
    ProbeEvent, PromotionStrategy, Reinstated, RingTraceProbe, SegStack, Underflow,
};
use proptest::prelude::*;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Slot {
    Val(i64),
    Ret { pc: u32, disp: usize },
    Marker,
}

fn walker(s: &Slot) -> Option<usize> {
    match s {
        Slot::Ret { disp, .. } => Some(*disp),
        _ => None,
    }
}

const MAXF: usize = 8;
const HEADROOM: usize = 2 * MAXF;

/// Drives a probed stack through call/return/capture/invoke/GC traffic,
/// swallowing the legitimate control errors (shot or dead continuations).
struct Driver<P: ControlProbe> {
    st: SegStack<Slot, P>,
    konts: Vec<KontId>,
}

impl<P: ControlProbe> Driver<P> {
    fn new(cfg: Config, probe: P) -> Self {
        Driver { st: SegStack::with_probe(cfg, Slot::Marker, probe), konts: Vec::new() }
    }

    fn call(&mut self, pc: u32, disp: usize, local: Option<i64>) {
        self.st.push_frame(disp, Slot::Ret { pc, disp });
        self.st.ensure(MAXF + 2, 1, &walker);
        if let Some(v) = local {
            let fp = self.st.fp();
            self.st.set(fp + 1, Slot::Val(v));
        }
    }

    fn deliver(&mut self, r: &Reinstated<Slot>) {
        match r.ret {
            Slot::Ret { disp, .. } => self.st.pop_frame(disp),
            ref other => panic!("bad return address {other:?}"),
        }
    }

    fn ret(&mut self) {
        let top = self.st.get(self.st.fp()).clone();
        match top {
            Slot::Ret { disp, .. } => self.st.pop_frame(disp),
            Slot::Marker => match self.st.underflow(&walker) {
                Ok(Underflow::Exhausted) | Err(ControlError::AlreadyShot) => {}
                Ok(Underflow::Resumed(r)) => self.deliver(&r),
                Err(e) => panic!("unexpected error {e}"),
            },
            other => panic!("unexpected slot at fp: {other:?}"),
        }
    }

    fn capture(&mut self, one_shot: bool) {
        let captured = if one_shot { self.st.capture_one(2) } else { self.st.capture_multi() };
        if let Some(id) = captured {
            self.konts.push(id);
        }
    }

    fn invoke(&mut self, i: usize) {
        if self.konts.is_empty() {
            return;
        }
        let id = self.konts[i % self.konts.len()];
        match self.st.reinstate(id, &walker) {
            Ok(r) => self.deliver(&r),
            Err(ControlError::AlreadyShot | ControlError::DeadContinuation) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    fn gc(&mut self) {
        self.st.begin_gc();
        let mut work = self.konts.clone();
        while let Some(id) = work.pop() {
            if self.st.kont_alive(id) && self.st.mark_kont(id) {
                if let Some(l) = self.st.kont_link(id) {
                    work.push(l);
                }
            }
        }
        self.st.sweep(false);
        self.konts.retain(|&id| self.st.kont_alive(id));
    }
}

// ---------------------------------------------------------------------
// Operations and configurations
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Call { pc: u32, disp: usize, local: Option<i64> },
    Ret,
    CaptureOne,
    CaptureMulti,
    Invoke(usize),
    Gc,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u32..10_000, 2usize..=MAXF, proptest::option::of(any::<i64>()))
            .prop_map(|(pc, disp, local)| Op::Call { pc, disp, local }),
        3 => Just(Op::Ret),
        2 => Just(Op::CaptureOne),
        1 => Just(Op::CaptureMulti),
        2 => (0usize..16).prop_map(Op::Invoke),
        1 => Just(Op::Gc),
    ]
}

fn config_strategy() -> impl Strategy<Value = Config> {
    (
        prop_oneof![Just(64usize), Just(256)],
        prop_oneof![Just(16usize), Just(48)],
        prop_oneof![Just(0usize), Just(16)],
        prop_oneof![Just(OverflowPolicy::OneShot), Just(OverflowPolicy::MultiShot)],
        prop_oneof![Just(OneShotPolicy::FreshSegment), Just(OneShotPolicy::SealWithPad(MAXF)),],
        prop_oneof![Just(PromotionStrategy::EagerWalk), Just(PromotionStrategy::SharedFlag)],
        prop_oneof![Just(0usize), Just(8)],
    )
        .prop_map(
            |(segment_slots, copy_bound, hysteresis_slots, overflow, oneshot, promotion, cache)| {
                Config {
                    segment_slots,
                    copy_bound,
                    hysteresis_slots,
                    overflow_policy: overflow,
                    oneshot_policy: oneshot,
                    promotion,
                    cache_limit: cache,
                    min_headroom: HEADROOM,
                    max_segments: 0,
                }
            },
        )
}

fn apply(d: &mut Driver<impl ControlProbe>, op: &Op) {
    match *op {
        Op::Call { pc, disp, local } => d.call(pc, disp, local),
        Op::Ret => d.ret(),
        Op::CaptureOne => d.capture(true),
        Op::CaptureMulti => d.capture(false),
        Op::Invoke(i) => d.invoke(i),
        Op::Gc => d.gc(),
    }
}

// ---------------------------------------------------------------------
// 1. Counting parity
// ---------------------------------------------------------------------

fn assert_parity(d: &Driver<CountingProbe>, context: &str) {
    assert_eq!(d.st.probe().stats(), *d.st.stats(), "probe/stats divergence {context}");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn counting_probe_reproduces_stats(
        cfg in config_strategy(),
        ops in proptest::collection::vec(op_strategy(), 0..120),
    ) {
        let mut d = Driver::new(cfg, CountingProbe::new());
        for (i, op) in ops.iter().enumerate() {
            apply(&mut d, op);
            prop_assert_eq!(
                d.st.probe().stats(),
                *d.st.stats(),
                "probe/stats divergence after op {} ({:?})",
                i,
                op
            );
        }
        // Drain so underflow/exhaustion paths are exercised too.
        for _ in 0..10_000 {
            let at_marker = matches!(d.st.get(d.st.fp()), Slot::Marker);
            d.ret();
            if at_marker && matches!(d.st.get(d.st.fp()), Slot::Marker) {
                break;
            }
        }
        prop_assert_eq!(d.st.probe().stats(), *d.st.stats());
    }
}

/// Deterministic anchor: a one-shot chain promoted by `call/cc` under the
/// `SharedFlag` strategy, then reinvoked, keeps probe and stats in
/// lockstep (promotions are reported through the probe even though no
/// chain walk happens).
#[test]
fn counting_parity_under_shared_flag_promotion() {
    let cfg = Config {
        segment_slots: 256,
        copy_bound: 64,
        promotion: PromotionStrategy::SharedFlag,
        min_headroom: HEADROOM,
        ..Config::default()
    };
    let mut d = Driver::new(cfg, CountingProbe::new());
    for i in 0..20u32 {
        d.call(i, 4, Some(i64::from(i)));
        d.capture(true); // a chain of one-shots
    }
    d.capture(false); // call/cc promotes the whole chain
    assert_parity(&d, "after promotion");
    assert!(d.st.stats().promotions > 0, "the multi-shot capture promoted the chain");
    assert_eq!(d.st.stats().promotion_steps, 0, "SharedFlag walks no links");
    for i in 0..8 {
        d.invoke(i * 3);
        assert_parity(&d, "after invoke");
    }
    for _ in 0..200 {
        d.ret();
    }
    assert_parity(&d, "after drain");
}

/// Deterministic anchor: the `SealWithPad` policy seals one-shots in place
/// (emitting `capture_one` + `seal`), and probe totals still match.
#[test]
fn counting_parity_under_seal_with_pad() {
    let cfg = Config {
        segment_slots: 256,
        copy_bound: 64,
        oneshot_policy: OneShotPolicy::SealWithPad(MAXF),
        cache_limit: 0,
        min_headroom: HEADROOM,
        ..Config::default()
    };
    let mut d = Driver::new(cfg, CountingProbe::new());
    for i in 0..30u32 {
        d.call(i, 3, None);
        d.capture(true);
        assert_parity(&d, "after sealed capture");
    }
    assert!(d.st.stats().captures_one >= 30);
    for i in 0..30 {
        d.invoke(29 - i);
        assert_parity(&d, "after invoke");
    }
}

// ---------------------------------------------------------------------
// 2. Event ordering
// ---------------------------------------------------------------------

/// Checks the documented ordering invariant over a recorded trace:
/// a reinstated continuation was introduced by an earlier event, and
/// one-shot reinstatement copies zero slots.
fn check_ordering(events: &[ProbeEvent], seeded: &[KontId]) {
    let mut introduced: HashSet<u32> = seeded.iter().map(|k| k.index()).collect();
    for (i, ev) in events.iter().enumerate() {
        match *ev {
            ProbeEvent::CaptureOne { kont, .. } | ProbeEvent::CaptureMulti { kont, .. } => {
                introduced.insert(kont.index());
            }
            ProbeEvent::Overflow { kont: Some(k), .. } => {
                introduced.insert(k.index());
            }
            ProbeEvent::Split { kont, bottom, .. } => {
                assert!(
                    introduced.contains(&kont.index()),
                    "event {i}: split of unintroduced k{}",
                    kont.index()
                );
                introduced.insert(bottom.index());
            }
            ProbeEvent::Reinstate { kont, one_shot, slots_copied, .. } => {
                assert!(
                    introduced.contains(&kont.index()),
                    "event {i}: reinstate of unintroduced k{}",
                    kont.index()
                );
                if one_shot {
                    assert_eq!(slots_copied, 0, "event {i}: one-shot reinstatement copied");
                }
            }
            ProbeEvent::Promotion { kont, .. } => {
                assert!(
                    introduced.contains(&kont.index()),
                    "event {i}: promotion of unintroduced k{}",
                    kont.index()
                );
            }
            _ => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn trace_reinstates_only_introduced_continuations(
        cfg in config_strategy(),
        ops in proptest::collection::vec(op_strategy(), 0..120),
    ) {
        // Capacity far above anything 120 operations can generate, so the
        // trace is complete and the invariant can be checked from genesis.
        let mut d = Driver::new(cfg, RingTraceProbe::new(1 << 16));
        for op in &ops {
            apply(&mut d, op);
        }
        for _ in 0..10_000 {
            let at_marker = matches!(d.st.get(d.st.fp()), Slot::Marker);
            d.ret();
            if at_marker && matches!(d.st.get(d.st.fp()), Slot::Marker) {
                break;
            }
        }
        prop_assert_eq!(d.st.probe().dropped(), 0, "trace must be complete for this check");
        let events: Vec<ProbeEvent> = d.st.probe().events().copied().collect();
        check_ordering(&events, &[]);
    }
}

/// The trace of a simple capture/invoke round trip reads sensibly end to
/// end (a deterministic smoke test of the symbolic rendering).
#[test]
fn trace_renders_a_round_trip() {
    let cfg =
        Config { segment_slots: 128, copy_bound: 48, min_headroom: HEADROOM, ..Config::default() };
    let mut d = Driver::new(cfg, RingTraceProbe::new(64));
    d.call(1, 4, None);
    d.call(2, 4, None);
    d.capture(true);
    d.invoke(0);
    let text: Vec<String> = d.st.probe().events().map(ToString::to_string).collect();
    assert!(text.iter().any(|l| l.starts_with("capture/1cc")), "missing capture event in {text:?}");
    assert!(
        text.iter().any(|l| l.contains("one-shot, O(1)")),
        "missing O(1) reinstatement in {text:?}"
    );
}
