;; A Boyer-style rewriting theorem prover, after the Gabriel benchmark:
;; terms are rewritten to normal form against a lemma database, then a
;; tautology checker decides the result. The rule set here is a curated
;; subset of the classic benchmark's (enough for the theorem below to
;; prove); the program structure — property-list lemma lookup, recursive
;; rewriting, unification, heavy consing, *no escaping closures* — matches
;; the original, which is what the §5 frame-overhead measurement needs.

(define *props* '())

(define (put sym key val)
  (let ((entry (assq sym *props*)))
    (if entry
        (let ((slot (assq key (cdr entry))))
          (if slot
              (set-cdr! slot val)
              (set-cdr! entry (cons (cons key val) (cdr entry)))))
        (set! *props* (cons (list sym (cons key val)) *props*)))))

(define (get sym key)
  (let ((entry (assq sym *props*)))
    (if entry
        (let ((slot (assq key (cdr entry))))
          (if slot (cdr slot) #f))
        #f)))

(define (add-lemma term)
  ;; term = (equal lhs rhs): index by the head symbol of lhs.
  (let ((lhs (cadr term)))
    (put (car lhs) 'lemmas
         (cons term (or (get (car lhs) 'lemmas) '())))))

(define (add-lemmas lst) (for-each add-lemma lst))

;; --- substitution and unification ---

(define (apply-subst alist term)
  (if (pair? term)
      (cons (car term) (apply-subst-lst alist (cdr term)))
      (let ((hit (assq term alist)))
        (if hit (cdr hit) term))))

(define (apply-subst-lst alist lst)
  (if (null? lst)
      '()
      (cons (apply-subst alist (car lst))
            (apply-subst-lst alist (cdr lst)))))

(define (one-way-unify term1 term2)
  ;; unify term1 against pattern term2; returns alist or #f
  (one-way-unify1 term1 term2 '()))

(define (one-way-unify1 term1 term2 subst)
  (cond ((not (pair? term2))
         (let ((hit (assq term2 subst)))
           (cond (hit (if (equal? (cdr hit) term1) subst #f))
                 (else (cons (cons term2 term1) subst)))))
        ((not (pair? term1)) #f)
        ((eq? (car term1) (car term2))
         (one-way-unify1-lst (cdr term1) (cdr term2) subst))
        (else #f)))

(define (one-way-unify1-lst lst1 lst2 subst)
  (cond ((null? lst2) (if (null? lst1) subst #f))
        ((null? lst1) #f)
        (else
         (let ((s (one-way-unify1 (car lst1) (car lst2) subst)))
           (if s (one-way-unify1-lst (cdr lst1) (cdr lst2) s) #f)))))

;; --- the rewriter ---

(define (rewrite term)
  (if (pair? term)
      (rewrite-with-lemmas
       (cons (car term) (rewrite-args (cdr term)))
       (or (get (car term) 'lemmas) '()))
      term))

(define (rewrite-args lst)
  (if (null? lst)
      '()
      (cons (rewrite (car lst)) (rewrite-args (cdr lst)))))

(define (rewrite-with-lemmas term lemmas)
  (if (null? lemmas)
      term
      (let ((subst (one-way-unify term (cadr (car lemmas)))))
        (if subst
            (rewrite (apply-subst subst (caddr (car lemmas))))
            (rewrite-with-lemmas term (cdr lemmas))))))

;; --- the tautology checker ---

(define (truep x lst)
  (or (equal? x '(t)) (member x lst)))

(define (falsep x lst)
  (or (equal? x '(f)) (member x lst)))

(define (tautologyp x true-lst false-lst)
  (cond ((truep x true-lst) #t)
        ((falsep x false-lst) #f)
        ((not (pair? x)) #f)
        ((eq? (car x) 'if)
         (cond ((truep (cadr x) true-lst)
                (tautologyp (caddr x) true-lst false-lst))
               ((falsep (cadr x) false-lst)
                (tautologyp (cadddr x) true-lst false-lst))
               (else
                (and (tautologyp (caddr x) (cons (cadr x) true-lst) false-lst)
                     (tautologyp (cadddr x) true-lst (cons (cadr x) false-lst))))))
        (else #f)))

(define (tautp x) (tautologyp (rewrite x) '() '()))

;; --- the lemma database ---

(define (boyer-setup)
  (set! *props* '())
  (add-lemmas
   '((equal (if (if a b c) d e) (if a (if b d e) (if c d e)))
     (equal (and p q) (if p (if q (t) (f)) (f)))
     (equal (or p q) (if p (t) (if q (t) (f))))
     (equal (not p) (if p (f) (t)))
     (equal (implies p q) (if p (if q (t) (f)) (t)))
     (equal (iff p q) (and (implies p q) (implies q p)))
     (equal (plus (plus x y) z) (plus x (plus y z)))
     (equal (equal (plus a b) (zero)) (and (zerop a) (zerop b)))
     (equal (difference x x) (zero))
     (equal (equal (plus a b) (plus a c)) (equal b c))
     (equal (equal (zero) (difference x y)) (not (lessp y x)))
     (equal (equal x (difference x y)) (and (numberp x) (or (equal x (zero)) (zerop y))))
     (equal (append (append x y) z) (append x (append y z)))
     (equal (reverse (append a b)) (append (reverse b) (reverse a)))
     (equal (times x (plus y z)) (plus (times x y) (times x z)))
     (equal (times (times x y) z) (times x (times y z)))
     (equal (equal (times x y) (zero)) (or (zerop x) (zerop y)))
     (equal (length (append a b)) (plus (length a) (length b)))
     (equal (length (reverse x)) (length x))
     (equal (member a (append b c)) (or (member a b) (member a c)))
     (equal (plus (remainder x y) (times y (quotient x y))) (fix x))
     (equal (remainder y 1) (zero))
     (equal (lessp (remainder x y) y) (not (zerop y)))
     (equal (remainder x x) (zero))
     (equal (lessp (quotient i j) i) (and (not (zerop i)) (or (zerop j) (not (equal j 1)))))
     (equal (lessp (remainder x y) x) (and (not (zerop y)) (not (zerop x)) (not (lessp x y)))))))

;; The classic top-level theorem: a propositional chain that rewrites to
;; an if-tree the tautology checker can discharge.
(define (boyer-test)
  (tautp
   (apply-subst
    '((x . (f (plus (plus a b) (plus c (zero)))))
      (y . (f (times (times a b) (plus c d))))
      (z . (f (reverse (append (append a b) (nil)))))
      (u . (equal (plus a b) (difference x y)))
      (w . (lessp (remainder a b) (member a (length b)))))
    '(implies (and (implies x y)
                   (and (implies y z)
                        (and (implies z u) (implies u w))))
              (implies x w)))))

;; Run the benchmark n times; returns #t when every run proves the theorem.
(define (boyer-run n)
  (boyer-setup)
  (let loop ((i 0) (ok #t))
    (if (= i n)
        ok
        (loop (+ i 1) (and (boyer-test) ok)))))
