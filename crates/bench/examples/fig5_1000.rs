//! The 1000-thread Figure 5 panel (reduced workload), plus a fourth
//! column: call/1cc under the §3.4 seal-with-pad policy, which packs many
//! suspended threads per segment and recovers the locality that the
//! fresh-segment policy loses at this scale.

use std::time::Instant;

use oneshot_bench::experiments::figure5_point;
use oneshot_core::{Config, OneShotPolicy};
use oneshot_threads::{Strategy, ThreadSystem};
use oneshot_vm::VmConfig;

fn sealed_point(threads: usize, freq: u64, fib_n: u32) -> f64 {
    let cfg = Config { oneshot_policy: OneShotPolicy::SealWithPad(96), ..Config::default() };
    let mut ts = ThreadSystem::with_config(
        Strategy::Call1Cc,
        VmConfig { stack: cfg, ..VmConfig::default() },
    );
    ts.eval("(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))").unwrap();
    for _ in 0..threads {
        ts.spawn(&format!("(lambda () (fib {fib_n}))")).unwrap();
    }
    let start = Instant::now();
    ts.run(freq).unwrap();
    start.elapsed().as_secs_f64() * 1e3
}

fn main() {
    println!("-- 1000 threads (fib 12 per thread) --");
    println!(
        "{:>12} {:>8} {:>8} {:>9} {:>14}",
        "calls/switch", "cps", "call/cc", "call/1cc", "call/1cc+seal"
    );
    for freq in [1u64, 2, 4, 8, 16, 32, 64, 128] {
        let mut row = Vec::new();
        for s in Strategy::ALL {
            row.push(figure5_point(s, 1000, freq, 12).ms);
        }
        let sealed = sealed_point(1000, freq, 12);
        println!("{:>12} {:>8.1} {:>8.1} {:>9.1} {:>14.1}", freq, row[0], row[1], row[2], sealed);
    }
}
