//! Criterion bench for E3: deep recursion with stack overflow handled as
//! an implicit call/1cc vs an implicit call/cc.

use criterion::{criterion_group, criterion_main, Criterion};
use oneshot_bench::workloads;
use oneshot_core::{Config, OverflowPolicy};
use oneshot_vm::{Vm, VmConfig};

fn bench_overflow(c: &mut Criterion) {
    let mut g = c.benchmark_group("overflow");
    g.sample_size(10);
    for (name, policy) in
        [("one-shot", OverflowPolicy::OneShot), ("multi-shot", OverflowPolicy::MultiShot)]
    {
        g.bench_function(name, |b| {
            let cfg = Config {
                overflow_policy: policy,
                segment_slots: 16 * 1024,
                copy_bound: 4096,
                cache_limit: 64,
                ..Config::default()
            };
            let mut vm = Vm::with_config(VmConfig { stack: cfg, ..VmConfig::default() });
            vm.eval_str(workloads::DEEP).unwrap();
            b.iter(|| vm.eval_str("(deep-rounds 1 100000)").unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_overflow);
criterion_main!(benches);
