//! Criterion benches for the design-choice ablations: the segment cache
//! (E5), overflow hysteresis (E6), and promotion strategies (E8).

use criterion::{criterion_group, criterion_main, Criterion};
use oneshot_bench::workloads;
use oneshot_core::{Config, PromotionStrategy};
use oneshot_vm::{Vm, VmConfig};

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("segment-cache");
    g.sample_size(10);
    for (name, cache_limit) in [("enabled", 64usize), ("disabled", 0)] {
        g.bench_function(name, |b| {
            let cfg = Config { cache_limit, ..Config::default() };
            let mut vm = Vm::with_config(VmConfig { stack: cfg, ..VmConfig::default() });
            vm.eval_str(&workloads::ctak("call/1cc")).unwrap();
            b.iter(|| vm.eval_str("(ctak 12 6 0)").unwrap());
        });
    }
    g.finish();
}

fn bench_hysteresis(c: &mut Criterion) {
    let mut g = c.benchmark_group("hysteresis");
    g.sample_size(10);
    for (name, slots) in [("none", 0usize), ("128-slots", 128)] {
        g.bench_function(name, |b| {
            let cfg = Config {
                segment_slots: 1024,
                copy_bound: 256,
                hysteresis_slots: slots,
                ..Config::default()
            };
            let mut vm = Vm::with_config(VmConfig { stack: cfg, ..VmConfig::default() });
            vm.eval_str(workloads::BOUNCER).unwrap();
            vm.eval_str("(define (pad n) (if (zero? n) 0 (+ 1 (pad (- n 1)))))").unwrap();
            b.iter(|| {
                vm.eval_str(
                    "(define (go n) (if (zero? n) (hover 8 5000) (+ 1 (go (- n 1))))) (go 330)",
                )
                .unwrap()
            });
        });
    }
    g.finish();
}

fn bench_promotion(c: &mut Criterion) {
    let mut g = c.benchmark_group("promotion");
    g.sample_size(10);
    for (name, strategy) in [
        ("eager-walk", PromotionStrategy::EagerWalk),
        ("shared-flag", PromotionStrategy::SharedFlag),
    ] {
        g.bench_function(name, |b| {
            let cfg = Config {
                promotion: strategy,
                segment_slots: 64 * 1024,
                copy_bound: 16 * 1024,
                ..Config::default()
            };
            let mut vm = Vm::with_config(VmConfig { stack: cfg, ..VmConfig::default() });
            vm.eval_str(
                "(define (chain n)
                   (if (zero? n)
                       (call/cc (lambda (k) 0))
                       (+ 1 (call/1cc (lambda (k) (chain (- n 1)))))))",
            )
            .unwrap();
            b.iter(|| vm.eval_str("(chain 400)").unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_cache, bench_hysteresis, bench_promotion);
criterion_main!(benches);
