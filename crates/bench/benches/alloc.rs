//! Criterion bench for raw segregated-pool allocation throughput: pairs
//! and closures per second against the runtime heap directly, with a full
//! collection between iterations so free-list slot reuse and the bitmap
//! sweep both stay on the measured path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use oneshot_runtime::{Heap, Value};

const OBJECTS_PER_ITER: i64 = 100_000;

/// An embedder-driven collection with no roots: everything dies and every
/// slot returns to its pool's free list.
fn drain(h: &mut Heap) {
    h.begin_gc();
    while let Some(o) = h.pop_gray() {
        h.mark_children(o);
    }
    while h.pop_kont().is_some() {}
    h.sweep();
}

fn bench_alloc(c: &mut Criterion) {
    let mut g = c.benchmark_group("alloc");
    g.sample_size(20);

    // The hot path: list building through the dedicated pair pool.
    g.bench_function("pairs-100k", |b| {
        let mut h = Heap::new();
        b.iter(|| {
            let mut list = Value::NIL;
            for i in 0..OBJECTS_PER_ITER {
                list = Value::obj(h.alloc_pair(Value::fixnum(i), list));
            }
            black_box(&list);
            drain(&mut h);
        });
    });

    // Closures via the VM's hot path: the two-value capture fits the
    // pool slot's inline payload, so this is pure pool dispatch.
    g.bench_function("closures-100k", |b| {
        let mut h = Heap::new();
        b.iter(|| {
            let mut last = Value::NIL;
            for i in 0..OBJECTS_PER_ITER {
                last = Value::obj(h.alloc_closure(i as u32, &[Value::fixnum(i), last]));
            }
            black_box(&last);
            drain(&mut h);
        });
    });

    g.finish();
    println!("(each iteration allocates {OBJECTS_PER_ITER} objects; divide for objects/sec)");
}

criterion_group!(benches, bench_alloc);
criterion_main!(benches);
