//! Criterion bench for the NaN-boxed value word itself: encode/decode
//! (tag/untag) throughput for each immediate class, pair car/cdr through
//! the heap's pair pool, and fixnum arithmetic including the overflow
//! range test — the per-value costs every interpreter op pays.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use oneshot_runtime::{Heap, Value, FIXNUM_MAX};

const OPS_PER_ITER: i64 = 100_000;

fn bench_value_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("value_ops");
    g.sample_size(20);

    // Encode + decode round trip per immediate class. black_box on the
    // input defeats constant folding; the decode keeps the untag path on
    // the measured side.
    g.bench_function("fixnum-tag-untag-100k", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for i in 0..OPS_PER_ITER {
                let v = Value::fixnum(black_box(i));
                acc = acc.wrapping_add(v.as_fixnum().unwrap());
            }
            black_box(acc)
        });
    });

    g.bench_function("flonum-tag-untag-100k", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for i in 0..OPS_PER_ITER {
                let v = Value::flonum(black_box(i as f64) * 0.5);
                acc += v.as_flonum().unwrap();
            }
            black_box(acc)
        });
    });

    g.bench_function("bool-char-tag-untag-100k", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..OPS_PER_ITER {
                let bv = Value::boolean(black_box(i) & 1 == 0);
                acc = acc.wrapping_add(u32::from(bv.is_true()));
                let cv = Value::character(char::from_u32((i as u32) % 128).unwrap());
                acc = acc.wrapping_add(cv.as_char().unwrap() as u32);
            }
            black_box(acc)
        });
    });

    g.bench_function("sym-builtin-tag-untag-100k", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..OPS_PER_ITER {
                let s = Value::builtin(black_box(i) as u16);
                acc = acc.wrapping_add(u32::from(s.as_builtin().unwrap()));
            }
            black_box(acc)
        });
    });

    // car/cdr: one tag test on the word, then the pool lookup. This is
    // the full Op::Car path minus dispatch.
    g.bench_function("pair-car-cdr-100k", |b| {
        let mut h = Heap::new();
        let mut list = Value::NIL;
        for i in 0..OPS_PER_ITER {
            list = Value::obj(h.alloc_pair(Value::fixnum(i), list));
        }
        b.iter(|| {
            let mut acc = 0i64;
            let mut cur = list;
            while let Some(r) = cur.as_obj() {
                let (a, d) = h.pair(r).unwrap();
                acc = acc.wrapping_add(a.as_fixnum().unwrap());
                cur = d;
            }
            black_box(acc)
        });
    });

    // Fixnum add with the i50 range test on every result — the interpreter's
    // num_add fast path, including the (never-taken) overflow branch.
    g.bench_function("fixnum-add-checked-100k", |b| {
        b.iter(|| {
            let mut acc = Value::fixnum(0);
            for i in 0..OPS_PER_ITER {
                let x = acc.as_fixnum().unwrap();
                let y = black_box(i);
                acc = Value::fixnum_checked(x + y).expect("in range");
            }
            black_box(acc)
        });
    });

    // The overflow path itself: results past FIXNUM_MAX must be rejected,
    // not silently wrapped.
    g.bench_function("fixnum-overflow-path-100k", |b| {
        b.iter(|| {
            let mut rejected = 0u32;
            for i in 0..OPS_PER_ITER {
                let near = FIXNUM_MAX - (i & 1);
                if Value::fixnum_checked(near + black_box(i & 3)).is_none() {
                    rejected += 1;
                }
            }
            black_box(rejected)
        });
    });

    g.finish();
    println!("(each iteration performs {OPS_PER_ITER} ops; divide for ops/sec)");
}

criterion_group!(benches, bench_value_ops);
criterion_main!(benches);
