//! Criterion bench for E1 (Figure 5): one representative point per thread
//! system at a rapid and a slow context-switch frequency.

use criterion::{criterion_group, criterion_main, Criterion};
use oneshot_bench::experiments::figure5_point;
use oneshot_threads::Strategy;

fn bench_threads(c: &mut Criterion) {
    let mut g = c.benchmark_group("threads");
    g.sample_size(10);
    for strategy in Strategy::ALL {
        for freq in [2u64, 64] {
            g.bench_function(format!("{}-switch-{freq}", strategy.label()), |b| {
                b.iter(|| figure5_point(strategy, 10, freq, 12));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_threads);
criterion_main!(benches);
