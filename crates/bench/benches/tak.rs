//! Criterion bench for E2: the §4 tak experiment — a capture and invoke
//! on every call, call/cc vs call/1cc (vs plain tak as the no-capture
//! baseline).

use criterion::{criterion_group, criterion_main, Criterion};
use oneshot_bench::workloads;
use oneshot_vm::Vm;

fn bench_tak(c: &mut Criterion) {
    let mut g = c.benchmark_group("ctak");
    g.sample_size(10);
    for op in ["call/cc", "call/1cc"] {
        g.bench_function(op, |b| {
            let mut vm = Vm::new();
            vm.eval_str(&workloads::ctak(op)).unwrap();
            b.iter(|| vm.eval_str("(ctak 12 6 0)").unwrap());
        });
    }
    g.bench_function("plain-tak", |b| {
        let mut vm = Vm::new();
        vm.eval_str(workloads::TAK).unwrap();
        b.iter(|| vm.eval_str("(tak 12 6 0)").unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench_tak);
criterion_main!(benches);
