//! Benchmark workload sources — the programs the paper's evaluation runs.

/// Boyer-style rewriting theorem prover (see `scheme/boyer.scm`).
pub const BOYER: &str = include_str!("../scheme/boyer.scm");

/// Plain doubly-recursive fib, the Figure 5 per-thread workload.
pub const FIB: &str = "
  (define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))";

/// CPS fib with a fuel check per call — the Figure 5 workload for the CPS
/// thread system (`cps-call` is defined by the CPS scheduler).
pub const FIB_CPS: &str = "
  (define (fib-cps n k)
    (cps-call (lambda ()
      (if (< n 2)
          (k n)
          (fib-cps (- n 1) (lambda (a)
            (fib-cps (- n 2) (lambda (b)
              (k (+ a b))))))))))";

/// Takeuchi's function (Gabriel benchmark).
pub const TAK: &str = "
  (define (tak x y z)
    (if (not (< y x))
        z
        (tak (tak (- x 1) y z)
             (tak (- y 1) z x)
             (tak (- z 1) x y))))";

/// The paper's §4 tak variant: every call captures and immediately invokes
/// a continuation. `CAPTURE` is substituted with `call/cc` or `call/1cc`.
pub const CTAK_TEMPLATE: &str = "
  (define (ctak x y z)
    (CAPTURE (lambda (k) (ctak-aux k x y z))))
  (define (ctak-aux k x y z)
    (if (not (< y x))
        (k z)
        (ctak-aux k
          (ctak (- x 1) y z)
          (ctak (- y 1) z x)
          (ctak (- z 1) x y))))";

/// The continuation-intensive tak with the given capture operator.
pub fn ctak(capture: &str) -> String {
    CTAK_TEMPLATE.replace("CAPTURE", capture)
}

/// Deep recursion with trivial per-call work — the §4 overflow benchmark
/// ("a program that repeatedly recurs deeply while doing very little work
/// between calls").
pub const DEEP: &str = "
  (define (deep n) (if (zero? n) 0 (+ 1 (deep (- n 1)))))
  (define (deep-rounds rounds n)
    (let loop ((i 0) (acc 0))
      (if (= i rounds) acc (loop (+ i 1) (+ acc (deep n))))))";

/// A recursion that hovers across a segment boundary — the §3.2 bouncing
/// scenario the hysteresis mechanism mitigates.
pub const BOUNCER: &str = "
  (define (hover depth rounds)
    (define (down n) (if (zero? n) 0 (+ 1 (down (- n 1)))))
    (let loop ((i 0) (acc 0))
      (if (= i rounds) acc (loop (+ i 1) (+ acc (down depth))))))";

#[cfg(test)]
mod tests {
    use super::*;
    use oneshot_vm::Vm;

    #[test]
    fn tak_computes() {
        let mut vm = Vm::new();
        vm.eval_str(TAK).unwrap();
        let v = vm.eval_str("(tak 18 12 6)").unwrap();
        assert_eq!(vm.write_value(&v), "7");
    }

    #[test]
    fn ctak_computes_under_both_operators() {
        for op in ["call/cc", "call/1cc"] {
            let mut vm = Vm::new();
            vm.eval_str(&ctak(op)).unwrap();
            let v = vm.eval_str("(ctak 18 12 6)").unwrap();
            assert_eq!(vm.write_value(&v), "7", "{op}");
        }
    }

    #[test]
    fn boyer_proves_its_theorem() {
        let mut vm = Vm::new();
        vm.eval_str(BOYER).unwrap();
        let v = vm.eval_str("(boyer-run 1)").unwrap();
        assert_eq!(vm.write_value(&v), "#t");
    }

    #[test]
    fn boyer_allocates_no_closures_after_load() {
        // The §5 claim: a direct-style compiler with a true stack allocates
        // no closures for boyer (all procedures are top-level).
        let mut vm = Vm::new();
        vm.eval_str(BOYER).unwrap();
        vm.eval_str("(boyer-setup)").unwrap();
        let before = vm.stats();
        vm.eval_str("(boyer-test)").unwrap();
        let d = vm.stats().delta_since(&before);
        assert_eq!(d.heap.closures_allocated, 0, "boyer allocates no closures");
        assert!(d.calls > 20_000, "boyer does real work: {} calls", d.calls);
    }

    #[test]
    fn deep_recursion_computes() {
        let mut vm = Vm::new();
        vm.eval_str(DEEP).unwrap();
        let v = vm.eval_str("(deep-rounds 3 10000)").unwrap();
        assert_eq!(vm.write_value(&v), "30000");
    }

    #[test]
    fn fib_matches_known_values() {
        let mut vm = Vm::new();
        vm.eval_str(FIB).unwrap();
        let v = vm.eval_str("(fib 20)").unwrap();
        assert_eq!(vm.write_value(&v), "6765");
    }
}
