//! A deterministic xorshift64* PRNG.
//!
//! The harness needs randomness only for workload shuffling and jitter, so a
//! 20-line generator beats an external dependency: it keeps offline builds
//! working (no crates.io access required) and makes every run reproducible
//! from its seed.

/// xorshift64* (Vigna 2016): 64 bits of state, period 2^64 - 1.
#[derive(Debug, Clone)]
pub struct XorShiftRng {
    state: u64,
}

impl XorShiftRng {
    /// A generator seeded with `seed` (zero is remapped: it is the xorshift
    /// fixed point).
    pub fn new(seed: u64) -> Self {
        XorShiftRng { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            items.swap(i, self.below(i as u64 + 1) as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = XorShiftRng::new(1);
        let mut b = XorShiftRng::new(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
            assert!(b.clone().below(7) < 7);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = XorShiftRng::new(42);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seed 42 should move at least one element");
    }
}
