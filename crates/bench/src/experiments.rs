//! The experiment implementations: one function per table/figure of the
//! paper (see DESIGN.md's per-experiment index E1–E8).

use std::time::Instant;

use oneshot_core::{Config, OneShotPolicy, OverflowPolicy, PromotionStrategy};
use oneshot_threads::{Strategy, ThreadSystem};
use oneshot_vm::{CompilerOptions, Pipeline, Vm, VmConfig};

use crate::measure::{run_measured, Measurement};
use crate::workloads;

fn vm_with(stack: Config) -> Vm {
    Vm::with_config(VmConfig { stack, ..VmConfig::default() })
}

// ----------------------------------------------------------------------
// E1 — Figure 5: the thread-system comparison
// ----------------------------------------------------------------------

/// One point of Figure 5.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Point {
    /// Number of active threads.
    pub threads: usize,
    /// Context-switch frequency (procedure calls per switch).
    pub freq: u64,
    /// Which thread system.
    pub strategy: Strategy,
    /// Wall-clock milliseconds.
    pub ms: f64,
    /// Stack slots copied during the run (0 for call/1cc and CPS).
    pub slots_copied: u64,
    /// Closures allocated during the run (large for CPS).
    pub closures: u64,
}

/// Runs one Figure 5 configuration: `threads` threads each computing
/// `fib(fib_n)` with a context switch every `freq` calls.
///
/// # Panics
///
/// Panics if the scheduler or workload fails — a build defect.
pub fn figure5_point(strategy: Strategy, threads: usize, freq: u64, fib_n: u32) -> Fig5Point {
    let mut ts = ThreadSystem::new(strategy);
    match strategy {
        Strategy::Cps => {
            ts.eval(workloads::FIB_CPS).expect("workload loads");
            for _ in 0..threads {
                ts.spawn(&format!("(lambda (k) (fib-cps {fib_n} k))")).expect("spawn");
            }
        }
        _ => {
            ts.eval(workloads::FIB).expect("workload loads");
            for _ in 0..threads {
                ts.spawn(&format!("(lambda () (fib {fib_n}))")).expect("spawn");
            }
        }
    }
    let before = ts.stats();
    let start = Instant::now();
    ts.run(freq).expect("threads run");
    let wall = start.elapsed();
    let d = ts.stats().delta_since(&before);
    Fig5Point {
        threads,
        freq,
        strategy,
        ms: wall.as_secs_f64() * 1e3,
        slots_copied: d.stack.slots_copied,
        closures: d.heap.closures_allocated,
    }
}

/// The full Figure 5 sweep.
pub fn figure5(threads: &[usize], freqs: &[u64], fib_n: u32) -> Vec<Fig5Point> {
    let mut out = Vec::new();
    for &t in threads {
        for &f in freqs {
            for s in Strategy::ALL {
                out.push(figure5_point(s, t, f, fib_n));
            }
        }
    }
    out
}

// ----------------------------------------------------------------------
// E2 — §4 tak: call/cc vs call/1cc capture-per-call
// ----------------------------------------------------------------------

/// One row of the tak comparison.
#[derive(Debug, Clone)]
pub struct TakRow {
    /// Configuration label.
    pub op: &'static str,
    /// Measurement for `(ctak x y z)`.
    pub m: Measurement,
}

/// The §4 tak experiment: ctak under both capture operators, plus
/// `call/1cc` under the §3.4 seal-with-pad policy (which packs many
/// one-shot continuations into each segment, as the paper's
/// implementation does, recovering its allocation advantage).
///
/// # Panics
///
/// Panics if the workload fails.
pub fn tak_experiment(x: i64, y: i64, z: i64) -> Vec<TakRow> {
    let configs: [(&'static str, &'static str, Config); 3] = [
        ("call/cc", "call/cc", Config::default()),
        ("call/1cc", "call/1cc", Config::default()),
        (
            "call/1cc+seal",
            "call/1cc",
            Config { oneshot_policy: OneShotPolicy::SealWithPad(128), ..Config::default() },
        ),
    ];
    configs
        .into_iter()
        .map(|(label, capture, cfg)| {
            let mut vm = vm_with(cfg);
            vm.eval_str(&workloads::ctak(capture)).expect("ctak loads");
            let m = run_measured(&mut vm, &format!("(ctak {x} {y} {z})")).expect("ctak runs");
            TakRow { op: label, m }
        })
        .collect()
}

// ----------------------------------------------------------------------
// E3 — §4 overflow: deep recursion under both overflow policies
// ----------------------------------------------------------------------

/// One row of the overflow comparison.
#[derive(Debug, Clone)]
pub struct OverflowRow {
    /// Overflow policy.
    pub policy: OverflowPolicy,
    /// Measurement of the deep-recursion rounds.
    pub m: Measurement,
}

/// The §4 overflow experiment: `rounds` repetitions of a `depth`-deep
/// recursion with trivial bodies, with stack overflow handled as an
/// implicit `call/1cc` vs an implicit `call/cc`.
///
/// # Panics
///
/// Panics if the workload fails.
pub fn overflow_experiment(rounds: u64, depth: u64) -> Vec<OverflowRow> {
    // A cache deep enough for one full descent, so steady-state rounds
    // allocate nothing (the paper: "always finds fresh stack segments in
    // the stack cache").
    let segment_slots = 16 * 1024;
    let cache_limit = (depth as usize * 6 / segment_slots) + 8;
    [OverflowPolicy::OneShot, OverflowPolicy::MultiShot]
        .into_iter()
        .map(|policy| {
            let mut vm = vm_with(Config {
                overflow_policy: policy,
                segment_slots,
                copy_bound: 4096,
                cache_limit,
                ..Config::default()
            });
            vm.eval_str(workloads::DEEP).expect("deep loads");
            let m = run_measured(&mut vm, &format!("(deep-rounds {rounds} {depth})"))
                .expect("deep runs");
            OverflowRow { policy, m }
        })
        .collect()
}

// ----------------------------------------------------------------------
// E4 — §5 frame overhead: direct vs CPS on the benchmark set
// ----------------------------------------------------------------------

/// One row of the frame-overhead analysis.
#[derive(Debug, Clone)]
pub struct FrameRow {
    /// Program name.
    pub name: &'static str,
    /// Pipeline measured.
    pub pipeline: Pipeline,
    /// Procedure calls (≈ frames created).
    pub calls: u64,
    /// Closures allocated.
    pub closures: u64,
    /// Bytecode instructions executed.
    pub instructions: u64,
}

impl FrameRow {
    /// Closure allocations per call — the Appel–Shao closure-creation
    /// overhead measure.
    pub fn closures_per_call(&self) -> f64 {
        self.closures as f64 / self.calls.max(1) as f64
    }
}

/// The §5 analysis: for each benchmark, count closures per frame under the
/// direct (stack) compiler and the CPS (heap) compiler.
///
/// # Panics
///
/// Panics if a workload fails.
pub fn frame_overhead() -> Vec<FrameRow> {
    let programs: [(&'static str, String, &str); 4] = [
        ("tak", workloads::TAK.to_string(), "(tak 18 12 6)"),
        ("fib", workloads::FIB.to_string(), "(fib 18)"),
        ("deep", workloads::DEEP.to_string(), "(deep-rounds 1 20000)"),
        ("boyer", workloads::BOYER.to_string(), "(boyer-run 1)"),
    ];
    let mut out = Vec::new();
    for (name, setup, run) in &programs {
        for pipeline in [Pipeline::Direct, Pipeline::Cps] {
            let mut vm = Vm::with_config(VmConfig { pipeline, ..VmConfig::default() });
            vm.eval_str(setup).expect("workload loads");
            let before = vm.stats();
            vm.eval_str(run).expect("workload runs");
            let d = vm.stats().delta_since(&before);
            out.push(FrameRow {
                name,
                pipeline,
                calls: d.calls,
                closures: d.heap.closures_allocated,
                instructions: d.instructions,
            });
        }
    }
    out
}

// ----------------------------------------------------------------------
// E5 — §3.2 segment cache ablation
// ----------------------------------------------------------------------

/// One row of the cache ablation.
#[derive(Debug, Clone)]
pub struct CacheRow {
    /// Cache capacity (0 disables).
    pub cache_limit: usize,
    /// Measurement of a call/1cc-intensive loop.
    pub m: Measurement,
}

/// §3.2: without the segment cache, call/1cc-intensive programs were
/// "unacceptably slow" — every capture allocates a fresh segment.
///
/// # Panics
///
/// Panics if the workload fails.
pub fn cache_experiment(x: i64, y: i64, z: i64) -> Vec<CacheRow> {
    [64usize, 0]
        .into_iter()
        .map(|cache_limit| {
            let mut vm = vm_with(Config { cache_limit, ..Config::default() });
            vm.eval_str(&workloads::ctak("call/1cc")).expect("ctak loads");
            let m = run_measured(&mut vm, &format!("(ctak {x} {y} {z})")).expect("ctak runs");
            CacheRow { cache_limit, m }
        })
        .collect()
}

// ----------------------------------------------------------------------
// E6 — §3.2 overflow hysteresis ablation
// ----------------------------------------------------------------------

/// One row of the hysteresis ablation.
#[derive(Debug, Clone)]
pub struct HysteresisRow {
    /// Hysteresis setting (slots copied up on overflow).
    pub hysteresis: usize,
    /// Measurement of the boundary-hovering recursion.
    pub m: Measurement,
}

/// §3.2: naive one-shot overflow "bounces" when a recursion hovers across
/// a segment boundary; copying a few frames up amortizes it.
///
/// # Panics
///
/// Panics if the workload fails.
pub fn hysteresis_experiment(rounds: u64) -> Vec<HysteresisRow> {
    // Depth chosen so each round crosses the segment boundary by a hair.
    [0usize, 128]
        .into_iter()
        .map(|hysteresis| {
            let cfg = Config {
                segment_slots: 1024,
                copy_bound: 256,
                hysteresis_slots: hysteresis,
                ..Config::default()
            };
            let mut vm = vm_with(cfg);
            vm.eval_str(workloads::BOUNCER).expect("bouncer loads");
            // Fill most of the first segment, then hover: each `down`
            // crosses into a new segment and returns.
            let m = run_measured(
                &mut vm,
                &format!(
                    "(define (pad n) (if (zero? n) (hover 8 {rounds}) (+ 1 (pad (- n 1)))))
                     (pad 330)"
                ),
            )
            .expect("bouncer runs");
            HysteresisRow { hysteresis, m }
        })
        .collect()
}

// ----------------------------------------------------------------------
// E7 — §3.4 fragmentation
// ----------------------------------------------------------------------

/// One row of the fragmentation comparison.
#[derive(Debug, Clone)]
pub struct FragmentationRow {
    /// One-shot capture policy.
    pub policy: OneShotPolicy,
    /// Number of suspended continuations ("threads").
    pub konts: usize,
    /// Resident stack slots after all captures.
    pub resident_slots: usize,
}

/// §3.4: 100 shallow threads suspended via call/1cc each pin a whole
/// segment (1.6 MB at the paper's 16 KB default) under the fresh-segment
/// policy; sealing with a pad bounds the waste. Residency is probed by a
/// final thread that runs while all the others sit suspended in the run
/// queue.
///
/// # Panics
///
/// Panics if the workload fails.
pub fn fragmentation_experiment(konts: usize) -> Vec<FragmentationRow> {
    [OneShotPolicy::FreshSegment, OneShotPolicy::SealWithPad(64)]
        .into_iter()
        .map(|policy| {
            let cfg = Config { oneshot_policy: policy, cache_limit: 0, ..Config::default() };
            let mut ts = ThreadSystem::with_config(
                Strategy::Call1Cc,
                VmConfig { stack: cfg, ..VmConfig::default() },
            );
            ts.eval("(define probe 0)").expect("setup");
            for _ in 0..konts {
                ts.spawn("(lambda () (thread-yield!))").expect("spawn");
            }
            // The probe runs after every other thread has yielded once.
            ts.spawn(
                "(lambda ()
                   (set! probe (assq-ref (vm-stats) 'resident-slots)))",
            )
            .expect("spawn probe");
            ts.run(0).expect("run");
            let probe = ts.eval("probe").expect("probe read");
            let resident =
                probe.as_fixnum().unwrap_or_else(|| panic!("probe was {probe:?}")) as usize;
            FragmentationRow { policy, konts, resident_slots: resident }
        })
        .collect()
}

// ----------------------------------------------------------------------
// E8 — §3.3 promotion strategies
// ----------------------------------------------------------------------

/// One row of the promotion comparison.
#[derive(Debug, Clone)]
pub struct PromotionRow {
    /// Strategy measured.
    pub strategy: PromotionStrategy,
    /// Length of the one-shot chain promoted by one call/cc.
    pub chain: usize,
    /// Chain links walked (0 under the shared flag).
    pub promotion_steps: u64,
    /// One-shots promoted.
    pub promotions: u64,
}

/// §3.3: promoting a chain of n one-shots costs n steps eagerly, O(1) with
/// the shared flag (the paper's proposed variant).
///
/// # Panics
///
/// Panics if the workload fails.
pub fn promotion_experiment(chain: usize) -> Vec<PromotionRow> {
    [PromotionStrategy::EagerWalk, PromotionStrategy::SharedFlag]
        .into_iter()
        .map(|strategy| {
            let cfg = Config {
                promotion: strategy,
                segment_slots: 64 * 1024,
                copy_bound: 16 * 1024,
                ..Config::default()
            };
            let mut vm = vm_with(cfg);
            let before = vm.stats();
            vm.eval_str(&format!(
                "(define (chain n)
                   (if (zero? n)
                       (call/cc (lambda (k) 0))
                       (+ 1 (call/1cc (lambda (k) (chain (- n 1)))))))
                 (chain {chain})"
            ))
            .expect("chain runs");
            let d = vm.stats().delta_since(&before);
            PromotionRow {
                strategy,
                chain,
                promotion_steps: d.stack.promotion_steps,
                promotions: d.stack.promotions,
            }
        })
        .collect()
}

// ----------------------------------------------------------------------
// E9 — dispatch cost: flat code arena + superinstruction fusion
// ----------------------------------------------------------------------

/// One measured configuration of the dispatch-cost benchmark.
#[derive(Debug, Clone)]
pub struct DispatchRow {
    /// Workload name.
    pub name: &'static str,
    /// Whether peephole superinstruction fusion was enabled.
    pub fused: bool,
    /// Best-of-reps wall-clock milliseconds.
    pub ms: f64,
    /// Bytecode instructions retired (deterministic per configuration).
    pub instructions: u64,
}

impl DispatchRow {
    /// Nanoseconds per retired instruction — the dispatch cost proper,
    /// independent of how many instructions fusion removed.
    pub fn ns_per_instruction(&self) -> f64 {
        self.ms * 1e6 / self.instructions.max(1) as f64
    }
}

/// The scale knobs of the E9 dispatch benchmark.
#[derive(Debug, Clone, Copy)]
pub struct DispatchScale {
    /// Timing repetitions per configuration (best-of is reported).
    pub reps: u32,
    /// `(tak x y z)` arguments.
    pub tak: (i64, i64, i64),
    /// `(ctak x y z)` arguments (continuation-heavy control).
    pub ctak: (i64, i64, i64),
    /// `(fib n)` argument.
    pub fib_n: u32,
    /// `(deep-rounds rounds depth)` arguments.
    pub deep: (u64, u64),
    /// Figure 5 inner loop: threads, calls per switch, per-thread fib n.
    pub fig5: (usize, u64, u32),
}

impl DispatchScale {
    /// A sweep that finishes in a few seconds. Workloads are sized so each
    /// configuration runs for tens of milliseconds — long enough that the
    /// fused-vs-unfused wall-clock difference clears timer noise.
    pub fn quick() -> Self {
        DispatchScale {
            reps: 5,
            tak: (24, 16, 8),
            ctak: (16, 8, 0),
            fib_n: 27,
            deep: (5, 500_000),
            fig5: (10, 8, 21),
        }
    }

    /// The full-size sweep for reported numbers.
    pub fn paper() -> Self {
        DispatchScale {
            reps: 7,
            tak: (24, 16, 8),
            ctak: (18, 12, 6),
            fib_n: 28,
            deep: (5, 2_000_000),
            fig5: (100, 8, 21),
        }
    }
}

/// One VM-hosted dispatch case: best-of-`reps` wall time plus the
/// (deterministic) retired-instruction count.
fn dispatch_case(
    name: &'static str,
    setup: &str,
    run: &str,
    fused: bool,
    reps: u32,
) -> DispatchRow {
    let mut vm = Vm::builder().fuse(fused).build();
    vm.eval_str(setup).expect("dispatch workload loads");
    let mut ms = f64::INFINITY;
    let mut instructions = 0;
    for _ in 0..reps {
        let m = run_measured(&mut vm, run).expect("dispatch workload runs");
        ms = ms.min(m.ms());
        instructions = m.delta.instructions;
    }
    DispatchRow { name, fused, ms, instructions }
}

/// The Figure 5 inner loop under one fusion setting: `threads` call/1cc
/// threads each computing fib, context-switching every `freq` calls. This
/// is the experiment that anchors the perf trajectory — the same loop E1
/// measures, timed fused vs unfused.
fn dispatch_fig5_case(
    fused: bool,
    threads: usize,
    freq: u64,
    fib_n: u32,
    reps: u32,
) -> DispatchRow {
    let mut ms = f64::INFINITY;
    let mut instructions = 0;
    for _ in 0..reps {
        let mut ts = ThreadSystem::with_config(
            Strategy::Call1Cc,
            VmConfig { compiler: CompilerOptions { fuse: fused }, ..VmConfig::default() },
        );
        ts.eval(workloads::FIB).expect("workload loads");
        for _ in 0..threads {
            ts.spawn(&format!("(lambda () (fib {fib_n}))")).expect("spawn");
        }
        let before = ts.stats();
        let start = Instant::now();
        ts.run(freq).expect("threads run");
        ms = ms.min(start.elapsed().as_secs_f64() * 1e3);
        instructions = ts.stats().delta_since(&before).instructions;
    }
    DispatchRow { name: "fig5-loop", fused, ms, instructions }
}

/// E9: every workload under `fuse: false` then `fuse: true` — identical
/// results and control events, fewer dispatches fused. Rows come in
/// unfused/fused pairs per workload.
///
/// # Panics
///
/// Panics if a workload fails.
pub fn dispatch_experiment(scale: DispatchScale) -> Vec<DispatchRow> {
    let (tx, ty, tz) = scale.tak;
    let (cx, cy, cz) = scale.ctak;
    let (rounds, depth) = scale.deep;
    let (threads, freq, fib5) = scale.fig5;
    let mut out = Vec::new();
    for fused in [false, true] {
        out.push(dispatch_case(
            "tak",
            workloads::TAK,
            &format!("(tak {tx} {ty} {tz})"),
            fused,
            scale.reps,
        ));
        out.push(dispatch_case(
            "ctak",
            &workloads::ctak("call/1cc"),
            &format!("(ctak {cx} {cy} {cz})"),
            fused,
            scale.reps,
        ));
        out.push(dispatch_case(
            "fib",
            workloads::FIB,
            &format!("(fib {})", scale.fib_n),
            fused,
            scale.reps,
        ));
        out.push(dispatch_case(
            "deep",
            workloads::DEEP,
            &format!("(deep-rounds {rounds} {depth})"),
            fused,
            scale.reps,
        ));
        out.push(dispatch_fig5_case(fused, threads, freq, fib5, scale.reps));
    }
    out
}

// ----------------------------------------------------------------------
// E10 — GC: the segregated-pool heap under varying collection thresholds
// ----------------------------------------------------------------------

/// A `gc_threshold` that never triggers a collection in practice
/// ("effectively infinite" in the threshold sweep).
pub const GC_UNBOUNDED: usize = usize::MAX >> 1;

/// One (workload, threshold) cell of the GC experiment.
#[derive(Debug, Clone)]
pub struct GcRow {
    /// Workload name.
    pub name: &'static str,
    /// Objects allocated between collections ([`GC_UNBOUNDED`] = never).
    pub gc_threshold: usize,
    /// Wall-clock milliseconds of the measured run.
    pub ms: f64,
    /// Printed result of the measured run. GC is semantically invisible,
    /// so this must not vary with the threshold.
    pub result: String,
    /// Heap words allocated during the measured run (deterministic per
    /// workload — identical across thresholds).
    pub words_allocated: u64,
    /// Heap objects allocated during the measured run.
    pub objects_allocated: u64,
    /// Objects reclaimed by sweeps during the measured run.
    pub objects_freed: u64,
    /// Collections triggered during the measured run.
    pub collections: u64,
    /// Total sweep time during the measured run, nanoseconds.
    pub sweep_ns: u64,
    /// Worst single collection pause observed so far, nanoseconds.
    pub max_pause_ns: u64,
    /// Live heap objects after the final full collection.
    pub live_after: usize,
    /// Whether the final live count differs from the pre-run baseline —
    /// an object the collector failed to reclaim.
    pub leaked: bool,
}

/// The scale knobs of the E10 GC experiment.
#[derive(Debug, Clone)]
pub struct GcScale {
    /// Thresholds swept (objects allocated between collections).
    pub thresholds: Vec<usize>,
    /// `(boyer-run n)` argument.
    pub boyer_runs: u64,
    /// `(ctak x y z)` arguments.
    pub ctak: (i64, i64, i64),
    /// `(deep-rounds rounds depth)` arguments.
    pub deep: (u64, u64),
    /// Figure 5 loop: threads, calls per switch, per-thread fib n.
    pub fig5: (usize, u64, u32),
}

impl GcScale {
    /// A sweep that finishes in a few seconds.
    pub fn quick() -> Self {
        GcScale {
            thresholds: vec![256, 4096, 65536, GC_UNBOUNDED],
            boyer_runs: 1,
            ctak: (16, 8, 0),
            deep: (2, 200_000),
            fig5: (10, 8, 18),
        }
    }

    /// The full-size sweep for reported numbers.
    pub fn paper() -> Self {
        GcScale {
            thresholds: vec![256, 4096, 65536, GC_UNBOUNDED],
            boyer_runs: 2,
            ctak: (18, 12, 6),
            deep: (5, 1_000_000),
            fig5: (100, 8, 21),
        }
    }
}

/// Measures one workload in `vm` under the E10 protocol: warm up with one
/// unmeasured run (boyer and the thread system mutate global state on
/// first use), collect and take a live-count baseline, run measured, then
/// collect again — any live-count growth over the baseline is a leak.
fn gc_case(name: &'static str, threshold: usize, vm: &mut Vm, run: &str) -> GcRow {
    vm.eval_str(run).expect("gc workload warms up");
    vm.take_output();
    vm.collect_now();
    let baseline = vm.heap().len();
    let before = vm.stats();
    let start = Instant::now();
    let value = vm.eval_str(run).expect("gc workload runs");
    let ms = start.elapsed().as_secs_f64() * 1e3;
    let mut result = vm.write_value(&value);
    let output = vm.take_output();
    if !output.is_empty() {
        result.push_str(" | ");
        result.push_str(&output);
    }
    let d = vm.stats().delta_since(&before);
    vm.collect_now();
    let live_after = vm.heap().len();
    GcRow {
        name,
        gc_threshold: threshold,
        ms,
        result,
        words_allocated: d.heap.words_allocated,
        objects_allocated: d.heap.objects_allocated,
        objects_freed: d.heap.objects_freed,
        collections: d.heap.collections,
        sweep_ns: d.heap.sweep_ns,
        max_pause_ns: d.gc_max_pause_ns,
        live_after,
        leaked: live_after != baseline,
    }
}

/// The Figure 5 thread loop as a GC workload: the suspended one-shot
/// continuations are heap roots via the run queue, exercising the
/// kont-registry path of the collector.
fn gc_fig5_case(threshold: usize, threads: usize, freq: u64, fib_n: u32) -> GcRow {
    let mut ts = ThreadSystem::with_config(
        Strategy::Call1Cc,
        VmConfig { gc_threshold: Some(threshold), ..VmConfig::default() },
    );
    ts.eval(workloads::FIB).expect("workload loads");
    let spawn_all = |ts: &mut ThreadSystem| {
        for _ in 0..threads {
            ts.spawn(&format!("(lambda () (fib {fib_n}))")).expect("spawn");
        }
    };
    // Warmup round.
    spawn_all(&mut ts);
    ts.run(freq).expect("threads run");
    ts.vm_mut().collect_now();
    let baseline = ts.vm_mut().heap().len();
    // Measured round.
    let before = ts.stats();
    let start = Instant::now();
    spawn_all(&mut ts);
    let value = ts.run(freq).expect("threads run");
    let ms = start.elapsed().as_secs_f64() * 1e3;
    let result = ts.vm_mut().write_value(&value);
    let d = ts.stats().delta_since(&before);
    ts.vm_mut().collect_now();
    let live_after = ts.vm_mut().heap().len();
    GcRow {
        name: "fig5-threads",
        gc_threshold: threshold,
        ms,
        result,
        words_allocated: d.heap.words_allocated,
        objects_allocated: d.heap.objects_allocated,
        objects_freed: d.heap.objects_freed,
        collections: d.heap.collections,
        sweep_ns: d.heap.sweep_ns,
        max_pause_ns: d.gc_max_pause_ns,
        live_after,
        leaked: live_after != baseline,
    }
}

/// E10: each workload at each collection threshold. Rows are grouped by
/// workload, thresholds in sweep order; every row carries the leak-check
/// verdict, and results must be identical down a workload's group.
///
/// # Panics
///
/// Panics if a workload fails.
pub fn gc_experiment(scale: &GcScale) -> Vec<GcRow> {
    let (cx, cy, cz) = scale.ctak;
    let (rounds, depth) = scale.deep;
    let (threads, freq, fib5) = scale.fig5;
    let cases: [(&'static str, String, String); 3] = [
        ("boyer", workloads::BOYER.to_string(), format!("(boyer-run {})", scale.boyer_runs)),
        ("ctak", workloads::ctak("call/1cc"), format!("(ctak {cx} {cy} {cz})")),
        ("deep", workloads::DEEP.to_string(), format!("(deep-rounds {rounds} {depth})")),
    ];
    let mut out = Vec::new();
    for (name, setup, run) in &cases {
        for &t in &scale.thresholds {
            let mut vm = Vm::builder().gc_threshold(t).build();
            vm.eval_str(setup).expect("gc workload loads");
            out.push(gc_case(name, t, &mut vm, run));
        }
    }
    for &t in &scale.thresholds {
        out.push(gc_fig5_case(t, threads, freq, fib5));
    }
    out
}

// ----------------------------------------------------------------------
// E11 — executor: worker-pool throughput and latency
// ----------------------------------------------------------------------

/// Scale knobs for the E11 pool sweep: a mixed job load (CPU-bound fib,
/// continuation-heavy ctak, deep recursion, and sleep-based I/O-style
/// request handlers) pushed through a [`Pool`](oneshot_exec::Pool) at each
/// (workers × fuel-slice) point.
#[derive(Debug, Clone)]
pub struct ExecScale {
    /// Worker counts to sweep.
    pub workers: Vec<usize>,
    /// Fuel slices (procedure calls per preemption) to sweep.
    pub fuel_slices: Vec<u64>,
    /// fib jobs per cell and the fib argument.
    pub fib: (usize, u64),
    /// ctak jobs per cell and the (x, y, z) arguments.
    pub ctak: (usize, (i64, i64, i64)),
    /// deep-recursion jobs per cell and the recursion depth.
    pub deep: (usize, u64),
    /// I/O-style jobs per cell and the per-job sleep in milliseconds.
    /// These model request handlers blocked on a backend: the worker's OS
    /// thread sleeps, so they are the component that scales with worker
    /// count even on a single-core host.
    pub io: (usize, u64),
}

impl ExecScale {
    /// A sweep that finishes in seconds.
    #[must_use]
    pub fn quick() -> Self {
        ExecScale {
            workers: vec![1, 2, 4],
            fuel_slices: vec![512, 8192],
            fib: (4, 14),
            ctak: (4, (12, 6, 0)),
            deep: (4, 20_000),
            io: (12, 15),
        }
    }

    /// The full sweep.
    #[must_use]
    pub fn paper() -> Self {
        ExecScale {
            workers: vec![1, 2, 4, 8],
            fuel_slices: vec![256, 4096, 65_536],
            fib: (8, 17),
            ctak: (8, (14, 7, 0)),
            deep: (8, 100_000),
            io: (32, 25),
        }
    }

    /// Drops worker counts above `max` (used by `--max-workers` for CI
    /// smoke runs on small machines).
    pub fn clamp_workers(&mut self, max: usize) {
        self.workers.retain(|&w| w <= max.max(1));
        if self.workers.is_empty() {
            self.workers.push(1);
        }
    }

    /// Total jobs per sweep cell.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.fib.0 + self.ctak.0 + self.deep.0 + self.io.0
    }

    /// The mixed job list, interleaved round-robin across the four classes
    /// so every worker sees a mix rather than a run of one kind.
    fn specs(&self) -> Vec<oneshot_exec::JobSpec> {
        use oneshot_exec::JobSpec;
        let (cx, cy, cz) = self.ctak.1;
        let mut classes: [Vec<JobSpec>; 4] = [
            (0..self.fib.0)
                .map(|i| {
                    JobSpec::new(
                        format!("fib-{i}"),
                        format!("{} (fib {})", workloads::FIB, self.fib.1),
                    )
                })
                .collect(),
            (0..self.ctak.0)
                .map(|i| {
                    JobSpec::new(
                        format!("ctak-{i}"),
                        format!("{} (ctak {cx} {cy} {cz})", workloads::ctak("call/1cc")),
                    )
                })
                .collect(),
            (0..self.deep.0)
                .map(|i| {
                    JobSpec::new(
                        format!("deep-{i}"),
                        format!("{} (deep-rounds 1 {})", workloads::DEEP, self.deep.1),
                    )
                })
                .collect(),
            (0..self.io.0)
                .map(|i| {
                    JobSpec::new(
                        format!("io-{i}"),
                        format!("(begin (sleep-ms {}) 'served)", self.io.1),
                    )
                })
                .collect(),
        ];
        let mut specs = Vec::with_capacity(self.jobs());
        while classes.iter().any(|c| !c.is_empty()) {
            for class in &mut classes {
                if !class.is_empty() {
                    specs.push(class.remove(0));
                }
            }
        }
        specs
    }
}

/// One cell of the E11 sweep.
#[derive(Debug, Clone)]
pub struct ExecRow {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Fuel slice (procedure calls per preemption).
    pub fuel_slice: u64,
    /// Jobs submitted.
    pub jobs: usize,
    /// Wall-clock milliseconds from first submit to last outcome.
    pub wall_ms: f64,
    /// Completed jobs per second of wall clock.
    pub throughput: f64,
    /// Median submit-to-outcome latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile submit-to-outcome latency in milliseconds.
    pub p99_ms: f64,
    /// Jobs that finished with a value (must equal `jobs` here: the load
    /// is defect-free).
    pub completed: u64,
    /// Jobs that failed for any reason.
    pub failed: u64,
    /// Fuel-budget timeouts (subset of `failed`).
    pub timed_out: u64,
    /// Job panics (subset of `failed`).
    pub panicked: u64,
    /// Jobs taken from a peer's deque.
    pub steals: u64,
    /// Preemption requeues.
    pub requeues: u64,
    /// Engine fuel slices run.
    pub slices: u64,
    /// Deepest the injector queue got.
    pub queue_depth_highwater: u64,
    /// Bytecode instructions summed over every worker VM.
    pub instructions: u64,
    /// One-shot captures (mostly engine preemptions) summed over workers.
    pub captures_one: u64,
    /// One-shot reinstatements summed over workers.
    pub reinstates_one: u64,
    /// Stack slots copied — stays near zero: engine switches are one-shot
    /// captures, so only overflow hysteresis copies anything.
    pub slots_copied: u64,
}

fn percentile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Runs the mixed load through one pool configuration.
///
/// # Panics
///
/// Panics if any job fails — the load is pure and defect-free, so a
/// failure is a build defect.
pub fn exec_case(workers: usize, fuel_slice: u64, scale: &ExecScale) -> ExecRow {
    use oneshot_exec::Pool;
    let pool =
        Pool::builder().workers(workers).fuel_slice(fuel_slice).build().expect("pool spawns");
    let start = Instant::now();
    let handles: Vec<_> =
        scale.specs().into_iter().map(|spec| pool.submit(spec).expect("job submits")).collect();
    let mut latencies_ms: Vec<f64> = handles
        .iter()
        .map(|h| {
            let outcome = h.wait();
            if let Err(e) = &outcome.result {
                panic!("E11 job {} failed: {e}", outcome.name);
            }
            outcome.latency.as_secs_f64() * 1e3
        })
        .collect();
    let wall = start.elapsed();
    latencies_ms.sort_by(f64::total_cmp);
    let report = pool.shutdown().expect("pool drains");
    let c = report.counters;
    let vm_sum =
        |f: fn(&oneshot_exec::WorkerReport) -> u64| -> u64 { report.workers.iter().map(f).sum() };
    let wall_ms = wall.as_secs_f64() * 1e3;
    ExecRow {
        workers,
        fuel_slice,
        jobs: handles.len(),
        wall_ms,
        throughput: handles.len() as f64 / wall.as_secs_f64(),
        p50_ms: percentile_ms(&latencies_ms, 0.50),
        p99_ms: percentile_ms(&latencies_ms, 0.99),
        completed: c.completed,
        failed: c.failed,
        timed_out: c.timed_out,
        panicked: c.panicked,
        steals: c.steals,
        requeues: c.requeues,
        slices: c.slices,
        queue_depth_highwater: c.queue_depth_highwater,
        instructions: vm_sum(|w| w.vm.instructions),
        captures_one: vm_sum(|w| w.vm.captures_one),
        reinstates_one: vm_sum(|w| w.vm.reinstates_one),
        slots_copied: vm_sum(|w| w.vm.slots_copied),
    }
}

/// The full E11 sweep: every worker count × every fuel slice.
pub fn exec_experiment(scale: &ExecScale) -> Vec<ExecRow> {
    let mut out = Vec::new();
    for &fuel_slice in &scale.fuel_slices {
        for &workers in &scale.workers {
            out.push(exec_case(workers, fuel_slice, scale));
        }
    }
    out
}

// ----------------------------------------------------------------------
// E12 — chaos sweep: recovery under deterministic fault injection
// ----------------------------------------------------------------------

/// One cell of the E12 sweep: a workload run under `seeds` fault
/// schedules at one fault horizon (smaller horizon = denser faults).
#[derive(Debug, Clone)]
pub struct ChaosRow {
    /// Workload label.
    pub workload: &'static str,
    /// Fault countdown horizon the schedules draw from.
    pub horizon: u64,
    /// Schedules run.
    pub runs: u64,
    /// Runs that finished with no condition raised.
    pub clean: u64,
    /// Runs where a guard caught the fault and the program recovered.
    pub recovered: u64,
    /// Runs ending in a structured uncaught condition (fault fired
    /// outside the guard's extent).
    pub uncaught: u64,
    /// Injected faults the VMs consumed, summed.
    pub faults_injected: u64,
    /// Conditions raised (caught or not), summed.
    pub conditions_raised: u64,
    /// Wall-clock for the whole cell, in milliseconds.
    pub wall_ms: f64,
}

impl ChaosRow {
    /// Fraction of fault-affected runs the guard recovered.
    pub fn recovery_rate(&self) -> f64 {
        let affected = self.recovered + self.uncaught;
        if affected == 0 {
            1.0
        } else {
            self.recovered as f64 / affected as f64
        }
    }
}

/// The guarded chaos workloads: each returns `(ok . #f)` on a clean run
/// or `(caught . kind)` when the guard recovers a condition.
pub const CHAOS_WORKLOADS: &[(&str, &str)] = &[
    (
        "alloc",
        "(call-with-guard
           (lambda (c) (cons 'caught (condition-kind c)))
           (lambda ()
             (letrec ((chew (lambda (n acc)
                              (if (zero? n) acc (chew (- n 1) (cons n acc))))))
               (begin (length (chew 400 '())) '(ok . #f)))))",
    ),
    (
        "control",
        "(call-with-guard
           (lambda (c) (cons 'caught (condition-kind c)))
           (lambda ()
             (letrec ((deep (lambda (n) (if (zero? n) 0 (+ 1 (deep (- n 1)))))))
               (begin
                 (dynamic-wind
                   (lambda () #t)
                   (lambda () (+ (deep 400) (call/1cc (lambda (k) (k 1)))))
                   (lambda () #t))
                 '(ok . #f)))))",
    ),
];

/// Runs one chaos cell: `seeds` schedules of `workload` at `horizon`.
pub fn chaos_case(workload: (&'static str, &str), horizon: u64, seeds: u64) -> ChaosRow {
    use oneshot_vm::FaultPlan;
    let started = Instant::now();
    let mut row = ChaosRow {
        workload: workload.0,
        horizon,
        runs: seeds,
        clean: 0,
        recovered: 0,
        uncaught: 0,
        faults_injected: 0,
        conditions_raised: 0,
        wall_ms: 0.0,
    };
    for seed in 0..seeds {
        let mut vm = Vm::builder()
            .fault_plan(FaultPlan::seeded(seed.wrapping_mul(0x9E37).wrapping_add(horizon), horizon))
            .heap_budget(50_000)
            .max_stack_segments(16)
            .build();
        match vm.eval_str(workload.1) {
            Ok(v) => {
                if vm.write_value(&v) == "(ok . #f)" {
                    row.clean += 1;
                } else {
                    row.recovered += 1;
                }
            }
            Err(_) => row.uncaught += 1,
        }
        let s = vm.stats();
        row.faults_injected += s.faults_injected;
        row.conditions_raised += s.conditions_raised;
    }
    row.wall_ms = started.elapsed().as_secs_f64() * 1e3;
    row
}

/// The full E12 sweep: workload × fault horizon.
pub fn chaos_experiment(horizons: &[u64], seeds: u64) -> Vec<ChaosRow> {
    let mut out = Vec::new();
    for &workload in CHAOS_WORKLOADS {
        for &horizon in horizons {
            out.push(chaos_case(workload, horizon, seeds));
        }
    }
    out
}

/// Measures the cost of the guard plumbing itself: the same workload run
/// with no guards at all versus every guard armed but never tripping.
/// Returns `(baseline_ms, guarded_ms)` per-iteration averages.
pub fn chaos_overhead(iters: u64) -> (f64, f64) {
    let src = "(letrec ((chew (lambda (n acc)
                          (if (zero? n) acc (chew (- n 1) (cons n acc)))))
                    (deep (lambda (n) (if (zero? n) 0 (+ 1 (deep (- n 1)))))))
                 (+ (length (chew 300 '())) (deep 300)))";
    let time = |vm: &mut Vm| {
        // Warm-up run, then the timed batch.
        vm.eval_str(src).expect("overhead workload must succeed");
        let started = Instant::now();
        for _ in 0..iters {
            vm.eval_str(src).expect("overhead workload must succeed");
        }
        started.elapsed().as_secs_f64() * 1e3 / iters as f64
    };
    let baseline = time(&mut Vm::new());
    // Budgets far above the workload's needs: the guard checks run on
    // every safe point but never fire.
    let guarded =
        time(&mut Vm::builder().heap_budget(10_000_000).max_stack_segments(1 << 20).build());
    (baseline, guarded)
}

// ----------------------------------------------------------------------
// E13 — reactor: green-thread I/O at 10k+ concurrent continuations
// ----------------------------------------------------------------------

/// Scale knobs for the E13 reactor sweep: loopback echo pairs (each pair
/// is a handler green thread plus a client green thread multiplexed by
/// the pool's `poll(2)` reactor) and timer storms (every job suspended in
/// `(timer-wait ms)` at once).
#[derive(Debug, Clone)]
pub struct ReactorScale {
    /// Worker counts to sweep.
    pub workers: Vec<usize>,
    /// Echo connection counts to sweep; each is 2 green threads and 3 fds.
    pub echo_pairs: Vec<usize>,
    /// Echo messages per connection.
    pub echo_rounds: usize,
    /// Timer storms as `(jobs, wait_ms)`. The wait must comfortably
    /// exceed the submit phase so the whole storm is suspended at once —
    /// `blocked_highwater` then records the true peak concurrency.
    pub timer_storms: Vec<(usize, u64)>,
}

impl ReactorScale {
    /// A sweep that finishes in seconds (CI smoke).
    #[must_use]
    pub fn quick() -> Self {
        ReactorScale {
            workers: vec![1, 2],
            echo_pairs: vec![64, 256],
            echo_rounds: 2,
            timer_storms: vec![(2_000, 1_000)],
        }
    }

    /// The full sweep: 10k green threads on loopback echo (5000 pairs x 3
    /// fds stays under both the per-VM socket cap and typical `ulimit -n`)
    /// and a 100k-continuation timer storm.
    #[must_use]
    pub fn paper() -> Self {
        ReactorScale {
            workers: vec![1, 2, 4],
            echo_pairs: vec![1_000, 5_000],
            echo_rounds: 4,
            timer_storms: vec![(10_000, 5_000), (100_000, 30_000)],
        }
    }

    /// Drops worker counts above `max` (used by `--max-workers` for CI
    /// smoke runs on small machines).
    pub fn clamp_workers(&mut self, max: usize) {
        self.workers.retain(|&w| w <= max.max(1));
        if self.workers.is_empty() {
            self.workers.push(1);
        }
    }
}

/// One cell of the E13 sweep.
#[derive(Debug, Clone)]
pub struct ReactorRow {
    /// `"echo"` or `"timer-storm"`.
    pub mode: &'static str,
    /// Readiness backend the pool's reactors ran (`"poll"` or `"epoll"` —
    /// whatever `Backend::from_env` selected for this process).
    pub backend: &'static str,
    /// Worker threads in the pool.
    pub workers: usize,
    /// Green threads the cell keeps in flight (2 per echo pair; one per
    /// storm timer).
    pub green_threads: usize,
    /// Operations measured: verified echo round trips, or timer wakeups.
    pub ops: usize,
    /// Wall-clock milliseconds from first load submit to last outcome.
    pub wall_ms: f64,
    /// Operations per second of wall clock.
    pub throughput: f64,
    /// Median per-op latency in microseconds: echo round-trip time, or
    /// timer wake lateness beyond the requested wait.
    pub p50_us: f64,
    /// 99th-percentile per-op latency in microseconds.
    pub p99_us: f64,
    /// Worst per-op latency in microseconds.
    pub max_us: f64,
    /// Jobs that finished with a value.
    pub completed: u64,
    /// Jobs that failed for any reason (must be 0: the load is
    /// defect-free).
    pub failed: u64,
    /// I/O suspensions (continuation sealed, fd registered).
    pub io_blocked: u64,
    /// Reactor readiness deliveries that requeued a continuation.
    pub io_wakeups: u64,
    /// Timer suspensions.
    pub timer_waits: u64,
    /// Peak simultaneously-blocked continuations on any single worker —
    /// the honest concurrency measure.
    pub blocked_highwater: u64,
    /// Open sockets after the drain (must be 0).
    pub leaked_sockets: i64,
    /// In-use (uncached) stack segments after the drain, summed over
    /// workers: a sealed continuation that leaked would show up here.
    pub live_segments: i64,
}

/// Pinned per shard worker: bind `n` loopback listeners (one per
/// connection — a readiness wakeup never herds accepters onto a shared
/// fd) plus the echo handler, and return the port list.
fn reactor_setup_src(n: usize) -> String {
    format!(
        "(define listeners
           (let loop ((i 0) (acc '()))
             (if (< i {n})
                 (loop (+ i 1) (cons (tcp-listen 0) acc))
                 (list->vector (reverse acc)))))
         (define (serve-echo lst)
           (let ((c (tcp-accept lst)))
             (let loop ()
               (let ((d (tcp-read c 4096)))
                 (if (eq? d 'eof)
                     (begin (tcp-close c) (tcp-close lst) 'served)
                     (begin (tcp-write c d) (loop)))))))
         (let loop ((i 0) (acc '()))
           (if (< i {n})
               (loop (+ i 1) (cons (tcp-local-port (vector-ref listeners i)) acc))
               (reverse acc)))"
    )
}

/// Pinned to every worker (clients are unpinned, so every VM needs it):
/// an echo client that verifies each round and returns the list of
/// per-round round-trip times in microseconds.
const REACTOR_CLIENT_LIB: &str = "(define (read-n s n acc)
       (if (>= (string-length acc) n)
           acc
           (let ((d (tcp-read s 4096)))
             (if (eq? d 'eof) acc (read-n s n (string-append acc d))))))
     (define (echo-client port msg rounds)
       (let ((s (tcp-connect port)))
         (let loop ((i 0) (acc '()))
           (if (< i rounds)
               (let ((t0 (now-us)))
                 (tcp-write s msg)
                 (let ((r (read-n s (string-length msg) \"\")))
                   (if (string=? r msg)
                       (loop (+ i 1) (cons (- (now-us) t0) acc))
                       'corrupt)))
               (begin (tcp-close s) (reverse acc))))))
     'lib";

/// Pinned per worker after the drain: `(live-sockets . in-use-segments)`.
/// Cached segments are excluded — a drained continuation's segments land
/// in the reuse cache, which is recycling, not leakage.
const REACTOR_AUDIT: &str = "(cons (%net-live) (cdr (assq 'live-uncached-segments (vm-stats))))";

/// Parses a flat Scheme list of fixnums, e.g. `"(118 92 87)"`.
fn parse_fixnum_list(shown: &str) -> Vec<i64> {
    shown
        .trim_matches(['(', ')'])
        .split_whitespace()
        .map(|t| t.parse().expect("fixnum list element"))
        .collect()
}

/// Runs the post-drain leak audit on every worker of a still-live pool.
fn reactor_audit(pool: &oneshot_exec::Pool, workers: usize) -> (i64, i64) {
    use oneshot_exec::JobSpec;
    let (mut sockets, mut segments) = (0i64, 0i64);
    for w in 0..workers {
        let shown = pool
            .submit(JobSpec::new(format!("audit-{w}"), REACTOR_AUDIT).pin(w))
            .expect("audit submits")
            .wait()
            .result
            .expect("audit runs");
        let (s, g) = shown.trim_matches(['(', ')']).split_once(" . ").expect("audit pair");
        sockets += s.parse::<i64>().expect("socket count");
        segments += g.parse::<i64>().expect("segment count");
    }
    (sockets, segments)
}

/// Assembles a [`ReactorRow`] from a finished cell's latency samples and
/// the drained pool's counter snapshot.
fn reactor_row(
    mode: &'static str,
    workers: usize,
    green_threads: usize,
    mut samples_us: Vec<f64>,
    wall: std::time::Duration,
    c: &oneshot_exec::PoolCountersSnapshot,
    audit: (i64, i64),
) -> ReactorRow {
    samples_us.sort_by(f64::total_cmp);
    ReactorRow {
        mode,
        backend: c.reactor_backend,
        workers,
        green_threads,
        ops: samples_us.len(),
        wall_ms: wall.as_secs_f64() * 1e3,
        throughput: samples_us.len() as f64 / wall.as_secs_f64(),
        p50_us: percentile_ms(&samples_us, 0.50),
        p99_us: percentile_ms(&samples_us, 0.99),
        max_us: percentile_ms(&samples_us, 1.0),
        completed: c.completed,
        failed: c.failed,
        io_blocked: c.io_blocked,
        io_wakeups: c.io_wakeups,
        timer_waits: c.timer_waits,
        blocked_highwater: c.blocked_highwater,
        leaked_sockets: audit.0,
        live_segments: audit.1,
    }
}

/// Runs one loopback-echo cell: `pairs` connections, each a pinned
/// handler green thread and an unpinned client green thread, sharded
/// across `workers`.
///
/// # Panics
///
/// Panics if any echo fails to verify or any job fails — the load is
/// defect-free, so a failure is a build defect.
pub fn reactor_echo_case(workers: usize, pairs: usize, rounds: usize) -> ReactorRow {
    use oneshot_exec::{JobSpec, Pool};
    let pool = Pool::builder()
        .workers(workers)
        .resident_cap(2 * pairs.div_ceil(workers) + 16)
        .queue_capacity(2 * pairs + 64)
        .fuel_slice(2048)
        .build()
        .expect("pool spawns");

    // Shard setup: listeners + handler library pinned per worker, the
    // client library pinned to every worker.
    let per_shard: Vec<usize> =
        (0..workers).map(|w| pairs / workers + usize::from(w < pairs % workers)).collect();
    let mut ports: Vec<(usize, u16)> = Vec::with_capacity(pairs); // (worker, port)
    for (w, &n) in per_shard.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let shown = pool
            .submit(JobSpec::new(format!("setup-{w}"), reactor_setup_src(n)).pin(w))
            .expect("setup submits")
            .wait()
            .result
            .expect("listeners bind");
        for p in shown.trim_matches(['(', ')']).split_whitespace() {
            ports.push((w, p.parse().expect("port list")));
        }
    }
    assert_eq!(ports.len(), pairs);
    for w in 0..workers {
        let ok = pool
            .submit(JobSpec::new(format!("client-lib-{w}"), REACTOR_CLIENT_LIB).pin(w))
            .expect("lib submits")
            .wait()
            .result
            .expect("client lib loads");
        assert_eq!(ok, "lib");
    }

    // The load: one pinned handler per listener, one unpinned client per
    // connection.
    let deadline = std::time::Duration::from_secs(300);
    let start = Instant::now();
    let handlers: Vec<_> = ports
        .iter()
        .enumerate()
        .map(|(i, &(w, _))| {
            let slot = per_shard[..w].iter().sum::<usize>();
            pool.submit(
                JobSpec::new(
                    format!("handler-{i}"),
                    format!("(serve-echo (vector-ref listeners {}))", i - slot),
                )
                .pin(w)
                .deadline(deadline),
            )
            .expect("handler submits")
        })
        .collect();
    let clients: Vec<_> = ports
        .iter()
        .enumerate()
        .map(|(i, &(_, port))| {
            pool.submit(
                JobSpec::new(
                    format!("client-{i}"),
                    format!("(echo-client {port} \"e13-payload-{i}\" {rounds})"),
                )
                .deadline(deadline),
            )
            .expect("client submits")
        })
        .collect();

    let mut rtts_us: Vec<f64> = Vec::with_capacity(pairs * rounds);
    for h in &clients {
        let outcome = h.wait();
        let shown = match outcome.result.as_deref() {
            Ok(shown) if shown != "corrupt" => shown.to_string(),
            other => panic!("E13 client {} failed: {other:?}", outcome.name),
        };
        rtts_us.extend(parse_fixnum_list(&shown).into_iter().map(|us| us as f64));
    }
    for h in &handlers {
        assert_eq!(h.wait().result.as_deref(), Ok("served"), "handler must drain");
    }
    let wall = start.elapsed();
    assert_eq!(rtts_us.len(), pairs * rounds);

    let audit = reactor_audit(&pool, workers);
    let report = pool.shutdown().expect("pool drains");
    reactor_row("echo", workers, 2 * pairs, rtts_us, wall, &report.counters, audit)
}

/// Runs one timer-storm cell: `jobs` green threads all suspended in
/// `(timer-wait wait_ms)` at once; each returns its wake lateness in
/// microseconds.
///
/// # Panics
///
/// Panics if any job fails or the storm never reaches full suspension
/// (`wait_ms` must exceed the submit phase).
pub fn reactor_timer_case(workers: usize, jobs: usize, wait_ms: u64) -> ReactorRow {
    use oneshot_exec::{JobSpec, Pool};
    let pool = Pool::builder()
        .workers(workers)
        .resident_cap(jobs.div_ceil(workers) + 8)
        .queue_capacity(jobs + 64)
        .fuel_slice(2048)
        .build()
        .expect("pool spawns");
    let deadline = std::time::Duration::from_millis(wait_ms) + std::time::Duration::from_secs(300);
    let src =
        format!("(let ((t0 (now-us))) (timer-wait {wait_ms}) (- (now-us) t0 {}))", wait_ms * 1000);
    let start = Instant::now();
    let handles: Vec<_> = (0..jobs)
        .map(|i| {
            pool.submit(JobSpec::new(format!("storm-{i}"), src.clone()).deadline(deadline))
                .expect("storm submits")
        })
        .collect();
    let submit_ms = start.elapsed().as_secs_f64() * 1e3;
    let lateness_us: Vec<f64> = handles
        .iter()
        .map(|h| {
            let outcome = h.wait();
            match outcome.result.as_deref() {
                Ok(shown) => shown.parse::<f64>().expect("lateness fixnum"),
                Err(e) => panic!("E13 storm job {} failed: {e}", outcome.name),
            }
        })
        .collect();
    let wall = start.elapsed();
    assert!(
        submit_ms < wait_ms as f64,
        "submit phase ({submit_ms:.0} ms) outlasted the {wait_ms} ms wait: \
         the storm never reached full suspension"
    );

    let audit = reactor_audit(&pool, workers);
    let report = pool.shutdown().expect("pool drains");
    reactor_row("timer-storm", workers, jobs, lateness_us, wall, &report.counters, audit)
}

/// The full E13 sweep: echo cells then timer storms, each across every
/// worker count.
pub fn reactor_experiment(scale: &ReactorScale) -> Vec<ReactorRow> {
    let mut out = Vec::new();
    for &pairs in &scale.echo_pairs {
        for &workers in &scale.workers {
            out.push(reactor_echo_case(workers, pairs, scale.echo_rounds));
        }
    }
    for &(jobs, wait_ms) in &scale.timer_storms {
        for &workers in &scale.workers {
            out.push(reactor_timer_case(workers, jobs, wait_ms));
        }
    }
    out
}

// ----------------------------------------------------------------------
// E15 — reactor scaling: backend x blocked-fd curves, storm lateness,
//       shared-listener throughput
// ----------------------------------------------------------------------

/// Scale knobs for the E15 backend-scaling sweep. Every case runs once
/// per readiness backend (`poll(2)` and edge-triggered `epoll(7)`,
/// selected programmatically via `PoolBuilder::reactor_backend`, so both
/// run in one process), making the sweep a head-to-head under identical
/// load: the per-wakeup cost curve as blocked fds grow, timer-storm wake
/// lateness, and shared-listener echo throughput.
#[derive(Debug, Clone)]
pub struct E15Scale {
    /// Worker counts for the storm and shared-listener cases. The
    /// blocked-fd probe always runs on one worker so every parked fd
    /// sits in the probe's own reactor interest set.
    pub workers: Vec<usize>,
    /// Parked-connection counts for the blocked-fd probe. Each parked
    /// connection is one guest socket suspended in `(tcp-read s 4)` plus
    /// its Rust-held silent peer, so a point costs `2n` fds and `n`
    /// sealed continuations.
    pub parked: Vec<usize>,
    /// Sequential echo round trips the probe measures at each point.
    pub probe_rounds: usize,
    /// The timer storm as `(jobs, waits_per_job, wait_ms)`: total timer
    /// deliveries are `jobs * waits_per_job`.
    pub storm: (usize, usize, u64),
    /// Connections for the shared-listener echo case (requested; the fd
    /// budget may clamp it — rows record requested vs actual).
    pub serve_conns: usize,
    /// Echo rounds per shared-listener connection.
    pub serve_rounds: usize,
}

impl E15Scale {
    /// A sweep that finishes in seconds (CI smoke).
    #[must_use]
    pub fn quick() -> Self {
        E15Scale {
            workers: vec![1, 2],
            parked: vec![0, 64, 256],
            probe_rounds: 64,
            storm: (400, 5, 10),
            serve_conns: 200,
            serve_rounds: 2,
        }
    }

    /// The full sweep: probe curves requested out to 100k parked fds (the
    /// process fd budget clamps the top point, recorded per row), a
    /// million timer deliveries (10k jobs x 100 waits), and a
    /// 10k-connection echo.
    #[must_use]
    pub fn paper() -> Self {
        E15Scale {
            workers: vec![1, 2, 4],
            parked: vec![0, 1_000, 4_000, 100_000],
            probe_rounds: 200,
            storm: (10_000, 100, 5),
            serve_conns: 10_000,
            serve_rounds: 4,
        }
    }

    /// Drops worker counts above `max` (used by `--max-workers`).
    pub fn clamp_workers(&mut self, max: usize) {
        self.workers.retain(|&w| w <= max.max(1));
        if self.workers.is_empty() {
            self.workers.push(1);
        }
    }
}

/// One cell of the E15 sweep.
#[derive(Debug, Clone)]
pub struct E15Row {
    /// `"blocked-probe"`, `"timer-storm"`, or `"serve-echo"`.
    pub mode: &'static str,
    /// Readiness backend the pool ran (`"poll"` or `"epoll"`).
    pub backend: &'static str,
    /// Worker threads in the pool.
    pub workers: usize,
    /// The requested scale point: parked connections, total timer waits,
    /// or shared-listener connections.
    pub requested: usize,
    /// The point actually run after clamping to the fd budget. Equal to
    /// `requested` when the budget sufficed.
    pub actual: usize,
    /// Operations measured: probe round trips, timer deliveries, or
    /// verified echo round trips.
    pub ops: usize,
    /// Wall-clock milliseconds over the measured phase.
    pub wall_ms: f64,
    /// Operations per second of wall clock.
    pub throughput: f64,
    /// Median per-op latency in microseconds (probe/echo round-trip
    /// time; storm mean wake lateness per job).
    pub p50_us: f64,
    /// 99th-percentile per-op latency in microseconds.
    pub p99_us: f64,
    /// Worst per-op latency in microseconds.
    pub max_us: f64,
    /// Jobs that finished with a value.
    pub completed: u64,
    /// Jobs that failed for any reason (must be 0).
    pub failed: u64,
    /// I/O suspensions.
    pub io_blocked: u64,
    /// Reactor readiness deliveries.
    pub io_wakeups: u64,
    /// Timer suspensions.
    pub timer_waits: u64,
    /// Peak simultaneously-blocked continuations on any single worker.
    pub blocked_highwater: u64,
    /// Largest single-harvest resume batch on any worker: how many
    /// sealed continuations one reactor pass requeued at once.
    pub resume_depth_highwater: u64,
    /// Shared-listener accepts routed to each worker (empty outside
    /// `serve-echo`) — flat when distribution is doing its job.
    pub accepts_per_worker: Vec<u64>,
    /// Most accepted-but-unadopted connections pending at once.
    pub accept_queue_highwater: u64,
    /// Timer wake-lateness histogram, bucket bounds
    /// [`WAKE_LATENESS_BUCKETS_MS`](oneshot_exec::WAKE_LATENESS_BUCKETS_MS)
    /// plus an unbounded tail; measured inside the reactor at delivery.
    pub wake_lateness: Vec<u64>,
    /// Bytecode instructions executed, summed over workers. For the
    /// timer storm this must match across backends cell-for-cell: the
    /// backend is pure readiness plumbing, invisible to the guest.
    pub instructions: u64,
    /// Open sockets after the drain (must be 0).
    pub leaked_sockets: i64,
    /// In-use (uncached) stack segments after the drain (a leaked sealed
    /// continuation would show up here).
    pub live_segments: i64,
}

/// Clamps a connection count to the process fd budget: 2 fds per
/// connection (both ends live in-process) plus slack for listeners,
/// wake pipes, and the probe pair.
fn e15_clamp_conns(requested: usize, max_fds: usize) -> usize {
    requested.min(max_fds.saturating_sub(64) / 2)
}

/// Assembles an [`E15Row`] from a finished cell.
#[allow(clippy::too_many_arguments)]
fn e15_row(
    mode: &'static str,
    workers: usize,
    requested: usize,
    actual: usize,
    ops: usize,
    mut samples_us: Vec<f64>,
    wall: std::time::Duration,
    report: &oneshot_exec::PoolReport,
    audit: (i64, i64),
) -> E15Row {
    let c = &report.counters;
    samples_us.sort_by(f64::total_cmp);
    E15Row {
        mode,
        backend: c.reactor_backend,
        workers,
        requested,
        actual,
        ops,
        wall_ms: wall.as_secs_f64() * 1e3,
        throughput: ops as f64 / wall.as_secs_f64(),
        p50_us: percentile_ms(&samples_us, 0.50),
        p99_us: percentile_ms(&samples_us, 0.99),
        max_us: percentile_ms(&samples_us, 1.0),
        completed: c.completed,
        failed: c.failed,
        io_blocked: c.io_blocked,
        io_wakeups: c.io_wakeups,
        timer_waits: c.timer_waits,
        blocked_highwater: c.blocked_highwater,
        resume_depth_highwater: c.resume_depth_highwater.iter().copied().max().unwrap_or(0),
        accepts_per_worker: c.accepts_per_worker.clone(),
        accept_queue_highwater: c.accept_queue_highwater,
        wake_lateness: c.wake_lateness.clone(),
        instructions: report.workers.iter().map(|w| w.vm.instructions).sum(),
        leaked_sockets: audit.0,
        live_segments: audit.1,
    }
}

/// Runs one blocked-fd probe cell: `parked` guest connections suspended
/// in `(tcp-read s 4)` against Rust-held peers that stay silent, then a
/// single echo pair driven through the same single-worker reactor for
/// `rounds` sequential round trips. Under `poll(2)` every probe wakeup
/// rebuilds and scans an interest set proportional to the parked count;
/// under edge-triggered `epoll(7)` the kernel hands over only the ready
/// fd, so the latency curve stays flat as `parked` grows.
///
/// Teardown releases every parked connection (the Rust peer writes its
/// 4-byte payload), so the cell also audits that mass wakeup and close
/// of thousands of sealed continuations leaks nothing.
///
/// # Panics
///
/// Panics if any job fails, a parked job never suspends, or a socket or
/// segment leaks — the load is defect-free, so a failure is a build
/// defect.
pub fn e15_probe_case(
    backend: oneshot_exec::Backend,
    parked_req: usize,
    rounds: usize,
    max_fds: usize,
) -> E15Row {
    use oneshot_exec::{JobSpec, Pool};
    use std::io::Write as _;
    let parked = e15_clamp_conns(parked_req, max_fds);
    let pool = Pool::builder()
        .workers(1)
        .resident_cap(parked + 16)
        .queue_capacity(parked + 64)
        .fuel_slice(2048)
        .reactor_backend(backend)
        .build()
        .expect("pool spawns");

    // The Rust side of the parked connections: accept every guest
    // connect and hold the peer silent until teardown.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("probe listener binds");
    let port = listener.local_addr().expect("local addr").port();
    let acceptor = std::thread::spawn(move || {
        (0..parked)
            .map(|_| listener.accept().expect("parked peer accepts").0)
            .collect::<Vec<std::net::TcpStream>>()
    });
    let parked_jobs: Vec<_> = (0..parked)
        .map(|i| {
            pool.submit(JobSpec::new(
                format!("parked-{i}"),
                format!(
                    "(let ((s (tcp-connect {port}))) \
                       (let ((d (tcp-read s 4))) (tcp-close s) d))"
                ),
            ))
            .expect("parked job submits")
        })
        .collect();
    let peers = acceptor.join().expect("acceptor thread");
    // Wait until every parked job is really suspended on the reactor —
    // the probe must run against a full interest set, not a filling one.
    let deadline = Instant::now() + std::time::Duration::from_secs(120);
    while pool.stats().io_blocked < parked as u64 {
        assert!(Instant::now() < deadline, "parked jobs never all suspended");
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    // The probe: one pinned echo pair through the same loaded reactor.
    let shown = pool
        .submit(JobSpec::new("probe-setup", reactor_setup_src(1)).pin(0))
        .expect("setup submits")
        .wait()
        .result
        .expect("probe listener binds");
    let probe_port: u16 = shown.trim_matches(['(', ')']).trim().parse().expect("probe port");
    let lib = pool
        .submit(JobSpec::new("probe-lib", REACTOR_CLIENT_LIB).pin(0))
        .expect("lib submits")
        .wait()
        .result
        .expect("client lib loads");
    assert_eq!(lib, "lib");
    let job_deadline = std::time::Duration::from_secs(300);
    let start = Instant::now();
    let handler = pool
        .submit(
            JobSpec::new("probe-handler", "(serve-echo (vector-ref listeners 0))")
                .pin(0)
                .deadline(job_deadline),
        )
        .expect("handler submits");
    let client = pool
        .submit(
            JobSpec::new(
                "probe-client",
                format!("(echo-client {probe_port} \"e15-probe-payload\" {rounds})"),
            )
            .pin(0)
            .deadline(job_deadline),
        )
        .expect("client submits");
    let outcome = client.wait();
    let shown = match outcome.result.as_deref() {
        Ok(shown) if shown != "corrupt" => shown.to_string(),
        other => panic!("E15 probe client failed: {other:?}"),
    };
    let rtts_us: Vec<f64> = parse_fixnum_list(&shown).into_iter().map(|us| us as f64).collect();
    assert_eq!(handler.wait().result.as_deref(), Ok("served"), "probe handler must drain");
    let wall = start.elapsed();
    assert_eq!(rtts_us.len(), rounds);

    // Teardown: release every parked connection at once.
    for mut p in peers {
        p.write_all(b"bye!").expect("release write");
    }
    for h in &parked_jobs {
        let outcome = h.wait();
        let shown = outcome.result.expect("parked job wakes");
        assert!(shown.contains("bye"), "parked job read its release payload: {shown:?}");
    }

    let audit = reactor_audit(&pool, 1);
    let report = pool.shutdown().expect("pool drains");
    e15_row("blocked-probe", 1, parked_req, parked, rounds, rtts_us, wall, &report, audit)
}

/// Runs one timer-storm cell: `jobs` green threads each performing
/// `waits` sequential `(timer-wait wait_ms)` suspensions (total
/// deliveries `jobs * waits`). Each job returns its accumulated wake
/// lateness beyond the requested waits; the row's latency columns are
/// the per-job mean lateness per wait, and `wake_lateness` carries the
/// reactor's own delivery-time histogram.
///
/// # Panics
///
/// Panics if any job fails or a socket or segment leaks.
pub fn e15_storm_case(
    backend: oneshot_exec::Backend,
    workers: usize,
    jobs: usize,
    waits: usize,
    wait_ms: u64,
) -> E15Row {
    use oneshot_exec::{JobSpec, Pool};
    let pool = Pool::builder()
        .workers(workers)
        .resident_cap(jobs.div_ceil(workers) + 8)
        .queue_capacity(jobs + 64)
        .fuel_slice(2048)
        .reactor_backend(backend)
        .build()
        .expect("pool spawns");
    let expected_us = waits as u64 * wait_ms * 1000;
    let src = format!(
        "(let ((t0 (now-us)))
           (let loop ((i 0))
             (if (< i {waits})
                 (begin (timer-wait {wait_ms}) (loop (+ i 1)))
                 (- (now-us) t0 {expected_us}))))"
    );
    let deadline = std::time::Duration::from_millis(waits as u64 * wait_ms)
        + std::time::Duration::from_secs(300);
    let start = Instant::now();
    let handles: Vec<_> = (0..jobs)
        .map(|i| {
            pool.submit(JobSpec::new(format!("storm-{i}"), src.clone()).deadline(deadline))
                .expect("storm submits")
        })
        .collect();
    let mean_lateness_us: Vec<f64> = handles
        .iter()
        .map(|h| {
            let outcome = h.wait();
            match outcome.result.as_deref() {
                Ok(shown) => shown.parse::<f64>().expect("lateness fixnum") / waits as f64,
                Err(e) => panic!("E15 storm job {} failed: {e}", outcome.name),
            }
        })
        .collect();
    let wall = start.elapsed();

    let audit = reactor_audit(&pool, workers);
    let report = pool.shutdown().expect("pool drains");
    e15_row(
        "timer-storm",
        workers,
        jobs * waits,
        jobs * waits,
        jobs * waits,
        mean_lateness_us,
        wall,
        &report,
        audit,
    )
}

/// Runs one shared-listener echo cell: [`Pool::serve`] binds one
/// `AF_INET` listener whose accepted connections are distributed
/// least-loaded across the worker reactors; each accepted connection
/// spawns the `(conn-take)` echo handler, and `conns` unpinned guest
/// clients drive `rounds` verified round trips each against the shared
/// port. The row records accepts-per-worker (distribution flatness),
/// accept-queue highwater, and requested-vs-actual after the fd clamp.
///
/// # Panics
///
/// Panics if any echo fails to verify, any handler fails, the accept
/// count disagrees, or a socket or segment leaks.
pub fn e15_serve_case(
    backend: oneshot_exec::Backend,
    workers: usize,
    conns_req: usize,
    rounds: usize,
    max_fds: usize,
) -> E15Row {
    use oneshot_exec::{JobSpec, Pool};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    // Both socket ends land in worker VMs (clients spread across workers,
    // accepted connections are routed least-loaded), so besides the fd
    // budget keep each VM's share under 3/4 of its socket-table cap.
    let vm_cap = VmConfig::default().max_open_sockets;
    let conns = e15_clamp_conns(conns_req, max_fds).min(workers * (3 * vm_cap) / 8);
    let pool = Pool::builder()
        .workers(workers)
        .resident_cap(2 * conns.div_ceil(workers) + 16)
        .queue_capacity(2 * conns + 64)
        .fuel_slice(2048)
        .reactor_backend(backend)
        .build()
        .expect("pool spawns");
    let job_deadline = std::time::Duration::from_secs(300);
    let served = Arc::new(AtomicU64::new(0));
    let served_cb = Arc::clone(&served);
    let handler = JobSpec::new(
        "echo-handler",
        "(let ((c (conn-take)))
           (let loop ()
             (let ((d (tcp-read c 4096)))
               (if (eq? d 'eof)
                   (begin (tcp-close c) 'served)
                   (begin (tcp-write c d) (loop))))))",
    )
    .deadline(job_deadline)
    .on_complete(move |o| {
        if o.result.as_deref() == Ok("served") {
            served_cb.fetch_add(1, Ordering::SeqCst);
        }
    });
    let serve = pool.serve("127.0.0.1:0", handler).expect("shared listener binds");
    let port = serve.port();
    for w in 0..workers {
        let ok = pool
            .submit(JobSpec::new(format!("client-lib-{w}"), REACTOR_CLIENT_LIB).pin(w))
            .expect("lib submits")
            .wait()
            .result
            .expect("client lib loads");
        assert_eq!(ok, "lib");
    }

    let start = Instant::now();
    let clients: Vec<_> = (0..conns)
        .map(|i| {
            pool.submit(
                JobSpec::new(
                    format!("client-{i}"),
                    format!("(echo-client {port} \"e15-serve-{i}\" {rounds})"),
                )
                .deadline(job_deadline),
            )
            .expect("client submits")
        })
        .collect();
    let mut rtts_us: Vec<f64> = Vec::with_capacity(conns * rounds);
    for h in &clients {
        let outcome = h.wait();
        let shown = match outcome.result.as_deref() {
            Ok(shown) if shown != "corrupt" => shown.to_string(),
            other => panic!("E15 serve client {} failed: {other:?}", outcome.name),
        };
        rtts_us.extend(parse_fixnum_list(&shown).into_iter().map(|us| us as f64));
    }
    // Handlers finish after their client closes; wait for the callbacks.
    let drain_deadline = Instant::now() + std::time::Duration::from_secs(120);
    while served.load(Ordering::SeqCst) < conns as u64 {
        assert!(
            Instant::now() < drain_deadline,
            "handlers drained {}/{conns}",
            served.load(Ordering::SeqCst)
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let wall = start.elapsed();
    assert_eq!(rtts_us.len(), conns * rounds);
    assert_eq!(serve.accepted(), conns as u64, "every connection was accepted");

    let audit = reactor_audit(&pool, workers);
    let report = pool.shutdown().expect("pool drains");
    assert_eq!(
        report.counters.accepts_per_worker.iter().sum::<u64>(),
        conns as u64,
        "every accept was routed to a worker"
    );
    assert_eq!(report.counters.accept_overflow, 0, "no connection was shed");
    e15_row("serve-echo", workers, conns_req, conns, conns * rounds, rtts_us, wall, &report, audit)
}

/// The full E15 sweep: for each backend, the blocked-fd probe curve,
/// then the timer storm and the shared-listener echo across every
/// worker count.
pub fn e15_experiment(scale: &E15Scale, max_fds: usize) -> Vec<E15Row> {
    use oneshot_exec::Backend;
    let mut out = Vec::new();
    for backend in [Backend::Poll, Backend::Epoll] {
        for &parked in &scale.parked {
            out.push(e15_probe_case(backend, parked, scale.probe_rounds, max_fds));
        }
    }
    let (jobs, waits, wait_ms) = scale.storm;
    for backend in [Backend::Poll, Backend::Epoll] {
        for &workers in &scale.workers {
            out.push(e15_storm_case(backend, workers, jobs, waits, wait_ms));
        }
    }
    for backend in [Backend::Poll, Backend::Epoll] {
        for &workers in &scale.workers {
            out.push(e15_serve_case(
                backend,
                workers,
                scale.serve_conns,
                scale.serve_rounds,
                max_fds,
            ));
        }
    }
    out
}

// ----------------------------------------------------------------------
// E14 — value representation: the NaN-boxed word on the paper workloads
// ----------------------------------------------------------------------

/// The E14 report: static sizes of the value word and stack slot, the
/// measured segment-copy cost per slot, and the fused paper workloads
/// timed under the current representation. Comparing the rows against a
/// committed baseline (the same workloads measured before the word was
/// packed) is the representation's end-to-end cost/benefit statement.
#[derive(Debug, Clone)]
pub struct ValueRepReport {
    /// `size_of::<Value>()` — 8 with the NaN-boxed word.
    pub value_word_bytes: u64,
    /// `size_of::<Slot>()` — what every stack slot, and therefore every
    /// overflow/capture copy, actually moves.
    pub slot_bytes: u64,
    /// Best-of-reps nanoseconds per slot to copy a full 4096-slot segment
    /// buffer (the §3.2 overflow/underflow copy, isolated from the VM).
    pub segment_copy_ns_per_slot: f64,
    /// The fused dispatch workloads (fib/tak/ctak/fig5-loop) under the
    /// current value representation.
    pub rows: Vec<DispatchRow>,
}

/// Times a raw segment copy: a 4096-slot buffer with the frame shape the
/// stack machinery really holds (a return address every eight slots, value
/// words elsewhere), copied slot-for-slot as overflow and capture do.
fn segment_copy_ns_per_slot(reps: u32) -> f64 {
    use oneshot_runtime::Value;
    use oneshot_vm::Slot;
    const SLOTS: usize = 4096;
    let src: Vec<Slot> = (0..SLOTS)
        .map(|i| {
            if i % 8 == 0 {
                Slot::Ret {
                    code: i as u32,
                    pc: (i * 3) as u32,
                    disp: 8,
                    closure: Value::UNSPECIFIED,
                }
            } else {
                Slot::Val(Value::fixnum(i as i64))
            }
        })
        .collect();
    let mut dst: Vec<Slot> = vec![Slot::Marker; SLOTS];
    // Enough rounds per timing that a copy is micro-seconds, not nano.
    const ROUNDS: u32 = 2_000;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..ROUNDS {
            dst.copy_from_slice(&src);
            std::hint::black_box(&mut dst);
        }
        let ns = start.elapsed().as_nanos() as f64;
        best = best.min(ns / f64::from(ROUNDS) / SLOTS as f64);
    }
    best
}

/// E14: sizes, segment-copy cost, and the fused paper workloads. Reuses
/// the E9 cases (fusion on) so the numbers are directly comparable to a
/// `dispatch` run from any earlier revision at the same scale.
///
/// # Panics
///
/// Panics if a workload fails.
pub fn value_rep_experiment(scale: DispatchScale) -> ValueRepReport {
    let (tx, ty, tz) = scale.tak;
    let (cx, cy, cz) = scale.ctak;
    let (threads, freq, fib5) = scale.fig5;
    let rows = vec![
        dispatch_case("fib", workloads::FIB, &format!("(fib {})", scale.fib_n), true, scale.reps),
        dispatch_case("tak", workloads::TAK, &format!("(tak {tx} {ty} {tz})"), true, scale.reps),
        dispatch_case(
            "ctak",
            &workloads::ctak("call/1cc"),
            &format!("(ctak {cx} {cy} {cz})"),
            true,
            scale.reps,
        ),
        dispatch_fig5_case(true, threads, freq, fib5, scale.reps),
    ];
    ValueRepReport {
        value_word_bytes: std::mem::size_of::<oneshot_runtime::Value>() as u64,
        slot_bytes: std::mem::size_of::<oneshot_vm::Slot>() as u64,
        segment_copy_ns_per_slot: segment_copy_ns_per_slot(scale.reps),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_point_runs_each_strategy() {
        for s in Strategy::ALL {
            let p = figure5_point(s, 3, 8, 8);
            assert!(p.ms > 0.0, "{s:?}");
            match s {
                Strategy::Call1Cc => assert_eq!(p.slots_copied, 0),
                Strategy::CallCc => assert!(p.slots_copied > 0),
                Strategy::Cps => {
                    assert_eq!(p.slots_copied, 0);
                    assert!(p.closures > 100);
                }
            }
        }
    }

    #[test]
    fn tak_experiment_shows_one_shot_advantage() {
        let rows = tak_experiment(14, 7, 0);
        let cc = &rows[0];
        let one = &rows[1];
        assert_eq!(cc.op, "call/cc");
        assert!(cc.m.delta.stack.slots_copied > 0);
        assert_eq!(one.m.delta.stack.slots_copied, 0);
        assert!(one.m.words_allocated() < cc.m.words_allocated());
    }

    #[test]
    fn overflow_experiment_shows_copying_difference() {
        let rows = overflow_experiment(3, 20_000);
        let one = &rows[0];
        let multi = &rows[1];
        assert!(matches!(one.policy, OverflowPolicy::OneShot));
        assert!(multi.m.delta.stack.slots_copied > 3 * one.m.delta.stack.slots_copied);
    }

    #[test]
    fn frame_overhead_contrasts_pipelines() {
        // Only the small programs for test speed.
        for pipeline in [Pipeline::Direct, Pipeline::Cps] {
            let mut vm = Vm::with_config(VmConfig { pipeline, ..VmConfig::default() });
            vm.eval_str(workloads::FIB).unwrap();
            let before = vm.stats();
            vm.eval_str("(fib 12)").unwrap();
            let d = vm.stats().delta_since(&before);
            match pipeline {
                Pipeline::Direct => assert_eq!(d.heap.closures_allocated, 0),
                // The call counter includes continuation invocations, so
                // the per-call ratio lands well under 1; it must still be
                // far from the direct pipeline's zero.
                Pipeline::Cps => assert!(
                    d.heap.closures_allocated as f64 > 0.2 * d.calls as f64,
                    "{} closures / {} calls",
                    d.heap.closures_allocated,
                    d.calls
                ),
            }
        }
    }

    #[test]
    fn cache_ablation_shows_allocation_difference() {
        let rows = cache_experiment(12, 6, 0);
        let with = &rows[0];
        let without = &rows[1];
        assert!(
            without.m.delta.stack.segments_allocated
                > 100 * with.m.delta.stack.segments_allocated.max(1)
        );
    }

    #[test]
    fn hysteresis_reduces_overflows() {
        let rows = hysteresis_experiment(300);
        let naive = &rows[0];
        let with = &rows[1];
        assert!(
            naive.m.delta.stack.overflows > 2 * with.m.delta.stack.overflows.max(1),
            "naive {} vs hysteresis {}",
            naive.m.delta.stack.overflows,
            with.m.delta.stack.overflows
        );
    }

    #[test]
    fn fragmentation_shows_policy_difference() {
        let rows = fragmentation_experiment(50);
        let fresh = &rows[0];
        let padded = &rows[1];
        assert!(
            fresh.resident_slots > 5 * padded.resident_slots,
            "fresh {} vs padded {}",
            fresh.resident_slots,
            padded.resident_slots
        );
    }

    #[test]
    fn dispatch_fusion_retires_fewer_instructions() {
        let scale = DispatchScale {
            reps: 1,
            tak: (14, 7, 0),
            ctak: (12, 6, 0),
            fib_n: 14,
            deep: (1, 20_000),
            fig5: (3, 8, 8),
        };
        let rows = dispatch_experiment(scale);
        assert_eq!(rows.len(), 10);
        for name in ["tak", "ctak", "fib", "deep", "fig5-loop"] {
            let unfused = rows.iter().find(|r| r.name == name && !r.fused).unwrap();
            let fused = rows.iter().find(|r| r.name == name && r.fused).unwrap();
            assert!(
                fused.instructions < unfused.instructions,
                "{name}: fused {} vs unfused {} instructions",
                fused.instructions,
                unfused.instructions
            );
            assert!(fused.ns_per_instruction() > 0.0);
        }
    }

    #[test]
    fn gc_thresholds_are_semantically_invisible_and_leak_free() {
        let scale = GcScale {
            thresholds: vec![1024, GC_UNBOUNDED],
            boyer_runs: 1,
            ctak: (12, 6, 0),
            deep: (1, 20_000),
            fig5: (3, 8, 8),
        };
        let rows = gc_experiment(&scale);
        assert_eq!(rows.len(), 8);
        for name in ["boyer", "ctak", "deep", "fig5-threads"] {
            let group: Vec<&GcRow> = rows.iter().filter(|r| r.name == name).collect();
            let (tiny, unbounded) = (group[0], group[1]);
            assert_eq!(tiny.gc_threshold, 1024);
            assert_eq!(tiny.result, unbounded.result, "{name}: result varies with gc threshold");
            assert!(!tiny.leaked, "{name} leaked at threshold 1024");
            assert!(!unbounded.leaked, "{name} leaked unbounded");
            assert_eq!(
                tiny.words_allocated, unbounded.words_allocated,
                "{name}: allocation volume must be threshold-independent"
            );
            // deep barely touches the heap and the test-sized thread loop
            // stays under the threshold; only the allocating workloads are
            // guaranteed to collect.
            if matches!(name, "boyer" | "ctak") {
                assert!(
                    tiny.collections > unbounded.collections,
                    "{name}: tiny threshold ran {} collections vs {} unbounded",
                    tiny.collections,
                    unbounded.collections
                );
                assert!(tiny.objects_freed > 0, "{name} freed nothing under a tiny threshold");
            }
        }
    }

    #[test]
    fn exec_experiment_completes_the_mixed_load() {
        // A miniature sweep: every job completes, the mix really runs on
        // the pool (preemptions show up as requeues at a tiny slice), and
        // one-shot engine switching copies no stack slots.
        let scale = ExecScale {
            workers: vec![1, 2],
            fuel_slices: vec![256],
            fib: (2, 12),
            ctak: (2, (10, 5, 0)),
            deep: (2, 5_000),
            io: (2, 5),
        };
        let rows = exec_experiment(&scale);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.completed, scale.jobs() as u64, "workers={}", r.workers);
            assert_eq!(r.failed, 0);
            assert_eq!(r.panicked, 0);
            assert!(r.requeues > 0, "a 256-call slice must preempt the CPU jobs");
            // Engine switches are one-shot and copy nothing; the only
            // copying left is overflow hysteresis on the deep jobs — a few
            // frames per segment overflow, vanishing next to the work done.
            assert!(
                (r.slots_copied as f64) < 0.01 * r.instructions as f64,
                "{} slots copied vs {} instructions",
                r.slots_copied,
                r.instructions
            );
            assert!(r.p50_ms <= r.p99_ms);
            assert!(r.throughput > 0.0);
        }
    }

    #[test]
    fn reactor_cases_suspend_and_audit_clean() {
        // A miniature echo cell: every round trip verifies, the clients
        // really suspended on the reactor (not spun), and the drain left
        // no sockets and no sealed continuation segments behind.
        let echo = reactor_echo_case(2, 16, 2);
        assert_eq!(echo.ops, 32);
        assert_eq!(echo.failed, 0);
        assert!(echo.io_blocked > 0, "echo load must suspend on the reactor");
        assert!(echo.io_wakeups > 0);
        assert_eq!(echo.leaked_sockets, 0);
        assert!(echo.live_segments < 32, "segments leaked: {}", echo.live_segments);
        assert!(echo.p50_us <= echo.p99_us && echo.p99_us <= echo.max_us);

        // A miniature storm: all 48 timers suspended at once (the wait is
        // generous because debug-build submits compile slowly).
        let storm = reactor_timer_case(1, 48, 1_500);
        assert_eq!(storm.ops, 48);
        assert_eq!(storm.failed, 0);
        assert!(storm.timer_waits >= 48);
        assert!(storm.blocked_highwater >= 48, "highwater {}", storm.blocked_highwater);
        assert_eq!(storm.leaked_sockets, 0);
    }

    #[test]
    fn e15_probe_parks_and_releases_cleanly_on_both_backends() {
        use oneshot_exec::Backend;
        for backend in [Backend::Poll, Backend::Epoll] {
            let row = e15_probe_case(backend, 8, 4, 256);
            assert_eq!(row.backend, backend.name());
            assert_eq!(row.actual, 8, "a 256-fd budget fits 8 parked connections");
            assert_eq!(row.ops, 4);
            assert_eq!(row.failed, 0);
            // 8 parked reads suspended, plus the probe pair's own traffic.
            assert!(row.io_blocked >= 8, "{}: io_blocked {}", row.backend, row.io_blocked);
            assert_eq!(row.leaked_sockets, 0);
            assert!(row.live_segments < 16, "segments leaked: {}", row.live_segments);
        }
    }

    #[test]
    fn e15_probe_clamps_to_the_fd_budget() {
        let row = e15_probe_case(oneshot_exec::Backend::Poll, 5_000, 2, 80);
        assert_eq!(row.requested, 5_000);
        assert_eq!(row.actual, 8, "(80 - 64) / 2 parked connections fit");
        assert_eq!(row.failed, 0);
        assert_eq!(row.leaked_sockets, 0);
    }

    #[test]
    fn e15_storm_retires_identical_instructions_on_both_backends() {
        use oneshot_exec::Backend;
        let poll = e15_storm_case(Backend::Poll, 1, 16, 3, 5);
        let epoll = e15_storm_case(Backend::Epoll, 1, 16, 3, 5);
        for row in [&poll, &epoll] {
            assert_eq!(row.ops, 48);
            assert_eq!(row.failed, 0, "{}", row.backend);
            assert!(row.timer_waits >= 48, "{}: {}", row.backend, row.timer_waits);
            assert!(
                row.wake_lateness.iter().sum::<u64>() >= 48,
                "{}: every delivery lands in a lateness bucket: {:?}",
                row.backend,
                row.wake_lateness
            );
            assert_eq!(row.leaked_sockets, 0);
        }
        // The backend is pure readiness plumbing: the guest retires the
        // same bytecode regardless of how its wakeups were multiplexed.
        assert_eq!(
            poll.instructions, epoll.instructions,
            "instruction counts must not depend on the backend"
        );
    }

    #[test]
    fn e15_serve_echoes_guest_clients_through_the_shared_listener() {
        let row = e15_serve_case(oneshot_exec::Backend::Epoll, 2, 8, 2, 256);
        assert_eq!(row.actual, 8);
        assert_eq!(row.ops, 16);
        assert_eq!(row.failed, 0);
        assert_eq!(row.accepts_per_worker.len(), 2);
        assert_eq!(row.accepts_per_worker.iter().sum::<u64>(), 8);
        assert_eq!(row.leaked_sockets, 0);
        assert!(row.p50_us <= row.p99_us && row.p99_us <= row.max_us);
    }

    #[test]
    fn value_rep_reports_sizes_and_rows() {
        let scale = DispatchScale {
            reps: 1,
            tak: (8, 4, 0),
            ctak: (6, 4, 2),
            fib_n: 10,
            deep: (1, 100),
            fig5: (2, 4, 8),
        };
        let r = value_rep_experiment(scale);
        assert_eq!(r.value_word_bytes, 8, "the NaN-boxed word is one machine word");
        assert!(r.slot_bytes <= 24, "slot grew past Ret's packed size: {}", r.slot_bytes);
        assert!(r.segment_copy_ns_per_slot > 0.0);
        let names: Vec<_> = r.rows.iter().map(|row| row.name).collect();
        assert_eq!(names, ["fib", "tak", "ctak", "fig5-loop"]);
        assert!(r.rows.iter().all(|row| row.fused && row.instructions > 0));
    }

    #[test]
    fn promotion_strategies_differ_in_steps() {
        let rows = promotion_experiment(200);
        let eager = &rows[0];
        let shared = &rows[1];
        assert!(eager.promotion_steps >= 200);
        assert_eq!(shared.promotion_steps, 0);
        assert!(shared.promotions >= 1);
    }
}
