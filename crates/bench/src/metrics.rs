//! Structured metrics export: a dependency-free JSON value type with an
//! emitter and a minimal parser, plus conversions from the workspace's
//! counter structs.
//!
//! The `experiments` binary uses this to write `experiments.json` — the
//! machine-readable companion to its printed tables, carrying the same
//! per-experiment control-event counts (captures, reinstatements,
//! overflows, slots copied, ...) alongside the wall-clock numbers. The
//! parser exists so tests can round-trip the emitted document and
//! reconcile its counts against live [`Stats`] values without an external
//! JSON crate.

use std::fmt::Write as _;

use oneshot_core::Stats;
use oneshot_vm::VmStats;

use crate::measure::Measurement;

/// A JSON value. Numbers are stored as `f64` but emitted without a
/// fractional part when integral, so counter values survive a round trip
/// textually intact (counters here stay far below 2^53).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on emission.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An integer-valued number (counters).
    #[allow(clippy::cast_precision_loss)] // counters stay far below 2^53
    pub fn int(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an integer, if it is an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Num(n) if n >= 0.0 && n.fract() == 0.0 => Some(n as u64),
            _ => None,
        }
    }

    /// The value as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Num(n) => Some(n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (the subset this module emits: no exponent
    /// abuse, no `\u` surrogate pairs beyond the BMP).
    ///
    /// # Errors
    ///
    /// A human-readable message with a byte offset on malformed input.
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: src.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            None => Err("unexpected end of input".into()),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value()?;
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                    }
                }
            }
            Some(_) => self.number(),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            s.push(std::char::from_u32(code).ok_or("bad \\u escape")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

/// The control-event counters of a [`Stats`] as a JSON object, one key per
/// field, named exactly after the field.
pub fn stats_json(s: &Stats) -> Json {
    Json::obj([
        ("segments_allocated", Json::int(s.segments_allocated)),
        ("segment_slots_allocated", Json::int(s.segment_slots_allocated)),
        ("cache_hits", Json::int(s.cache_hits)),
        ("cache_returns", Json::int(s.cache_returns)),
        ("captures_multi", Json::int(s.captures_multi)),
        ("captures_one", Json::int(s.captures_one)),
        ("captures_empty", Json::int(s.captures_empty)),
        ("reinstates_multi", Json::int(s.reinstates_multi)),
        ("reinstates_one", Json::int(s.reinstates_one)),
        ("slots_copied", Json::int(s.slots_copied)),
        ("splits", Json::int(s.splits)),
        ("promotions", Json::int(s.promotions)),
        ("promotion_steps", Json::int(s.promotion_steps)),
        ("overflows", Json::int(s.overflows)),
        ("underflows", Json::int(s.underflows)),
        ("shots", Json::int(s.shots)),
    ])
}

/// A [`VmStats`] as a JSON object: instruction/call/GC counters at the top
/// level, heap and stack counters nested.
///
/// The heap object mirrors [`HeapStats`](oneshot_runtime::HeapStats)'
/// counter/gauge split: `objects_freed` and `sweep_ns` are monotone
/// counters (safe to sum across deltas — use these, not `last_freed`, for
/// GC volume); `last_sweep_ns`, `live`, `peak_live`, and `pools` are
/// point-in-time gauges carried from the later snapshot.
pub fn vm_stats_json(s: &VmStats) -> Json {
    Json::obj([
        ("instructions", Json::int(s.instructions)),
        ("calls", Json::int(s.calls)),
        ("gc_collections", Json::int(s.gc_collections)),
        ("gc_pause_ns", Json::int(s.gc_pause_ns)),
        ("gc_max_pause_ns", Json::int(s.gc_max_pause_ns)),
        ("gc_objects_freed", Json::int(s.gc_objects_freed)),
        ("conditions_raised", Json::int(s.conditions_raised)),
        ("faults_injected", Json::int(s.faults_injected)),
        ("value_word_bytes", Json::int(s.value_word_bytes)),
        ("segment_bytes_highwater", Json::int(s.segment_bytes_highwater)),
        (
            "heap",
            Json::obj([
                ("words_allocated", Json::int(s.heap.words_allocated)),
                ("objects_allocated", Json::int(s.heap.objects_allocated)),
                ("closures_allocated", Json::int(s.heap.closures_allocated)),
                ("collections", Json::int(s.heap.collections)),
                ("objects_freed", Json::int(s.heap.objects_freed)),
                ("sweep_ns", Json::int(s.heap.sweep_ns)),
                ("last_sweep_ns", Json::int(s.heap.last_sweep_ns)),
                ("live", Json::int(s.heap.live)),
                ("peak_live", Json::int(s.heap.peak_live)),
                (
                    "pools",
                    Json::obj([
                        ("pairs", Json::int(s.heap.pools.pairs)),
                        ("vectors", Json::int(s.heap.pools.vectors)),
                        ("strs", Json::int(s.heap.pools.strs)),
                        ("closures", Json::int(s.heap.pools.closures)),
                        ("konts", Json::int(s.heap.pools.konts)),
                        ("cells", Json::int(s.heap.pools.cells)),
                    ]),
                ),
            ]),
        ),
        ("stack", stats_json(&s.stack)),
    ])
}

/// A [`Measurement`] as a JSON object: wall-clock milliseconds plus the
/// full counter delta from [`vm_stats_json`].
pub fn measurement_json(m: &Measurement) -> Json {
    Json::obj([("ms", Json::Num(m.ms())), ("delta", vm_stats_json(&m.delta))])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trips() {
        let doc = Json::obj([
            ("name", Json::str("tak \"quoted\" \\ path")),
            ("ms", Json::Num(12.5)),
            ("count", Json::int(123_456_789)),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            ("rows", Json::Arr(vec![Json::int(1), Json::str("two"), Json::Arr(vec![])])),
            ("empty", Json::Obj(Vec::new())),
        ]);
        let text = doc.render();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn integers_emit_without_fraction() {
        assert_eq!(Json::int(42).render(), "42\n");
        assert_eq!(Json::Num(1.5).render(), "1.5\n");
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn stats_json_reconciles_field_for_field() {
        let mut s = Stats::default();
        s.captures_one = 7;
        s.reinstates_one = 6;
        s.slots_copied = 123;
        s.overflows = 2;
        let j = stats_json(&s);
        let parsed = Json::parse(&j.render()).unwrap();
        assert_eq!(parsed.get("captures_one").unwrap().as_u64(), Some(7));
        assert_eq!(parsed.get("reinstates_one").unwrap().as_u64(), Some(6));
        assert_eq!(parsed.get("slots_copied").unwrap().as_u64(), Some(123));
        assert_eq!(parsed.get("overflows").unwrap().as_u64(), Some(2));
        assert_eq!(parsed.get("captures_multi").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn measurement_json_carries_event_counts() {
        let mut vm = oneshot_vm::Vm::new();
        vm.eval_str(&crate::workloads::ctak("call/1cc")).unwrap();
        let m = crate::measure::run_measured(&mut vm, "(ctak 10 5 0)").unwrap();
        let j = measurement_json(&m);
        let parsed = Json::parse(&j.render()).unwrap();
        let stack = parsed.get("delta").unwrap().get("stack").unwrap();
        assert_eq!(stack.get("captures_one").unwrap().as_u64(), Some(m.delta.stack.captures_one));
        assert!(m.delta.stack.captures_one > 0);
        assert!(parsed.get("ms").unwrap().as_f64().unwrap() > 0.0);
    }
}
