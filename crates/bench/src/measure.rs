//! Measurement helpers: wall time plus VM counter deltas for a program
//! region.

use std::time::{Duration, Instant};

use oneshot_vm::{Vm, VmError, VmStats};

/// One measured run.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Wall-clock time.
    pub wall: Duration,
    /// Counter deltas over the run.
    pub delta: VmStats,
}

impl Measurement {
    /// Milliseconds as a float (the unit Figure 5 reports).
    pub fn ms(&self) -> f64 {
        self.wall.as_secs_f64() * 1e3
    }

    /// Total allocation in words: heap words plus stack-segment slots —
    /// the measure behind the paper's "allocates 23% less memory".
    pub fn words_allocated(&self) -> u64 {
        self.delta.heap.words_allocated + self.delta.stack.segment_slots_allocated
    }
}

/// Evaluates `src`, measuring wall time and counter deltas.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn run_measured(vm: &mut Vm, src: &str) -> Result<Measurement, VmError> {
    let before = vm.stats();
    let start = Instant::now();
    vm.eval_str(src)?;
    let wall = start.elapsed();
    Ok(Measurement { wall, delta: vm.stats().delta_since(&before) })
}

/// Renders an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{cell:>width$}", width = widths[i]));
        }
        out.push('\n');
    };
    line(&headers.iter().map(|s| (*s).to_string()).collect::<Vec<_>>(), &widths, &mut out);
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>(), &widths, &mut out);
    for row in rows {
        line(row, &widths, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_captures_deltas() {
        let mut vm = Vm::new();
        let m =
            run_measured(&mut vm, "(define (f n) (if (zero? n) 0 (f (- n 1)))) (f 1000)").unwrap();
        assert!(m.delta.calls >= 1000);
        assert!(m.wall.as_nanos() > 0);
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["long-name".into(), "22".into()]],
        );
        assert!(t.contains("long-name"));
        assert_eq!(t.lines().count(), 4);
    }
}
