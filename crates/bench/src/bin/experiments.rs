//! Regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! experiments <cmd> [--paper]
//!   figure5        Figure 5: CPS vs call/cc vs call/1cc thread systems
//!   tak            §4: tak with a capture+invoke per call
//!   overflow       §4: deep recursion, overflow as call/1cc vs call/cc
//!   frames         §5: closures per frame, direct vs CPS
//!   cache          §3.2 ablation: segment cache on/off
//!   hysteresis     §3.2 ablation: overflow hysteresis on/off
//!   fragmentation  §3.4: fresh-segment vs seal-with-pad residency
//!   promotion      §3.3: eager-walk vs shared-flag promotion
//!   dispatch       E9: dispatch cost, superinstruction fusion on/off
//!   gc             E10: segregated-pool heap under a threshold sweep
//!   e11            E11: worker-pool throughput/latency, workers x fuel slice
//!   chaos          E12: recovery rate under seeded fault schedules
//!   e13            E13: reactor — loopback echo + timer storms, 10k+ green threads
//!   e14            E14: value representation — word sizes, segment-copy cost,
//!                  fused paper workloads (optionally vs `--baseline PATH`)
//!   e15            E15: reactor scaling — poll vs epoll blocked-fd curves,
//!                  timer-storm lateness, shared-listener echo throughput
//!   all            everything above
//! ```
//!
//! `--paper` uses the paper's full parameters (fib 20, up to 1000 threads,
//! frequencies to 512); the default is a scaled-down sweep with the same
//! shape that finishes in a few minutes. `--max-workers N` drops E11 sweep
//! points above N workers (for CI smoke runs on small machines).
//! `--baseline PATH` points E14 at an earlier experiments JSON (a `dispatch`
//! or `e14` run from a previous revision at the same scale) and reports
//! per-workload speedups, an instruction-identity check, and the geomean.
//! `--max-fds N` caps E15's fd appetite (default: the process `RLIMIT_NOFILE`
//! soft limit); clamped sweep points record requested vs actual.
//!
//! Alongside the printed tables the binary writes a machine-readable
//! report — per-experiment control-event counts (captures, reinstatements,
//! overflows, slots copied, ...) next to every wall-clock number — to
//! `experiments.json`, or to the path given with `--json PATH`.

use oneshot_bench::experiments::{
    cache_experiment, chaos_experiment, chaos_overhead, dispatch_experiment, e15_experiment,
    exec_experiment, figure5, fragmentation_experiment, frame_overhead, gc_experiment,
    hysteresis_experiment, overflow_experiment, promotion_experiment, reactor_experiment,
    tak_experiment, value_rep_experiment, DispatchScale, E15Scale, ExecScale, GcScale,
    ReactorScale, GC_UNBOUNDED,
};
use oneshot_bench::measure::render_table;
use oneshot_bench::metrics::{measurement_json, Json};
use oneshot_threads::Strategy;

struct Scale {
    fib_n: u32,
    threads: Vec<usize>,
    freqs: Vec<u64>,
    tak: (i64, i64, i64),
    deep_rounds: u64,
    deep_depth: u64,
}

impl Scale {
    fn quick() -> Self {
        Scale {
            fib_n: 15,
            threads: vec![10, 100],
            freqs: vec![1, 2, 4, 8, 16, 32, 64, 128],
            tak: (16, 8, 0),
            deep_rounds: 5,
            deep_depth: 200_000,
        }
    }

    fn paper() -> Self {
        Scale {
            fib_n: 20,
            threads: vec![10, 100, 1000],
            freqs: vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512],
            tak: (18, 12, 6),
            deep_rounds: 5,
            deep_depth: 1_000_000,
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper = args.iter().any(|a| a == "--paper");
    let scale = if paper { Scale::paper() } else { Scale::quick() };
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "experiments.json".to_string());
    let max_workers: Option<usize> = args
        .iter()
        .position(|a| a == "--max-workers")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());
    let baseline: Option<String> =
        args.iter().position(|a| a == "--baseline").and_then(|i| args.get(i + 1)).cloned();
    let max_fds: usize = args
        .iter()
        .position(|a| a == "--max-fds")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(default_max_fds);
    let cmd = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            // Skip flags and the value of any value-taking flag.
            !a.starts_with("--")
                && !matches!(
                    args.get(i.wrapping_sub(1)).map(String::as_str),
                    Some("--json" | "--max-workers" | "--baseline" | "--max-fds")
                )
        })
        .map(|(_, a)| a.as_str())
        .next()
        .unwrap_or("all");

    let mut report: Vec<(String, Json)> = Vec::new();
    let mut run = |name: &str, result: Json| report.push((name.to_string(), result));

    match cmd {
        "figure5" => run("figure5", run_figure5(&scale)),
        "tak" => run("tak", run_tak(&scale)),
        "overflow" => run("overflow", run_overflow(&scale)),
        "frames" => run("frames", run_frames()),
        "cache" => run("cache", run_cache(&scale)),
        "hysteresis" => run("hysteresis", run_hysteresis()),
        "fragmentation" => run("fragmentation", run_fragmentation()),
        "promotion" => run("promotion", run_promotion()),
        "dispatch" => run("dispatch", run_dispatch(paper)),
        "gc" => run("gc", run_gc(paper)),
        "e11" => run("exec", run_exec(paper, max_workers)),
        "chaos" => run("chaos", run_chaos(paper)),
        "e13" => run("reactor", run_reactor(paper, max_workers)),
        "e14" => run("value_rep", run_value_rep(paper, baseline.as_deref())),
        "e15" => run("reactor_scaling", run_e15(paper, max_workers, max_fds)),
        "all" => {
            run("tak", run_tak(&scale));
            run("overflow", run_overflow(&scale));
            run("frames", run_frames());
            run("cache", run_cache(&scale));
            run("hysteresis", run_hysteresis());
            run("fragmentation", run_fragmentation());
            run("promotion", run_promotion());
            run("dispatch", run_dispatch(paper));
            run("gc", run_gc(paper));
            run("exec", run_exec(paper, max_workers));
            run("chaos", run_chaos(paper));
            run("reactor", run_reactor(paper, max_workers));
            run("value_rep", run_value_rep(paper, baseline.as_deref()));
            run("reactor_scaling", run_e15(paper, max_workers, max_fds));
            run("figure5", run_figure5(&scale));
        }
        other => {
            eprintln!("unknown experiment {other:?}");
            std::process::exit(2);
        }
    }

    let doc = Json::obj([
        ("schema", Json::str("oneshot-experiments/v8")),
        ("scale", Json::str(if paper { "paper" } else { "quick" })),
        ("experiments", Json::Obj(report)),
    ]);
    match std::fs::write(&json_path, doc.render()) {
        Ok(()) => println!("\nwrote {json_path}"),
        Err(e) => eprintln!("\ncould not write {json_path}: {e}"),
    }
}

fn run_figure5(scale: &Scale) -> Json {
    println!("\n== E1 / Figure 5: thread systems (fib {} per thread; times in ms) ==", scale.fib_n);
    let mut points_json = Vec::new();
    for &threads in &scale.threads {
        println!("\n-- {threads} threads --");
        let points = figure5(&[threads], &scale.freqs, scale.fib_n);
        for p in &points {
            points_json.push(Json::obj([
                ("threads", Json::int(p.threads as u64)),
                ("calls_per_switch", Json::int(p.freq)),
                ("strategy", Json::str(p.strategy.label())),
                ("ms", Json::Num(p.ms)),
                ("slots_copied", Json::int(p.slots_copied)),
                ("closures", Json::int(p.closures)),
            ]));
        }
        let mut rows = Vec::new();
        for &freq in &scale.freqs {
            let get = |s: Strategy| {
                points.iter().find(|p| p.freq == freq && p.strategy == s).map_or(f64::NAN, |p| p.ms)
            };
            let cps = get(Strategy::Cps);
            let cc = get(Strategy::CallCc);
            let one = get(Strategy::Call1Cc);
            let fastest = if cps < cc.min(one) {
                "cps"
            } else if one <= cc {
                "call/1cc"
            } else {
                "call/cc"
            };
            rows.push(vec![
                freq.to_string(),
                format!("{cps:.1}"),
                format!("{cc:.1}"),
                format!("{one:.1}"),
                fastest.to_string(),
            ]);
        }
        println!(
            "{}",
            render_table(&["calls/switch", "cps", "call/cc", "call/1cc", "fastest"], &rows)
        );
    }
    println!("Expected shape: call/1cc <= call/cc everywhere; CPS wins only at the");
    println!("most rapid switch rates (paper: more often than every 4-8 calls).");
    Json::obj([("fib_n", Json::int(u64::from(scale.fib_n))), ("points", Json::Arr(points_json))])
}

fn run_tak(scale: &Scale) -> Json {
    let (x, y, z) = scale.tak;
    println!("\n== E2 / §4: (ctak {x} {y} {z}) — capture+invoke per call ==");
    let rows = tak_experiment(x, y, z);
    let base = rows[0].m.ms();
    let base_words = rows[0].m.words_allocated();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.op.to_string(),
                format!("{:.1}", r.m.ms()),
                format!("{:.0}%", 100.0 * r.m.ms() / base),
                r.m.words_allocated().to_string(),
                format!("{:.0}%", 100.0 * r.m.words_allocated() as f64 / base_words as f64),
                r.m.delta.stack.segment_slots_allocated.to_string(),
                r.m.delta.stack.slots_copied.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "operator",
                "ms",
                "rel-time",
                "words-alloc",
                "rel-alloc",
                "stack-words",
                "slots-copied"
            ],
            &table
        )
    );
    println!("Paper: call/1cc 13% faster, 23% less allocation.");
    Json::obj([
        ("args", Json::Arr(vec![Json::int(x as u64), Json::int(y as u64), Json::int(z as u64)])),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("operator", Json::str(r.op)),
                            ("measurement", measurement_json(&r.m)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn run_overflow(scale: &Scale) -> Json {
    println!(
        "\n== E3 / §4: deep recursion ({} rounds x depth {}), overflow policy ==",
        scale.deep_rounds, scale.deep_depth
    );
    let rows = overflow_experiment(scale.deep_rounds, scale.deep_depth);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:?}", r.policy),
                format!("{:.1}", r.m.ms()),
                r.m.delta.stack.slots_copied.to_string(),
                r.m.delta.stack.segments_allocated.to_string(),
                r.m.delta.stack.cache_hits.to_string(),
                r.m.words_allocated().to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["overflow-as", "ms", "slots-copied", "segments", "cache-hits", "words-alloc"],
            &table
        )
    );
    println!("Paper: one-shot overflow handling ~300% faster on this extreme case,");
    println!("allocating almost nothing after the first round (cache hits).");
    Json::obj([
        ("rounds", Json::int(scale.deep_rounds)),
        ("depth", Json::int(scale.deep_depth)),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("overflow_as", Json::str(format!("{:?}", r.policy))),
                            ("measurement", measurement_json(&r.m)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn run_frames() -> Json {
    println!("\n== E4 / §5: closure-creation overhead per frame, direct vs CPS ==");
    let rows = frame_overhead();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{:?}", r.pipeline),
                r.calls.to_string(),
                r.closures.to_string(),
                format!("{:.3}", r.closures_per_call()),
                format!("{:.1}", r.instructions as f64 / r.calls.max(1) as f64),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["program", "pipeline", "calls", "closures", "closures/call", "ops/call"],
            &table
        )
    );
    println!("Paper (vs Appel-Shao): the stack compiler's closure overhead is ~0");
    println!("(boyer allocates no closures at all); CPS pays >=1 per non-tail call.");
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj([
                    ("program", Json::str(r.name)),
                    ("pipeline", Json::str(format!("{:?}", r.pipeline))),
                    ("calls", Json::int(r.calls)),
                    ("closures", Json::int(r.closures)),
                    ("instructions", Json::int(r.instructions)),
                    ("closures_per_call", Json::Num(r.closures_per_call())),
                ])
            })
            .collect(),
    )
}

fn run_cache(scale: &Scale) -> Json {
    let (x, y, z) = scale.tak;
    println!("\n== E5 / §3.2 ablation: segment cache, (ctak {x} {y} {z}) with call/1cc ==");
    let rows = cache_experiment(x, y, z);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                if r.cache_limit == 0 {
                    "disabled".into()
                } else {
                    format!("{} segments", r.cache_limit)
                },
                format!("{:.1}", r.m.ms()),
                r.m.delta.stack.segments_allocated.to_string(),
                r.m.delta.stack.cache_hits.to_string(),
            ]
        })
        .collect();
    println!("{}", render_table(&["cache", "ms", "segments-allocated", "cache-hits"], &table));
    println!("Paper: without the cache, call/1cc programs were \"unacceptably slow\".");
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj([
                    ("cache_limit", Json::int(r.cache_limit as u64)),
                    ("measurement", measurement_json(&r.m)),
                ])
            })
            .collect(),
    )
}

fn run_hysteresis() -> Json {
    println!("\n== E6 / §3.2 ablation: overflow hysteresis (boundary-hovering recursion) ==");
    let rows = hysteresis_experiment(20_000);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{} slots", r.hysteresis),
                format!("{:.1}", r.m.ms()),
                r.m.delta.stack.overflows.to_string(),
                r.m.delta.stack.slots_copied.to_string(),
            ]
        })
        .collect();
    println!("{}", render_table(&["hysteresis", "ms", "overflows", "slots-copied"], &table));
    println!("Paper: copying up a few frames on overflow prevents bouncing.");
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj([
                    ("hysteresis_slots", Json::int(r.hysteresis as u64)),
                    ("measurement", measurement_json(&r.m)),
                ])
            })
            .collect(),
    )
}

fn run_fragmentation() -> Json {
    println!("\n== E7 / §3.4: resident stack memory for 100 call/1cc threads ==");
    let rows = fragmentation_experiment(100);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            // A slot models a 4-byte word, matching the paper's 16 KB /
            // 4096-word default segments.
            vec![
                format!("{:?}", r.policy),
                r.konts.to_string(),
                r.resident_slots.to_string(),
                format!("{:.2} MB", r.resident_slots as f64 * 4.0 / 1e6),
            ]
        })
        .collect();
    println!("{}", render_table(&["policy", "threads", "resident-slots", "~bytes"], &table));
    println!("Paper: 100 threads x 16KB default stacks = 1.6MB mostly wasted;");
    println!("sealing at a displacement above the occupied portion bounds it.");
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj([
                    ("policy", Json::str(format!("{:?}", r.policy))),
                    ("threads", Json::int(r.konts as u64)),
                    ("resident_slots", Json::int(r.resident_slots as u64)),
                ])
            })
            .collect(),
    )
}

fn run_dispatch(paper: bool) -> Json {
    let scale = if paper { DispatchScale::paper() } else { DispatchScale::quick() };
    println!("\n== E9: dispatch cost — flat code + superinstruction fusion on/off ==");
    let rows = dispatch_experiment(scale);
    let names: Vec<&'static str> = {
        let mut seen = Vec::new();
        for r in &rows {
            if !seen.contains(&r.name) {
                seen.push(r.name);
            }
        }
        seen
    };
    let mut table = Vec::new();
    let mut workloads_json = Vec::new();
    for name in names {
        let unfused = rows.iter().find(|r| r.name == name && !r.fused).expect("unfused row");
        let fused = rows.iter().find(|r| r.name == name && r.fused).expect("fused row");
        let speedup = unfused.ms / fused.ms;
        table.push(vec![
            name.to_string(),
            format!("{:.1}", unfused.ms),
            format!("{:.1}", fused.ms),
            format!("{speedup:.2}x"),
            unfused.instructions.to_string(),
            fused.instructions.to_string(),
            format!("{:.1}", unfused.ns_per_instruction()),
            format!("{:.1}", fused.ns_per_instruction()),
        ]);
        let row_json = |r: &oneshot_bench::experiments::DispatchRow| {
            Json::obj([
                ("ms", Json::Num(r.ms)),
                ("instructions", Json::int(r.instructions)),
                ("ns_per_instruction", Json::Num(r.ns_per_instruction())),
            ])
        };
        workloads_json.push(Json::obj([
            ("name", Json::str(name)),
            ("unfused", row_json(unfused)),
            ("fused", row_json(fused)),
            ("speedup", Json::Num(speedup)),
        ]));
    }
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "unfused-ms",
                "fused-ms",
                "speedup",
                "unfused-instr",
                "fused-instr",
                "unfused-ns/i",
                "fused-ns/i"
            ],
            &table
        )
    );
    println!("Fusion halves dispatch on the hottest pairs (compare+branch, return-of-");
    println!("local, immediate arithmetic); results and control events are identical.");
    Json::obj([
        ("scale", Json::str(if paper { "paper" } else { "quick" })),
        ("reps", Json::int(u64::from(scale.reps))),
        ("workloads", Json::Arr(workloads_json)),
    ])
}

fn run_gc(paper: bool) -> Json {
    let scale = if paper { GcScale::paper() } else { GcScale::quick() };
    println!("\n== E10: segregated-pool heap — collection-threshold sweep ==");
    let rows = gc_experiment(&scale);
    let threshold_label = |t: usize| {
        if t >= GC_UNBOUNDED {
            "unbounded".to_string()
        } else {
            t.to_string()
        }
    };
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                threshold_label(r.gc_threshold),
                format!("{:.1}", r.ms),
                r.words_allocated.to_string(),
                r.objects_allocated.to_string(),
                r.collections.to_string(),
                r.objects_freed.to_string(),
                format!("{:.2}", r.sweep_ns as f64 / 1e6),
                format!("{:.2}", r.max_pause_ns as f64 / 1e6),
                r.live_after.to_string(),
                if r.leaked { "LEAK" } else { "ok" }.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "threshold",
                "ms",
                "words-alloc",
                "objects",
                "collections",
                "freed",
                "sweep-ms",
                "max-pause-ms",
                "live-after",
                "leak"
            ],
            &table
        )
    );
    println!("Expected shape: identical results and allocation volume down each");
    println!("workload's column; only collections/sweep time vary with the threshold.");
    for r in &rows {
        assert!(!r.leaked, "{} leaked at threshold {}", r.name, r.gc_threshold);
    }
    Json::obj([
        ("scale", Json::str(if paper { "paper" } else { "quick" })),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("workload", Json::str(r.name)),
                            (
                                "gc_threshold",
                                if r.gc_threshold >= GC_UNBOUNDED {
                                    Json::str("unbounded")
                                } else {
                                    Json::int(r.gc_threshold as u64)
                                },
                            ),
                            ("ms", Json::Num(r.ms)),
                            ("result", Json::str(r.result.clone())),
                            ("words_allocated", Json::int(r.words_allocated)),
                            ("objects_allocated", Json::int(r.objects_allocated)),
                            ("objects_freed", Json::int(r.objects_freed)),
                            ("collections", Json::int(r.collections)),
                            ("sweep_ns", Json::int(r.sweep_ns)),
                            ("max_pause_ns", Json::int(r.max_pause_ns)),
                            ("live_after", Json::int(r.live_after as u64)),
                            ("leaked", Json::Bool(r.leaked)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn run_exec(paper: bool, max_workers: Option<usize>) -> Json {
    let mut scale = if paper { ExecScale::paper() } else { ExecScale::quick() };
    if let Some(max) = max_workers {
        scale.clamp_workers(max);
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\n== E11: worker pool — {} mixed jobs (fib/ctak/deep/io) per cell, {cores} core(s) ==",
        scale.jobs()
    );
    let rows = exec_experiment(&scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workers.to_string(),
                r.fuel_slice.to_string(),
                format!("{:.1}", r.wall_ms),
                format!("{:.1}", r.throughput),
                format!("{:.1}", r.p50_ms),
                format!("{:.1}", r.p99_ms),
                r.steals.to_string(),
                r.requeues.to_string(),
                r.slices.to_string(),
                r.slots_copied.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "workers",
                "fuel-slice",
                "wall-ms",
                "jobs/s",
                "p50-ms",
                "p99-ms",
                "steals",
                "requeues",
                "slices",
                "slots-copied"
            ],
            &table
        )
    );
    if let Some(one) = rows.iter().find(|r| r.workers == 1) {
        let widest = rows
            .iter()
            .filter(|r| r.fuel_slice == one.fuel_slice)
            .max_by_key(|r| r.workers)
            .expect("the 1-worker row itself matches");
        if widest.workers > 1 {
            println!(
                "Scaling at fuel-slice {}: {:.2}x throughput from 1 to {} workers.",
                one.fuel_slice,
                widest.throughput / one.throughput,
                widest.workers
            );
        }
    }
    println!("Expected shape: throughput grows with workers (the io jobs release the");
    println!("core while sleeping); small slices buy p99 latency at some wall cost;");
    println!("slots-copied stays near 0 — engine preemption is one-shot capture,");
    println!("so only overflow hysteresis on the deep jobs copies anything.");
    Json::obj([
        ("scale", Json::str(if paper { "paper" } else { "quick" })),
        ("cores", Json::int(cores as u64)),
        ("jobs_per_cell", Json::int(scale.jobs() as u64)),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("workers", Json::int(r.workers as u64)),
                            ("fuel_slice", Json::int(r.fuel_slice)),
                            ("jobs", Json::int(r.jobs as u64)),
                            ("wall_ms", Json::Num(r.wall_ms)),
                            ("throughput_jobs_per_s", Json::Num(r.throughput)),
                            ("p50_ms", Json::Num(r.p50_ms)),
                            ("p99_ms", Json::Num(r.p99_ms)),
                            ("completed", Json::int(r.completed)),
                            ("failed", Json::int(r.failed)),
                            ("timed_out", Json::int(r.timed_out)),
                            ("panicked", Json::int(r.panicked)),
                            ("steals", Json::int(r.steals)),
                            ("requeues", Json::int(r.requeues)),
                            ("slices", Json::int(r.slices)),
                            ("queue_depth_highwater", Json::int(r.queue_depth_highwater)),
                            ("instructions", Json::int(r.instructions)),
                            ("captures_one", Json::int(r.captures_one)),
                            ("reinstates_one", Json::int(r.reinstates_one)),
                            ("slots_copied", Json::int(r.slots_copied)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn run_chaos(paper: bool) -> Json {
    let horizons: &[u64] = &[500, 5_000, 50_000];
    let seeds: u64 = if paper { 400 } else { 48 };
    println!(
        "\n== E12: chaos sweep — {} seeded fault schedules per cell, workload x horizon ==",
        seeds
    );
    let rows = chaos_experiment(horizons, seeds);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.to_string(),
                r.horizon.to_string(),
                r.runs.to_string(),
                r.clean.to_string(),
                r.recovered.to_string(),
                r.uncaught.to_string(),
                format!("{:.2}", r.recovery_rate()),
                r.faults_injected.to_string(),
                r.conditions_raised.to_string(),
                format!("{:.1}", r.wall_ms),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "horizon",
                "runs",
                "clean",
                "recovered",
                "uncaught",
                "recovery",
                "faults",
                "conditions",
                "wall-ms"
            ],
            &table
        )
    );
    let (baseline_ms, guarded_ms) = chaos_overhead(if paper { 200 } else { 40 });
    println!(
        "Guard overhead (armed, never tripping): {baseline_ms:.3} ms -> {guarded_ms:.3} ms \
         per run ({:+.1}%).",
        (guarded_ms / baseline_ms - 1.0) * 100.0
    );
    println!("Expected shape: recovery stays near 1.0 — the guard catches nearly every");
    println!("schedule (the uncaught tail is faults firing before the guard installs);");
    println!("denser faults (small horizon) raise recovered counts, and the armed-but-");
    println!("quiet guards cost low single-digit percent.");
    Json::obj([
        ("seeds_per_cell", Json::int(seeds)),
        ("overhead_baseline_ms", Json::Num(baseline_ms)),
        ("overhead_guarded_ms", Json::Num(guarded_ms)),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("workload", Json::str(r.workload)),
                            ("horizon", Json::int(r.horizon)),
                            ("runs", Json::int(r.runs)),
                            ("clean", Json::int(r.clean)),
                            ("recovered", Json::int(r.recovered)),
                            ("uncaught", Json::int(r.uncaught)),
                            ("recovery_rate", Json::Num(r.recovery_rate())),
                            ("faults_injected", Json::int(r.faults_injected)),
                            ("conditions_raised", Json::int(r.conditions_raised)),
                            ("wall_ms", Json::Num(r.wall_ms)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn run_reactor(paper: bool, max_workers: Option<usize>) -> Json {
    let mut scale = if paper { ReactorScale::paper() } else { ReactorScale::quick() };
    if let Some(max) = max_workers {
        scale.clamp_workers(max);
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\n== E13: reactor — loopback echo ({} rounds/conn) + timer storms, {cores} core(s) ==",
        scale.echo_rounds
    );
    let rows = reactor_experiment(&scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mode.to_string(),
                r.workers.to_string(),
                r.green_threads.to_string(),
                r.ops.to_string(),
                format!("{:.1}", r.wall_ms),
                format!("{:.0}", r.throughput),
                format!("{:.2}", r.p50_us / 1e3),
                format!("{:.2}", r.p99_us / 1e3),
                format!("{:.2}", r.max_us / 1e3),
                r.blocked_highwater.to_string(),
                r.io_wakeups.to_string(),
                format!("{}/{}", r.leaked_sockets, r.live_segments),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "mode",
                "workers",
                "green-threads",
                "ops",
                "wall-ms",
                "ops/s",
                "p50-ms",
                "p99-ms",
                "max-ms",
                "blocked-hw",
                "wakeups",
                "leaks(fd/seg)"
            ],
            &table
        )
    );
    if let Some(peak) = rows.iter().max_by_key(|r| r.green_threads) {
        println!(
            "Peak concurrency: {} green threads ({}) on {} worker(s); \
             single-worker blocked highwater {}.",
            peak.green_threads, peak.mode, peak.workers, peak.blocked_highwater
        );
    }
    println!("Expected shape: every op verifies with zero failures and zero leaked");
    println!("sockets/segments; a blocked connection is a sealed one-shot continuation,");
    println!("so green-thread counts far beyond the worker count cost memory, not");
    println!("threads; echo latency (p50 vs p99) measures reactor requeue fairness and");
    println!("timer-storm lateness stays small against the requested wait.");
    Json::obj([
        ("scale", Json::str(if paper { "paper" } else { "quick" })),
        ("cores", Json::int(cores as u64)),
        ("echo_rounds", Json::int(scale.echo_rounds as u64)),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("mode", Json::str(r.mode)),
                            ("reactor_backend", Json::str(r.backend)),
                            ("workers", Json::int(r.workers as u64)),
                            ("green_threads", Json::int(r.green_threads as u64)),
                            ("ops", Json::int(r.ops as u64)),
                            ("wall_ms", Json::Num(r.wall_ms)),
                            ("throughput_ops_per_s", Json::Num(r.throughput)),
                            ("p50_us", Json::Num(r.p50_us)),
                            ("p99_us", Json::Num(r.p99_us)),
                            ("max_us", Json::Num(r.max_us)),
                            ("completed", Json::int(r.completed)),
                            ("failed", Json::int(r.failed)),
                            ("io_blocked", Json::int(r.io_blocked)),
                            ("io_wakeups", Json::int(r.io_wakeups)),
                            ("timer_waits", Json::int(r.timer_waits)),
                            ("blocked_highwater", Json::int(r.blocked_highwater)),
                            ("leaked_sockets", Json::int(r.leaked_sockets.max(0) as u64)),
                            ("live_segments", Json::int(r.live_segments.max(0) as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The process `RLIMIT_NOFILE` soft limit from `/proc/self/limits`, or a
/// conservative 1024 when it cannot be read — E15's default fd budget.
fn default_max_fds() -> usize {
    std::fs::read_to_string("/proc/self/limits")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Max open files"))
                .and_then(|l| l.split_whitespace().nth(3).and_then(|v| v.parse().ok()))
        })
        .unwrap_or(1024)
}

fn run_e15(paper: bool, max_workers: Option<usize>, max_fds: usize) -> Json {
    let mut scale = if paper { E15Scale::paper() } else { E15Scale::quick() };
    if let Some(max) = max_workers {
        scale.clamp_workers(max);
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (storm_jobs, storm_waits, storm_wait_ms) = scale.storm;
    println!(
        "\n== E15: reactor scaling — poll vs epoll, {max_fds}-fd budget, \
         {storm_jobs}x{storm_waits} timer waits @ {storm_wait_ms} ms, {cores} core(s) =="
    );
    let rows = e15_experiment(&scale, max_fds);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mode.to_string(),
                r.backend.to_string(),
                r.workers.to_string(),
                if r.actual == r.requested {
                    r.actual.to_string()
                } else {
                    format!("{} (req {})", r.actual, r.requested)
                },
                r.ops.to_string(),
                format!("{:.1}", r.wall_ms),
                format!("{:.0}", r.throughput),
                format!("{:.0}", r.p50_us),
                format!("{:.0}", r.p99_us),
                format!("{:.0}", r.max_us),
                r.blocked_highwater.to_string(),
                r.resume_depth_highwater.to_string(),
                format!("{}/{}", r.leaked_sockets, r.live_segments),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "mode",
                "backend",
                "workers",
                "n",
                "ops",
                "wall-ms",
                "ops/s",
                "p50-us",
                "p99-us",
                "max-us",
                "blocked-hw",
                "resume-hw",
                "leaks(fd/seg)"
            ],
            &table
        )
    );
    // The headline curve: probe round-trip p50 as the parked-fd count
    // grows — poll's wake cost is O(blocked), epoll's O(ready).
    for backend in ["poll", "epoll"] {
        let curve: Vec<String> = rows
            .iter()
            .filter(|r| r.mode == "blocked-probe" && r.backend == backend)
            .map(|r| format!("{} parked: {:.0} us", r.actual, r.p50_us))
            .collect();
        println!("Probe p50 vs parked fds [{backend}]: {}", curve.join(", "));
    }
    // The storm's reactor-side lateness histograms, and the plumbing
    // invariant: identical guest instruction counts per cell.
    let bounds: Vec<String> = oneshot_exec::WAKE_LATENESS_BUCKETS_MS
        .iter()
        .map(|b| format!("<{b}ms"))
        .chain(std::iter::once("tail".to_string()))
        .collect();
    for r in rows.iter().filter(|r| r.mode == "timer-storm") {
        let cells: Vec<String> =
            bounds.iter().zip(&r.wake_lateness).map(|(b, n)| format!("{b}:{n}")).collect();
        println!(
            "Storm lateness [{} w={}]: {} (mean p50 {:.0} us/wait)",
            r.backend,
            r.workers,
            cells.join(" "),
            r.p50_us
        );
    }
    for r in rows.iter().filter(|r| r.backend == "poll") {
        if let Some(twin) = rows.iter().find(|t| {
            t.backend == "epoll"
                && t.mode == r.mode
                && t.workers == r.workers
                && t.requested == r.requested
        }) {
            if r.mode == "timer-storm" && r.instructions != twin.instructions {
                // Exact identity is the single-worker invariant; with
                // stealing in play slice re-entries are scheduling-
                // dependent, so multi-worker runs drift by a hair.
                let drift =
                    (r.instructions.abs_diff(twin.instructions)) as f64 / r.instructions as f64;
                if r.workers == 1 || drift > 0.001 {
                    println!(
                        "WARNING: {} w={} instruction counts diverge across backends: \
                         poll {} vs epoll {} ({:.4}%)",
                        r.mode,
                        r.workers,
                        r.instructions,
                        twin.instructions,
                        100.0 * drift
                    );
                } else {
                    println!(
                        "Storm instructions w={}: poll {} vs epoll {} \
                         ({:.4}% scheduling drift; exact at 1 worker)",
                        r.workers,
                        r.instructions,
                        twin.instructions,
                        100.0 * drift
                    );
                }
            }
            if r.mode == "serve-echo" {
                println!(
                    "Serve throughput w={}: epoll {:.0} ops/s vs poll {:.0} ops/s ({:.2}x); \
                     accepts/worker {:?}, accept-queue highwater {}",
                    r.workers,
                    twin.throughput,
                    r.throughput,
                    twin.throughput / r.throughput,
                    twin.accepts_per_worker,
                    twin.accept_queue_highwater
                );
            }
        }
    }
    println!("Expected shape: the probe's per-round-trip cost climbs with parked fds");
    println!("under poll (every wake rebuilds and scans the whole interest set) and");
    println!("stays flat under epoll (the kernel hands over only the ready fd); storm");
    println!("lateness concentrates in the lowest buckets; the shared listener spreads");
    println!("accepts evenly; and every cell drains with zero leaks on both backends.");
    Json::obj([
        ("scale", Json::str(if paper { "paper" } else { "quick" })),
        ("cores", Json::int(cores as u64)),
        ("max_fds", Json::int(max_fds as u64)),
        (
            "wake_lateness_bounds_ms",
            Json::Arr(
                oneshot_exec::WAKE_LATENESS_BUCKETS_MS.iter().map(|&b| Json::int(b)).collect(),
            ),
        ),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("mode", Json::str(r.mode)),
                            ("reactor_backend", Json::str(r.backend)),
                            ("workers", Json::int(r.workers as u64)),
                            ("requested", Json::int(r.requested as u64)),
                            ("actual", Json::int(r.actual as u64)),
                            ("ops", Json::int(r.ops as u64)),
                            ("wall_ms", Json::Num(r.wall_ms)),
                            ("throughput_ops_per_s", Json::Num(r.throughput)),
                            ("p50_us", Json::Num(r.p50_us)),
                            ("p99_us", Json::Num(r.p99_us)),
                            ("max_us", Json::Num(r.max_us)),
                            ("completed", Json::int(r.completed)),
                            ("failed", Json::int(r.failed)),
                            ("io_blocked", Json::int(r.io_blocked)),
                            ("io_wakeups", Json::int(r.io_wakeups)),
                            ("timer_waits", Json::int(r.timer_waits)),
                            ("blocked_highwater", Json::int(r.blocked_highwater)),
                            ("resume_depth_highwater", Json::int(r.resume_depth_highwater)),
                            (
                                "accepts_per_worker",
                                Json::Arr(
                                    r.accepts_per_worker.iter().map(|&n| Json::int(n)).collect(),
                                ),
                            ),
                            ("accept_queue_highwater", Json::int(r.accept_queue_highwater)),
                            (
                                "wake_lateness",
                                Json::Arr(r.wake_lateness.iter().map(|&n| Json::int(n)).collect()),
                            ),
                            ("instructions", Json::int(r.instructions)),
                            ("leaked_sockets", Json::int(r.leaked_sockets.max(0) as u64)),
                            ("live_segments", Json::int(r.live_segments.max(0) as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Pulls `(name, ms, instructions)` baseline rows out of an earlier
/// experiments document: either an `e14` report's own rows or the fused
/// side of a `dispatch` run (the E14 workloads are the E9 fused cases, so
/// any pre-change `dispatch` JSON at the same scale is a valid baseline).
fn baseline_workloads(doc: &Json) -> Vec<(String, f64, u64)> {
    let Some(exps) = doc.get("experiments") else { return Vec::new() };
    let mut out = Vec::new();
    if let Some(rows) = exps.get("value_rep").and_then(|vr| vr.get("rows")).and_then(Json::as_arr) {
        for r in rows {
            if let (Some(name), Some(ms), Some(instructions)) = (
                r.get("name").and_then(Json::as_str),
                r.get("ms").and_then(Json::as_f64),
                r.get("instructions").and_then(Json::as_u64),
            ) {
                out.push((name.to_string(), ms, instructions));
            }
        }
    } else if let Some(workloads) =
        exps.get("dispatch").and_then(|d| d.get("workloads")).and_then(Json::as_arr)
    {
        for w in workloads {
            if let (Some(name), Some(fused)) =
                (w.get("name").and_then(Json::as_str), w.get("fused"))
            {
                if let (Some(ms), Some(instructions)) = (
                    fused.get("ms").and_then(Json::as_f64),
                    fused.get("instructions").and_then(Json::as_u64),
                ) {
                    out.push((name.to_string(), ms, instructions));
                }
            }
        }
    }
    out
}

fn run_value_rep(paper: bool, baseline: Option<&str>) -> Json {
    let scale = if paper { DispatchScale::paper() } else { DispatchScale::quick() };
    println!("\n== E14: value representation — NaN-boxed word on the paper workloads ==");
    let report = value_rep_experiment(scale);
    println!(
        "value word: {} bytes; stack slot: {} bytes; segment copy: {:.3} ns/slot",
        report.value_word_bytes, report.slot_bytes, report.segment_copy_ns_per_slot
    );
    let base = baseline.map(|path| {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("could not read baseline {path}: {e}"));
        let doc =
            Json::parse(&text).unwrap_or_else(|e| panic!("could not parse baseline {path}: {e}"));
        let rows = baseline_workloads(&doc);
        assert!(!rows.is_empty(), "baseline {path} has no dispatch/e14 workload rows");
        rows
    });

    let mut table = Vec::new();
    let mut rows_json = Vec::new();
    let mut speedups = Vec::new();
    let mut instructions_identical = true;
    for r in &report.rows {
        let found = base
            .as_deref()
            .and_then(|rows| rows.iter().find(|(name, _, _)| name == r.name))
            .map(|&(_, ms, instructions)| (ms, instructions));
        let mut fields = vec![
            ("name", Json::str(r.name)),
            ("ms", Json::Num(r.ms)),
            ("instructions", Json::int(r.instructions)),
            ("ns_per_instruction", Json::Num(r.ns_per_instruction())),
        ];
        let (base_ms_s, speedup_s, instr_s) = if let Some((base_ms, base_instructions)) = found {
            let speedup = base_ms / r.ms;
            // The representation must not change what the compiler emits
            // or how often control events fire — only how fast the same
            // instruction stream retires. fig5-loop runs a scheduler on
            // wall-clock-dependent switch points, so only the four
            // deterministic workloads assert identity strictly.
            let identical = base_instructions == r.instructions;
            instructions_identical &= identical;
            speedups.push(speedup);
            fields.push(("baseline_ms", Json::Num(base_ms)));
            fields.push(("baseline_instructions", Json::int(base_instructions)));
            fields.push(("speedup", Json::Num(speedup)));
            fields.push(("instructions_identical", Json::Bool(identical)));
            (format!("{base_ms:.1}"), format!("{speedup:.2}x"), identical.to_string())
        } else {
            ("-".into(), "-".into(), "-".into())
        };
        table.push(vec![
            r.name.to_string(),
            format!("{:.1}", r.ms),
            r.instructions.to_string(),
            base_ms_s,
            speedup_s,
            instr_s,
        ]);
        rows_json.push(Json::obj(fields));
    }
    println!(
        "{}",
        render_table(
            &["workload", "ms", "instructions", "baseline-ms", "speedup", "instr-identical"],
            &table
        )
    );

    let geomean = (!speedups.is_empty()).then(|| {
        let log_sum: f64 = speedups.iter().map(|s| s.ln()).sum();
        (log_sum / speedups.len() as f64).exp()
    });
    if let Some(g) = geomean {
        println!(
            "Geomean speedup vs baseline: {g:.3}x across {} workloads; \
             instruction counts identical: {instructions_identical}.",
            speedups.len()
        );
    } else {
        println!("No baseline given (--baseline PATH): absolute numbers only.");
    }
    println!("Expected shape: the 8-byte word shrinks every stack slot and pool");
    println!("payload, so the same instruction streams retire faster and segment");
    println!("copies move fewer bytes; instruction counts must not move at all.");

    let mut fields = vec![
        ("scale", Json::str(if paper { "paper" } else { "quick" })),
        ("reps", Json::int(u64::from(scale.reps))),
        ("value_word_bytes", Json::int(report.value_word_bytes)),
        ("slot_bytes", Json::int(report.slot_bytes)),
        ("segment_copy_ns_per_slot", Json::Num(report.segment_copy_ns_per_slot)),
        ("rows", Json::Arr(rows_json)),
    ];
    if let Some(g) = geomean {
        fields.push(("geomean_speedup", Json::Num(g)));
        fields.push(("instructions_identical", Json::Bool(instructions_identical)));
    }
    Json::obj(fields)
}

fn run_promotion() -> Json {
    println!("\n== E8 / §3.3: promotion of one-shot chains by one call/cc ==");
    let mut table = Vec::new();
    let mut rows_json = Vec::new();
    for chain in [10usize, 100, 1000] {
        for r in promotion_experiment(chain) {
            table.push(vec![
                chain.to_string(),
                format!("{:?}", r.strategy),
                r.promotions.to_string(),
                r.promotion_steps.to_string(),
            ]);
            rows_json.push(Json::obj([
                ("chain_length", Json::int(chain as u64)),
                ("strategy", Json::str(format!("{:?}", r.strategy))),
                ("promotions", Json::int(r.promotions)),
                ("promotion_steps", Json::int(r.promotion_steps)),
            ]));
        }
    }
    println!("{}", render_table(&["chain-length", "strategy", "promotions", "walk-steps"], &table));
    println!("Paper: the eager walk is linear in the chain (amortized: each one-shot");
    println!("promotes once); the proposed shared flag promotes a whole chain in O(1).");
    Json::Arr(rows_json)
}
