//! Benchmark harness for the oneshot reproduction.
//!
//! One module per concern:
//!
//! * [`workloads`] — the benchmark programs (tak/ctak, fib, boyer, deep
//!   recursion);
//! * [`measure`] — wall-clock + counter-delta measurement;
//! * [`experiments`] — one function per table/figure of the paper
//!   (E1–E8 in DESIGN.md).
//!
//! The `experiments` binary drives everything:
//!
//! ```text
//! cargo run --release -p oneshot-bench --bin experiments -- all
//! cargo run --release -p oneshot-bench --bin experiments -- figure5 --paper
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod measure;
pub mod workloads;
