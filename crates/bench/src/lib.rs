//! Benchmark harness for the oneshot reproduction.
//!
//! One module per concern:
//!
//! * [`workloads`] — the benchmark programs (tak/ctak, fib, boyer, deep
//!   recursion);
//! * [`measure`] — wall-clock + counter-delta measurement;
//! * [`experiments`] — one function per table/figure of the paper
//!   (E1–E8 in DESIGN.md);
//! * [`metrics`] — dependency-free JSON export of the experiment results
//!   (the `experiments.json` the binary writes);
//! * [`rng`] — a deterministic xorshift64* PRNG (no external deps).
//!
//! The `experiments` binary drives everything:
//!
//! ```text
//! cargo run --release -p oneshot-bench --bin experiments -- all
//! cargo run --release -p oneshot-bench --bin experiments -- figure5 --paper
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod measure;
pub mod metrics;
pub mod rng;
pub mod workloads;
