;; Hand-written continuation-passing-style definitions of the control
;; operators, loaded (through the *direct* pipeline — these are already in
;; CPS form) before any CPS-converted code. In the CPS world a procedure of
;; n parameters is an (n+1)-parameter procedure whose first argument is the
;; continuation, itself a one-argument procedure.
;;
;; This is the heap-based representation of control the paper benchmarks
;; against: capturing a continuation is just passing `k` along (O(1)), and
;; there is no one-shot optimization to be had — `call/1cc` is `call/cc`.

(define (call/cc k f)
  (f k (lambda (k2 v) (k v))))

(define call-with-current-continuation call/cc)

;; One-shot capture buys nothing when control already lives in the heap.
(define (call/1cc k f)
  (f k (lambda (k2 v) (k v))))

(define (values k . vs)
  (if (and (pair? vs) (null? (cdr vs)))
      (k (car vs))
      (error "values: only single values are supported in CPS mode")))

(define (call-with-values k p c)
  (p (lambda (v) (c k v))))

;; No winder rewinding on continuation jumps in CPS mode — this baseline
;; models straight-line wind semantics only (documented limitation).
(define (dynamic-wind k before thunk after)
  (before
   (lambda (b)
     (thunk
      (lambda (v)
        (after (lambda (a) (k v))))))))

(define (apply k f . spec)
  (%apply-args k f spec))
