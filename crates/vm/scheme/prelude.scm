;; The oneshot Scheme prelude: library procedures defined in Scheme on top
;; of the Rust builtins. Compiled through the same pipeline as user code
;; (so in CPS mode this file is CPS-converted too).

(define (caar p) (car (car p)))
(define (cadr p) (car (cdr p)))
(define (cdar p) (cdr (car p)))
(define (cddr p) (cdr (cdr p)))
(define (caaar p) (car (caar p)))
(define (caadr p) (car (cadr p)))
(define (cadar p) (car (cdar p)))
(define (caddr p) (car (cddr p)))
(define (cdaar p) (cdr (caar p)))
(define (cdadr p) (cdr (cadr p)))
(define (cddar p) (cdr (cdar p)))
(define (cdddr p) (cdr (cddr p)))
(define (cadddr p) (car (cdddr p)))
(define (cddddr p) (cdr (cdddr p)))

(define (member x lst)
  (cond ((null? lst) #f)
        ((equal? x (car lst)) lst)
        (else (member x (cdr lst)))))

(define (assoc x lst)
  (cond ((null? lst) #f)
        ((equal? x (caar lst)) (car lst))
        (else (assoc x (cdr lst)))))

(define (map f lst . more)
  (if (null? more)
      (let map1 ((lst lst))
        (if (null? lst)
            '()
            (cons (f (car lst)) (map1 (cdr lst)))))
      (let mapn ((lists (cons lst more)))
        (if (memq '() lists)
            '()
            (cons (apply f (map car lists))
                  (mapn (map cdr lists)))))))

(define (for-each f lst . more)
  (if (null? more)
      (let fe1 ((lst lst))
        (if (null? lst)
            (void)
            (begin (f (car lst)) (fe1 (cdr lst)))))
      (let fen ((lists (cons lst more)))
        (if (memq '() lists)
            (void)
            (begin (apply f (map car lists)) (fen (map cdr lists)))))))

(define (list-copy lst) (append lst '()))

(define (last-pair lst)
  (if (pair? (cdr lst)) (last-pair (cdr lst)) lst))

(define (boolean=? a b) (eq? a b))

(define (filter keep? lst)
  (cond ((null? lst) '())
        ((keep? (car lst)) (cons (car lst) (filter keep? (cdr lst))))
        (else (filter keep? (cdr lst)))))

(define (fold-left f init lst)
  (if (null? lst)
      init
      (fold-left f (f init (car lst)) (cdr lst))))

(define (fold-right f init lst)
  (if (null? lst)
      init
      (f (car lst) (fold-right f init (cdr lst)))))

(define (reduce f init lst)
  (if (null? lst) init (fold-left f (car lst) (cdr lst))))

(define (iota n)
  (let loop ((i (- n 1)) (acc '()))
    (if (< i 0) acc (loop (- i 1) (cons i acc)))))

(define (assq-ref alist key)
  (let ((hit (assq key alist)))
    (if hit (cdr hit) #f)))
