;; The oneshot Scheme prelude: library procedures defined in Scheme on top
;; of the Rust builtins. Compiled through the same pipeline as user code
;; (so in CPS mode this file is CPS-converted too).

(define (caar p) (car (car p)))
(define (cadr p) (car (cdr p)))
(define (cdar p) (cdr (car p)))
(define (cddr p) (cdr (cdr p)))
(define (caaar p) (car (caar p)))
(define (caadr p) (car (cadr p)))
(define (cadar p) (car (cdar p)))
(define (caddr p) (car (cddr p)))
(define (cdaar p) (cdr (caar p)))
(define (cdadr p) (cdr (cadr p)))
(define (cddar p) (cdr (cdar p)))
(define (cdddr p) (cdr (cddr p)))
(define (cadddr p) (car (cdddr p)))
(define (cddddr p) (cdr (cdddr p)))

(define (member x lst)
  (cond ((null? lst) #f)
        ((equal? x (car lst)) lst)
        (else (member x (cdr lst)))))

(define (assoc x lst)
  (cond ((null? lst) #f)
        ((equal? x (caar lst)) (car lst))
        (else (assoc x (cdr lst)))))

(define (map f lst . more)
  (if (null? more)
      (let map1 ((lst lst))
        (if (null? lst)
            '()
            (cons (f (car lst)) (map1 (cdr lst)))))
      (let mapn ((lists (cons lst more)))
        (if (memq '() lists)
            '()
            (cons (apply f (map car lists))
                  (mapn (map cdr lists)))))))

(define (for-each f lst . more)
  (if (null? more)
      (let fe1 ((lst lst))
        (if (null? lst)
            (void)
            (begin (f (car lst)) (fe1 (cdr lst)))))
      (let fen ((lists (cons lst more)))
        (if (memq '() lists)
            (void)
            (begin (apply f (map car lists)) (fen (map cdr lists)))))))

(define (list-copy lst) (append lst '()))

(define (last-pair lst)
  (if (pair? (cdr lst)) (last-pair (cdr lst)) lst))

(define (boolean=? a b) (eq? a b))

(define (filter keep? lst)
  (cond ((null? lst) '())
        ((keep? (car lst)) (cons (car lst) (filter keep? (cdr lst))))
        (else (filter keep? (cdr lst)))))

(define (fold-left f init lst)
  (if (null? lst)
      init
      (fold-left f (f init (car lst)) (cdr lst))))

(define (fold-right f init lst)
  (if (null? lst)
      init
      (f (car lst) (fold-right f init (cdr lst)))))

(define (reduce f init lst)
  (if (null? lst) init (fold-left f (car lst) (cdr lst))))

(define (iota n)
  (let loop ((i (- n 1)) (acc '()))
    (if (< i 0) acc (loop (- i 1) (cons i acc)))))

(define (assq-ref alist key)
  (let ((hit (assq key alist)))
    (if hit (cdr hit) #f)))

;; ----------------------------------------------------------------------
;; Condition system.
;;
;; A condition is a pair of a kind symbol and a message string; the VM
;; raises its own recoverable faults (type errors, heap budget,
;; stack-segment ceiling, injected faults) through `raise` in exactly this
;; shape, so one handler mechanism covers Scheme-side and Rust-side faults.
;; The handler stack itself lives in the VM (see the %-builtins) so that
;; the garbage collector can trace it and `vm-stats` can report it.
;; ----------------------------------------------------------------------

(define (make-condition kind message) (cons kind message))
(define (condition? c)
  (and (pair? c) (symbol? (car c)) (string? (cdr c))))
(define (condition-kind c) (car c))
(define (condition-message c) (cdr c))

;; Installs `handler` for the dynamic extent of `thunk`. The dynamic-wind
;; brackets keep the handler stack balanced when control enters or leaves
;; the extent through continuations.
(define (with-exception-handler handler thunk)
  (dynamic-wind
    (lambda () (%push-handler! handler))
    thunk
    (lambda () (%pop-handler!))))

;; Raises a non-continuable condition: the innermost handler runs with the
;; next-outer handler installed (so a raise from inside a handler is not
;; caught by the same handler); if it returns, that is itself an error.
(define (raise c)
  (%note-raise!)
  (if (%have-handler?)
      (let ((h (%top-handler)))
        (dynamic-wind
          (lambda () (%pop-handler!))
          (lambda ()
            (h c)
            (raise (make-condition
                    'non-continuable
                    "exception handler returned from non-continuable raise")))
          (lambda () (%push-handler! h))))
      (%uncaught c)))

;; Like `raise`, but the handler's value becomes the value of the
;; `raise-continuable` call (used by the VM for injected faults that are
;; safe to resume past).
(define (raise-continuable c)
  (%note-raise!)
  (if (%have-handler?)
      (let ((h (%top-handler)))
        (dynamic-wind
          (lambda () (%pop-handler!))
          (lambda () (h c))
          (lambda () (%push-handler! h))))
      (%uncaught c)))

;; `guard`-style recovery without macros: runs `thunk`; if it raises,
;; escapes the raising context on a one-shot continuation (running any
;; intervening dynamic-wind afters) and applies `handler` to the condition
;; *outside* the handler's own extent, so conditions raised while handling
;; go to the enclosing guard.
(define (call-with-guard handler thunk)
  ((call/1cc
    (lambda (k)
      (with-exception-handler
       (lambda (c) (k (lambda () (handler c))))
       (lambda () (let ((v (thunk))) (lambda () v))))))))
