//! Additional semantic edge cases: letrec ordering, internal defines,
//! winder/one-shot interactions, engine-adjacent timer behaviour, and the
//! empty ("halt") continuation.

use oneshot_vm::Vm;

fn eval(vm: &mut Vm, src: &str) -> String {
    match vm.eval_str(src) {
        Ok(v) => vm.write_value(&v),
        Err(e) => panic!("program failed: {e}\n{src}"),
    }
}

#[test]
fn letrec_mutual_recursion_and_ordering() {
    let mut vm = Vm::new();
    assert_eq!(
        eval(
            &mut vm,
            "(letrec ((e? (lambda (n) (if (zero? n) #t (o? (- n 1)))))
                      (o? (lambda (n) (if (zero? n) #f (e? (- n 1))))))
               (list (e? 10) (o? 7)))"
        ),
        "(#t #t)"
    );
    // letrec* ordering: later inits may use earlier bindings' values.
    assert_eq!(eval(&mut vm, "(letrec* ((a 1) (b (+ a 1))) (list a b))"), "(1 2)");
}

#[test]
fn internal_defines_see_each_other() {
    let mut vm = Vm::new();
    assert_eq!(
        eval(
            &mut vm,
            "(define (f n)
               (define (even2? n) (if (zero? n) #t (odd2? (- n 1))))
               (define (odd2? n) (if (zero? n) #f (even2? (- n 1))))
               (even2? n))
             (f 10)"
        ),
        "#t"
    );
}

#[test]
fn one_shot_through_dynamic_wind_runs_afters_once() {
    let mut vm = Vm::new();
    assert_eq!(
        eval(
            &mut vm,
            "(define log '())
             (define (note x) (set! log (cons x log)))
             (call/cc (lambda (escape)
               (dynamic-wind
                 (lambda () (note 'in))
                 (lambda ()
                   ;; escape via a one-shot captured inside the extent
                   (call/1cc (lambda (k) (escape 'out))))
                 (lambda () (note 'out)))))
             (reverse log)"
        ),
        "(in out)"
    );
}

#[test]
fn halt_continuation_aborts_to_toplevel_value() {
    // A continuation captured at an empty tail position is the program's
    // halt continuation; invoking it ends the program with that value.
    let mut vm = Vm::new();
    let v = vm.eval_str("(call/cc (lambda (k) k))").unwrap();
    // The value is the continuation itself; invoking it from a later
    // toplevel form aborts that form.
    vm.set_global("saved-k", v);
    let v = vm.eval_str("(+ 1 (saved-k 99) 1000000)").unwrap();
    assert_eq!(vm.write_value(&v), "99");
}

#[test]
fn set_timer_reports_remaining_fuel() {
    let mut vm = Vm::new();
    assert_eq!(
        eval(
            &mut vm,
            "(timer-interrupt-handler! (lambda () (set-timer! 1000)))
             (set-timer! 1000)
             (define (spin n) (if (zero? n) 0 (spin (- n 1))))
             (spin 100)
             (let ((left (set-timer! 0)))
               (and (> left 0) (< left 1000)))"
        ),
        "#t"
    );
}

#[test]
fn deep_mutual_recursion_across_segments() {
    let mut vm = Vm::new();
    assert_eq!(
        eval(
            &mut vm,
            "(define (a n) (if (zero? n) 0 (+ 1 (b (- n 1)))))   ; non-tail
             (define (b n) (if (zero? n) 0 (a (- n 1))))          ; tail
             (a 100001)"
        ),
        "50001"
    );
}

#[test]
fn variadic_edge_cases() {
    let mut vm = Vm::new();
    assert_eq!(eval(&mut vm, "((lambda args (length args)))"), "0");
    assert_eq!(eval(&mut vm, "(apply (lambda (a b . r) (list a b r)) 1 '(2 3 4))"), "(1 2 (3 4))");
    assert_eq!(eval(&mut vm, "(apply list '())"), "()");
}

#[test]
fn winders_compose_with_values() {
    let mut vm = Vm::new();
    assert_eq!(
        eval(
            &mut vm,
            "(call-with-values
               (lambda ()
                 (dynamic-wind void (lambda () (values 1 2 3)) void))
               list)"
        ),
        "(1 2 3)"
    );
}
