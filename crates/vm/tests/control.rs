//! Continuation torture tests: the paper's mechanisms observed through
//! both behaviour and the VM's counters — one-shot O(1) reinstatement,
//! promotion, overflow handling, the segment cache, splitting, and the
//! interactions with `dynamic-wind` and multiple values.

use oneshot_core::{Config, OverflowPolicy, PromotionStrategy};
use oneshot_vm::{Pipeline, Vm, VmConfig};

fn vm_with(stack: Config) -> Vm {
    Vm::with_config(VmConfig { stack, ..VmConfig::default() })
}

fn eval(vm: &mut Vm, src: &str) -> String {
    match vm.eval_str(src) {
        Ok(v) => vm.write_value(&v),
        Err(e) => panic!("program failed: {e}\n{src}"),
    }
}

const CTAK: &str = "
  (define (ctak x y z)
    (CAPTURE (lambda (k) (ctak-aux k x y z))))
  (define (ctak-aux k x y z)
    (if (not (< y x))
        (k z)
        (ctak-aux k
          (ctak (- x 1) y z)
          (ctak (- y 1) z x)
          (ctak (- z 1) x y))))
  (ctak 12 6 0)";

#[test]
fn ctak_gives_same_answer_under_both_capture_operators() {
    for op in ["call/cc", "call/1cc"] {
        let mut vm = Vm::new();
        let r = eval(&mut vm, &CTAK.replace("CAPTURE", op));
        assert_eq!(r, "1", "{op}");
    }
}

#[test]
fn one_shot_ctak_copies_nothing_multi_shot_copies_plenty() {
    // The paper's §4 tak experiment at the mechanism level.
    let mut multi = Vm::new();
    eval(&mut multi, &CTAK.replace("CAPTURE", "call/cc"));
    let ms = multi.stats();
    assert!(ms.stack.captures_multi > 1000);
    assert!(ms.stack.slots_copied > 10_000, "multi-shot reinstatement copies");

    let mut one = Vm::new();
    eval(&mut one, &CTAK.replace("CAPTURE", "call/1cc"));
    let os = one.stats();
    assert!(os.stack.captures_one > 1000);
    assert_eq!(os.stack.slots_copied, 0, "one-shot control copies nothing");
    assert_eq!(os.stack.reinstates_one, os.stack.captures_one);
    // And it allocates less overall (stack segments dominate here).
    assert!(
        os.stack.segment_slots_allocated < ms.stack.segment_slots_allocated * 2,
        "one-shot allocation stays bounded via the cache"
    );
}

#[test]
fn segment_cache_feeds_one_shot_churn() {
    let mut vm = Vm::new();
    eval(&mut vm, &CTAK.replace("CAPTURE", "call/1cc"));
    let s = vm.stats();
    assert!(
        s.stack.cache_hits as f64 > 0.9 * s.stack.captures_one as f64,
        "nearly every fresh segment comes from the cache: {:?}",
        s.stack
    );
    assert!(
        s.stack.segments_allocated < 20,
        "few real allocations: {}",
        s.stack.segments_allocated
    );
}

#[test]
fn deep_recursion_under_tiny_segments_is_correct_for_both_policies() {
    for policy in [OverflowPolicy::OneShot, OverflowPolicy::MultiShot] {
        let cfg = Config {
            segment_slots: 256,
            copy_bound: 64,
            overflow_policy: policy,
            ..Config::default()
        };
        let mut vm = vm_with(cfg);
        let r = eval(&mut vm, "(define (sum n) (if (zero? n) 0 (+ n (sum (- n 1))))) (sum 20000)");
        assert_eq!(r, "200010000", "{policy:?}");
        let s = vm.stats();
        assert!(s.stack.overflows > 50, "{policy:?}: {}", s.stack.overflows);
        match policy {
            OverflowPolicy::OneShot => {
                assert!(s.stack.reinstates_one >= s.stack.overflows / 2)
            }
            OverflowPolicy::MultiShot => {
                assert!(s.stack.reinstates_multi >= s.stack.overflows / 2)
            }
        }
    }
}

#[test]
fn one_shot_overflow_avoids_underflow_copying() {
    let prog = "(define (sum n) (if (zero? n) 0 (+ n (sum (- n 1))))) (sum 50000)";
    let base = Config { segment_slots: 512, copy_bound: 128, ..Config::default() };

    let mut one = vm_with(Config { overflow_policy: OverflowPolicy::OneShot, ..base.clone() });
    eval(&mut one, prog);
    let os = one.stats();

    let mut multi = vm_with(Config { overflow_policy: OverflowPolicy::MultiShot, ..base });
    eval(&mut multi, prog);
    let ms = multi.stats();

    // One-shot pays only the hysteresis copy on the way up; multi-shot
    // additionally copies every frame back on the way down.
    assert!(
        ms.stack.slots_copied > 3 * os.stack.slots_copied,
        "multi {} vs one {}",
        ms.stack.slots_copied,
        os.stack.slots_copied
    );
}

#[test]
fn promotion_allows_reuse_and_counts() {
    for strategy in [PromotionStrategy::EagerWalk, PromotionStrategy::SharedFlag] {
        let cfg = Config { promotion: strategy, ..Config::default() };
        let mut vm = vm_with(cfg);
        let r = eval(
            &mut vm,
            "
            (define km #f)
            (define count 0)
            (define result
              (call/1cc (lambda (k)
                (+ 100 (call/cc (lambda (c) (set! km c) 0))))))
            (set! count (+ count 1))
            (if (< count 3) (km count))
            (list result count)",
        );
        assert_eq!(r, "(102 3)", "{strategy:?}");
        let s = vm.stats();
        assert!(s.stack.promotions >= 1, "{strategy:?}");
        if strategy == PromotionStrategy::SharedFlag {
            assert_eq!(s.stack.promotion_steps, 0, "shared flag never walks");
        }
    }
}

#[test]
fn unpromoted_one_shot_reuse_is_an_error() {
    let mut vm = Vm::new();
    let e = vm
        .eval_str(
            "
            (define km #f)
            (define count 0)
            (define result
              (call/1cc (lambda (k)
                (+ 100 (call/1cc (lambda (c) (set! km c) 0))))))
            (set! count (+ count 1))
            (if (< count 3) (km count))
            count",
        )
        .unwrap_err();
    assert!(e.to_string().contains("one-shot"), "{e}");
}

#[test]
fn large_continuations_split_at_copy_bound() {
    let cfg = Config { segment_slots: 4096, copy_bound: 64, ..Config::default() };
    let mut vm = vm_with(cfg);
    // Build a deep non-tail context, capture it, return out, reinvoke.
    let r = eval(
        &mut vm,
        "
        (define k1 #f)
        (define count 0)
        (define (deep n)
          (if (zero? n)
              (call/cc (lambda (k) (set! k1 k) 0))
              (+ 1 (deep (- n 1)))))
        (define result (deep 300))
        (set! count (+ count 1))
        (if (< count 3) (k1 result))
        (list result count)",
    );
    // Each re-entry adds the 300 pending additions: 300, 600, then 900.
    assert_eq!(r, "(900 3)");
    let s = vm.stats();
    assert!(s.stack.splits >= 1, "expected splitting: {:?}", s.stack);
    assert!(s.stack.reinstates_multi >= 2);
}

#[test]
fn coroutines_via_one_shot_continuations() {
    let mut vm = Vm::new();
    let r = eval(
        &mut vm,
        "
        (define out '())
        (define (emit x) (set! out (cons x out)))
        (define a-k #f)
        (define b-k #f)
        (define (a)
          (emit 'a1)
          (call/1cc (lambda (k) (set! a-k k) (b-k 0)))
          (emit 'a2)
          (call/1cc (lambda (k) (set! a-k k) (b-k 0)))
          (emit 'a3))
        (define (b)
          (emit 'b1)
          (call/1cc (lambda (k) (set! b-k k) (a-k 0)))
          (emit 'b2)
          (call/1cc (lambda (k) (set! b-k k) (a-k 0)))
          (emit 'b3))
        (set! b-k (lambda (ignore) (b)))   ; bootstrap: a's first yield starts b
        (a)
        (reverse out)",
    );
    // a runs to its first yield, then b; they ping-pong until a finishes
    // (b's final segment stays suspended).
    assert_eq!(r, "(a1 b1 a2 b2 a3)");
}

#[test]
fn generators_with_multi_shot_restart() {
    let mut vm = Vm::new();
    let r = eval(
        &mut vm,
        "
        (define (make-gen lst)
          (define return #f)
          (define (yield x)
            (call/cc (lambda (k)
              (set! resume k)
              (return x))))
          (define resume
            (lambda (ignore)
              (for-each yield lst)
              (return 'done)))
          (lambda ()
            (call/cc (lambda (k)
              (set! return k)
              (resume #f)))))
        (define g (make-gen '(1 2 3)))
        (list (g) (g) (g) (g))",
    );
    assert_eq!(r, "(1 2 3 done)");
}

#[test]
fn amb_backtracking_with_multi_shot() {
    let mut vm = Vm::new();
    let r = eval(
        &mut vm,
        "
        (define fail #f)
        (define (amb . choices)
          (call/cc (lambda (k)
            (define old-fail fail)
            (define (try choices)
              (if (null? choices)
                  (begin (set! fail old-fail) (fail #f))
                  (begin
                    (call/cc (lambda (retry)
                      (set! fail (lambda (ignore) (retry 'next)))
                      (k (car choices))))
                    (try (cdr choices)))))
            (try choices))))
        ;; Find a Pythagorean triple.
        (call/cc (lambda (done)
          (set! fail (lambda (ignore) (done 'none)))
          (let ((a (amb 1 2 3 4 5)) (b (amb 1 2 3 4 5)) (c (amb 1 2 3 4 5)))
            (if (and (< a b) (= (+ (* a a) (* b b)) (* c c)))
                (done (list a b c))
                (fail #f)))))",
    );
    assert_eq!(r, "(3 4 5)");
}

#[test]
fn dynamic_wind_reentry_runs_before_thunks() {
    let mut vm = Vm::new();
    let r = eval(
        &mut vm,
        "
        (define trace '())
        (define (note x) (set! trace (cons x trace)))
        (define k1 #f)
        (define count 0)
        (dynamic-wind
          (lambda () (note 'in))
          (lambda ()
            (call/cc (lambda (k) (set! k1 k)))
            (set! count (+ count 1)))
          (lambda () (note 'out)))
        (if (< count 3) (k1 0))
        (reverse trace)",
    );
    assert_eq!(r, "(in out in out in out)");
}

#[test]
fn nested_dynamic_wind_orders_winders() {
    let mut vm = Vm::new();
    let r = eval(
        &mut vm,
        "
        (define trace '())
        (define (note x) (set! trace (cons x trace)))
        (call/cc (lambda (escape)
          (dynamic-wind
            (lambda () (note 'o-in))
            (lambda ()
              (dynamic-wind
                (lambda () (note 'i-in))
                (lambda () (escape 'out))
                (lambda () (note 'i-out))))
            (lambda () (note 'o-out)))))
        (reverse trace)",
    );
    assert_eq!(r, "(o-in i-in i-out o-out)");
}

#[test]
fn dynamic_wind_cross_jump_between_branches() {
    // Jumping from inside one wind extent into another runs the afters of
    // the first and the befores of the second.
    let mut vm = Vm::new();
    let r = eval(
        &mut vm,
        "
        (define trace '())
        (define (note x) (set! trace (cons x trace)))
        (define back-in #f)
        (define done #f)
        (dynamic-wind
          (lambda () (note 'a-in))
          (lambda ()
            (call/cc (lambda (k) (set! back-in k)))
            (note 'a-body))
          (lambda () (note 'a-out)))
        ;; now outside; jump back in once
        (if (not done)
            (begin (set! done #t) (back-in 0)))
        (reverse trace)",
    );
    assert_eq!(r, "(a-in a-body a-out a-in a-body a-out)");
}

#[test]
fn call_cc_in_tail_position_reuses_link() {
    let mut vm = Vm::new();
    // Tail captures after an initial capture re-use the link (the paper's
    // proper-tail-recursion rule) — observable through captures_empty.
    eval(
        &mut vm,
        "
        (define (f) (call/cc (lambda (k) (call/cc (lambda (k2) 42)))))
        (f)",
    );
    let s = vm.stats();
    assert!(s.stack.captures_empty >= 1, "{:?}", s.stack);
}

#[test]
fn continuations_accept_multiple_values() {
    let mut vm = Vm::new();
    let r = eval(
        &mut vm,
        "(call-with-values
           (lambda () (call/cc (lambda (k) (k 1 2 3))))
           list)",
    );
    assert_eq!(r, "(1 2 3)");
    // Zero values too.
    let r = eval(
        &mut vm,
        "(call-with-values
           (lambda () (call/cc (lambda (k) (k))))
           (lambda () 'none))",
    );
    assert_eq!(r, "none");
}

#[test]
fn escaping_upward_twice_through_winders_is_stable() {
    let mut vm = Vm::new();
    let r = eval(
        &mut vm,
        "
        (define trace '())
        (define (note x) (set! trace (cons x trace)))
        (define (attempt thunk)
          (call/cc (lambda (escape)
            (dynamic-wind
              (lambda () (note 'enter))
              thunk
              (lambda () (note 'leave))))))
        (attempt (lambda () (note 'one) 1))
        (attempt (lambda () (note 'two) 2))
        (reverse trace)",
    );
    assert_eq!(r, "(enter one leave enter two leave)");
}

#[test]
fn timer_interrupt_based_engine_slices() {
    // A mini engine: run a computation for a fuel budget, suspending via
    // one-shot capture when the timer fires.
    let mut vm = Vm::new();
    let r = eval(
        &mut vm,
        "
        (define suspended #f)
        (define scheduler-k #f)
        (timer-interrupt-handler!
          (lambda ()
            (call/1cc (lambda (k)
              (set! suspended k)
              (scheduler-k 'suspended)))))
        (define (run-slice thunk fuel)
          (call/1cc (lambda (sk)
            (set! scheduler-k sk)
            (set-timer! fuel)
            (let ((v (thunk)))
              (set-timer! 0)
              ;; Deliver through the *current* slice continuation: the
              ;; lexical sk belongs to the first slice and is shot.
              (scheduler-k (list 'done v))))))
        (define (count-to n)
          (let loop ((i 0)) (if (= i n) i (loop (+ i 1)))))
        (define first (run-slice (lambda () (count-to 10000)) 100))
        (define resumptions 0)
        (let pump ()
          (if (eq? first 'suspended)
              (let ((k suspended))
                (set! first (run-slice (lambda () (k 0)) 100))
                (set! resumptions (+ resumptions 1))
                (pump))))
        (list first (> resumptions 10))",
    );
    assert_eq!(r, "((done 10000) #t)");
}

#[test]
fn gc_preserves_captured_continuations() {
    // Small GC threshold forces many collections while continuations and
    // their stack segments are live.
    let mut vm = Vm::new();
    vm.heap_mut().set_gc_threshold(256);
    let r = eval(
        &mut vm,
        "
        (define ks '())
        (define (deep n)
          (if (zero? n)
              (call/cc (lambda (k) (set! ks (cons k ks)) 0))
              (+ 1 (deep (- n 1)))))
        (define r1 (deep 50))
        ;; allocate heavily to force collections (re-run after re-entry too)
        (define junk (let loop ((i 0) (acc '()))
          (if (= i 2000) acc (loop (+ i 1) (cons (list i i i) acc)))))
        ;; Re-enter the saved continuation exactly once: the guard is the
        ;; value delivered through it, not a counter reset by re-entry.
        (if (= r1 50) ((car ks) 7))
        (list r1 (length junk))",
    );
    assert_eq!(r, "(57 2000)");
    assert!(vm.stats().heap.collections > 0, "collections happened");
}

#[test]
fn cps_pipeline_runs_the_same_control_programs() {
    // The heap-control baseline gives the same answers (single-value
    // subset, no winders).
    for src in [
        CTAK.replace("CAPTURE", "call/cc"),
        CTAK.replace("CAPTURE", "call/1cc"),
        "(define (make-counter)
           (let ((n 0)) (lambda () (set! n (+ n 1)) n)))
         (define c (make-counter))
         (c) (c) (+ (c) 10)"
            .to_string(),
        "(call/cc (lambda (abort)
           (define (walk l) (cond ((null? l) 0)
                                  ((not (number? (car l))) (abort 'bad))
                                  (else (+ (car l) (walk (cdr l))))))
           (walk '(1 2 x 4))))"
            .to_string(),
    ] {
        let mut direct = Vm::new();
        let expect = eval(&mut direct, &src);
        let mut cps = Vm::with_config(VmConfig { pipeline: Pipeline::Cps, ..VmConfig::default() });
        let got = eval(&mut cps, &src);
        assert_eq!(got, expect, "CPS diverged on: {src}");
    }
}

#[test]
fn cps_pipeline_allocates_closures_where_direct_does_not() {
    let src = "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 14)";
    let mut direct = Vm::new();
    let d0 = direct.stats();
    eval(&mut direct, src);
    let d = direct.stats().delta_since(&d0);

    let mut cps = Vm::with_config(VmConfig { pipeline: Pipeline::Cps, ..VmConfig::default() });
    let c0 = cps.stats();
    eval(&mut cps, src);
    let c = cps.stats().delta_since(&c0);

    // §5: the direct compiler allocates essentially no closures per frame;
    // CPS allocates at least one per non-tail call.
    assert!(d.heap.closures_allocated <= 2, "direct: {}", d.heap.closures_allocated);
    assert!(
        c.heap.closures_allocated > 300,
        "cps allocates control closures: {}",
        c.heap.closures_allocated
    );
}
