//! The condition system and resource guards: every fault class the VM can
//! raise — type/arity errors, `(error ...)`, shot-twice one-shot
//! continuations, heap-budget exhaustion, stack-segment ceilings, fuel
//! exhaustion, and deterministically injected faults — must be catchable
//! from Scheme with `with-exception-handler`/`call-with-guard`, and must
//! surface as `VmError::Uncaught` with a backtrace when nothing catches
//! them.

use oneshot_vm::{FaultPlan, Vm, VmError};

fn check(vm: &mut Vm, src: &str, expected: &str) {
    match vm.eval_str(src) {
        Ok(v) => assert_eq!(vm.write_value(&v), expected, "program: {src}"),
        Err(e) => panic!("program {src} failed: {e}"),
    }
}

/// Expects `src` to die with `Uncaught`, returning (kind, condition,
/// backtrace).
fn expect_uncaught(vm: &mut Vm, src: &str) -> (Option<String>, String, Vec<String>) {
    match vm.eval_str(src) {
        Ok(v) => panic!("program {src} should fail, returned {}", vm.write_value(&v)),
        Err(e) => match e {
            VmError::Uncaught { condition, kind, backtrace } => (kind, condition, backtrace),
            other => panic!("program {src}: expected Uncaught, got {other:?}"),
        },
    }
}

// ----------------------------------------------------------------------
// The Scheme-level machinery itself
// ----------------------------------------------------------------------

#[test]
fn raise_reaches_installed_handler() {
    let mut vm = Vm::new();
    check(
        &mut vm,
        "(call-with-guard
           (lambda (c) (list 'caught (condition-kind c) (condition-message c)))
           (lambda () (raise (make-condition 'my-fault \"boom\"))))",
        "(caught my-fault \"boom\")",
    );
}

#[test]
fn raise_continuable_resumes_with_handler_value() {
    let mut vm = Vm::new();
    check(
        &mut vm,
        "(with-exception-handler
           (lambda (c) 41)
           (lambda () (+ 1 (raise-continuable (make-condition 'warn \"w\")))))",
        "42",
    );
}

#[test]
fn handler_returning_from_raise_is_itself_an_error() {
    let mut vm = Vm::new();
    check(
        &mut vm,
        "(call-with-guard
           (lambda (c) (condition-kind c))
           (lambda ()
             (with-exception-handler
               (lambda (c) 'ignored)
               (lambda () (raise (make-condition 'x \"x\")) 'unreachable))))",
        "non-continuable",
    );
}

#[test]
fn handler_runs_outside_its_own_extent() {
    // A raise from inside a handler must go to the *enclosing* handler,
    // never loop back into the one that is already handling.
    let mut vm = Vm::new();
    check(
        &mut vm,
        "(call-with-guard
           (lambda (c) (list 'outer (condition-kind c)))
           (lambda ()
             (call-with-guard
               (lambda (c) (raise (make-condition 'rethrown \"from handler\")))
               (lambda () (raise (make-condition 'inner \"first\"))))))",
        "(outer rethrown)",
    );
}

#[test]
fn uncaught_raise_reports_kind_and_backtrace() {
    let mut vm = Vm::new();
    vm.eval_str("(define (f) (raise (make-condition 'my-fault \"boom\")))").unwrap();
    let (kind, condition, backtrace) = expect_uncaught(&mut vm, "(f)");
    assert_eq!(kind.as_deref(), Some("my-fault"));
    assert_eq!(condition, "boom");
    assert!(!backtrace.is_empty(), "uncaught conditions carry a backtrace");
    // The VM recovered: it keeps evaluating.
    check(&mut vm, "(+ 1 2)", "3");
}

#[test]
fn raising_a_bare_value_works() {
    let mut vm = Vm::new();
    check(
        &mut vm,
        "(call-with-guard (lambda (c) (list 'got c)) (lambda () (raise 42)))",
        "(got 42)",
    );
    let (kind, condition, _) = expect_uncaught(&mut vm, "(raise 42)");
    assert_eq!(kind, None);
    assert_eq!(condition, "42");
}

#[test]
fn dynamic_wind_balances_through_raise_escape() {
    let mut vm = Vm::new();
    vm.eval_str("(define log '()) (define (note x) (set! log (cons x log)))").unwrap();
    check(
        &mut vm,
        "(begin
           (call-with-guard
             (lambda (c) 'caught)
             (lambda ()
               (dynamic-wind
                 (lambda () (note 'in))
                 (lambda () (raise (make-condition 'x \"x\")))
                 (lambda () (note 'out)))))
           (reverse log))",
        "(in out)",
    );
}

// ----------------------------------------------------------------------
// Rust-raised fault classes, caught in Scheme
// ----------------------------------------------------------------------

#[test]
fn type_error_is_catchable() {
    let mut vm = Vm::new();
    check(
        &mut vm,
        "(call-with-guard (lambda (c) (condition-kind c)) (lambda () (car 5)))",
        "type-error",
    );
}

#[test]
fn arity_error_is_catchable() {
    let mut vm = Vm::new();
    check(
        &mut vm,
        "(call-with-guard (lambda (c) (condition-kind c)) (lambda () ((lambda (x) x))))",
        "arity-error",
    );
}

#[test]
fn error_builtin_raises_an_error_condition() {
    let mut vm = Vm::new();
    check(
        &mut vm,
        "(call-with-guard
           (lambda (c) (list (condition-kind c) (condition-message c)))
           (lambda () (error \"bad\" 'thing)))",
        "(error \"bad thing\")",
    );
    // Uncaught, it prints exactly like the historical Runtime error.
    let e = vm.eval_str("(error \"worse\" 'thing)").unwrap_err();
    assert_eq!(e.to_string(), "error: worse thing");
}

#[test]
fn shot_twice_is_catchable() {
    let mut vm = Vm::new();
    vm.eval_str("(define cell #f)").unwrap();
    check(
        &mut vm,
        "(call-with-guard
           (lambda (c) (condition-kind c))
           (lambda ()
             (let ((k (call/1cc (lambda (k) k))))
               (if (procedure? k)
                   (begin (set! cell k) (k 1))
                   (cell 3)))))",
        "shot-twice",
    );
}

#[test]
fn shot_twice_uncaught_has_kind_and_backtrace() {
    let mut vm = Vm::new();
    vm.eval_str("(define cell #f)").unwrap();
    let (kind, condition, backtrace) = expect_uncaught(
        &mut vm,
        "(let ((k (call/1cc (lambda (k) k))))
           (if (procedure? k) (begin (set! cell k) (k 1)) (cell 3)))",
    );
    assert_eq!(kind.as_deref(), Some("shot-twice"));
    assert!(condition.contains("one-shot"), "condition: {condition}");
    assert!(!backtrace.is_empty());
}

#[test]
fn type_error_uncaught_keeps_its_message_shape() {
    let mut vm = Vm::new();
    let e = vm.eval_str("(car 5)").unwrap_err();
    assert_eq!(e.to_string(), "error: car: expected pair, got 5");
    assert!(matches!(e, VmError::Uncaught { .. }));
}

// ----------------------------------------------------------------------
// Resource guards
// ----------------------------------------------------------------------

const DEEP_LOOP: &str = "(define (deep n) (if (= n 0) 0 (+ 1 (deep (- n 1)))))";

#[test]
fn stack_segment_ceiling_is_catchable() {
    let mut vm = Vm::builder().max_stack_segments(4).build();
    vm.eval_str(DEEP_LOOP).unwrap();
    check(
        &mut vm,
        "(call-with-guard (lambda (c) (condition-kind c)) (lambda () (deep 1000000)))",
        "stack-overflow",
    );
    // The guard escape released the segments: shallow work still runs, and
    // a fresh deep run trips the ceiling again (the grace latch cleared).
    check(&mut vm, "(deep 100)", "100");
    let (kind, _, backtrace) = expect_uncaught(&mut vm, "(deep 1000000)");
    assert_eq!(kind.as_deref(), Some("stack-overflow"));
    assert!(!backtrace.is_empty());
}

#[test]
fn heap_budget_exhaustion_is_catchable() {
    let mut vm = Vm::builder().heap_budget(20_000).build();
    vm.eval_str("(define (build n acc) (if (= n 0) acc (build (- n 1) (cons n acc))))").unwrap();
    check(
        &mut vm,
        "(call-with-guard (lambda (c) (condition-kind c)) (lambda () (build 100000 '())))",
        "out-of-memory",
    );
    // After the guard dropped the giant list, allocation works again.
    check(&mut vm, "(length (build 100 '()))", "100");
}

#[test]
fn fuel_exhaustion_is_catchable() {
    let mut vm = Vm::new();
    vm.eval_str(DEEP_LOOP).unwrap();
    check(
        &mut vm,
        "(call-with-guard
           (lambda (c) (condition-kind c))
           (lambda () (set-timer! 200) (deep 100000)))",
        "fuel-exhausted",
    );
    let e = vm.eval_str("(set-timer! 200) (deep 100000)").unwrap_err();
    assert_eq!(e.condition_kind(), Some("fuel-exhausted"));
}

// ----------------------------------------------------------------------
// Deterministic fault injection
// ----------------------------------------------------------------------

#[test]
fn injected_alloc_fault_is_catchable_and_counted() {
    let plan = FaultPlan::none().with_alloc_fault(50);
    let mut vm = Vm::builder().fault_plan(plan).build();
    vm.eval_str("(define (build n acc) (if (= n 0) acc (build (- n 1) (cons n acc))))").unwrap();
    check(
        &mut vm,
        "(call-with-guard (lambda (c) (condition-kind c)) (lambda () (build 1000 '())))",
        "out-of-memory",
    );
    let stats = vm.stats();
    assert_eq!(stats.faults_injected, 1, "the clock fires exactly once");
    assert!(stats.conditions_raised >= 1);
    // The fault is one-shot: the same program now completes.
    check(&mut vm, "(length (build 1000 '()))", "1000");
}

#[test]
fn injected_segment_fault_is_catchable() {
    let plan = FaultPlan::none().with_segment_fault(10);
    let mut vm = Vm::builder().fault_plan(plan).build();
    vm.eval_str(DEEP_LOOP).unwrap();
    check(
        &mut vm,
        "(call-with-guard (lambda (c) (condition-kind c)) (lambda () (deep 100000)))",
        "stack-overflow",
    );
    assert_eq!(vm.stats().faults_injected, 1);
    check(&mut vm, "(deep 1000)", "1000");
}

#[test]
fn injected_timer_fault_is_catchable() {
    let plan = FaultPlan::none().with_timer_fault(30);
    let mut vm = Vm::builder().fault_plan(plan).build();
    vm.eval_str(DEEP_LOOP).unwrap();
    check(
        &mut vm,
        "(call-with-guard (lambda (c) (condition-kind c)) (lambda () (deep 100000)))",
        "fuel-exhausted",
    );
    assert_eq!(vm.stats().faults_injected, 1);
    check(&mut vm, "(deep 1000)", "1000");
}

#[test]
fn seeded_plans_reproduce() {
    for seed in [1u64, 7, 42, 0xDEAD_BEEF] {
        let run = |seed: u64| {
            let plan = FaultPlan::seeded(seed, 200);
            let mut vm = Vm::builder().fault_plan(plan).build();
            vm.eval_str(DEEP_LOOP).unwrap();
            let r = vm.eval_str(
                "(call-with-guard (lambda (c) (condition-kind c)) (lambda () (deep 5000)))",
            );
            let shown = match r {
                Ok(v) => vm.write_value(&v),
                Err(e) => format!("err: {e}"),
            };
            (shown, vm.stats().faults_injected)
        };
        assert_eq!(run(seed), run(seed), "seed {seed} must reproduce");
    }
}

// ----------------------------------------------------------------------
// Counters and stats plumbing
// ----------------------------------------------------------------------

#[test]
fn conditions_raised_counts_caught_and_uncaught() {
    let mut vm = Vm::new();
    assert_eq!(vm.stats().conditions_raised, 0);
    vm.eval_str("(call-with-guard (lambda (c) 'ok) (lambda () (raise (make-condition 'a \"a\"))))")
        .unwrap();
    assert_eq!(vm.stats().conditions_raised, 1);
    let _ = vm.eval_str("(raise (make-condition 'b \"b\"))").unwrap_err();
    assert_eq!(vm.stats().conditions_raised, 2);
}

#[test]
fn vm_stats_alist_exposes_the_new_counters() {
    let mut vm = Vm::new();
    check(&mut vm, "(assq-ref (vm-stats) 'conditions-raised)", "0");
    check(&mut vm, "(assq-ref (vm-stats) 'faults-injected)", "0");
    vm.eval_str("(call-with-guard (lambda (c) c) (lambda () (car 5)))").unwrap();
    check(&mut vm, "(assq-ref (vm-stats) 'conditions-raised)", "1");
}

// ----------------------------------------------------------------------
// Reader diagnostics
// ----------------------------------------------------------------------

#[test]
fn read_errors_carry_line_and_column() {
    let mut vm = Vm::new();
    let e = vm.eval_str("(+ 1 2)\n(car \"unterminated").unwrap_err();
    let shown = e.to_string();
    assert!(shown.contains("2:"), "read error should name line 2, got: {shown}");
    let e = vm.eval_str("(list 1 2\n   ))\n").unwrap_err();
    assert!(matches!(e, VmError::Read(_)), "got: {e:?}");
}
