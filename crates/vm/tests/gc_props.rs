//! GC is semantically invisible: a VM collecting every 16 allocations
//! must produce the same results *and the same printed output* as a VM
//! that never collects, across randomized programs exercising pairs,
//! vectors, strings, closures, and one-shot continuation reinstates.

use oneshot_vm::Vm;
use proptest::prelude::*;

/// Helper procedures every generated program can call — recursive list
/// builders that churn the heap so a 16-object threshold collects many
/// times mid-expression.
const PRELUDE: &str = "
  (define (build n) (if (zero? n) '() (cons n (build (- n 1)))))
  (define (sum l) (if (null? l) 0 (+ (car l) (sum (cdr l)))))
  (define (rev l acc) (if (null? l) acc (rev (cdr l) (cons (car l) acc))))";

/// A generated expression with the variables in scope.
fn expr(depth: u32, vars: Vec<String>) -> BoxedStrategy<String> {
    let atom = {
        let vars = vars.clone();
        prop_oneof![
            (-50i64..50).prop_map(|n| n.to_string()),
            Just("#t".to_string()),
            Just("#f".to_string()),
            proptest::sample::select(if vars.is_empty() { vec!["0".to_string()] } else { vars }),
        ]
    };
    if depth == 0 {
        return atom.boxed();
    }
    let sub = || expr(depth - 1, vars.clone());
    let fresh = format!("v{depth}");
    let mut extended = vars.clone();
    extended.push(fresh.clone());
    let sub_ext = expr(depth - 1, extended);

    prop_oneof![
        2 => atom,
        2 => (sub(), sub()).prop_map(|(a, b)| format!("(+ {a} {b})")),
        1 => (sub(), sub()).prop_map(|(a, b)| format!("(cons {a} {b})")),
        1 => sub().prop_map(|a| format!("(car (cons {a} (build 5)))")),
        1 => sub().prop_map(|a| format!("(sum (rev (build 20) (cons {a} '())))")),
        1 => (sub(), sub()).prop_map(|(a, b)| format!("(vector-ref (vector {a} {b}) 1)")),
        1 => sub().prop_map(|a| format!("(vector-length (make-vector 7 {a}))")),
        1 => sub().prop_map(|a| format!("(string-length (if (pair? {a}) \"yes\" \"nope\"))")),
        2 => (sub(), sub(), sub()).prop_map(|(c, t, f)| format!("(if {c} {t} {f})")),
        2 => (sub(), sub_ext).prop_map({
            let v = fresh.clone();
            move |(init, body)| format!("(let (({v} {init})) {body})")
        }),
        // Printed output must match too, not just the final value.
        1 => (sub(), sub()).prop_map(|(a, b)| format!("(begin (display {a}) {b})")),
        // Escaping captures, both operators.
        1 => (sub(), sub()).prop_map(|(a, b)| {
            format!("(call/cc (lambda (k) (+ {a} (k {b}))))")
        }),
        1 => (sub(), sub()).prop_map(|(a, b)| {
            format!("(call/1cc (lambda (k) (+ {a} (k {b}))))")
        }),
        // A one-shot captured, escaped with itself, then reinstated once
        // from outside the capture context. The reinstate argument is
        // forced to a fixnum so the second pass through the `let` body
        // takes the non-procedure branch.
        1 => (sub(), sub()).prop_map(|(a, b)| format!(
            "(+ (if (pair? {b}) 1 0)
                (let ((kv (call/1cc (lambda (k) k))))
                  (if (procedure? kv) (kv (if (pair? {a}) 10 20)) kv)))"
        )),
    ]
    .boxed()
}

/// Result value *and* captured display output, or a collapsed error.
fn outcome(vm: &mut Vm, src: &str) -> Result<(String, String), String> {
    match vm.eval_str(src) {
        Ok(v) => Ok((vm.write_value(&v), vm.take_output())),
        Err(_) => Err("error".to_string()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn gc_threshold_is_semantically_invisible(body in expr(4, vec![])) {
        let src = format!("{PRELUDE}\n{body}");

        let mut lazy = Vm::builder().gc_threshold(usize::MAX >> 1).build();
        let expected = outcome(&mut lazy, &src);

        let mut eager = Vm::builder().gc_threshold(16).build();
        prop_assert_eq!(outcome(&mut eager, &src), expected, "gc diverged on: {}", src);
    }
}

/// Deterministic anchor: a continuation- and allocation-heavy program run
/// under an eager threshold collects many times yet agrees with the
/// never-collecting VM, and its heap returns to the pre-run live count
/// after a final full collection (no leaks through the kont registry).
#[test]
fn eager_gc_agrees_and_reclaims_everything() {
    // The thread-system shape: a worker suspends itself by stashing a
    // one-shot and escaping to the scheduler; the scheduler churns the
    // heap, then reinstates the one-shot while the worker frame is still
    // pending. (The scheduler's escape is call/cc because the worker's
    // eventual return passes through that capture point a second time.)
    let src = "
      (define saved #f)
      (define out #f)
      (define (chew n acc)
        (if (zero? n) acc (chew (- n 1) (cons (vector n (list n n)) acc))))
      (define (worker)
        (+ 100 (call/1cc (lambda (k) (set! saved k) (out 0)))))
      (define first (call/cc (lambda (o) (set! out o) (worker))))
      (define fuel (length (chew 400 '())))
      (define second (if (= first 0) (saved 7) first))
      (display (list second fuel))
      second";

    let mut lazy = Vm::builder().gc_threshold(usize::MAX >> 1).build();
    let expected = outcome(&mut lazy, src);
    assert_eq!(expected, Ok(("107".to_string(), "(107 400)".to_string())));

    let mut eager = Vm::builder().gc_threshold(16).build();
    assert_eq!(outcome(&mut eager, src), expected);
    assert!(eager.stats().heap.collections > 10, "threshold 16 must collect constantly");

    // Leak check: after a full collect, an allocation-heavy re-run
    // followed by another full collect must return the live count to the
    // baseline exactly.
    eager.collect_now();
    let baseline = eager.heap().len();
    eager.eval_str("(length (chew 100 '()))").unwrap();
    eager.take_output();
    eager.collect_now();
    assert_eq!(eager.heap().len(), baseline, "heap did not return to baseline");
}
