//! Differential testing: the same program must produce the same answer
//! under (a) the direct pipeline with default segments, (b) the direct
//! pipeline with tiny segments and aggressive copy bounds (exercising
//! overflow/underflow/splitting constantly), and (c) the CPS pipeline
//! (control in heap closures). Programs are generated randomly from a
//! terminating expression grammar that includes escaping continuations.

use oneshot_core::{Config, OverflowPolicy};
use oneshot_vm::{Pipeline, Vm, VmConfig};
use proptest::prelude::*;

/// A generated expression with the variables in scope.
fn expr(depth: u32, vars: Vec<String>) -> BoxedStrategy<String> {
    let atom = {
        let vars = vars.clone();
        prop_oneof![
            (-50i64..50).prop_map(|n| n.to_string()),
            Just("#t".to_string()),
            Just("#f".to_string()),
            proptest::sample::select(if vars.is_empty() { vec!["0".to_string()] } else { vars }),
        ]
    };
    if depth == 0 {
        return atom.boxed();
    }
    let sub = || expr(depth - 1, vars.clone());
    let fresh = format!("v{depth}");
    let mut extended = vars.clone();
    extended.push(fresh.clone());
    let sub_ext = expr(depth - 1, extended.clone());
    let sub_ext2 = expr(depth - 1, extended);

    prop_oneof![
        2 => atom,
        2 => (sub(), sub()).prop_map(|(a, b)| format!("(+ {a} {b})")),
        1 => (sub(), sub()).prop_map(|(a, b)| format!("(- {a} {b})")),
        1 => (sub(), sub()).prop_map(|(a, b)| format!("(< {a} {b})")),
        1 => (sub(), sub()).prop_map(|(a, b)| format!("(cons {a} {b})")),
        1 => sub().prop_map(|a| format!("(car (cons {a} 0))")),
        1 => sub().prop_map(|a| format!("(not {a})")),
        2 => (sub(), sub(), sub()).prop_map(|(c, t, f)| format!("(if {c} {t} {f})")),
        2 => (sub(), sub_ext.clone()).prop_map({
            let v = fresh.clone();
            move |(init, body)| format!("(let (({v} {init})) {body})")
        }),
        1 => (sub(), sub_ext2).prop_map({
            let v = fresh.clone();
            move |(arg, body)| format!("((lambda ({v}) {body}) {arg})")
        }),
        // Escaping continuation: k escapes with a value from inside an
        // arithmetic context.
        1 => (sub(), sub()).prop_map(|(a, b)| {
            format!("(call/cc (lambda (k) (+ {a} (k {b}))))")
        }),
        1 => (sub(), sub()).prop_map(|(a, b)| {
            format!("(call/1cc (lambda (k) (+ {a} (k {b}))))")
        }),
        // Non-escaping capture.
        1 => sub().prop_map(|a| format!("(call/cc (lambda (k) {a}))")),
    ]
    .boxed()
}

fn outcome(vm: &mut Vm, src: &str) -> Result<String, String> {
    match vm.eval_str(src) {
        Ok(v) => Ok(vm.write_value(&v)),
        Err(_) => Err("error".to_string()),
    }
}

fn tiny_stack() -> Config {
    Config {
        segment_slots: 128,
        copy_bound: 32,
        hysteresis_slots: 16,
        min_headroom: 32,
        cache_limit: 4,
        ..Config::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn pipelines_and_stack_configs_agree(src in expr(4, vec![])) {
        let mut reference = Vm::new();
        let expected = outcome(&mut reference, &src);

        let mut tiny = Vm::with_config(VmConfig { stack: tiny_stack(), ..VmConfig::default() });
        prop_assert_eq!(outcome(&mut tiny, &src), expected.clone(), "tiny segments diverged: {}", src);

        let mut tiny_multi = Vm::with_config(VmConfig {
            stack: Config { overflow_policy: OverflowPolicy::MultiShot, ..tiny_stack() },
            ..VmConfig::default()
        });
        prop_assert_eq!(
            outcome(&mut tiny_multi, &src),
            expected.clone(),
            "multi-shot overflow diverged: {}",
            src
        );

        let mut cps = Vm::with_config(VmConfig { pipeline: Pipeline::Cps, ..VmConfig::default() });
        prop_assert_eq!(outcome(&mut cps, &src), expected, "CPS diverged: {}", src);
    }
}

/// A fixed corpus of benchmark-like programs checked across all
/// configurations, as a deterministic anchor.
#[test]
fn corpus_agrees_across_configurations() {
    let corpus = [
        "(define (tak x y z)
           (if (not (< y x)) z
               (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))
         (tak 12 6 0)",
        "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 13)",
        "(define (len l) (if (null? l) 0 (+ 1 (len (cdr l)))))
         (define (build n) (if (zero? n) '() (cons n (build (- n 1)))))
         (len (build 500))",
        "(define (even2? n) (if (zero? n) #t (odd2? (- n 1))))
         (define (odd2? n) (if (zero? n) #f (even2? (- n 1))))
         (even2? 5001)",
        "(let loop ((i 0) (acc '()))
           (if (= i 40) (length acc)
               (loop (+ i 1) (cons (call/cc (lambda (k) (k i))) acc))))",
        "(define (find-first pred lst)
           (call/cc (lambda (return)
             (for-each (lambda (x) (if (pred x) (return x))) lst)
             #f)))
         (find-first even? '(1 3 5 6 7))",
    ];
    for src in corpus {
        let mut reference = Vm::new();
        let expected = outcome(&mut reference, src);
        assert!(expected.is_ok(), "corpus program failed: {src}");

        let mut tiny = Vm::with_config(VmConfig { stack: tiny_stack(), ..VmConfig::default() });
        assert_eq!(outcome(&mut tiny, src), expected, "tiny: {src}");

        let mut cps = Vm::with_config(VmConfig { pipeline: Pipeline::Cps, ..VmConfig::default() });
        assert_eq!(outcome(&mut cps, src), expected, "cps: {src}");
    }
}

/// GC stress: a low collection threshold with live continuations and all
/// configurations still agrees.
#[test]
fn gc_stress_agrees() {
    let src = "
        (define (build n) (if (zero? n) '() (cons (list n n) (build (- n 1)))))
        (define ks '())
        (define (deep n)
          (if (zero? n)
              (call/cc (lambda (k) (set! ks (cons k ks)) 0))
              (+ 1 (deep (- n 1)))))
        (define a (deep 40))
        (define b (length (build 1500)))
        (if (= a 40) ((car ks) 2))
        (list a b)";
    let mut reference = Vm::new();
    let expected = outcome(&mut reference, src);
    assert_eq!(expected, Ok("(42 1500)".to_string()));

    let mut stressed = Vm::with_config(VmConfig { stack: tiny_stack(), ..VmConfig::default() });
    stressed.heap_mut().set_gc_threshold(128);
    assert_eq!(outcome(&mut stressed, src), expected);
    assert!(stressed.stats().heap.collections > 3);
}
