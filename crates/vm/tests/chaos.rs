//! Chaos suite: seeded fault schedules against guarded workloads.
//!
//! Every schedule drives the same allocation- and control-heavy workload
//! under a deterministic [`FaultPlan`] plus resource guards. Whatever the
//! schedule does, the VM must uphold three invariants:
//!
//! 1. **No panics, only structure** — the run ends in a value, a caught
//!    condition, or a structured `Uncaught` with a recognized kind.
//! 2. **Balanced winds** — every `dynamic-wind` before-thunk that ran is
//!    matched by its after-thunk, even when a fault unwinds the extent.
//! 3. **No leaks** — after the dust settles, a full collection returns
//!    the heap to the post-prelude baseline and the segment population to
//!    its resting size.

use oneshot_vm::{FaultPlan, Vm, VmError};
use proptest::prelude::*;

/// Fault kinds a guarded workload may legitimately observe.
const KINDS: &[&str] = &["out-of-memory", "stack-overflow", "fuel-exhausted"];

/// One chaos run: build a VM under `plan` and the seed-selected guards,
/// run the guarded workload, and check the three invariants.
fn run_schedule(seed: u64) {
    let plan = FaultPlan::seeded(seed, 20_000);
    let mut b = Vm::builder().fault_plan(plan);
    // Vary the resource guards by seed so schedules also explore budget
    // OOM and real segment ceilings, not just injected faults.
    if seed.is_multiple_of(3) {
        b = b.heap_budget(4_000);
    }
    let deep = if seed.is_multiple_of(2) {
        b = b.max_stack_segments(8);
        4_000 // enough recursion to threaten a small ceiling
    } else {
        60
    };
    let mut vm = b.build();

    vm.collect_now();
    let baseline = vm.heap().len();
    let resting_segments = vm.stack_segment_count();

    // The workload allocates (chew), recurses (deep), escapes (call/1cc),
    // and brackets everything in a counted dynamic-wind. The guard turns
    // any condition into its kind; the result carries the wind imbalance.
    let src = format!(
        "(let ((enters 0) (exits 0))
           (letrec ((chew (lambda (n acc)
                            (if (zero? n) acc (chew (- n 1) (cons n acc)))))
                    (deep (lambda (n)
                            (if (zero? n) 0 (+ 1 (deep (- n 1))))))
                    (work (lambda (i)
                            (dynamic-wind
                              (lambda () (set! enters (+ enters 1)))
                              (lambda ()
                                (+ (length (chew 40 '()))
                                   (call/1cc (lambda (k) (k (deep {deep}))))))
                              (lambda () (set! exits (+ exits 1))))))
                    (loop (lambda (i acc)
                            (if (zero? i) acc (loop (- i 1) (+ acc (work i)))))))
             (let ((r (call-with-guard
                        (lambda (c) (cons 'caught (condition-kind c)))
                        (lambda () (loop 25 0)))))
               (list (if (pair? r) (cdr r) 'ok) (- enters exits)))))"
    );

    match vm.eval_str(&src) {
        Ok(v) => {
            let shown = vm.write_value(&v);
            let ok = shown == "(ok 0)" || KINDS.iter().any(|k| shown == format!("({k} 0)"));
            assert!(ok, "seed {seed}: malformed outcome {shown}");
        }
        // A fault can fire before the guard is installed (the letrec
        // closures allocate); it must still surface as a structured
        // uncaught condition with a recognized kind.
        Err(VmError::Uncaught { kind, .. }) => {
            let kind = kind.as_deref().unwrap_or("<none>");
            assert!(
                KINDS.contains(&kind),
                "seed {seed}: uncaught fault with unexpected kind {kind}"
            );
        }
        Err(other) => panic!("seed {seed}: non-condition failure {other}"),
    }

    let stats = vm.stats();
    assert!(stats.faults_injected <= 3, "seed {seed}: more faults consumed than the plan holds");

    // Clear the accumulator register. The first attempts may themselves
    // consume leftover fault latches (part of the chaos contract); each
    // clock fires once, so a clean eval arrives within a few tries.
    for _ in 0..4 {
        if vm.eval_str("0").is_ok() {
            break;
        }
    }
    vm.take_output();
    vm.collect_now();
    assert_eq!(
        vm.heap().len(),
        baseline,
        "seed {seed}: heap did not return to the post-prelude baseline"
    );
    assert!(
        vm.stack_segment_count() <= resting_segments.max(1 + 8),
        "seed {seed}: stack segments leaked ({} live, resting was {resting_segments})",
        vm.stack_segment_count()
    );
}

/// The bulk of the schedule space: 1024 deterministic seeds, covering all
/// guard combinations (seed mod 6 selects them) and fault countdowns.
#[test]
fn thousand_seeded_schedules_uphold_invariants() {
    for seed in 0..1024 {
        run_schedule(seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Random seeds beyond the deterministic sweep.
    #[test]
    fn random_schedules_uphold_invariants(seed in 1024u32..u32::MAX) {
        run_schedule(u64::from(seed));
    }
}

/// The same seed must consume the same faults and produce the same
/// outcome — chaos schedules are reproducible from one integer.
#[test]
fn schedules_are_reproducible() {
    for seed in [3, 7, 42, 999] {
        let once = observe(seed);
        let twice = observe(seed);
        assert_eq!(once, twice, "seed {seed} diverged between runs");
    }
}

fn observe(seed: u64) -> (String, u64, u64) {
    let mut vm = Vm::builder().fault_plan(FaultPlan::seeded(seed, 500)).heap_budget(4_000).build();
    let out = match vm.eval_str(
        "(call-with-guard
           (lambda (c) (condition-kind c))
           (lambda ()
             (letrec ((chew (lambda (n acc)
                              (if (zero? n) acc (chew (- n 1) (cons n acc))))))
               (length (chew 200 '())))))",
    ) {
        Ok(v) => vm.write_value(&v),
        Err(e) => format!("err: {e}"),
    };
    let stats = vm.stats();
    (out, stats.faults_injected, stats.conditions_raised)
}
