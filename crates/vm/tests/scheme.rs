//! Behavioural test suite for the Scheme system: every special form,
//! every builtin, and the prelude, checked against expected printed
//! results.

use oneshot_vm::Vm;

/// Evaluates `src` and compares the written form of the result.
fn check(src: &str, expected: &str) {
    let mut vm = Vm::new();
    match vm.eval_str(src) {
        Ok(v) => assert_eq!(vm.write_value(&v), expected, "program: {src}"),
        Err(e) => panic!("program {src} failed: {e}"),
    }
}

/// Evaluates `src` expecting a runtime error containing `needle`.
fn check_err(src: &str, needle: &str) {
    let mut vm = Vm::new();
    match vm.eval_str(src) {
        Ok(v) => panic!("program {src} should fail, returned {}", vm.write_value(&v)),
        Err(e) => assert!(
            e.to_string().contains(needle),
            "program {src}: error {e} does not mention {needle:?}"
        ),
    }
}

macro_rules! cases {
    ($name:ident: $($src:literal => $expected:literal),+ $(,)?) => {
        #[test]
        fn $name() {
            $(check($src, $expected);)+
        }
    };
}

cases! { self_evaluating:
    "42" => "42",
    "-7" => "-7",
    "#t" => "#t",
    "#f" => "#f",
    "#\\a" => "#\\a",
    "\"hi\\n\"" => "\"hi\\n\"",
    "3.5" => "3.5",
    "'sym" => "sym",
    "'(1 2 . 3)" => "(1 2 . 3)",
    "#(1 2)" => "#(1 2)",
}

cases! { arithmetic:
    "(+ 1 2 3 4)" => "10",
    "(+)" => "0",
    "(*)" => "1",
    "(* 2 3 4)" => "24",
    "(- 10 1 2)" => "7",
    "(- 5)" => "-5",
    "(/ 12 4)" => "3",
    "(/ 1 2)" => "0.5",
    "(/ 2)" => "0.5",
    "(quotient 7 2)" => "3",
    "(quotient -7 2)" => "-3",
    "(remainder 7 2)" => "1",
    "(remainder -7 2)" => "-1",
    "(modulo 7 2)" => "1",
    "(modulo -7 2)" => "1",
    "(modulo 7 -2)" => "-1",
    "(abs -3)" => "3",
    "(min 3 1 2)" => "1",
    "(max 3 1 2)" => "3",
    "(min 1 0.5)" => "0.5",
    "(gcd 12 18)" => "6",
    "(lcm 4 6)" => "12",
    "(expt 2 10)" => "1024",
    "(expt 2.0 0.5)" => "1.4142135623730951",
    "(sqrt 16)" => "4",
    "(sqrt 2)" => "1.4142135623730951",
    "(floor 2.7)" => "2.0",
    "(ceiling 2.1)" => "3.0",
    "(truncate -2.7)" => "-2.0",
    "(round 2.5)" => "2.0",
    "(round 3.5)" => "4.0",
    "(exact->inexact 2)" => "2.0",
    "(inexact->exact 2.0)" => "2",
    "(+ 1 2.5)" => "3.5",
    "(number->string 255 16)" => "\"ff\"",
    "(string->number \"42\")" => "42",
    "(string->number \"2.5\")" => "2.5",
    "(string->number \"nope\")" => "#f",
    "(string->number \"ff\" 16)" => "255",
}

cases! { numeric_predicates:
    "(= 1 1 1)" => "#t",
    "(= 1 2)" => "#f",
    "(< 1 2 3)" => "#t",
    "(< 1 3 2)" => "#f",
    "(<= 1 1 2)" => "#t",
    "(> 3 2 1)" => "#t",
    "(>= 3 3 1)" => "#t",
    "(= 1 1.0)" => "#t",
    "(zero? 0)" => "#t",
    "(zero? 0.0)" => "#t",
    "(positive? 3)" => "#t",
    "(negative? -3)" => "#t",
    "(odd? 3)" => "#t",
    "(even? 4)" => "#t",
    "(number? 1)" => "#t",
    "(number? 'a)" => "#f",
    "(integer? 2.0)" => "#t",
    "(integer? 2.5)" => "#f",
    "(exact? 1)" => "#t",
    "(inexact? 1.5)" => "#t",
}

cases! { booleans_and_equivalence:
    "(not #f)" => "#t",
    "(not 0)" => "#f",
    "(eq? 'a 'a)" => "#t",
    "(eqv? 1.5 1.5)" => "#t",
    "(eq? '() '())" => "#t",
    // Identical literals share a pooled constant, so eq? sees one object;
    // a fresh copy does not.
    "(eq? \"a\" \"a\")" => "#t",
    "(eq? \"a\" (string-copy \"a\"))" => "#f",
    "(equal? \"a\" \"a\")" => "#t",
    "(equal? '(1 (2 3)) '(1 (2 3)))" => "#t",
    "(equal? #(1 2) #(1 2))" => "#t",
    "(equal? '(1 2) '(1 3))" => "#f",
    "(boolean? #t)" => "#t",
    "(boolean? 0)" => "#f",
    "(boolean=? #t #t)" => "#t",
}

cases! { pairs_and_lists:
    "(cons 1 2)" => "(1 . 2)",
    "(car '(1 2))" => "1",
    "(cdr '(1 2))" => "(2)",
    "(cadr '(1 2 3))" => "2",
    "(caddr '(1 2 3))" => "3",
    "(cadddr '(1 2 3 4))" => "4",
    "(list 1 2 3)" => "(1 2 3)",
    "(list)" => "()",
    "(length '(a b c))" => "3",
    "(length '())" => "0",
    "(append '(1) '(2 3) '(4))" => "(1 2 3 4)",
    "(append)" => "()",
    "(append '() '(1))" => "(1)",
    "(append '(1) 2)" => "(1 . 2)",
    "(reverse '(1 2 3))" => "(3 2 1)",
    "(list-tail '(a b c d) 2)" => "(c d)",
    "(list-ref '(a b c) 1)" => "b",
    "(memq 'c '(a b c d))" => "(c d)",
    "(memq 'z '(a b))" => "#f",
    "(memv 2 '(1 2 3))" => "(2 3)",
    "(member '(1) '((0) (1) (2)))" => "((1) (2))",
    "(assq 'b '((a 1) (b 2)))" => "(b 2)",
    "(assv 2 '((1 a) (2 b)))" => "(2 b)",
    "(assoc '(x) '(((x) 1)))" => "((x) 1)",
    "(assq 'z '((a 1)))" => "#f",
    "(list? '(1 2))" => "#t",
    "(list? '(1 . 2))" => "#f",
    "(list? 5)" => "#f",
    "(pair? '(1))" => "#t",
    "(pair? '())" => "#f",
    "(null? '())" => "#t",
    "(let ((p (cons 1 2))) (set-car! p 9) p)" => "(9 . 2)",
    "(let ((p (cons 1 2))) (set-cdr! p 9) p)" => "(1 . 9)",
    "(last-pair '(1 2 3))" => "(3)",
    "(list-copy '(1 2))" => "(1 2)",
}

cases! { cyclic_list_detection:
    "(let ((l (list 1 2))) (set-cdr! (cdr l) l) (list? l))" => "#f",
}

cases! { symbols:
    "(symbol? 'abc)" => "#t",
    "(symbol? \"abc\")" => "#f",
    "(symbol->string 'abc)" => "\"abc\"",
    "(string->symbol \"hi\")" => "hi",
    "(eq? (string->symbol \"x\") 'x)" => "#t",
    "(eq? (gensym) (gensym))" => "#f",
}

cases! { characters:
    "(char? #\\x)" => "#t",
    "(char->integer #\\A)" => "65",
    "(integer->char 97)" => "#\\a",
    "(char=? #\\a #\\a)" => "#t",
    "(char<? #\\a #\\b)" => "#t",
    "(char-upcase #\\a)" => "#\\A",
    "(char-downcase #\\A)" => "#\\a",
    "(char-alphabetic? #\\a)" => "#t",
    "(char-numeric? #\\5)" => "#t",
    "(char-whitespace? #\\space)" => "#t",
    "(char-upper-case? #\\A)" => "#t",
    "(char-lower-case? #\\a)" => "#t",
}

cases! { strings:
    "(string? \"x\")" => "#t",
    "(make-string 3 #\\z)" => "\"zzz\"",
    "(string #\\a #\\b)" => "\"ab\"",
    "(string-length \"hello\")" => "5",
    "(string-ref \"abc\" 1)" => "#\\b",
    "(let ((s (string-copy \"abc\"))) (string-set! s 0 #\\z) s)" => "\"zbc\"",
    "(string=? \"ab\" \"ab\")" => "#t",
    "(string<? \"ab\" \"ac\")" => "#t",
    "(substring \"hello\" 1 3)" => "\"el\"",
    "(string-append \"foo\" \"bar\" \"!\")" => "\"foobar!\"",
    "(string->list \"ab\")" => "(#\\a #\\b)",
    "(list->string '(#\\a #\\b))" => "\"ab\"",
    "(let ((s (make-string 2 #\\a))) (string-fill! s #\\q) s)" => "\"qq\"",
}

cases! { vectors:
    "(vector? #(1))" => "#t",
    "(make-vector 3 0)" => "#(0 0 0)",
    "(vector 1 'a)" => "#(1 a)",
    "(vector-length #(1 2 3))" => "3",
    "(vector-ref #(1 2 3) 1)" => "2",
    "(let ((v (make-vector 2 0))) (vector-set! v 1 9) v)" => "#(0 9)",
    "(vector->list #(1 2))" => "(1 2)",
    "(list->vector '(1 2))" => "#(1 2)",
    "(let ((v (make-vector 2 0))) (vector-fill! v 7) v)" => "#(7 7)",
}

cases! { special_forms:
    "(if #t 1 2)" => "1",
    "(if #f 1 2)" => "2",
    "(if 0 'yes 'no)" => "yes",
    "(begin 1 2 3)" => "3",
    "(let ((x 1) (y 2)) (+ x y))" => "3",
    "(let* ((x 1) (y (+ x 1))) y)" => "2",
    "(letrec ((even? (lambda (n) (if (zero? n) #t (odd? (- n 1)))))
              (odd? (lambda (n) (if (zero? n) #f (even? (- n 1))))))
       (even? 100))" => "#t",
    "(let loop ((i 0) (acc 0)) (if (= i 5) acc (loop (+ i 1) (+ acc i))))" => "10",
    "(and)" => "#t",
    "(and 1 2 3)" => "3",
    "(and 1 #f 3)" => "#f",
    "(or)" => "#f",
    "(or #f 2)" => "2",
    "(or 1 (error \"not evaluated\"))" => "1",
    "(when #t 1 2)" => "2",
    "(unless #f 1 2)" => "2",
    "(cond (#f 1) (#t 2) (else 3))" => "2",
    "(cond (#f 1) (else 3))" => "3",
    "(cond ((assv 2 '((1 . a) (2 . b))) => cdr) (else 'none))" => "b",
    "(cond (42))" => "42",
    "(case 2 ((1) 'one) ((2 3) 'few) (else 'many))" => "few",
    "(case 9 ((1) 'one) (else 'many))" => "many",
    "(do ((i 0 (+ i 1)) (acc 1 (* acc 2))) ((= i 4) acc))" => "16",
    "(quote (a b))" => "(a b)",
    "(let ((x 5)) `(a ,x ,@(list 1 2) b))" => "(a 5 1 2 b)",
    // The innermost comma matches the outermost quasiquote: only the
    // doubly-unquoted expression is evaluated.
    "`(1 `(2 ,(3 ,(+ 1 2))))" => "(1 (quasiquote (2 (unquote (3 3)))))",
    "((lambda args args) 1 2 3)" => "(1 2 3)",
    "((lambda (a . rest) (list a rest)) 1 2 3)" => "(1 (2 3))",
    "((lambda (a . rest) (list a rest)) 1)" => "(1 ())",
}

cases! { closures_and_state:
    "(define (adder n) (lambda (x) (+ x n))) ((adder 10) 5)" => "15",
    "(define (counter)
       (let ((n 0))
         (lambda () (set! n (+ n 1)) n)))
     (define c (counter))
     (c) (c) (c)" => "3",
    "(define (comp f g) (lambda (x) (f (g x))))
     ((comp (lambda (x) (* x 2)) (lambda (x) (+ x 1))) 10)" => "22",
    "(let ((x 1))
       (define (get) x)
       (set! x 2)
       (get))" => "2",
}

cases! { shadowing:
    "(let ((if (lambda (a b c) (list a b c)))) (if 1 2 3))" => "(1 2 3)",
    "(let ((else #f)) (cond (else 'x) (#t 'y)))" => "y",
    "(define (f car) (car 5)) (f (lambda (x) (* x x)))" => "25",
}

cases! { tail_recursion:
    "(define (loop n) (if (zero? n) 'done (loop (- n 1)))) (loop 2000000)" => "done",
    "(letrec ((e? (lambda (n) (if (zero? n) #t (o? (- n 1)))))
              (o? (lambda (n) (if (zero? n) #f (e? (- n 1))))))
       (o? 999999))" => "#t",
}

cases! { deep_recursion_overflows:
    "(define (sum n) (if (zero? n) 0 (+ n (sum (- n 1))))) (sum 100000)" => "5000050000",
    "(define (build n) (if (zero? n) '() (cons n (build (- n 1)))))
     (length (build 50000))" => "50000",
}

cases! { higher_order_prelude:
    "(map (lambda (x) (* x x)) '(1 2 3))" => "(1 4 9)",
    "(map + '(1 2) '(10 20))" => "(11 22)",
    "(map list '(1 2) '(a b) '(x y))" => "((1 a x) (2 b y))",
    "(let ((acc '()))
       (for-each (lambda (x) (set! acc (cons x acc))) '(1 2 3))
       acc)" => "(3 2 1)",
    "(filter odd? '(1 2 3 4 5))" => "(1 3 5)",
    "(fold-left + 0 '(1 2 3 4))" => "10",
    "(fold-left cons '() '(1 2))" => "((() . 1) . 2)",
    "(fold-right cons '() '(1 2))" => "(1 2)",
    "(iota 4)" => "(0 1 2 3)",
    "(apply + '(1 2 3))" => "6",
    "(apply + 1 2 '(3))" => "6",
    "(apply max '(3 1 2))" => "3",
    "(apply (lambda (a . b) (list a b)) '(1 2 3))" => "(1 (2 3))",
}

cases! { continuations_basic:
    "(call/cc (lambda (k) 42))" => "42",
    "(call/cc (lambda (k) (k 42) 99))" => "42",
    "(+ 1 (call/cc (lambda (k) (k 10) 99)))" => "11",
    "(call/1cc (lambda (k) 42))" => "42",
    "(+ 1 (call/1cc (lambda (k) (k 10) 99)))" => "11",
    "(call-with-current-continuation (lambda (k) (k 'y)))" => "y",
    // Nonlocal exit through deep recursion.
    "(call/cc (lambda (abort)
       (define (walk l) (cond ((null? l) 0)
                              ((not (number? (car l))) (abort 'bad))
                              (else (+ (car l) (walk (cdr l))))))
       (walk '(1 2 x 4))))" => "bad",
    // Continuation used multiple times (generator-style counting).
    "(define k #f)
     (define n 0)
     (+ 1 (call/cc (lambda (c) (set! k c) 0)))
     (set! n (+ n 1))
     (if (< n 4) (k n) n)" => "4",
}

cases! { multiple_values:
    "(call-with-values (lambda () (values 1 2)) +)" => "3",
    "(call-with-values (lambda () (values)) (lambda () 'none))" => "none",
    "(call-with-values (lambda () 5) list)" => "(5)",
    "(call-with-values (lambda () (values 1 2 3)) (lambda (a b c) (list c b a)))" => "(3 2 1)",
    // values through a continuation
    "(call-with-values
       (lambda () (call/cc (lambda (k) (k 1 2))))
       list)" => "(1 2)",
    "(values 7)" => "7",
}

cases! { dynamic_wind_basic:
    "(define log '())
     (define (note x) (set! log (cons x log)))
     (dynamic-wind (lambda () (note 'before))
                   (lambda () (note 'during) 'result)
                   (lambda () (note 'after)))
     (reverse log)" => "(before during after)",
    // Nonlocal exit runs the after thunk.
    "(define log '())
     (define (note x) (set! log (cons x log)))
     (call/cc (lambda (k)
       (dynamic-wind (lambda () (note 'in))
                     (lambda () (k 'escaped))
                     (lambda () (note 'out)))))
     (reverse log)" => "(in out)",
    // values through dynamic-wind
    "(call-with-values
       (lambda () (dynamic-wind void (lambda () (values 1 2)) void))
       +)" => "3",
}

cases! { io_returns_unspecified_value:
    "(begin (display \"a\") (write \"b\") (newline) (write-char #\\c) 'ok)" => "ok",
}

#[test]
fn output_capture() {
    let mut vm = Vm::new();
    vm.eval_str("(display \"x\") (write \"y\") (newline) (write-char #\\z)").unwrap();
    assert_eq!(vm.take_output(), "x\"y\"\nz");
    assert_eq!(vm.take_output(), "", "take_output drains");
}

cases! { engines_timer:
    // The timer fires every N calls; the handler counts interrupts.
    "(define ticks 0)
     (timer-interrupt-handler! (lambda () (set! ticks (+ ticks 1)) (set-timer! 10)))
     (define (spin n) (if (zero? n) 'done (spin (- n 1))))
     (set-timer! 10)
     (spin 100)
     (set-timer! 0)
     (> ticks 5)" => "#t",
}

#[test]
fn vm_stats_builtin_reports_alist() {
    let mut vm = Vm::new();
    let v = vm.eval_str("(assq-ref (vm-stats) 'calls)").unwrap();
    let text = vm.write_value(&v);
    let n: i64 = text.parse().expect("a number");
    assert!(n > 0);
}

cases! { gc_builtin:
    "(begin (gc) (define l (list 1 2 3)) (gc) l)" => "(1 2 3)",
}

#[test]
fn runtime_errors() {
    check_err("(car 5)", "pair");
    check_err("(car '())", "pair");
    check_err("(vector-ref #(1) 5)", "range");
    check_err("(undefined-var)", "unbound");
    check_err("(set! undefined-var 1)", "unbound");
    check_err("((lambda (x) x))", "arguments");
    check_err("((lambda (x) x) 1 2)", "arguments");
    check_err("(+ 'a 1)", "number");
    check_err("(quotient 1 0)", "zero");
    check_err("(error \"custom\" 'detail)", "custom");
    check_err("(5 1)", "procedure");
    check_err("(+ 1 (values 1 2))", "single value");
    check_err("(string-ref \"a\" 9)", "range");
    check_err("(length '(1 . 2))", "improper");
}

#[test]
fn vm_recovers_after_error() {
    let mut vm = Vm::new();
    assert!(vm.eval_str("(car 5)").is_err());
    let v = vm.eval_str("(+ 1 2)").unwrap();
    assert_eq!(vm.write_value(&v), "3");
}

#[test]
fn call_from_rust() {
    use oneshot_vm::Value;
    let mut vm = Vm::new();
    vm.eval_str("(define (f a b) (* a (+ b 1)))").unwrap();
    let f = vm.global("f").expect("defined");
    let v = vm.call(f, &[Value::fixnum(3), Value::fixnum(4)]).unwrap();
    assert_eq!(v, Value::fixnum(15));
    // And again — the VM rest state is restored.
    let v = vm.call(f, &[Value::fixnum(2), Value::fixnum(0)]).unwrap();
    assert_eq!(v, Value::fixnum(2));
}

#[test]
fn globals_api() {
    use oneshot_vm::Value;
    let mut vm = Vm::new();
    assert_eq!(vm.global("nope"), None);
    vm.set_global("x", Value::fixnum(9));
    let v = vm.eval_str("(* x 2)").unwrap();
    assert_eq!(v, Value::fixnum(18));
}
