//! Tests for the stack-walking and metaprogramming tools: `backtrace`
//! (the §3.1 walkability claim) and `eval`.

use oneshot_core::Config;
use oneshot_vm::{Vm, VmConfig};

#[test]
fn eval_compiles_and_runs_data() {
    let mut vm = Vm::new();
    let v = vm.eval_str("(eval '(+ 1 2))").unwrap();
    assert_eq!(vm.write_value(&v), "3");
    let v = vm.eval_str("(eval (list '+ 1 (eval ''2)))").unwrap();
    assert_eq!(vm.write_value(&v), "3");
    // eval defines into the one global environment.
    vm.eval_str("(eval '(define evald 99))").unwrap();
    let v = vm.eval_str("evald").unwrap();
    assert_eq!(vm.write_value(&v), "99");
    // Procedures built by eval are first class.
    let v = vm.eval_str("((eval '(lambda (x) (* x x))) 9)").unwrap();
    assert_eq!(vm.write_value(&v), "81");
}

#[test]
fn eval_rejects_unrepresentable_values() {
    let mut vm = Vm::new();
    let e = vm.eval_str("(eval car)").unwrap_err();
    assert!(e.to_string().contains("external representation"), "{e}");
}

#[test]
fn eval_propagates_compile_errors() {
    let mut vm = Vm::new();
    let e = vm.eval_str("(eval '(if))").unwrap_err();
    assert!(e.to_string().contains("if"), "{e}");
}

#[test]
fn backtrace_walks_nested_frames() {
    let mut vm = Vm::new();
    let v = vm
        .eval_str(
            "(define (inner) (backtrace))
             (define (middle) (cons 'm (inner)))
             (define (outer) (cons 'o (middle)))
             (define result (outer))  ; non-tail: the toplevel frame stays live
             result",
        )
        .unwrap();
    let text = vm.write_value(&v);
    // (o m <backtrace frames ...>) — the walk sees inner, middle, outer,
    // and the toplevel thunk, in that order.
    let inner_pos = text.find("inner").expect("inner in backtrace");
    let middle_pos = text[inner_pos..].find("middle").expect("middle after inner");
    let outer_pos = text[inner_pos + middle_pos..].find("outer").expect("outer after middle");
    assert!(outer_pos > 0);
    assert!(text.contains("toplevel"), "{text}");

    // A tail call replaces the caller's frame: when the last toplevel form
    // tail-calls outer, the toplevel thunk's frame is legitimately gone.
    let mut vm = Vm::new();
    let v = vm
        .eval_str(
            "(define (inner) (backtrace))
             (define (middle) (cons 'm (inner)))
             (define (outer) (cons 'o (middle)))
             (outer)",
        )
        .unwrap();
    let text = vm.write_value(&v);
    assert!(!text.contains("toplevel"), "proper tail call erased the thunk frame: {text}");
}

#[test]
fn backtrace_crosses_segment_boundaries() {
    // With tiny segments the pending frames span many segments and the
    // continuation chain; the walker must traverse them all.
    let cfg = Config { segment_slots: 128, copy_bound: 32, min_headroom: 32, ..Config::default() };
    let mut vm = Vm::with_config(VmConfig { stack: cfg, ..VmConfig::default() });
    let v = vm
        .eval_str(
            "(define (deep n)
               (if (zero? n) (length (backtrace)) (+ 0 (deep (- n 1)))))
             (deep 200)",
        )
        .unwrap();
    let n = v.as_fixnum().unwrap_or_else(|| panic!("expected count, got {v:?}"));
    assert!(n >= 200, "backtrace saw {n} frames");
    assert!(vm.stats().stack.overflows > 3, "frames really spanned segments");
}

#[test]
fn rust_level_backtrace_matches() {
    let mut vm = Vm::new();
    vm.eval_str("(define (f) (g)) (define (g) 42)").unwrap();
    // At rest the backtrace is just the last toplevel thunk.
    let names = vm.backtrace();
    assert!(!names.is_empty());
}
