//! Superinstruction fusion must be semantically invisible: for any
//! program, compiling with `fuse: true` and `fuse: false` must produce
//! the same result AND the same segmented-stack control-event counters
//! (captures, reinstatements, overflows, slots copied, ...) — fusion may
//! only reduce the number of dispatched instructions, never change what
//! the program does to the stack.

use oneshot_vm::{Vm, VmStats};
use proptest::prelude::*;

/// A generated expression with the variables in scope. Weighted toward
/// the comparison/test forms the peephole pass fuses.
fn expr(depth: u32, vars: Vec<String>) -> BoxedStrategy<String> {
    let atom = {
        let vars = vars.clone();
        prop_oneof![
            (-50i64..50).prop_map(|n| n.to_string()),
            Just("#t".to_string()),
            Just("#f".to_string()),
            Just("'()".to_string()),
            proptest::sample::select(if vars.is_empty() { vec!["0".to_string()] } else { vars }),
        ]
    };
    if depth == 0 {
        return atom.boxed();
    }
    let sub = || expr(depth - 1, vars.clone());
    let fresh = format!("v{depth}");
    let mut extended = vars.clone();
    extended.push(fresh.clone());
    let sub_ext = expr(depth - 1, extended.clone());
    let sub_ext2 = expr(depth - 1, extended);

    prop_oneof![
        2 => atom,
        2 => (sub(), sub()).prop_map(|(a, b)| format!("(+ {a} {b})")),
        1 => (sub(), sub()).prop_map(|(a, b)| format!("(- {a} {b})")),
        // Every fused comparison, plus the negated form (BrTrue).
        1 => (sub(), sub()).prop_map(|(a, b)| format!("(< {a} {b})")),
        1 => (sub(), sub()).prop_map(|(a, b)| format!("(<= {a} {b})")),
        1 => (sub(), sub()).prop_map(|(a, b)| format!("(> {a} {b})")),
        1 => (sub(), sub()).prop_map(|(a, b)| format!("(= {a} {b})")),
        1 => (sub(), sub()).prop_map(|(a, b)| format!("(eq? {a} {b})")),
        1 => sub().prop_map(|a| format!("(zero? {a})")),
        1 => sub().prop_map(|a| format!("(null? {a})")),
        1 => sub().prop_map(|a| format!("(not {a})")),
        1 => (sub(), sub()).prop_map(|(a, b)| format!("(cons {a} {b})")),
        2 => (sub(), sub(), sub()).prop_map(|(c, t, f)| format!("(if {c} {t} {f})")),
        2 => (sub(), sub_ext.clone()).prop_map({
            let v = fresh.clone();
            move |(init, body)| format!("(let (({v} {init})) {body})")
        }),
        1 => (sub(), sub_ext2).prop_map({
            let v = fresh.clone();
            move |(arg, body)| format!("((lambda ({v}) {body}) {arg})")
        }),
        // Continuations, so the SegStack counters actually move.
        1 => (sub(), sub()).prop_map(|(a, b)| {
            format!("(call/cc (lambda (k) (+ {a} (k {b}))))")
        }),
        1 => (sub(), sub()).prop_map(|(a, b)| {
            format!("(call/1cc (lambda (k) (+ {a} (k {b}))))")
        }),
    ]
    .boxed()
}

fn outcome(vm: &mut Vm, src: &str) -> Result<String, String> {
    match vm.eval_str(src) {
        Ok(v) => Ok(vm.write_value(&v)),
        Err(_) => Err("error".to_string()),
    }
}

/// Runs `src` on a fresh VM with the given fusion setting, returning the
/// outcome and the counter delta over the run.
fn measured(fuse: bool, src: &str) -> (Result<String, String>, VmStats) {
    let mut vm = Vm::builder().fuse(fuse).build();
    let before = vm.stats();
    let r = outcome(&mut vm, src);
    (r, vm.stats().delta_since(&before))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn fusion_is_semantically_invisible(src in expr(4, vec![])) {
        let (fused_r, fused_d) = measured(true, &src);
        let (unfused_r, unfused_d) = measured(false, &src);
        prop_assert_eq!(&fused_r, &unfused_r, "results diverged: {}", src);
        prop_assert_eq!(
            fused_d.stack, unfused_d.stack,
            "SegStack counters diverged: {}", src
        );
        prop_assert_eq!(
            fused_d.heap.closures_allocated, unfused_d.heap.closures_allocated,
            "closure counts diverged: {}", src
        );
        prop_assert!(
            fused_d.instructions <= unfused_d.instructions,
            "fusion added instructions on {}: {} > {}",
            src, fused_d.instructions, unfused_d.instructions
        );
    }
}

/// Deterministic anchors: the benchmark programs must agree bit-for-bit
/// on control events while strictly reducing dispatches.
#[test]
fn corpus_fuses_without_changing_control_events() {
    let corpus = [
        "(define (tak x y z)
           (if (not (< y x)) z
               (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))
         (tak 14 7 0)",
        "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 15)",
        "(define (ctak x y z)
           (call/1cc (lambda (k) (ctak-aux k x y z))))
         (define (ctak-aux k x y z)
           (if (not (< y x))
               (k z)
               (ctak-aux k
                 (ctak (- x 1) y z)
                 (ctak (- y 1) z x)
                 (ctak (- z 1) x y))))
         (ctak 12 6 0)",
        "(define (deep n) (if (zero? n) 0 (+ 1 (deep (- n 1))))) (deep 30000)",
    ];
    for src in corpus {
        let (fused_r, fused_d) = measured(true, src);
        let (unfused_r, unfused_d) = measured(false, src);
        assert!(fused_r.is_ok(), "corpus program failed: {src}");
        assert_eq!(fused_r, unfused_r, "{src}");
        assert_eq!(fused_d.stack, unfused_d.stack, "{src}");
        assert!(
            fused_d.instructions < unfused_d.instructions,
            "no dispatch reduction on {src}: {} vs {}",
            fused_d.instructions,
            unfused_d.instructions
        );
    }
}

/// The opcode histogram (the repl's `,ops`) renders fused opcodes
/// symbolically via their mnemonics.
#[test]
fn histogram_names_fused_opcodes() {
    let mut vm = Vm::builder().opcode_histogram(true).build();
    vm.eval_str(
        "(define (id x) x)
         (define (cmp a b) (if (< a b) (+ a 5) (- a 5)))
         (define (count l) (if (null? l) 0 (+ 1 (count (cdr l)))))
         (id 1) (cmp 3 4) (cmp 4 3) (count '(1 2 3))",
    )
    .unwrap();
    let hist = vm.opcode_histogram().expect("histogram enabled");
    let names: Vec<&str> = hist.iter().map(|(n, _)| *n).collect();
    for fused in ["br-lt", "return-local", "add-imm", "br-null?", "move", "call-global"] {
        assert!(names.contains(&fused), "{fused} missing from histogram: {names:?}");
    }
    // Counts are positive for every listed opcode.
    assert!(hist.iter().all(|&(_, n)| n > 0));
}
