//! Static `Send` assertions for everything the executor moves across
//! threads. These compile-time checks make sure a future field (an `Rc`, a
//! raw pointer, a thread-local handle) can't silently break the worker
//! pool: if any of these types loses `Send`, this test file stops
//! compiling.

use oneshot_vm::{CompiledProgram, Vm, VmBuilder, VmConfig, VmError, VmStats};

fn assert_send<T: Send>() {}

#[test]
fn vm_and_friends_are_send() {
    assert_send::<Vm>();
    assert_send::<VmError>();
    assert_send::<VmStats>();
    assert_send::<VmConfig>();
    assert_send::<VmBuilder>();
}

#[test]
fn compiled_programs_are_send() {
    // A program is compiled once on the submitting thread and then run on
    // whichever worker steals it, so the handle must be Send (and, being
    // all owned data, Sync too).
    assert_send::<CompiledProgram>();
    fn assert_sync<T: Sync>() {}
    assert_sync::<CompiledProgram>();
}

#[test]
fn a_vm_actually_crosses_threads() {
    // The static assertion plus a smoke test: build a VM here, run it on
    // another thread, bring the stats back.
    let mut vm = Vm::new();
    let handle = std::thread::spawn(move || {
        let v = vm.eval_str("(+ 20 22)").unwrap();
        (vm.display_value(&v), vm.stats())
    });
    let (shown, stats) = handle.join().unwrap();
    assert_eq!(shown, "42");
    assert!(stats.instructions > 0);
}
