//! GC interaction tests: collections forced (tiny threshold) while
//! continuations, winders, timers, and threads are all live.

use oneshot_vm::Vm;

fn tiny_gc_vm() -> Vm {
    let mut vm = Vm::new();
    vm.heap_mut().set_gc_threshold(64);
    vm
}

#[test]
fn winders_survive_collections() {
    let mut vm = tiny_gc_vm();
    let v = vm
        .eval_str(
            "
        (define trace '())
        (define (note x) (set! trace (cons x trace)))
        (define (churn n) (if (zero? n) '() (cons (list n) (churn (- n 1)))))
        (define k1 #f)
        (define count 0)
        (dynamic-wind
          (lambda () (note 'in))
          (lambda ()
            (churn 500)            ; force collections inside the extent
            (call/cc (lambda (k) (set! k1 k)))
            (churn 500)
            (set! count (+ count 1)))
          (lambda () (note 'out)))
        (if (< count 3) (k1 0))
        (list count (reverse trace))",
        )
        .unwrap();
    assert_eq!(vm.write_value(&v), "(3 (in out in out in out))");
    assert!(vm.stats().heap.collections > 2);
}

#[test]
fn timer_handler_survives_collections() {
    let mut vm = tiny_gc_vm();
    let v = vm
        .eval_str(
            "
        (define ticks 0)
        (timer-interrupt-handler!
          (lambda () (set! ticks (+ ticks 1)) (set-timer! 50)))
        (define (churn n acc) (if (zero? n) acc (churn (- n 1) (cons n acc))))
        (set-timer! 50)
        (define r (length (churn 5000 '())))
        (set-timer! 0)
        (list r (> ticks 10))",
        )
        .unwrap();
    assert_eq!(vm.write_value(&v), "(5000 #t)");
    assert!(vm.stats().heap.collections > 2);
}

#[test]
fn shot_continuations_are_collected() {
    // Shot continuations release their segments; a capture/shoot loop must
    // not grow continuation or segment counts without bound.
    let mut vm = tiny_gc_vm();
    vm.eval_str(
        "(define (spin n)
           (if (zero? n)
               'done
               (begin (call/1cc (lambda (k) (k 0))) (spin (- n 1)))))
         (spin 2000)",
    )
    .unwrap();
    vm.eval_str("(gc)").unwrap();
    let s = vm.stats();
    assert!(s.stack.shots >= 2000);
    assert!(s.stack.segments_allocated < 50, "cache and GC bound segment growth: {:?}", s.stack);
}

#[test]
fn long_lists_do_not_overflow_the_native_stack() {
    // Regression: equal?, list-literal conversion, and datum teardown all
    // iterate along cdr spines instead of recursing per element.
    let mut vm = Vm::new();
    vm.eval_str("(define (build n) (if (zero? n) '() (cons n (build (- n 1)))))").unwrap();
    let v = vm.eval_str("(equal? (build 200000) (build 200000))").unwrap();
    assert_eq!(vm.write_value(&v), "#t");
    // A 100k-element list literal survives reading, compiling (constant
    // pooling compares data), linking, and dropping.
    let mut src = String::from("(length '(");
    for i in 0..100_000 {
        src.push_str(&format!("{i} "));
    }
    src.push_str("))");
    let v = vm.eval_str(&src).unwrap();
    assert_eq!(vm.write_value(&v), "100000");
    // eval of a long constructed form works (the depth bound applies to
    // nesting, not length).
    let v = vm.eval_str("(eval (cons '+ (build 5000)))").unwrap();
    assert_eq!(vm.write_value(&v), "12502500");
}

#[test]
fn nan_comparisons_are_false_not_errors() {
    let mut vm = Vm::new();
    for (src, expect) in [
        ("(< (/ 0.0 0.0) 1.0)", "#f"),
        ("(> (/ 0.0 0.0) 1.0)", "#f"),
        ("(= (/ 0.0 0.0) (/ 0.0 0.0))", "#f"),
        ("(<= (/ 0.0 0.0) (/ 0.0 0.0))", "#f"),
    ] {
        let v = vm.eval_str(src).unwrap();
        assert_eq!(vm.write_value(&v), expect, "{src}");
    }
}

#[test]
fn expansion_sentinel_cannot_be_named() {
    // `(define x)` leaves x unspecified, but no user-writable symbol maps
    // to the internal sentinel.
    let mut vm = Vm::new();
    let v = vm.eval_str("(define x) x").unwrap();
    assert_eq!(vm.write_value(&v), "#<void>");
    let e = vm.eval_str("%unspecified-define").unwrap_err();
    assert!(e.to_string().contains("unbound"), "{e}");
}
