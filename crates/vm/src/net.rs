//! Nonblocking TCP for the guest: a slab of sockets keyed by fixnum
//! tokens.
//!
//! The VM itself never blocks on a socket. Every operation that would
//! block returns a would-block sentinel (`#f` at the builtin layer); the
//! retry loop lives in Scheme (`io.scm` in `oneshot-threads`), where
//! `%engine-block` captures the running green thread's one-shot
//! continuation and yields the worker until the reactor reports
//! readiness. Keeping the table inside the VM means sockets are owned by
//! the worker that runs the guest, and a worker reset (VM rebuild) closes
//! every socket of the jobs it killed.
//!
//! Tokens are dense indices with a free list, so `%tcp-*` builtins are
//! O(1) and a stale token is caught (slot `None` or reused slot — the
//! guest protocol never retains tokens past `%tcp-close`).

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;

use crate::error::VmError;

/// One open socket.
#[derive(Debug)]
pub(crate) enum Sock {
    /// A listening socket.
    Listener(TcpListener),
    /// A connected (or accepted, or adopted) stream.
    Stream(TcpStream),
}

/// Outcome of a nonblocking read.
#[derive(Debug)]
pub(crate) enum ReadOutcome {
    /// Bytes arrived.
    Data(Vec<u8>),
    /// The peer closed its write side.
    Eof,
    /// Nothing available yet — suspend and retry.
    WouldBlock,
}

/// The per-VM socket table.
#[derive(Debug)]
pub(crate) struct NetTable {
    slots: Vec<Option<Sock>>,
    free: Vec<usize>,
    live: usize,
    /// Open-socket ceiling; exceeding it raises a catchable `io-error`
    /// condition instead of hitting the process fd limit.
    cap: usize,
    /// Tokens of connections the embedder adopted (shared-listener
    /// accepts), waiting for a handler job to `%conn-take` them. FIFO:
    /// handler jobs are spawned in adoption order on a single-threaded VM.
    pending: std::collections::VecDeque<i64>,
    /// Raw fds the guest closed since the last drain. The worker feeds
    /// these to its reactor so waiters on a closed socket are woken with
    /// an error retry instead of wedging — edge-triggered `epoll` drops
    /// interest in a closed fd silently, so the close itself must tell
    /// the reactor.
    closed_log: Vec<i32>,
}

fn io_err(who: &str, e: std::io::Error) -> VmError {
    VmError::Condition { kind: "io-error", message: format!("{who}: {e}") }
}

fn bad_token(who: &str, token: i64) -> VmError {
    VmError::Condition { kind: "io-error", message: format!("{who}: bad socket token {token}") }
}

impl NetTable {
    pub(crate) fn new(cap: usize) -> Self {
        NetTable {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            cap,
            pending: std::collections::VecDeque::new(),
            closed_log: Vec::new(),
        }
    }

    /// Number of open sockets.
    pub(crate) fn live(&self) -> usize {
        self.live
    }

    fn insert(&mut self, who: &str, sock: Sock) -> Result<i64, VmError> {
        if self.live >= self.cap {
            return Err(VmError::Condition {
                kind: "io-error",
                message: format!("{who}: too many open sockets (limit {})", self.cap),
            });
        }
        self.live += 1;
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(sock);
                i
            }
            None => {
                self.slots.push(Some(sock));
                self.slots.len() - 1
            }
        };
        Ok(idx as i64)
    }

    fn get(&mut self, who: &str, token: i64) -> Result<&mut Sock, VmError> {
        usize::try_from(token)
            .ok()
            .and_then(|i| self.slots.get_mut(i))
            .and_then(|s| s.as_mut())
            .ok_or_else(|| bad_token(who, token))
    }

    /// The raw file descriptor behind `token`, for reactor registration.
    pub(crate) fn fd(&self, token: i64) -> Option<i64> {
        let slot = usize::try_from(token).ok().and_then(|i| self.slots.get(i))?;
        match slot.as_ref()? {
            Sock::Listener(l) => Some(i64::from(l.as_raw_fd())),
            Sock::Stream(s) => Some(i64::from(s.as_raw_fd())),
        }
    }

    /// Binds a nonblocking listener on 127.0.0.1. `port` 0 asks the OS to
    /// pick one (read it back with [`NetTable::local_port`]).
    pub(crate) fn listen(&mut self, port: u16) -> Result<i64, VmError> {
        self.listen_on("127.0.0.1", port)
    }

    /// Binds a nonblocking listener on `host`:`port` — real `AF_INET`
    /// (any local address), not just loopback.
    pub(crate) fn listen_on(&mut self, host: &str, port: u16) -> Result<i64, VmError> {
        let l = TcpListener::bind((host, port)).map_err(|e| io_err("tcp-listen", e))?;
        l.set_nonblocking(true).map_err(|e| io_err("tcp-listen", e))?;
        self.insert("tcp-listen", Sock::Listener(l))
    }

    /// The local port a listener is bound to.
    pub(crate) fn local_port(&mut self, token: i64) -> Result<i64, VmError> {
        match self.get("tcp-local-port", token)? {
            Sock::Listener(l) => {
                let addr = l.local_addr().map_err(|e| io_err("tcp-local-port", e))?;
                Ok(i64::from(addr.port()))
            }
            Sock::Stream(s) => {
                let addr = s.local_addr().map_err(|e| io_err("tcp-local-port", e))?;
                Ok(i64::from(addr.port()))
            }
        }
    }

    /// Accepts one pending connection; `Ok(None)` means would-block.
    pub(crate) fn accept(&mut self, token: i64) -> Result<Option<i64>, VmError> {
        let sock = self.get("tcp-accept", token)?;
        let Sock::Listener(l) = sock else {
            return Err(bad_token("tcp-accept: not a listener", token));
        };
        match l.accept() {
            Ok((s, _)) => {
                s.set_nonblocking(true).map_err(|e| io_err("tcp-accept", e))?;
                s.set_nodelay(true).map_err(|e| io_err("tcp-accept", e))?;
                self.insert("tcp-accept", Sock::Stream(s)).map(Some)
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(io_err("tcp-accept", e)),
        }
    }

    /// Connects to 127.0.0.1:`port`. The connect itself is blocking (a
    /// loopback connect completes immediately once accepted by the
    /// backlog); the stream is then switched to nonblocking for all
    /// subsequent I/O.
    pub(crate) fn connect(&mut self, port: u16) -> Result<i64, VmError> {
        self.connect_to("127.0.0.1", port)
    }

    /// Connects to `host`:`port` — real `AF_INET`, same blocking-connect /
    /// nonblocking-I/O contract as [`NetTable::connect`].
    pub(crate) fn connect_to(&mut self, host: &str, port: u16) -> Result<i64, VmError> {
        let s = TcpStream::connect((host, port)).map_err(|e| io_err("tcp-connect", e))?;
        s.set_nonblocking(true).map_err(|e| io_err("tcp-connect", e))?;
        s.set_nodelay(true).map_err(|e| io_err("tcp-connect", e))?;
        self.insert("tcp-connect", Sock::Stream(s))
    }

    /// Adopts a stream the embedder accepted (shared listener): it enters
    /// the table like any connected socket and its token joins the
    /// pending queue for the next `%conn-take`. The stream must already be
    /// nonblocking.
    pub(crate) fn adopt(&mut self, s: TcpStream) -> Result<i64, VmError> {
        let tok = self.insert("conn-adopt", Sock::Stream(s))?;
        self.pending.push_back(tok);
        Ok(tok)
    }

    /// Hands out the oldest adopted-but-untaken connection token.
    pub(crate) fn take_pending(&mut self) -> Option<i64> {
        // A pending connection could have been closed by a stale token
        // sweep; skip tokens whose slot is gone.
        while let Some(tok) = self.pending.pop_front() {
            let live = usize::try_from(tok)
                .ok()
                .and_then(|i| self.slots.get(i))
                .is_some_and(Option::is_some);
            if live {
                return Some(tok);
            }
        }
        None
    }

    /// Moves the fds closed since the last call into `out`.
    pub(crate) fn drain_closed(&mut self, out: &mut Vec<i32>) {
        out.append(&mut self.closed_log);
    }

    /// Reads at most `max` bytes.
    pub(crate) fn read(&mut self, token: i64, max: usize) -> Result<ReadOutcome, VmError> {
        let sock = self.get("tcp-read", token)?;
        let Sock::Stream(s) = sock else {
            return Err(bad_token("tcp-read: not a stream", token));
        };
        let mut buf = vec![0u8; max.clamp(1, 1 << 20)];
        match s.read(&mut buf) {
            Ok(0) => Ok(ReadOutcome::Eof),
            Ok(n) => {
                buf.truncate(n);
                Ok(ReadOutcome::Data(buf))
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(ReadOutcome::WouldBlock),
            Err(e) if e.kind() == ErrorKind::Interrupted => Ok(ReadOutcome::WouldBlock),
            Err(e) => Err(io_err("tcp-read", e)),
        }
    }

    /// Writes `bytes`; `Ok(None)` means would-block (nothing written).
    pub(crate) fn write(&mut self, token: i64, bytes: &[u8]) -> Result<Option<usize>, VmError> {
        let sock = self.get("tcp-write", token)?;
        let Sock::Stream(s) = sock else {
            return Err(bad_token("tcp-write: not a stream", token));
        };
        match s.write(bytes) {
            Ok(n) => Ok(Some(n)),
            Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(None),
            Err(e) if e.kind() == ErrorKind::Interrupted => Ok(None),
            Err(e) => Err(io_err("tcp-write", e)),
        }
    }

    /// Closes `token`. Closing an already-closed token is a no-op (`false`).
    pub(crate) fn close(&mut self, token: i64) -> bool {
        let Some(slot) = usize::try_from(token).ok().and_then(|i| self.slots.get_mut(i)) else {
            return false;
        };
        if let Some(sock) = slot.take() {
            let fd = match &sock {
                Sock::Listener(l) => l.as_raw_fd(),
                Sock::Stream(s) => s.as_raw_fd(),
            };
            self.closed_log.push(fd);
            self.live -= 1;
            self.free.push(token as usize);
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listen_connect_echo_roundtrip_via_table() {
        let mut t = NetTable::new(16);
        let l = t.listen(0).unwrap();
        let port = t.local_port(l).unwrap();
        let c = t.connect(u16::try_from(port).unwrap()).unwrap();
        // Accept may need a beat for the connect to land in the backlog.
        let a = loop {
            if let Some(a) = t.accept(l).unwrap() {
                break a;
            }
            std::thread::yield_now();
        };
        assert_eq!(t.write(c, b"ping").unwrap(), Some(4));
        let data = loop {
            match t.read(a, 64).unwrap() {
                ReadOutcome::Data(d) => break d,
                ReadOutcome::WouldBlock => std::thread::yield_now(),
                ReadOutcome::Eof => panic!("eof before data"),
            }
        };
        assert_eq!(data, b"ping");
        assert_eq!(t.live(), 3);
        assert!(t.close(c));
        assert!(!t.close(c));
        // Peer closed: the accepted side reads EOF once drained.
        let eof = loop {
            match t.read(a, 64).unwrap() {
                ReadOutcome::Eof => break true,
                ReadOutcome::WouldBlock => std::thread::yield_now(),
                ReadOutcome::Data(_) => {}
            }
        };
        assert!(eof);
        t.close(a);
        t.close(l);
        assert_eq!(t.live(), 0);
    }

    #[test]
    fn socket_cap_is_a_catchable_condition() {
        let mut t = NetTable::new(1);
        let _l = t.listen(0).unwrap();
        let e = t.listen(0).unwrap_err();
        assert_eq!(e.condition_kind(), Some("io-error"));
    }

    #[test]
    fn adopted_streams_queue_for_conn_take_and_closes_are_logged() {
        let mut t = NetTable::new(16);
        let l = t.listen_on("127.0.0.1", 0).unwrap();
        let port = t.local_port(l).unwrap();
        let c = t.connect_to("127.0.0.1", u16::try_from(port).unwrap()).unwrap();
        let accepted = loop {
            if let Some(tok) = t.accept(l).unwrap() {
                break tok;
            }
            std::thread::yield_now();
        };
        // Re-adopt the accepted stream through the embedder path.
        let Some(Sock::Stream(s)) =
            t.slots.get_mut(usize::try_from(accepted).unwrap()).and_then(Option::take)
        else {
            panic!("accepted slot vanished")
        };
        t.live -= 1;
        t.free.push(usize::try_from(accepted).unwrap());
        let adopted = t.adopt(s).unwrap();
        assert_eq!(t.take_pending(), Some(adopted));
        assert_eq!(t.take_pending(), None, "pending queue hands each token out once");
        let fd = i32::try_from(t.fd(adopted).unwrap()).unwrap();
        assert!(t.close(adopted));
        let mut closed = Vec::new();
        t.drain_closed(&mut closed);
        assert!(closed.contains(&fd), "close logged the adopted fd");
        t.drain_closed(&mut closed);
        t.close(c);
        t.close(l);
        let n = closed.len();
        t.drain_closed(&mut closed);
        assert_eq!(closed.len(), n + 2, "every close logs exactly one fd");
    }

    #[test]
    fn take_pending_skips_tokens_closed_before_the_handler_ran() {
        let mut t = NetTable::new(16);
        let l = t.listen(0).unwrap();
        let port = t.local_port(l).unwrap();
        let _c = t.connect(u16::try_from(port).unwrap()).unwrap();
        let s = loop {
            match t.accept(l) {
                Ok(Some(tok)) => break tok,
                Ok(None) => std::thread::yield_now(),
                Err(e) => panic!("{e}"),
            }
        };
        // Pretend the accepted stream was adopted, then closed before any
        // handler took it.
        t.pending.push_back(s);
        t.close(s);
        assert_eq!(t.take_pending(), None);
    }

    #[test]
    fn stale_tokens_are_io_errors() {
        let mut t = NetTable::new(4);
        let e = t.read(7, 10).unwrap_err();
        assert_eq!(e.condition_kind(), Some("io-error"));
    }
}
