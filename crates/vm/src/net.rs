//! Nonblocking loopback TCP for the guest: a slab of sockets keyed by
//! fixnum tokens.
//!
//! The VM itself never blocks on a socket. Every operation that would
//! block returns a would-block sentinel (`#f` at the builtin layer); the
//! retry loop lives in Scheme (`io.scm` in `oneshot-threads`), where
//! `%engine-block` captures the running green thread's one-shot
//! continuation and yields the worker until the reactor reports
//! readiness. Keeping the table inside the VM means sockets are owned by
//! the worker that runs the guest, and a worker reset (VM rebuild) closes
//! every socket of the jobs it killed.
//!
//! Tokens are dense indices with a free list, so `%tcp-*` builtins are
//! O(1) and a stale token is caught (slot `None` or reused slot — the
//! guest protocol never retains tokens past `%tcp-close`).

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;

use crate::error::VmError;

/// One open socket.
#[derive(Debug)]
pub(crate) enum Sock {
    /// A listening socket bound to 127.0.0.1.
    Listener(TcpListener),
    /// A connected (or accepted) stream.
    Stream(TcpStream),
}

/// Outcome of a nonblocking read.
#[derive(Debug)]
pub(crate) enum ReadOutcome {
    /// Bytes arrived.
    Data(Vec<u8>),
    /// The peer closed its write side.
    Eof,
    /// Nothing available yet — suspend and retry.
    WouldBlock,
}

/// The per-VM socket table.
#[derive(Debug)]
pub(crate) struct NetTable {
    slots: Vec<Option<Sock>>,
    free: Vec<usize>,
    live: usize,
    /// Open-socket ceiling; exceeding it raises a catchable `io-error`
    /// condition instead of hitting the process fd limit.
    cap: usize,
}

fn io_err(who: &str, e: std::io::Error) -> VmError {
    VmError::Condition { kind: "io-error", message: format!("{who}: {e}") }
}

fn bad_token(who: &str, token: i64) -> VmError {
    VmError::Condition { kind: "io-error", message: format!("{who}: bad socket token {token}") }
}

impl NetTable {
    pub(crate) fn new(cap: usize) -> Self {
        NetTable { slots: Vec::new(), free: Vec::new(), live: 0, cap }
    }

    /// Number of open sockets.
    pub(crate) fn live(&self) -> usize {
        self.live
    }

    fn insert(&mut self, who: &str, sock: Sock) -> Result<i64, VmError> {
        if self.live >= self.cap {
            return Err(VmError::Condition {
                kind: "io-error",
                message: format!("{who}: too many open sockets (limit {})", self.cap),
            });
        }
        self.live += 1;
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(sock);
                i
            }
            None => {
                self.slots.push(Some(sock));
                self.slots.len() - 1
            }
        };
        Ok(idx as i64)
    }

    fn get(&mut self, who: &str, token: i64) -> Result<&mut Sock, VmError> {
        usize::try_from(token)
            .ok()
            .and_then(|i| self.slots.get_mut(i))
            .and_then(|s| s.as_mut())
            .ok_or_else(|| bad_token(who, token))
    }

    /// The raw file descriptor behind `token`, for reactor registration.
    pub(crate) fn fd(&self, token: i64) -> Option<i64> {
        let slot = usize::try_from(token).ok().and_then(|i| self.slots.get(i))?;
        match slot.as_ref()? {
            Sock::Listener(l) => Some(i64::from(l.as_raw_fd())),
            Sock::Stream(s) => Some(i64::from(s.as_raw_fd())),
        }
    }

    /// Binds a nonblocking listener on 127.0.0.1. `port` 0 asks the OS to
    /// pick one (read it back with [`NetTable::local_port`]).
    pub(crate) fn listen(&mut self, port: u16) -> Result<i64, VmError> {
        let l = TcpListener::bind(("127.0.0.1", port)).map_err(|e| io_err("tcp-listen", e))?;
        l.set_nonblocking(true).map_err(|e| io_err("tcp-listen", e))?;
        self.insert("tcp-listen", Sock::Listener(l))
    }

    /// The local port a listener is bound to.
    pub(crate) fn local_port(&mut self, token: i64) -> Result<i64, VmError> {
        match self.get("tcp-local-port", token)? {
            Sock::Listener(l) => {
                let addr = l.local_addr().map_err(|e| io_err("tcp-local-port", e))?;
                Ok(i64::from(addr.port()))
            }
            Sock::Stream(s) => {
                let addr = s.local_addr().map_err(|e| io_err("tcp-local-port", e))?;
                Ok(i64::from(addr.port()))
            }
        }
    }

    /// Accepts one pending connection; `Ok(None)` means would-block.
    pub(crate) fn accept(&mut self, token: i64) -> Result<Option<i64>, VmError> {
        let sock = self.get("tcp-accept", token)?;
        let Sock::Listener(l) = sock else {
            return Err(bad_token("tcp-accept: not a listener", token));
        };
        match l.accept() {
            Ok((s, _)) => {
                s.set_nonblocking(true).map_err(|e| io_err("tcp-accept", e))?;
                s.set_nodelay(true).map_err(|e| io_err("tcp-accept", e))?;
                self.insert("tcp-accept", Sock::Stream(s)).map(Some)
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(io_err("tcp-accept", e)),
        }
    }

    /// Connects to 127.0.0.1:`port`. The connect itself is blocking (a
    /// loopback connect completes immediately once accepted by the
    /// backlog); the stream is then switched to nonblocking for all
    /// subsequent I/O.
    pub(crate) fn connect(&mut self, port: u16) -> Result<i64, VmError> {
        let s = TcpStream::connect(("127.0.0.1", port)).map_err(|e| io_err("tcp-connect", e))?;
        s.set_nonblocking(true).map_err(|e| io_err("tcp-connect", e))?;
        s.set_nodelay(true).map_err(|e| io_err("tcp-connect", e))?;
        self.insert("tcp-connect", Sock::Stream(s))
    }

    /// Reads at most `max` bytes.
    pub(crate) fn read(&mut self, token: i64, max: usize) -> Result<ReadOutcome, VmError> {
        let sock = self.get("tcp-read", token)?;
        let Sock::Stream(s) = sock else {
            return Err(bad_token("tcp-read: not a stream", token));
        };
        let mut buf = vec![0u8; max.clamp(1, 1 << 20)];
        match s.read(&mut buf) {
            Ok(0) => Ok(ReadOutcome::Eof),
            Ok(n) => {
                buf.truncate(n);
                Ok(ReadOutcome::Data(buf))
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(ReadOutcome::WouldBlock),
            Err(e) if e.kind() == ErrorKind::Interrupted => Ok(ReadOutcome::WouldBlock),
            Err(e) => Err(io_err("tcp-read", e)),
        }
    }

    /// Writes `bytes`; `Ok(None)` means would-block (nothing written).
    pub(crate) fn write(&mut self, token: i64, bytes: &[u8]) -> Result<Option<usize>, VmError> {
        let sock = self.get("tcp-write", token)?;
        let Sock::Stream(s) = sock else {
            return Err(bad_token("tcp-write: not a stream", token));
        };
        match s.write(bytes) {
            Ok(n) => Ok(Some(n)),
            Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(None),
            Err(e) if e.kind() == ErrorKind::Interrupted => Ok(None),
            Err(e) => Err(io_err("tcp-write", e)),
        }
    }

    /// Closes `token`. Closing an already-closed token is a no-op (`false`).
    pub(crate) fn close(&mut self, token: i64) -> bool {
        let Some(slot) = usize::try_from(token).ok().and_then(|i| self.slots.get_mut(i)) else {
            return false;
        };
        if slot.take().is_some() {
            self.live -= 1;
            self.free.push(token as usize);
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listen_connect_echo_roundtrip_via_table() {
        let mut t = NetTable::new(16);
        let l = t.listen(0).unwrap();
        let port = t.local_port(l).unwrap();
        let c = t.connect(u16::try_from(port).unwrap()).unwrap();
        // Accept may need a beat for the connect to land in the backlog.
        let a = loop {
            if let Some(a) = t.accept(l).unwrap() {
                break a;
            }
            std::thread::yield_now();
        };
        assert_eq!(t.write(c, b"ping").unwrap(), Some(4));
        let data = loop {
            match t.read(a, 64).unwrap() {
                ReadOutcome::Data(d) => break d,
                ReadOutcome::WouldBlock => std::thread::yield_now(),
                ReadOutcome::Eof => panic!("eof before data"),
            }
        };
        assert_eq!(data, b"ping");
        assert_eq!(t.live(), 3);
        assert!(t.close(c));
        assert!(!t.close(c));
        // Peer closed: the accepted side reads EOF once drained.
        let eof = loop {
            match t.read(a, 64).unwrap() {
                ReadOutcome::Eof => break true,
                ReadOutcome::WouldBlock => std::thread::yield_now(),
                ReadOutcome::Data(_) => {}
            }
        };
        assert!(eof);
        t.close(a);
        t.close(l);
        assert_eq!(t.live(), 0);
    }

    #[test]
    fn socket_cap_is_a_catchable_condition() {
        let mut t = NetTable::new(1);
        let _l = t.listen(0).unwrap();
        let e = t.listen(0).unwrap_err();
        assert_eq!(e.condition_kind(), Some("io-error"));
    }

    #[test]
    fn stale_tokens_are_io_errors() {
        let mut t = NetTable::new(4);
        let e = t.read(7, 10).unwrap_err();
        assert_eq!(e.condition_kind(), Some("io-error"));
    }
}
