//! VM errors.

use std::fmt;

/// Anything that can go wrong running a program.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum VmError {
    /// Reader failure.
    Read(String),
    /// Compiler failure.
    Compile(String),
    /// A runtime error (type errors, arity errors, `(error ...)`).
    Runtime(String),
    /// An error annotated with the job and worker it occurred on.
    ///
    /// Produced by [`VmError::with_context`]; the executor layer uses this to
    /// report *which* job on *which* worker failed without formatting any
    /// strings on the hot path (the ids are plain integers until displayed).
    InContext {
        /// Executor job id the error belongs to.
        job: u64,
        /// Index of the worker thread that ran the job.
        worker: u32,
        /// The underlying error.
        source: Box<VmError>,
    },
}

impl VmError {
    pub(crate) fn runtime(msg: impl Into<String>) -> Self {
        VmError::Runtime(msg.into())
    }

    /// Wrap this error with the job and worker it occurred on.
    ///
    /// Cheap: stores two integers and boxes the original error, no
    /// formatting happens until someone calls `Display`. Re-wrapping an
    /// already-contextualised error replaces the old context rather than
    /// nesting.
    #[must_use]
    pub fn with_context(self, job: u64, worker: u32) -> Self {
        match self {
            VmError::InContext { source, .. } => VmError::InContext { job, worker, source },
            other => VmError::InContext { job, worker, source: Box::new(other) },
        }
    }

    /// The innermost error, stripped of any job/worker context.
    pub fn root_cause(&self) -> &VmError {
        match self {
            VmError::InContext { source, .. } => source.root_cause(),
            other => other,
        }
    }
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Read(m) => write!(f, "read error: {m}"),
            VmError::Compile(m) => write!(f, "{m}"),
            VmError::Runtime(m) => write!(f, "error: {m}"),
            VmError::InContext { job, worker, source } => {
                write!(f, "job {job} on worker {worker}: {source}")
            }
        }
    }
}

impl std::error::Error for VmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VmError::InContext { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_prefixes() {
        assert!(VmError::runtime("x").to_string().starts_with("error:"));
        assert!(VmError::Read("y".into()).to_string().contains("read"));
    }

    #[test]
    fn context_chain() {
        let e = VmError::runtime("boom").with_context(7, 2);
        assert_eq!(e.to_string(), "job 7 on worker 2: error: boom");
        assert_eq!(e.source().unwrap().to_string(), "error: boom");
        assert_eq!(e.root_cause(), &VmError::Runtime("boom".into()));
        // Re-wrapping replaces the context instead of nesting.
        let e2 = e.with_context(8, 0);
        assert_eq!(e2.to_string(), "job 8 on worker 0: error: boom");
    }
}
