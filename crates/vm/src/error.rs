//! VM errors.

use std::fmt;

/// Anything that can go wrong running a program.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum VmError {
    /// Reader failure.
    Read(String),
    /// Compiler failure.
    Compile(String),
    /// A runtime error (type errors, arity errors, `(error ...)`).
    Runtime(String),
    /// A *recoverable* fault, classified by condition kind. The VM's
    /// dispatch loop intercepts this variant and re-raises it as a Scheme
    /// condition through the prelude's `raise`, so a `with-exception-handler`
    /// in the guest program can catch it; it only escapes to the embedder
    /// when interception is impossible (e.g. during prelude loading).
    Condition {
        /// The condition kind: `out-of-memory`, `stack-overflow`,
        /// `fuel-exhausted`, `type-error`, `arity-error`, `shot-twice`, or
        /// `error` for user `(error ...)` / fixnum overflow.
        kind: &'static str,
        /// Human-readable description, shown like a `Runtime` message.
        message: String,
    },
    /// A condition that no handler caught. Carries the condition's message
    /// and a backtrace walked from the live stack records at raise time.
    Uncaught {
        /// The uncaught condition's message.
        condition: String,
        /// The condition's kind symbol (e.g. `out-of-memory`), when the
        /// condition had the standard `(kind . message)` shape. The
        /// executor uses this to tell transient faults from permanent ones.
        kind: Option<String>,
        /// Frame names (innermost first), recovered from return addresses
        /// and continuation records.
        backtrace: Vec<String>,
    },
    /// An error annotated with the job and worker it occurred on.
    ///
    /// Produced by [`VmError::with_context`]; the executor layer uses this to
    /// report *which* job on *which* worker failed without formatting any
    /// strings on the hot path (the ids are plain integers until displayed).
    InContext {
        /// Executor job id the error belongs to.
        job: u64,
        /// Index of the worker thread that ran the job.
        worker: u32,
        /// The underlying error.
        source: Box<VmError>,
    },
}

impl VmError {
    pub(crate) fn runtime(msg: impl Into<String>) -> Self {
        VmError::Runtime(msg.into())
    }

    pub(crate) fn condition(kind: &'static str, msg: impl Into<String>) -> Self {
        VmError::Condition { kind, message: msg.into() }
    }

    /// The condition kind, when this error is (or wraps) a classified
    /// condition: `Condition` directly, an `Uncaught` condition that had a
    /// kind, or `InContext` around either.
    pub fn condition_kind(&self) -> Option<&str> {
        match self.root_cause() {
            VmError::Condition { kind, .. } => Some(kind),
            VmError::Uncaught { kind, .. } => kind.as_deref(),
            _ => None,
        }
    }

    /// Wrap this error with the job and worker it occurred on.
    ///
    /// Cheap: stores two integers and boxes the original error, no
    /// formatting happens until someone calls `Display`. Re-wrapping an
    /// already-contextualised error replaces the old context rather than
    /// nesting.
    #[must_use]
    pub fn with_context(self, job: u64, worker: u32) -> Self {
        match self {
            VmError::InContext { source, .. } => VmError::InContext { job, worker, source },
            other => VmError::InContext { job, worker, source: Box::new(other) },
        }
    }

    /// The innermost error, stripped of any job/worker context.
    pub fn root_cause(&self) -> &VmError {
        match self {
            VmError::InContext { source, .. } => source.root_cause(),
            other => other,
        }
    }
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Read(m) => write!(f, "read error: {m}"),
            VmError::Compile(m) => write!(f, "{m}"),
            VmError::Runtime(m) => write!(f, "error: {m}"),
            VmError::Condition { message, .. } => write!(f, "error: {message}"),
            VmError::Uncaught { condition, .. } => write!(f, "error: {condition}"),
            VmError::InContext { job, worker, source } => {
                write!(f, "job {job} on worker {worker}: {source}")
            }
        }
    }
}

impl std::error::Error for VmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VmError::InContext { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_prefixes() {
        assert!(VmError::runtime("x").to_string().starts_with("error:"));
        assert!(VmError::Read("y".into()).to_string().contains("read"));
    }

    #[test]
    fn condition_display_matches_runtime_shape() {
        let e = VmError::condition("type-error", "car: expected pair, got 1");
        assert_eq!(e.to_string(), "error: car: expected pair, got 1");
        assert_eq!(e.condition_kind(), Some("type-error"));
        assert_eq!(e.with_context(3, 1).condition_kind(), Some("type-error"));
    }

    #[test]
    fn uncaught_display_and_root_cause() {
        let e = VmError::Uncaught {
            condition: "boom".into(),
            kind: None,
            backtrace: vec!["f".into(), "g".into()],
        };
        assert_eq!(e.to_string(), "error: boom");
        let wrapped = e.clone().with_context(9, 4);
        assert_eq!(wrapped.to_string(), "job 9 on worker 4: error: boom");
        assert_eq!(wrapped.root_cause(), &e);
        assert_eq!(wrapped.condition_kind(), None);
    }

    #[test]
    fn uncaught_preserves_condition_kind() {
        let e = VmError::Uncaught {
            condition: "injected allocation failure".into(),
            kind: Some("out-of-memory".into()),
            backtrace: vec![],
        };
        assert_eq!(e.condition_kind(), Some("out-of-memory"));
        assert_eq!(e.with_context(1, 0).condition_kind(), Some("out-of-memory"));
    }

    #[test]
    fn context_chain() {
        let e = VmError::runtime("boom").with_context(7, 2);
        assert_eq!(e.to_string(), "job 7 on worker 2: error: boom");
        assert_eq!(e.source().unwrap().to_string(), "error: boom");
        assert_eq!(e.root_cause(), &VmError::Runtime("boom".into()));
        // Re-wrapping replaces the context instead of nesting.
        let e2 = e.with_context(8, 0);
        assert_eq!(e2.to_string(), "job 8 on worker 0: error: boom");
    }
}
