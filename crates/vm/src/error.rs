//! VM errors.

use std::fmt;

/// Anything that can go wrong running a program.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum VmError {
    /// Reader failure.
    Read(String),
    /// Compiler failure.
    Compile(String),
    /// A runtime error (type errors, arity errors, `(error ...)`).
    Runtime(String),
}

impl VmError {
    pub(crate) fn runtime(msg: impl Into<String>) -> Self {
        VmError::Runtime(msg.into())
    }
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Read(m) => write!(f, "read error: {m}"),
            VmError::Compile(m) => write!(f, "{m}"),
            VmError::Runtime(m) => write!(f, "error: {m}"),
        }
    }
}

impl std::error::Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes() {
        assert!(VmError::runtime("x").to_string().starts_with("error:"));
        assert!(VmError::Read("y".into()).to_string().contains("read"));
    }
}
