//! The stack slot type.

use oneshot_runtime::Value;

/// What a staged builtin resumes into when control returns to it.
///
/// Multi-step builtins (`dynamic-wind`, `call-with-values`, and the winding
/// phase of continuation invocation) call back into Scheme; the frame slot
/// below the callee holds one of these instead of a normal return address,
/// and the VM dispatches to the builtin's next stage when the callee
/// returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resume {
    /// `dynamic-wind`: after `before` returned — push the winder and call
    /// the thunk.
    WindBody,
    /// `dynamic-wind`: after the thunk returned — pop the winder, stash the
    /// result, call `after`.
    WindAfter,
    /// `dynamic-wind`: after `after` returned — restore the stashed result
    /// and return.
    WindDone,
    /// `call-with-values`: the producer returned — apply the consumer to
    /// its values.
    CwvConsume,
    /// Continuation invocation: a winder thunk returned — continue winding
    /// toward the target continuation.
    KontWind,
    /// Continuation invocation: a `before` winder returned — enter it, then
    /// continue winding.
    KontWindEnter,
}

/// One stack slot.
///
/// Mirrors the paper's frame layout: the base slot of a frame holds the
/// return address; parameter and local slots hold values. The displacement
/// stored in return addresses is the paper's frame-size word (kept in the
/// code stream there, inside the return address here) — it is what lets
/// the runtime walk frames for splitting and overflow hysteresis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Slot {
    /// A value.
    Val(Value),
    /// A return address: resume `code` at `pc`, popping the frame by
    /// `disp`; `closure` restores the caller's closure register (it is a
    /// `Value` so the garbage collector traces it with the frame).
    Ret {
        /// Code-object index.
        code: u32,
        /// Absolute index into the VM's flat instruction arena to resume
        /// at (not relative to `code`'s own body).
        pc: u32,
        /// Frame displacement (the paper's frame-size word).
        disp: u32,
        /// The caller's closure, or `Value::UNSPECIFIED`.
        closure: Value,
    },
    /// A staged-builtin resume point (see [`Resume`]).
    Resume {
        /// Which stage to run.
        kind: Resume,
        /// Frame displacement, as for `Ret`.
        disp: u32,
    },
    /// The underflow marker installed at the base slot of every stack
    /// record; returning through it reinstates the link continuation.
    Marker,
}

impl Slot {
    /// The value stored here.
    ///
    /// # Panics
    ///
    /// Panics if the slot holds control data — that would be a compiler or
    /// VM bug, not a user error.
    #[inline]
    pub fn value(&self) -> Value {
        match self {
            Slot::Val(v) => *v,
            other => panic!("expected value slot, found {other:?}"),
        }
    }
}

/// The frame walker for the segmented stack: the displacement carried by
/// return addresses and resume points; `None` for the marker and values.
#[inline]
pub fn slot_disp(s: &Slot) -> Option<usize> {
    match s {
        Slot::Ret { disp, .. } => Some(*disp as usize),
        Slot::Resume { disp, .. } => Some(*disp as usize),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walker_reads_displacements() {
        let r = Slot::Ret { code: 0, pc: 3, disp: 7, closure: Value::UNSPECIFIED };
        assert_eq!(slot_disp(&r), Some(7));
        let w = Slot::Resume { kind: Resume::CwvConsume, disp: 4 };
        assert_eq!(slot_disp(&w), Some(4));
        assert_eq!(slot_disp(&Slot::Marker), None);
        assert_eq!(slot_disp(&Slot::Val(Value::NIL)), None);
    }

    #[test]
    fn value_accessor() {
        assert_eq!(Slot::Val(Value::fixnum(3)).value(), Value::fixnum(3));
    }
}
