//! The execution engine: instruction dispatch, the call protocol, returns,
//! underflow, continuation invocation with `dynamic-wind` winding, and the
//! engine timer.

use oneshot_compiler::Op;
use oneshot_core::{KontId, Underflow};
use oneshot_runtime::{Obj, ObjKind, Unpacked, Value};

use crate::error::VmError;
use crate::slot::{slot_disp, Resume, Slot};
use crate::vm::builtins::Flow;
use crate::vm::Vm;

type R<T> = Result<T, VmError>;

impl Vm {
    /// Reads the local slot at `fp + i` as a value.
    #[inline]
    pub(crate) fn local(&self, i: usize) -> Value {
        match self.stack.get(self.stack.fp() + i) {
            Slot::Val(v) => *v,
            other => panic!("expected value at fp+{i}, found {other:?}"),
        }
    }

    #[inline]
    pub(crate) fn set_local(&mut self, i: usize, v: Value) {
        let fp = self.stack.fp();
        self.stack.set(fp + i, Slot::Val(v));
    }

    fn free_value(&self, i: usize) -> Value {
        let Some(r) = self.closure.as_obj() else { panic!("free reference without a closure") };
        let Some((_, free)) = self.heap.closure(r) else {
            panic!("closure register holds a non-closure")
        };
        free[i]
    }

    fn cell_get(&self, cell: Value) -> Value {
        let Some(r) = cell.as_obj() else { panic!("cell reference to non-cell") };
        self.heap.cell(r).expect("cell reference to non-cell")
    }

    fn cell_set(&mut self, cell: Value, v: Value) {
        let Some(r) = cell.as_obj() else { panic!("cell assignment to non-cell") };
        *self.heap.cell_mut(r).expect("cell assignment to non-cell") = v;
    }

    /// Builds the unbound-variable error. Out of line and `#[cold]`: the
    /// hot `GlobalRef` path is a load plus one sentinel compare, with the
    /// message formatting kept off the fast path entirely.
    #[cold]
    #[inline(never)]
    fn unbound(&self, what: &str, i: u32) -> VmError {
        VmError::runtime(format!("{what}: {}", self.global_names[i as usize]))
    }

    /// The interpreter entry: runs the dispatch loop, intercepting
    /// recoverable [`VmError::Condition`] faults and re-raising them as
    /// Scheme conditions through the prelude's `raise`, so guest handlers
    /// installed with `with-exception-handler` can catch Rust-side faults
    /// (type errors, heap budget, stack ceiling, injected faults) exactly
    /// like Scheme-side ones.
    pub(crate) fn run(&mut self) -> R<Value> {
        loop {
            match self.run_dispatch() {
                Err(VmError::Condition { kind, message }) => {
                    if let Some(v) = self.begin_raise(kind, message)? {
                        return Ok(v);
                    }
                }
                other => return other,
            }
        }
    }

    /// Re-enters the guest at `raise` with a freshly allocated condition
    /// pair `(kind . message)`. Returns `Ok(None)` when control was
    /// transferred (the dispatch loop should continue), `Ok(Some(v))` in
    /// the degenerate case where the application completed the program
    /// outright, and `Err(Uncaught)` when interception is impossible — no
    /// handler installed, or the prelude (which defines `raise`) is not
    /// loaded yet.
    #[cold]
    #[inline(never)]
    fn begin_raise(&mut self, kind: &'static str, message: String) -> R<Option<Value>> {
        let uncaught = |vm: &mut Vm, message: String| {
            vm.conditions_raised += 1;
            Err(VmError::Uncaught {
                condition: message,
                kind: Some(kind.to_string()),
                backtrace: vm.backtrace(),
            })
        };
        // CPS-converted `raise` takes a continuation argument the VM cannot
        // synthesize here; under that pipeline conditions the VM itself
        // raises surface as uncaught directly (Scheme-side `raise` still
        // dispatches to handlers normally).
        if self.pipeline() == oneshot_compiler::Pipeline::Cps {
            return uncaught(self, message);
        }
        let Some(raise) = self.global("raise") else {
            return uncaught(self, message);
        };
        if self.handlers == Value::NIL {
            return uncaught(self, message);
        }
        self.mv = None;
        // Room for the one-argument application below. The stack's ceiling
        // grace period (and the `oom_raised` latch) keep this from raising
        // recursively; if even one frame cannot be pushed, give up.
        if self.ensure_or_raise(3, 1).is_err() {
            return uncaught(self, message);
        }
        let kind_sym = self.intern(kind);
        let msg_str = Value::obj(self.heap.alloc(Obj::Str(message.chars().collect())));
        let cond = Value::obj(self.heap.alloc_pair(kind_sym, msg_str));
        let fp = self.stack.fp();
        self.stack.set(fp + 1, Slot::Val(cond));
        self.acc = raise;
        self.calls += 1;
        match self.apply(raise, 1) {
            Ok(flow) => Ok(flow),
            // `raise` bound to something inapplicable: don't loop, report.
            Err(_) => uncaught(self, message),
        }
    }

    /// The main dispatch loop; returns the program's final value when
    /// the continuation chain is exhausted.
    ///
    /// `pc` is an absolute index into the flat arena, so every control
    /// transfer — call, return, continuation reinstatement — is a plain
    /// offset assignment; there is no per-transfer refetch of a code
    /// object. The instruction itself is fetched by value each iteration
    /// (`Op` is `Copy` and at most 16 bytes), which keeps the arena free
    /// to grow underneath us when a builtin such as `eval` links new code
    /// mid-run.
    #[allow(clippy::too_many_lines)]
    fn run_dispatch(&mut self) -> R<Value> {
        loop {
            let op = self.flat[self.pc];
            self.pc += 1;
            self.instructions += 1;
            if let Some(hist) = &mut self.opcode_hist {
                hist[op.kind_index()] += 1;
            }
            match op {
                Op::Const(i) => {
                    self.acc = self.codes[self.code as usize].consts[i as usize];
                }
                Op::FixInt(n) => self.acc = Value::fixnum(n.into()),
                Op::Unspec => self.acc = Value::UNSPECIFIED,
                Op::LocalRef(i) => self.acc = self.local(i as usize),
                Op::LocalSet(i) => {
                    let v = self.acc;
                    self.set_local(i as usize, v);
                }
                Op::FreeRef(i) => self.acc = self.free_value(i as usize),
                Op::CellRefLocal(i) => {
                    let c = self.local(i as usize);
                    self.acc = self.cell_get(c);
                }
                Op::CellRefFree(i) => {
                    let c = self.free_value(i as usize);
                    self.acc = self.cell_get(c);
                }
                Op::CellSetLocal(i) => {
                    let c = self.local(i as usize);
                    let v = self.acc;
                    self.cell_set(c, v);
                }
                Op::CellSetFree(i) => {
                    let c = self.free_value(i as usize);
                    let v = self.acc;
                    self.cell_set(c, v);
                }
                Op::MakeCell(i) => {
                    let v = self.local(i as usize);
                    let cell = Value::obj(self.heap.alloc(Obj::Cell(v)));
                    self.set_local(i as usize, cell);
                }
                Op::GlobalRef(i) => {
                    let v = self.globals[i as usize];
                    if v == Value::UNDEFINED {
                        return Err(self.unbound("unbound variable", i));
                    }
                    self.acc = v;
                }
                Op::GlobalSet(i) => {
                    if self.globals[i as usize] == Value::UNDEFINED {
                        return Err(self.unbound("assignment to unbound variable", i));
                    }
                    self.globals[i as usize] = self.acc;
                }
                Op::GlobalDef(i) => {
                    self.globals[i as usize] = self.acc;
                }
                Op::Closure(i) => {
                    // Gather captures into a stack buffer: together with
                    // the heap's inline closure payload, small closures
                    // (the common case) never touch the Rust allocator.
                    let n = self.codes[i as usize].free_spec.len();
                    if n <= 8 {
                        let mut buf = [Value::UNDEFINED; 8];
                        for (j, slot) in buf[..n].iter_mut().enumerate() {
                            *slot = match self.codes[i as usize].free_spec[j] {
                                oneshot_compiler::FreeSrc::Local(k) => self.local(k as usize),
                                oneshot_compiler::FreeSrc::Free(k) => self.free_value(k as usize),
                            };
                        }
                        self.acc = Value::obj(self.heap.alloc_closure(i, &buf[..n]));
                    } else {
                        let free: Vec<Value> = self.codes[i as usize]
                            .free_spec
                            .iter()
                            .map(|s| match *s {
                                oneshot_compiler::FreeSrc::Local(j) => self.local(j as usize),
                                oneshot_compiler::FreeSrc::Free(j) => self.free_value(j as usize),
                            })
                            .collect();
                        self.acc = Value::obj(self.heap.alloc_closure(i, &free));
                    }
                }
                Op::Jump(off) => {
                    self.pc = (self.pc as i64 + i64::from(off)) as usize;
                }
                Op::BranchFalse(off) => {
                    if !self.acc.is_true() {
                        self.pc = (self.pc as i64 + i64::from(off)) as usize;
                    }
                }
                Op::Entry { required, rest } => {
                    // When a timer interrupt fires, `entry` has already
                    // transferred control to the handler; just keep going.
                    self.entry(required as usize, rest)?;
                }
                Op::Call { disp, argc } => {
                    self.calls += 1;
                    let fp = self.stack.fp();
                    self.stack.set(
                        fp + disp as usize,
                        Slot::Ret {
                            code: self.code,
                            pc: self.pc as u32,
                            disp: disp.into(),
                            closure: self.closure,
                        },
                    );
                    self.stack.set_fp(fp + disp as usize);
                    let f = self.acc;
                    if let Some(v) = self.apply(f, argc as usize)? {
                        return Ok(v);
                    }
                }
                Op::TailCall { disp, argc } => {
                    self.calls += 1;
                    let fp = self.stack.fp();
                    for i in 0..argc as usize {
                        let v = *self.stack.get(fp + disp as usize + 1 + i);
                        self.stack.set(fp + 1 + i, v);
                    }
                    let f = self.acc;
                    if let Some(v) = self.apply(f, argc as usize)? {
                        return Ok(v);
                    }
                }
                Op::Return => {
                    if let Some(v) = self.do_return()? {
                        return Ok(v);
                    }
                }
                // --- inline primitives ---
                Op::Add(i) => self.acc = num_add(self.local(i as usize), self.acc)?,
                Op::Sub(i) => self.acc = num_sub(self.local(i as usize), self.acc)?,
                Op::Mul(i) => self.acc = num_mul(self.local(i as usize), self.acc)?,
                Op::Lt(i) => self.acc = num_cmp(self.local(i as usize), self.acc, "<")?,
                Op::Le(i) => self.acc = num_cmp(self.local(i as usize), self.acc, "<=")?,
                Op::Gt(i) => self.acc = num_cmp(self.local(i as usize), self.acc, ">")?,
                Op::Ge(i) => self.acc = num_cmp(self.local(i as usize), self.acc, ">=")?,
                Op::NumEq(i) => self.acc = num_cmp(self.local(i as usize), self.acc, "=")?,
                Op::Cons(i) => {
                    let car = self.local(i as usize);
                    let cdr = self.acc;
                    self.acc = Value::obj(self.heap.alloc_pair(car, cdr));
                }
                Op::Eq(i) => self.acc = Value::boolean(self.local(i as usize) == self.acc),
                Op::Car => match self.acc.as_obj().and_then(|r| self.heap.pair(r)) {
                    Some((a, _)) => self.acc = a,
                    None => return Err(self.type_error("car", "pair", self.acc)),
                },
                Op::Cdr => match self.acc.as_obj().and_then(|r| self.heap.pair(r)) {
                    Some((_, d)) => self.acc = d,
                    None => return Err(self.type_error("cdr", "pair", self.acc)),
                },
                Op::NullP => self.acc = Value::boolean(self.acc == Value::NIL),
                Op::PairP => {
                    self.acc = Value::boolean(self.acc.is_pair());
                }
                Op::Not => self.acc = Value::boolean(!self.acc.is_true()),
                Op::ZeroP => match self.acc.unpack() {
                    Unpacked::Fixnum(n) => self.acc = Value::boolean(n == 0),
                    Unpacked::Flonum(x) => self.acc = Value::boolean(x == 0.0),
                    _ => return Err(self.type_error("zero?", "number", self.acc)),
                },
                Op::Add1 => self.acc = num_add(self.acc, Value::fixnum(1))?,
                Op::Sub1 => self.acc = num_sub(self.acc, Value::fixnum(1))?,
                Op::VecRef(i) => {
                    let v = self.local(i as usize);
                    self.acc = self.vector_ref(v, self.acc)?;
                }
                Op::VecSet { v, i } => {
                    let vec = self.local(v as usize);
                    let idx = self.local(i as usize);
                    let x = self.acc;
                    self.vector_set(vec, idx, x)?;
                    self.acc = Value::UNSPECIFIED;
                }
                // --- superinstructions (peephole-fused pairs) ---
                // Each arm computes exactly what the unfused pair computed,
                // including the value left in `acc`, so fusion never changes
                // results or stack/control counters.
                Op::BrLt { i, off } => {
                    self.acc = num_cmp(self.local(i as usize), self.acc, "<")?;
                    if !self.acc.is_true() {
                        self.pc = (self.pc as i64 + i64::from(off)) as usize;
                    }
                }
                Op::BrLe { i, off } => {
                    self.acc = num_cmp(self.local(i as usize), self.acc, "<=")?;
                    if !self.acc.is_true() {
                        self.pc = (self.pc as i64 + i64::from(off)) as usize;
                    }
                }
                Op::BrGt { i, off } => {
                    self.acc = num_cmp(self.local(i as usize), self.acc, ">")?;
                    if !self.acc.is_true() {
                        self.pc = (self.pc as i64 + i64::from(off)) as usize;
                    }
                }
                Op::BrGe { i, off } => {
                    self.acc = num_cmp(self.local(i as usize), self.acc, ">=")?;
                    if !self.acc.is_true() {
                        self.pc = (self.pc as i64 + i64::from(off)) as usize;
                    }
                }
                Op::BrNumEq { i, off } => {
                    self.acc = num_cmp(self.local(i as usize), self.acc, "=")?;
                    if !self.acc.is_true() {
                        self.pc = (self.pc as i64 + i64::from(off)) as usize;
                    }
                }
                Op::BrEq { i, off } => {
                    self.acc = Value::boolean(self.local(i as usize) == self.acc);
                    if !self.acc.is_true() {
                        self.pc = (self.pc as i64 + i64::from(off)) as usize;
                    }
                }
                Op::BrZeroP(off) => {
                    self.acc = match self.acc.unpack() {
                        Unpacked::Fixnum(n) => Value::boolean(n == 0),
                        Unpacked::Flonum(x) => Value::boolean(x == 0.0),
                        _ => return Err(self.type_error("zero?", "number", self.acc)),
                    };
                    if !self.acc.is_true() {
                        self.pc = (self.pc as i64 + i64::from(off)) as usize;
                    }
                }
                Op::BrNullP(off) => {
                    self.acc = Value::boolean(self.acc == Value::NIL);
                    if !self.acc.is_true() {
                        self.pc = (self.pc as i64 + i64::from(off)) as usize;
                    }
                }
                Op::ReturnLocal(i) => {
                    self.acc = self.local(i as usize);
                    if let Some(v) = self.do_return()? {
                        return Ok(v);
                    }
                }
                Op::AddImm { i, n } => {
                    self.acc = num_add(self.local(i as usize), Value::fixnum(n.into()))?;
                }
                Op::SubImm { i, n } => {
                    self.acc = num_sub(self.local(i as usize), Value::fixnum(n.into()))?;
                }
                Op::Move { src, dst } => {
                    self.acc = self.local(src as usize);
                    let v = self.acc;
                    self.set_local(dst as usize, v);
                }
                Op::BrLtImm { i, n, off } => {
                    self.acc = num_cmp(self.local(i as usize), Value::fixnum(n.into()), "<")?;
                    if !self.acc.is_true() {
                        self.pc = (self.pc as i64 + i64::from(off)) as usize;
                    }
                }
                Op::CallGlobal { g, disp, argc } => {
                    let f = self.globals[g as usize];
                    if f == Value::UNDEFINED {
                        return Err(self.unbound("unbound variable", g));
                    }
                    self.acc = f;
                    self.calls += 1;
                    let fp = self.stack.fp();
                    self.stack.set(
                        fp + disp as usize,
                        Slot::Ret {
                            code: self.code,
                            pc: self.pc as u32,
                            disp: disp.into(),
                            closure: self.closure,
                        },
                    );
                    self.stack.set_fp(fp + disp as usize);
                    if let Some(v) = self.apply(f, argc as usize)? {
                        return Ok(v);
                    }
                }
                Op::TailCallGlobal { g, disp, argc } => {
                    let f = self.globals[g as usize];
                    if f == Value::UNDEFINED {
                        return Err(self.unbound("unbound variable", g));
                    }
                    self.acc = f;
                    self.calls += 1;
                    let fp = self.stack.fp();
                    for i in 0..argc as usize {
                        let v = *self.stack.get(fp + disp as usize + 1 + i);
                        self.stack.set(fp + 1 + i, v);
                    }
                    if let Some(v) = self.apply(f, argc as usize)? {
                        return Ok(v);
                    }
                }
                Op::BrTrue(off) => {
                    let was_true = self.acc.is_true();
                    self.acc = Value::boolean(!was_true);
                    if was_true {
                        self.pc = (self.pc as i64 + i64::from(off)) as usize;
                    }
                }
            }
        }
    }

    /// Function prologue: arity, overflow check, rest collection, GC safe
    /// point, timer tick. Returns true when a timer interrupt transferred
    /// control to the handler.
    fn entry(&mut self, required: usize, rest: bool) -> R<bool> {
        let argc = self.argc;
        if argc < required || (!rest && argc > required) {
            return Err(self.arity_error(required, rest, argc));
        }
        let need = self.codes[self.code as usize].frame_slots as usize + 2;
        // Winder entries are critical sections: an asynchronous guard fault
        // delivered between the wind machinery's bookkeeping (winder pushed
        // or popped) and the winder thunk's body would unbalance
        // enter/exit. Defer every injected fault and budget check to the
        // next ordinary entry; genuine errors still propagate. The whole
        // fault block sits behind the single `guards_active` flag so an
        // unguarded VM pays one predicted branch here, nothing more.
        let winder = self.guards_active && self.entering_winder();
        if winder {
            self.stack.defer_segment_fault(true);
        }
        let ensured = self.ensure_or_raise(need, 1 + argc);
        if winder {
            self.stack.defer_segment_fault(false);
        }
        ensured?;
        if rest {
            let mut list = Value::NIL;
            for i in (required..argc).rev() {
                let v = self.local(1 + i);
                list = Value::obj(self.heap.alloc_pair(v, list));
            }
            self.set_local(1 + required, list);
        }
        let live = 1 + required + usize::from(rest);
        if self.heap.wants_collection() {
            self.collect(live);
        }
        if self.guards_active && !winder {
            if let Some(transferred) = self.entry_guard_checks(live)? {
                return Ok(transferred);
            }
        }
        if self.timer_on {
            self.fuel = self.fuel.saturating_sub(1);
            if self.fuel == 0 {
                self.timer_on = false;
                return self.fire_timer_interrupt();
            }
        }
        Ok(false)
    }

    /// The resource-guard and injected-fault checks run at each function
    /// entry of a guarded VM, out of line so `entry` itself stays small
    /// on the unguarded hot path. `Some(transferred)` means the entry is
    /// done (an injected timer expiry fired the interrupt); `None` means
    /// continue the ordinary prologue.
    #[cold]
    #[inline(never)]
    fn entry_guard_checks(&mut self, live: usize) -> R<Option<bool>> {
        if self.heap.take_alloc_fault() {
            self.faults_injected += 1;
            return Err(VmError::condition("out-of-memory", "injected allocation failure"));
        }
        if let Some(budget) = self.heap_budget {
            if self.heap.len() > budget {
                // One more collection right at the budget boundary;
                // raise only if the live set genuinely exceeds it.
                self.collect(live);
                if self.heap.len() > budget && !self.oom_raised {
                    self.oom_raised = true;
                    return Err(VmError::condition(
                        "out-of-memory",
                        format!(
                            "heap budget exceeded: {} live objects over budget of {budget}",
                            self.heap.len()
                        ),
                    ));
                }
            } else if self.oom_raised {
                self.oom_raised = false;
            }
        }
        if self.timer_fault.tick() {
            // Injected early timer expiry: preempt as if fuel ran out.
            self.faults_injected += 1;
            self.timer_on = false;
            self.fuel = 0;
            return self.fire_timer_interrupt().map(Some);
        }
        Ok(None)
    }

    #[cold]
    #[inline(never)]
    fn arity_error(&self, required: usize, rest: bool, argc: usize) -> VmError {
        let name = &self.codes[self.code as usize].name;
        VmError::condition(
            "arity-error",
            format!(
                "{name}: expected {}{} arguments, got {argc}",
                required,
                if rest { "+" } else { "" }
            ),
        )
    }

    /// Whether the frame being entered belongs to a winder thunk invoked
    /// by the `dynamic-wind` machinery: its return slot is one of the wind
    /// resume markers. (The body thunk resumes through `WindAfter` and is
    /// *not* a winder — faults deliver normally inside the extent.)
    fn entering_winder(&self) -> bool {
        matches!(
            self.stack.get(self.stack.fp()),
            Slot::Resume {
                kind: Resume::WindBody
                    | Resume::WindDone
                    | Resume::KontWind
                    | Resume::KontWindEnter,
                ..
            }
        )
    }

    /// Calls the timer handler such that its normal return resumes the
    /// interrupted function just past its (already completed) prologue.
    fn fire_timer_interrupt(&mut self) -> R<bool> {
        let handler = self.timer_handler;
        if !(handler.is_obj() || handler.is_builtin()) {
            return Err(VmError::condition(
                "fuel-exhausted",
                "timer expired with no interrupt handler",
            ));
        }
        let fs = self.codes[self.code as usize].frame_slots as usize + 1;
        let fp = self.stack.fp();
        self.stack.set(
            fp + fs,
            Slot::Ret {
                code: self.code,
                pc: self.pc as u32,
                disp: fs as u32,
                closure: self.closure,
            },
        );
        self.stack.set_fp(fp + fs);
        self.calls += 1;
        if self.apply(handler, 0)?.is_some() {
            // A zero-argument handler cannot legitimately end the program
            // from here; treat as an error to avoid losing the fact.
            return Err(VmError::runtime("timer handler exhausted the continuation chain"));
        }
        Ok(true)
    }

    /// Applies `f` to `argc` arguments already placed at `fp+1..`.
    /// Returns `Some(final)` if the program completed (underflowed out).
    pub(crate) fn apply(&mut self, f: Value, argc: usize) -> R<Option<Value>> {
        match f.unpack() {
            Unpacked::Obj(r) => match r.kind() {
                ObjKind::Closure => {
                    let Some((code, _)) = self.heap.closure(r) else {
                        return Err(VmError::runtime("application of a collected closure"));
                    };
                    self.closure = f;
                    self.code = code;
                    self.pc = self.codes[code as usize].base as usize;
                    self.argc = argc;
                    Ok(None)
                }
                ObjKind::Kont => {
                    let Some((kont, winders)) = self.heap.kont(r) else {
                        return Err(VmError::runtime("invocation of a collected continuation"));
                    };
                    self.invoke_kont(kont, winders, argc)
                }
                _ => Err(self.type_error("apply", "procedure", f)),
            },
            Unpacked::Builtin(i) => {
                let func = self.builtins[i as usize];
                let flow = func(self, argc)?;
                self.flow(flow)
            }
            _ => Err(self.type_error("apply", "procedure", f)),
        }
    }

    /// Acts on a builtin's control-flow outcome.
    pub(crate) fn flow(&mut self, flow: Flow) -> R<Option<Value>> {
        match flow {
            Flow::Return => self.do_return(),
            Flow::Tail { f, argc } => {
                self.calls += 1;
                self.apply(f, argc)
            }
            Flow::Continue => Ok(None),
            Flow::Halt(v) => Ok(Some(v)),
        }
    }

    /// Delivers control through an ordinary return address: rejects
    /// pending multiple values, pops the frame, restores the caller's
    /// registers.
    fn deliver_ret(&mut self, code: u32, pc: u32, disp: u32, closure: Value) -> R<()> {
        if self.mv.is_some() {
            let n = self.mv.as_ref().map_or(0, Vec::len);
            self.mv = None;
            return Err(VmError::runtime(format!(
                "returned {n} values to single value return context"
            )));
        }
        self.stack.pop_frame(disp as usize);
        self.code = code;
        self.pc = pc as usize;
        self.closure = closure;
        Ok(())
    }

    /// Returns `acc` (or pending multiple values) through the slot at the
    /// frame base. `Some(final)` when the program completed.
    pub(crate) fn do_return(&mut self) -> R<Option<Value>> {
        {
            let slot = *self.stack.get(self.stack.fp());
            match slot {
                Slot::Ret { code, pc, disp, closure } => {
                    self.deliver_ret(code, pc, disp, closure)?;
                    Ok(None)
                }
                Slot::Resume { kind, disp } => {
                    self.stack.pop_frame(disp as usize);
                    let flow = self.resume(kind)?;
                    match self.flow(flow)? {
                        Some(v) => Ok(Some(v)),
                        None => Ok(None),
                    }
                }
                Slot::Marker => {
                    match self
                        .stack
                        .underflow(&slot_disp)
                        .map_err(|e| VmError::runtime(e.to_string()))?
                    {
                        Underflow::Exhausted => {
                            let v = self.acc;
                            self.mv = None;
                            Ok(Some(v))
                        }
                        Underflow::Resumed(r) => {
                            // Deliver through the reinstated return address:
                            // temporarily plant it at the new frame base...
                            // it already encodes everything; dispatch on it
                            // directly.
                            match r.ret {
                                Slot::Ret { code, pc, disp, closure } => {
                                    self.deliver_ret(code, pc, disp, closure)?;
                                    Ok(None)
                                }
                                Slot::Resume { kind, disp } => {
                                    self.stack.pop_frame(disp as usize);
                                    let flow = self.resume(kind)?;
                                    match self.flow(flow)? {
                                        Some(v) => Ok(Some(v)),
                                        None => Ok(None),
                                    }
                                }
                                other => Err(VmError::runtime(format!(
                                    "continuation resumed at non-return slot {other:?}"
                                ))),
                            }
                        }
                    }
                }
                Slot::Val(v) => Err(VmError::runtime(format!("return through value slot {v:?}"))),
            }
        }
    }

    // ------------------------------------------------------------------
    // Continuation invocation (Figures 3 and 4, plus dynamic-wind)
    // ------------------------------------------------------------------

    /// Invokes a continuation value with `argc` arguments at `fp+1..`.
    pub(crate) fn invoke_kont(
        &mut self,
        kont: Option<KontId>,
        winders: Value,
        argc: usize,
    ) -> R<Option<Value>> {
        if self.winders == winders {
            // No winding: reinstate directly. One value is the
            // overwhelmingly common case (every `(k v)` invocation), so
            // keep it off the Rust allocator entirely.
            match argc {
                0 => return self.reinstate(kont, &[]),
                1 => {
                    let v = self.local(1);
                    return self.reinstate(kont, &[v]);
                }
                _ => {
                    let vals: Vec<Value> = (0..argc).map(|i| self.local(1 + i)).collect();
                    return self.reinstate(kont, &vals);
                }
            }
        }
        // Winding needed: stash the target and values in the current frame
        // and run winder thunks, one per step.
        let vals: Vec<Value> = (0..argc).map(|i| self.local(1 + i)).collect();
        self.ensure_or_raise((1 + argc).max(8), 1 + argc)?;
        let target = Value::obj(self.heap.alloc(Obj::Kont { kont, winders }));
        let vals_vec = Value::obj(self.heap.alloc(Obj::Vector(vals)));
        self.set_local(1, target);
        self.set_local(2, vals_vec);
        self.wind_step()
    }

    /// One step of winding toward the target continuation stashed in the
    /// current frame; recomputed from scratch each step so that winder
    /// thunks that themselves capture or invoke continuations behave
    /// consistently.
    pub(crate) fn wind_step(&mut self) -> R<Option<Value>> {
        let target_val = self.local(1);
        let Some(tr) = target_val.as_obj() else {
            return Err(VmError::runtime("wind target missing"));
        };
        let Some((kont, target_winders)) = self.heap.kont(tr) else {
            return Err(VmError::runtime("wind target is not a continuation"));
        };
        if self.winders == target_winders {
            let vals_val = self.local(2);
            let Some(vr) = vals_val.as_obj() else {
                return Err(VmError::runtime("wind values missing"));
            };
            let Some(vals) = self.heap.vector(vr) else {
                return Err(VmError::runtime("wind values missing"));
            };
            let vals = vals.to_vec();
            return self.reinstate(kont, &vals);
        }
        // Is the current winder list an extension of the common tail?
        let common = self.common_tail(self.winders, target_winders);
        if self.winders != common {
            // Leave the innermost current winder: pop, then run its after.
            let Some(wr) = self.winders.as_obj() else {
                return Err(VmError::runtime("winder list corrupt"));
            };
            let Some((winder, rest)) = self.heap.pair(wr) else {
                return Err(VmError::runtime("winder list corrupt"));
            };
            self.winders = rest;
            let after = self.cdr_of(winder)?;
            return self.call_winder(after, Resume::KontWind);
        }
        // Enter the outermost not-yet-entered target winder: run its
        // before, then (on resume) set the winder list to that node.
        let mut node = target_winders;
        let mut enter = target_winders;
        while node != common {
            enter = node;
            node = self.cdr_of(node)?;
        }
        let Some(er) = enter.as_obj() else {
            return Err(VmError::runtime("winder list corrupt"));
        };
        let Some((winder, _)) = self.heap.pair(er) else {
            return Err(VmError::runtime("winder list corrupt"));
        };
        let before = self.car_of(winder)?;
        self.call_winder(before, Resume::KontWindEnter)
    }

    /// Longest common tail of two winder lists (by node identity).
    fn common_tail(&self, a: Value, b: Value) -> Value {
        let mut b_nodes = Vec::new();
        let mut cur = b;
        while let Some(r) = cur.as_obj() {
            b_nodes.push(cur);
            match self.heap.pair(r) {
                Some((_, d)) => cur = d,
                None => break,
            }
        }
        b_nodes.push(Value::NIL);
        let mut cur = a;
        loop {
            if b_nodes.contains(&cur) {
                return cur;
            }
            match cur.as_obj().and_then(|r| self.heap.pair(r)) {
                Some((_, d)) => cur = d,
                None => return Value::NIL,
            }
        }
    }

    /// Calls a winder thunk in a subframe above the wind state.
    fn call_winder(&mut self, thunk: Value, kind: Resume) -> R<Option<Value>> {
        let fp = self.stack.fp();
        self.stack.set(fp + 3, Slot::Resume { kind, disp: 3 });
        self.stack.set_fp(fp + 3);
        self.calls += 1;
        self.apply(thunk, 0)
    }

    /// Dispatches a staged-builtin resume (frame pointer already popped to
    /// the staged frame).
    fn resume(&mut self, kind: Resume) -> R<Flow> {
        match kind {
            Resume::KontWind => {
                // An after thunk finished; keep winding.
                match self.wind_step()? {
                    Some(v) => Ok(Flow::Halt(v)),
                    None => Ok(Flow::Continue),
                }
            }
            Resume::KontWindEnter => {
                // A before thunk finished: enter the winder, then continue.
                let target_val = self.local(1);
                let Some(tr) = target_val.as_obj() else {
                    return Err(VmError::runtime("wind target missing"));
                };
                let Some((_, target_winders)) = self.heap.kont(tr) else {
                    return Err(VmError::runtime("wind target is not a continuation"));
                };
                let common = self.common_tail(self.winders, target_winders);
                let mut node = target_winders;
                let mut enter = target_winders;
                while node != common {
                    enter = node;
                    node = self.cdr_of(node)?;
                }
                self.winders = enter;
                match self.wind_step()? {
                    Some(v) => Ok(Flow::Halt(v)),
                    None => Ok(Flow::Continue),
                }
            }
            Resume::WindBody => self.dynamic_wind_body(),
            Resume::WindAfter => self.dynamic_wind_after(),
            Resume::WindDone => self.dynamic_wind_done(),
            Resume::CwvConsume => self.cwv_consume(),
        }
    }

    /// Delivers `vals` to continuation `kont` (Figure 3/4 reinstatement).
    fn reinstate(&mut self, kont: Option<KontId>, vals: &[Value]) -> R<Option<Value>> {
        match vals {
            [v] => {
                self.acc = *v;
                self.mv = None;
            }
            _ => {
                self.mv = Some(vals.to_vec());
                self.acc = Value::UNSPECIFIED;
            }
        }
        let Some(k) = kont else {
            // The empty continuation: the program completes with this value.
            self.stack.clear_to_empty();
            let v = self.acc;
            self.mv = None;
            return Ok(Some(v));
        };
        let r = self.stack.reinstate(k, &slot_disp).map_err(|e| match e {
            oneshot_core::ControlError::AlreadyShot => {
                VmError::condition("shot-twice", "attempt to invoke shot one-shot continuation")
            }
            other => VmError::runtime(other.to_string()),
        })?;
        match r.ret {
            Slot::Ret { code, pc, disp, closure } => {
                self.deliver_ret(code, pc, disp, closure)?;
                Ok(None)
            }
            Slot::Resume { kind, disp } => {
                self.stack.pop_frame(disp as usize);
                let flow = self.resume(kind)?;
                self.flow(flow)
            }
            other => {
                Err(VmError::runtime(format!("continuation with non-return ret slot {other:?}")))
            }
        }
    }

    // ------------------------------------------------------------------
    // Small helpers
    // ------------------------------------------------------------------

    pub(crate) fn car_of(&self, v: Value) -> R<Value> {
        match v.as_obj().and_then(|r| self.heap.pair(r)) {
            Some((a, _)) => Ok(a),
            None => Err(self.type_error("car", "pair", v)),
        }
    }

    pub(crate) fn cdr_of(&self, v: Value) -> R<Value> {
        match v.as_obj().and_then(|r| self.heap.pair(r)) {
            Some((_, d)) => Ok(d),
            None => Err(self.type_error("cdr", "pair", v)),
        }
    }

    pub(crate) fn vector_ref(&self, v: Value, idx: Value) -> R<Value> {
        let Some(r) = v.as_obj() else {
            return Err(self.type_error("vector-ref", "vector", v));
        };
        let Some(items) = self.heap.vector(r) else {
            return Err(self.type_error("vector-ref", "vector", v));
        };
        let Some(i) = idx.as_fixnum() else {
            return Err(self.type_error("vector-ref", "index", idx));
        };
        usize::try_from(i)
            .ok()
            .and_then(|i| items.get(i).copied())
            .ok_or_else(|| VmError::runtime(format!("vector-ref: index {i} out of range")))
    }

    pub(crate) fn vector_set(&mut self, v: Value, idx: Value, x: Value) -> R<()> {
        let Some(r) = v.as_obj() else {
            return Err(self.type_error("vector-set!", "vector", v));
        };
        let Some(i) = idx.as_fixnum() else {
            return Err(self.type_error("vector-set!", "index", idx));
        };
        let Some(items) = self.heap.vector_mut(r) else {
            return Err(self.type_error("vector-set!", "vector", v));
        };
        let slot = usize::try_from(i)
            .ok()
            .and_then(|i| items.get_mut(i))
            .ok_or_else(|| VmError::runtime(format!("vector-set!: index {i} out of range")))?;
        *slot = x;
        Ok(())
    }

    pub(crate) fn type_error(&self, who: &str, expected: &str, got: Value) -> VmError {
        VmError::condition(
            "type-error",
            format!(
                "{who}: expected {expected}, got {}",
                oneshot_runtime::write_value(&self.heap, &self.syms, got)
            ),
        )
    }
}

// ----------------------------------------------------------------------
// Numeric helpers (fixnum/flonum tower)
// ----------------------------------------------------------------------

pub(crate) fn num_add(a: Value, b: Value) -> Result<Value, VmError> {
    match (a.as_fixnum(), b.as_fixnum()) {
        // 50-bit payloads cannot overflow an i64 add; the range test on the
        // result is the whole overflow check.
        (Some(x), Some(y)) => Value::fixnum_checked(x + y)
            .ok_or_else(|| VmError::condition("error", "fixnum overflow in +")),
        _ => Ok(Value::flonum(as_f64(a, "+")? + as_f64(b, "+")?)),
    }
}

pub(crate) fn num_sub(a: Value, b: Value) -> Result<Value, VmError> {
    match (a.as_fixnum(), b.as_fixnum()) {
        (Some(x), Some(y)) => Value::fixnum_checked(x - y)
            .ok_or_else(|| VmError::condition("error", "fixnum overflow in -")),
        _ => Ok(Value::flonum(as_f64(a, "-")? - as_f64(b, "-")?)),
    }
}

pub(crate) fn num_mul(a: Value, b: Value) -> Result<Value, VmError> {
    match (a.as_fixnum(), b.as_fixnum()) {
        // A 50x50-bit product can overflow the i64, so the multiply itself
        // stays checked before the payload range test.
        (Some(x), Some(y)) => x
            .checked_mul(y)
            .and_then(Value::fixnum_checked)
            .ok_or_else(|| VmError::condition("error", "fixnum overflow in *")),
        _ => Ok(Value::flonum(as_f64(a, "*")? * as_f64(b, "*")?)),
    }
}

pub(crate) fn num_cmp(a: Value, b: Value, op: &str) -> Result<Value, VmError> {
    let r = match (a.as_fixnum(), b.as_fixnum()) {
        (Some(x), Some(y)) => compare(x.cmp(&y), op),
        _ => {
            let (x, y) = (as_f64(a, op)?, as_f64(b, op)?);
            // NaN compares false under every ordering, as in R4RS systems
            // with IEEE flonums.
            match x.partial_cmp(&y) {
                Some(ord) => compare(ord, op),
                None => false,
            }
        }
    };
    Ok(Value::boolean(r))
}

fn compare(ord: std::cmp::Ordering, op: &str) -> bool {
    use std::cmp::Ordering::{Equal, Greater, Less};
    match op {
        "<" => ord == Less,
        "<=" => ord != Greater,
        ">" => ord == Greater,
        ">=" => ord != Less,
        "=" => ord == Equal,
        _ => unreachable!("unknown comparison {op}"),
    }
}

pub(crate) fn as_f64(v: Value, who: &str) -> Result<f64, VmError> {
    match v.unpack() {
        Unpacked::Fixnum(n) => Ok(n as f64),
        Unpacked::Flonum(x) => Ok(x),
        _ => Err(VmError::condition("type-error", format!("{who}: expected number"))),
    }
}
