//! Garbage collection: coordinated marking across the heap and the
//! segmented control stack.
//!
//! Continuation heap objects reference stack records whose sealed slots
//! hold heap values; the current stack's live slots hold heap values; and
//! the current link chain may contain continuations with no heap object at
//! all (implicit overflow continuations). Marking therefore alternates
//! between the heap's gray worklist and a continuation worklist until both
//! drain.
//!
//! The mark phase is allocation-free in steady state: the heap scans
//! children in place ([`oneshot_runtime::Heap::mark_children`]), stack
//! slices are walked by reference (heap and stack are disjoint fields of
//! [`Vm`], so no values are copied out), and the continuation worklist
//! buffer is owned by the VM and reused across collections.

use oneshot_runtime::Value;

use crate::slot::Slot;
use crate::vm::Vm;

impl Vm {
    /// Runs a full collection. `live_above_fp` is the number of live slots
    /// at and above the frame pointer (1 + argument count at the Entry
    /// safe point).
    pub(crate) fn collect(&mut self, live_above_fp: usize) {
        let started = std::time::Instant::now();
        self.heap.begin_gc();
        self.stack.begin_gc();
        // Reuse the continuation worklist across collections (no steady-
        // state allocation).
        let mut konts = std::mem::take(&mut self.gc_kont_work);
        konts.clear();

        // Roots: registers, globals, winders, timer handler, pending
        // multiple values, constant pools.
        self.heap.mark_value(self.acc);
        self.heap.mark_value(self.closure);
        self.heap.mark_value(self.winders);
        self.heap.mark_value(self.handlers);
        self.heap.mark_value(self.timer_handler);
        if let Some(vals) = &self.mv {
            for &v in vals {
                self.heap.mark_value(v);
            }
        }
        for &v in &self.globals {
            self.heap.mark_value(v);
        }
        for code in &self.codes {
            for &v in &code.consts {
                self.heap.mark_value(v);
            }
        }
        // The live portion of the running stack.
        let lo = self.stack.base();
        let hi = (self.stack.fp() + live_above_fp).min(self.stack.end());
        self.mark_slot_range(lo, hi);
        // The current continuation chain (implicit continuations included).
        let mut cursor = self.stack.current_link();
        while let Some(k) = cursor {
            konts.push(k);
            cursor = self.stack.kont_link(k);
        }

        // Alternate the two worklists to a fixed point: heap marking
        // discovers continuation records (via `pop_kont`), and marking a
        // record's sealed slots discovers heap values.
        loop {
            let mut progressed = false;
            while let Some(r) = self.heap.pop_gray() {
                progressed = true;
                self.heap.mark_children(r);
            }
            while let Some(k) = self.heap.pop_kont() {
                konts.push(k);
            }
            while let Some(k) = konts.pop() {
                progressed = true;
                if !self.stack.kont_alive(k) {
                    // Already swept in a previous cycle's terms — cannot
                    // happen mid-mark; defensive.
                    continue;
                }
                if self.stack.mark_kont(k) {
                    if let Some(l) = self.stack.kont_link(k) {
                        konts.push(l);
                    }
                    // The saved return address lives in the continuation
                    // object itself (not in the sealed slice) and carries
                    // the caller's closure.
                    if let Some(v) = slot_heap_value(self.stack.kont(k).ret()) {
                        self.heap.mark_value(v);
                    }
                    for s in self.stack.kont_slice(k) {
                        if let Some(v) = slot_heap_value(s) {
                            self.heap.mark_value(v);
                        }
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        self.gc_kont_work = konts;

        self.heap.sweep();
        self.stack.sweep(false);

        let pause = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.gc_collections += 1;
        self.gc_pause_ns += pause;
        self.gc_max_pause_ns = self.gc_max_pause_ns.max(pause);
        self.gc_objects_freed += self.heap.stats().last_freed;
    }

    fn mark_slot_range(&mut self, lo: usize, hi: usize) {
        for i in lo..hi {
            if let Some(v) = slot_heap_value(self.stack.get(i)) {
                self.heap.mark_value(v);
            }
        }
    }

    /// Tells the VM writer where output goes (capture buffer + optional
    /// echo).
    pub(crate) fn emit_output(&mut self, s: &str) {
        self.out.push_str(s);
        if self.echo {
            print!("{s}");
        }
    }
}

/// The heap value a slot keeps alive, if any (frame values and the saved
/// closures inside return addresses).
fn slot_heap_value(s: &Slot) -> Option<Value> {
    match s {
        Slot::Val(v) => Some(*v),
        Slot::Ret { closure, .. } => Some(*closure),
        _ => None,
    }
}
