//! The virtual machine.

mod builtins;
mod exec;
mod gc;

use std::collections::HashMap;

use oneshot_compiler::{
    compile_program_with, CompiledProgram, CompilerOptions, FreeSrc, Op, Pipeline, MNEMONICS,
};
use oneshot_core::{
    Config, ControlProbe, CountingProbe, FaultClock, FaultPlan, KontId, Overflow, RingTraceProbe,
    SegStack, SegmentId, Stats,
};
use oneshot_runtime::{
    datum_to_value, display_value, write_value, Heap, HeapStats, Obj, Symbols, Value,
};
use oneshot_sexp::read_all;

use crate::error::VmError;
use crate::slot::Slot;

pub(crate) use builtins::BuiltinFn;

/// The Scheme prelude (list operations and other library procedures),
/// compiled through whichever pipeline the VM uses.
const PRELUDE: &str = include_str!("../../scheme/prelude.scm");
/// Hand-written CPS definitions of the control operators, loaded (through
/// the direct pipeline) only in CPS mode.
const CPS_PRELUDE: &str = include_str!("../../scheme/cps-prelude.scm");

/// Which control probe a VM installs on its segmented stack (a cloneable
/// *specification*; the probe itself lives inside the stack).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProbeSpec {
    /// No probe: control events cost nothing.
    #[default]
    Off,
    /// A [`CountingProbe`] aggregating control events into [`Stats`]
    /// totals, resettable mid-run (see [`Vm::probe_stats`]).
    Counting,
    /// A [`RingTraceProbe`] retaining the last `N` control events for
    /// [`Vm::trace_dump`].
    Ring(usize),
}

/// The probe a VM installs per its [`ProbeSpec`]. An enum rather than a
/// `Box<dyn ControlProbe>` so dispatch is a predictable branch (and the
/// common `Off` arm does nothing) instead of an indirect call.
#[derive(Debug, Clone)]
pub enum VmProbe {
    /// No instrumentation.
    Off,
    /// Counting control events.
    Counting(CountingProbe),
    /// Tracing the last N control events.
    Ring(RingTraceProbe),
}

impl From<ProbeSpec> for VmProbe {
    fn from(spec: ProbeSpec) -> Self {
        match spec {
            ProbeSpec::Off => VmProbe::Off,
            ProbeSpec::Counting => VmProbe::Counting(CountingProbe::new()),
            ProbeSpec::Ring(n) => VmProbe::Ring(RingTraceProbe::new(n)),
        }
    }
}

macro_rules! forward_probe {
    ($($method:ident($($arg:ident: $ty:ty),*);)*) => {
        impl ControlProbe for VmProbe {
            $(
                #[inline]
                fn $method(&mut self, $($arg: $ty),*) {
                    match self {
                        VmProbe::Off => {}
                        VmProbe::Counting(p) => p.$method($($arg),*),
                        VmProbe::Ring(p) => p.$method($($arg),*),
                    }
                }
            )*
        }
    };
}

forward_probe! {
    capture_multi(kont: KontId, seg: SegmentId, slots: usize);
    capture_one(kont: KontId, seg: SegmentId, slots: usize);
    capture_empty();
    seal(kont: KontId, seg: SegmentId, pad: usize);
    reinstate(kont: KontId, seg: SegmentId, one_shot: bool, slots_copied: usize);
    overflow(kont: Option<KontId>, from: SegmentId, to: SegmentId, slots_moved: usize);
    underflow(seg: SegmentId);
    promotion(kont: KontId, walked: bool);
    split(kont: KontId, bottom: KontId, slots: usize);
    cache_hit(seg: SegmentId);
    cache_return(seg: SegmentId);
    segment_alloc(seg: SegmentId, slots: usize);
}

/// VM construction options. Prefer building through [`Vm::builder`]; the
/// struct remains public for embedders that store configurations.
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Segmented-stack tuning (segment size, copy bound, policies, ...).
    pub stack: Config,
    /// Which compiler pipeline to run programs through.
    pub pipeline: Pipeline,
    /// Whether to load the Scheme prelude at construction.
    pub prelude: bool,
    /// Echo `display`/`write` output to stdout as well as the capture
    /// buffer.
    pub echo_output: bool,
    /// Which control probe to install on the stack.
    pub probe: ProbeSpec,
    /// Count executed instructions per opcode kind (see
    /// [`Vm::opcode_histogram`]). Adds a counter bump per instruction.
    pub opcode_histogram: bool,
    /// Compiler back-end options (superinstruction fusion, ...). Applies to
    /// every program this VM compiles, including the prelude.
    pub compiler: CompilerOptions,
    /// Heap collection threshold: allocations between GC safe-point
    /// checks. `None` keeps the heap's default adaptive trigger, which
    /// scales with the surviving live set; `Some(n)` pins it at `n`.
    pub gc_threshold: Option<usize>,
    /// Heap budget, in live objects. When a safe-point check finds the
    /// live set above the budget (after collecting), the VM raises a
    /// catchable `out-of-memory` condition instead of aborting. `None`
    /// disables the guard.
    pub heap_budget: Option<usize>,
    /// Deterministic fault-injection plan (chaos testing). `None` — the
    /// default — arms nothing and costs one disarmed-countdown branch per
    /// site.
    pub fault_plan: Option<FaultPlan>,
    /// Open-socket ceiling for the guest `%tcp-*` builtins. Exceeding it
    /// raises a catchable `io-error` condition instead of running the
    /// process into its fd limit.
    pub max_open_sockets: usize,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            stack: Config::default(),
            pipeline: Pipeline::Direct,
            prelude: true,
            echo_output: false,
            probe: ProbeSpec::Off,
            opcode_histogram: false,
            compiler: CompilerOptions::default(),
            gc_threshold: None,
            heap_budget: None,
            fault_plan: None,
            max_open_sockets: 16_384,
        }
    }
}

/// Fluent construction of a [`Vm`] — the primary construction path:
///
/// ```
/// use oneshot_vm::{ProbeSpec, Vm};
///
/// let mut vm = Vm::builder().probe(ProbeSpec::Counting).build();
/// vm.eval_str("(call/cc (lambda (k) (k 1)))").unwrap();
/// assert!(vm.probe_stats().is_some());
/// ```
#[derive(Debug, Clone, Default)]
pub struct VmBuilder {
    cfg: VmConfig,
}

impl VmBuilder {
    /// Starts from the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts from an explicit configuration (e.g. one stored by an
    /// embedder and shared across a worker pool).
    pub fn from_config(cfg: VmConfig) -> Self {
        VmBuilder { cfg }
    }

    /// Starts from an existing full configuration.
    pub fn config(mut self, cfg: VmConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the compiler pipeline.
    pub fn pipeline(mut self, pipeline: Pipeline) -> Self {
        self.cfg.pipeline = pipeline;
        self
    }

    /// Sets the segmented-stack configuration.
    pub fn stack(mut self, stack: Config) -> Self {
        self.cfg.stack = stack;
        self
    }

    /// Selects the control probe.
    pub fn probe(mut self, probe: ProbeSpec) -> Self {
        self.cfg.probe = probe;
        self
    }

    /// Enables per-opcode instruction counting.
    pub fn opcode_histogram(mut self, on: bool) -> Self {
        self.cfg.opcode_histogram = on;
        self
    }

    /// Whether to load the Scheme prelude (on by default).
    pub fn prelude(mut self, load: bool) -> Self {
        self.cfg.prelude = load;
        self
    }

    /// Whether the compiler fuses superinstructions (on by default).
    /// Turning it off yields the unfused instruction stream — same
    /// results, same control events, more dispatches (the E9 comparison).
    pub fn fuse(mut self, fuse: bool) -> Self {
        self.cfg.compiler.fuse = fuse;
        self
    }

    /// Echo `display`/`write` output to stdout as well as the capture
    /// buffer.
    pub fn echo_output(mut self, echo: bool) -> Self {
        self.cfg.echo_output = echo;
        self
    }

    /// Pins the heap's collection threshold (allocations between GC
    /// safe-point checks), disabling the adaptive trigger. Small values
    /// force frequent collections — used by the E10 experiment and GC
    /// stress tests.
    pub fn gc_threshold(mut self, objects: usize) -> Self {
        self.cfg.gc_threshold = Some(objects);
        self
    }

    /// Caps the heap at `objects` live objects; exceeding the budget at a
    /// safe point (after a collection fails to get back under it) raises a
    /// catchable `out-of-memory` condition.
    pub fn heap_budget(mut self, objects: usize) -> Self {
        self.cfg.heap_budget = Some(objects);
        self
    }

    /// Caps the segmented stack at `segments` live (non-cached) segments;
    /// growing past the ceiling raises a catchable `stack-overflow`
    /// condition. Zero disables the ceiling.
    pub fn max_stack_segments(mut self, segments: usize) -> Self {
        self.cfg.stack.max_segments = segments;
        self
    }

    /// Caps the guest socket table at `n` open sockets; exceeding the
    /// ceiling raises a catchable `io-error` condition.
    pub fn max_open_sockets(mut self, n: usize) -> Self {
        self.cfg.max_open_sockets = n;
        self
    }

    /// Installs a deterministic fault-injection plan (see
    /// [`FaultPlan`]); each armed countdown fires once and surfaces as
    /// the corresponding catchable condition.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.cfg.fault_plan = Some(plan);
        self
    }

    /// Builds the VM.
    ///
    /// # Panics
    ///
    /// Panics if the embedded prelude fails to compile — a build defect,
    /// covered by tests.
    pub fn build(self) -> Vm {
        Vm::from_config(self.cfg)
    }
}

/// A loaded (linked) code object: metadata plus a window into the VM's
/// flat instruction arena.
///
/// The instructions themselves live concatenated in [`Vm::flat`]; each
/// code object records only its base offset, so every control transfer is
/// an offset assignment — no per-transfer clone or refcount traffic.
#[derive(Debug)]
pub(crate) struct LoadedCode {
    /// Diagnostic name (error messages, backtraces).
    pub(crate) name: String,
    /// Maximum frame extent in slots (the `Entry` overflow check).
    pub(crate) frame_slots: u16,
    /// Offset of this code object's first instruction in [`Vm::flat`].
    pub(crate) base: u32,
    /// Instruction count (diagnostics; the code body ends in an
    /// unconditional transfer, so dispatch never runs off the end).
    #[allow(dead_code)]
    pub(crate) len: u32,
    /// Constants lowered to runtime values (GC roots).
    pub(crate) consts: Vec<Value>,
    /// Capture spec, pre-resolved at link time so closure creation reads
    /// it in place (no per-`Op::Closure` clone).
    pub(crate) free_spec: Box<[FreeSrc]>,
}

/// Aggregated statistics: instruction counts plus heap and stack counters.
#[derive(Debug, Clone, Copy, Default)]
#[non_exhaustive]
pub struct VmStats {
    /// Bytecode instructions executed.
    pub instructions: u64,
    /// Procedure calls performed (closures, builtins, continuations).
    pub calls: u64,
    /// Garbage collections run.
    pub gc_collections: u64,
    /// Total wall-clock time spent inside the collector, in nanoseconds.
    pub gc_pause_ns: u64,
    /// Longest single collection pause, in nanoseconds. A running maximum,
    /// not a counter: [`VmStats::delta_since`] carries the later value
    /// through unchanged.
    pub gc_max_pause_ns: u64,
    /// Heap objects freed by collections (GC volume).
    pub gc_objects_freed: u64,
    /// Scheme conditions raised (via `raise`/`raise-continuable` or a
    /// guarded fault such as `out-of-memory`).
    pub conditions_raised: u64,
    /// Injected faults consumed from a [`FaultPlan`] by this VM.
    pub faults_injected: u64,
    /// Size of one [`Value`] word in bytes. A gauge (always
    /// `size_of::<Value>()`, 8 with the NaN-boxed representation), recorded
    /// so metrics documents are self-describing across representation
    /// changes.
    pub value_word_bytes: u64,
    /// High-water mark of resident stack-segment memory, in bytes
    /// (resident slots x `size_of::<Slot>()`). A running maximum like
    /// `gc_max_pause_ns`: [`VmStats::delta_since`] carries the later value
    /// through unchanged.
    pub segment_bytes_highwater: u64,
    /// Heap statistics snapshot.
    pub heap: HeapStats,
    /// Segmented-stack statistics snapshot.
    pub stack: Stats,
}

impl VmStats {
    /// Counter-wise difference for measuring a region. (`gc_max_pause_ns`
    /// is a running maximum and is carried through, not subtracted.)
    #[must_use]
    pub fn delta_since(&self, earlier: &VmStats) -> VmStats {
        VmStats {
            instructions: self.instructions - earlier.instructions,
            calls: self.calls - earlier.calls,
            gc_collections: self.gc_collections - earlier.gc_collections,
            gc_pause_ns: self.gc_pause_ns - earlier.gc_pause_ns,
            gc_max_pause_ns: self.gc_max_pause_ns,
            gc_objects_freed: self.gc_objects_freed - earlier.gc_objects_freed,
            conditions_raised: self.conditions_raised - earlier.conditions_raised,
            faults_injected: self.faults_injected - earlier.faults_injected,
            value_word_bytes: self.value_word_bytes,
            segment_bytes_highwater: self.segment_bytes_highwater,
            heap: self.heap.delta_since(&earlier.heap),
            stack: self.stack.delta_since(&earlier.stack),
        }
    }
}

/// The virtual machine: heap, symbol table, segmented control stack,
/// loaded code, globals, and machine registers.
///
/// See the crate documentation for an example.
#[derive(Debug)]
pub struct Vm {
    pub(crate) heap: Heap,
    pub(crate) syms: Symbols,
    pub(crate) stack: SegStack<Slot, VmProbe>,
    pub(crate) codes: Vec<LoadedCode>,
    /// The flat instruction arena: every loaded code object's instructions,
    /// concatenated. `pc` is an absolute index into this vector; control
    /// transfers are pointer arithmetic on it.
    pub(crate) flat: Vec<Op>,
    /// Globals. Unbound cells hold [`Value::UNDEFINED`], so the
    /// `GlobalRef` bound-check is one load + one compare.
    pub(crate) globals: Vec<Value>,
    pub(crate) global_names: Vec<String>,
    pub(crate) global_ids: HashMap<String, u32>,
    pub(crate) builtins: Vec<BuiltinFn>,
    // --- registers ---
    pub(crate) acc: Value,
    pub(crate) code: u32,
    pub(crate) pc: usize,
    pub(crate) closure: Value,
    pub(crate) argc: usize,
    /// Pending multiple values (`values` with n != 1).
    pub(crate) mv: Option<Vec<Value>>,
    /// The `dynamic-wind` winder list (a Scheme list of `(before . after)`
    /// pairs).
    pub(crate) winders: Value,
    /// The exception-handler stack (a Scheme list, innermost handler
    /// first), maintained by the `%push-handler!`/`%pop-handler!` builtins
    /// the prelude's `with-exception-handler` is built on. A GC root.
    pub(crate) handlers: Value,
    /// Latched when the heap budget raised `out-of-memory`, so one breach
    /// raises exactly once; cleared when the live set drops back under the
    /// budget or on recovery.
    pub(crate) oom_raised: bool,
    /// Heap budget in live objects (see [`VmConfig::heap_budget`]).
    pub(crate) heap_budget: Option<usize>,
    /// Injected timer-fault countdown: fires at a safe point, forcing the
    /// engine timer to expire early.
    pub(crate) timer_fault: FaultClock,
    /// Whether any resource guard or fault plan was configured. Entry
    /// safe points branch on this one flag so an unguarded VM pays
    /// nothing for the fault machinery on its hot path.
    pub(crate) guards_active: bool,
    /// Scheme conditions raised.
    pub(crate) conditions_raised: u64,
    /// Injected faults consumed.
    pub(crate) faults_injected: u64,
    // --- engine timer (Dybvig–Hieb engines; drives Figure 5) ---
    pub(crate) timer_on: bool,
    pub(crate) fuel: u64,
    pub(crate) timer_handler: Value,
    // --- counters & output ---
    pub(crate) instructions: u64,
    pub(crate) calls: u64,
    /// Per-opcode execution counts, present when enabled in the config.
    pub(crate) opcode_hist: Option<Box<[u64; Op::KIND_COUNT]>>,
    // --- GC pause/volume tracking (see `gc.rs`) ---
    pub(crate) gc_collections: u64,
    pub(crate) gc_pause_ns: u64,
    pub(crate) gc_max_pause_ns: u64,
    pub(crate) gc_objects_freed: u64,
    /// Continuation mark worklist, reused across collections so the mark
    /// phase does not allocate in steady state.
    pub(crate) gc_kont_work: Vec<KontId>,
    pub(crate) out: String,
    pub(crate) echo: bool,
    /// Guest TCP sockets (see `crate::net`). Owned by the VM so a worker
    /// reset closes every socket of the jobs it killed.
    pub(crate) net: crate::net::NetTable,
    pipeline: Pipeline,
    compiler: CompilerOptions,
}

impl Vm {
    /// A VM with default configuration (direct pipeline, prelude loaded).
    ///
    /// # Panics
    ///
    /// Panics if the embedded prelude fails to compile — a build defect,
    /// covered by tests.
    pub fn new() -> Self {
        Self::from_config(VmConfig::default())
    }

    /// Starts fluent construction — the primary construction path.
    pub fn builder() -> VmBuilder {
        VmBuilder::new()
    }

    /// A VM with explicit configuration. Equivalent to
    /// `Vm::builder().config(cfg).build()`.
    ///
    /// # Panics
    ///
    /// Panics if the embedded prelude fails to compile.
    pub fn with_config(cfg: VmConfig) -> Self {
        Self::from_config(cfg)
    }

    fn from_config(cfg: VmConfig) -> Self {
        let mut vm = Vm {
            heap: Heap::new(),
            syms: Symbols::new(),
            stack: SegStack::with_probe(cfg.stack, Slot::Marker, VmProbe::from(cfg.probe)),
            codes: Vec::new(),
            flat: Vec::new(),
            globals: Vec::new(),
            global_names: Vec::new(),
            global_ids: HashMap::new(),
            builtins: Vec::new(),
            acc: Value::UNSPECIFIED,
            code: 0,
            pc: 0,
            closure: Value::UNSPECIFIED,
            argc: 0,
            mv: None,
            winders: Value::NIL,
            handlers: Value::NIL,
            oom_raised: false,
            heap_budget: None,
            timer_fault: FaultClock::disarmed(),
            guards_active: false,
            conditions_raised: 0,
            faults_injected: 0,
            timer_on: false,
            fuel: 0,
            timer_handler: Value::UNSPECIFIED,
            instructions: 0,
            calls: 0,
            opcode_hist: cfg.opcode_histogram.then(|| Box::new([0u64; Op::KIND_COUNT])),
            gc_collections: 0,
            gc_pause_ns: 0,
            gc_max_pause_ns: 0,
            gc_objects_freed: 0,
            gc_kont_work: Vec::new(),
            out: String::new(),
            echo: cfg.echo_output,
            net: crate::net::NetTable::new(cfg.max_open_sockets),
            pipeline: cfg.pipeline,
            compiler: cfg.compiler,
        };
        if let Some(t) = cfg.gc_threshold {
            vm.heap.set_gc_threshold(t);
        }
        vm.register_builtins();
        if cfg.pipeline == Pipeline::Cps {
            // Control operators get CPS definitions (direct pipeline: the
            // sources are hand-written CPS).
            vm.load_with(CPS_PRELUDE, Pipeline::Direct).expect("CPS prelude must load");
        }
        if cfg.prelude {
            vm.load_with(PRELUDE, cfg.pipeline).expect("prelude must load");
        }
        // Guards and fault clocks activate only after the prelude loads:
        // budgets and injected faults target user programs, and the
        // condition machinery they raise through is itself defined by the
        // prelude.
        vm.heap_budget = cfg.heap_budget;
        vm.guards_active = cfg.heap_budget.is_some() || cfg.fault_plan.is_some();
        if let Some(plan) = cfg.fault_plan {
            if let Some(n) = plan.alloc_fault_after {
                vm.heap.arm_alloc_fault(n);
            }
            if let Some(n) = plan.segment_fault_after {
                vm.stack.arm_segment_fault(n);
            }
            if let Some(n) = plan.timer_fault_after {
                vm.timer_fault = FaultClock::arm(n);
            }
        }
        vm
    }

    /// The pipeline programs are compiled through.
    pub fn pipeline(&self) -> Pipeline {
        self.pipeline
    }

    // ------------------------------------------------------------------
    // Loading and evaluation
    // ------------------------------------------------------------------

    /// Reads, compiles, links, and runs every form in `src`, returning the
    /// value of the last one.
    ///
    /// # Errors
    ///
    /// Read, compile, or runtime errors; the VM remains usable afterwards.
    pub fn eval_str(&mut self, src: &str) -> Result<Value, VmError> {
        self.load_with(src, self.pipeline)
    }

    fn load_with(&mut self, src: &str, pipeline: Pipeline) -> Result<Value, VmError> {
        let forms = read_all(src).map_err(|e| VmError::Read(e.to_string()))?;
        let prog = compile_program_with(&forms, pipeline, self.compiler)
            .map_err(|e| VmError::Compile(e.to_string()))?;
        let entry = self.link(&prog);
        self.run_thunk(entry)
    }

    /// Compiles `src` to a [`CompiledProgram`] without touching any VM.
    ///
    /// The result is plain owned data (`Send`), so a program can be compiled
    /// once on a submitting thread and later linked into any number of VMs
    /// with [`Vm::load_program`] — the executor's compile-once/run-anywhere
    /// contract. The program must be linked into a VM whose pipeline and
    /// prelude match `pipeline`.
    ///
    /// # Errors
    ///
    /// [`VmError::Read`] or [`VmError::Compile`].
    pub fn compile_str(
        src: &str,
        pipeline: Pipeline,
        options: CompilerOptions,
    ) -> Result<CompiledProgram, VmError> {
        let forms = read_all(src).map_err(|e| VmError::Read(e.to_string()))?;
        compile_program_with(&forms, pipeline, options).map_err(|e| VmError::Compile(e.to_string()))
    }

    /// Links a [`CompiledProgram`] into this VM and returns its toplevel
    /// thunk as a zero-argument closure (every entry code object begins
    /// with `Op::Entry`, so it is directly callable).
    ///
    /// The returned closure is a fresh heap object and is **not** GC-rooted;
    /// pass it to [`Vm::call`] or store it in a global before running
    /// anything else on this VM.
    pub fn load_program(&mut self, prog: &CompiledProgram) -> Value {
        let entry = self.link(prog);
        Value::obj(self.heap.alloc(Obj::Closure { code: entry, free: Box::new([]) }))
    }

    /// Clears per-job control state so the VM can be reused for the next
    /// job without rebuilding it (no re-interning of builtins or symbols).
    ///
    /// Resets the stack to an empty frame, drops pending winders, multiple
    /// values, and the engine timer, and discards captured output. Globals,
    /// linked code, the symbol table, probe counters, and cumulative
    /// statistics all survive — sealed continuation segments held by parked
    /// engines remain valid.
    pub fn reset_for_reuse(&mut self) {
        self.recover();
        self.out.clear();
    }

    /// The raw file descriptor behind guest socket `token`, or `None` if
    /// the token is stale. The reactor registers this fd with poll(2);
    /// the descriptor stays owned by the VM and is closed by
    /// `%tcp-close` or VM teardown, at which point a registered poll
    /// entry reports `POLLNVAL` and self-cleans.
    pub fn net_fd(&self, token: i64) -> Option<i64> {
        self.net.fd(token)
    }

    /// Number of guest sockets currently open in this VM.
    pub fn net_live(&self) -> usize {
        self.net.live()
    }

    /// Adopts an already-connected, already-nonblocking stream (a
    /// shared-listener accept) into this VM's socket table. The token
    /// joins the pending-connection queue; the next handler job running
    /// here picks it up with `(conn-take)`.
    ///
    /// # Errors
    ///
    /// The socket-table cap (`max_open_sockets`) as a catchable
    /// `io-error` — the embedder sheds the connection.
    pub fn adopt_stream(&mut self, stream: std::net::TcpStream) -> Result<i64, VmError> {
        self.net.adopt(stream)
    }

    /// Moves the raw fds of every guest socket closed since the last call
    /// into `out`. The embedder forwards these to its reactor so waiters
    /// on a closed socket are woken (edge-triggered `epoll` silently
    /// drops interest in closed fds; without this, such a waiter would
    /// wedge).
    pub fn drain_closed_fds(&mut self, out: &mut Vec<i32>) {
        self.net.drain_closed(out);
    }

    /// Links a compiled program into the VM, returning the loaded entry
    /// code index. Global references are resolved by name, code indices
    /// are rebased, and the instructions are appended to the flat arena.
    pub(crate) fn link(&mut self, prog: &CompiledProgram) -> u32 {
        let base = self.codes.len() as u32;
        // Map program-global indices to VM-global indices.
        let gmap: Vec<u32> = prog.globals.iter().map(|name| self.global_id(name)).collect();
        for code in &prog.codes {
            let ops_base = u32::try_from(self.flat.len()).expect("flat arena exceeds u32 range");
            self.flat.extend(code.ops.iter().map(|op| match *op {
                Op::GlobalRef(i) => Op::GlobalRef(gmap[i as usize]),
                Op::GlobalSet(i) => Op::GlobalSet(gmap[i as usize]),
                Op::GlobalDef(i) => Op::GlobalDef(gmap[i as usize]),
                Op::CallGlobal { g, disp, argc } => {
                    Op::CallGlobal { g: gmap[g as usize], disp, argc }
                }
                Op::TailCallGlobal { g, disp, argc } => {
                    Op::TailCallGlobal { g: gmap[g as usize], disp, argc }
                }
                Op::Closure(i) => Op::Closure(base + i),
                other => other,
            }));
            let consts: Vec<Value> = code
                .consts
                .iter()
                .map(|d| datum_to_value(&mut self.heap, &mut self.syms, d))
                .collect();
            // Resumed frames must never outrun the post-reinstatement
            // headroom guarantee.
            self.stack.raise_reserve(code.frame_slots as usize + 2);
            self.codes.push(LoadedCode {
                name: code.name.clone(),
                frame_slots: code.frame_slots,
                base: ops_base,
                len: code.ops.len() as u32,
                consts,
                free_spec: code.free_spec.clone().into_boxed_slice(),
            });
        }
        base + prog.entry
    }

    /// Runs a zero-argument code object from the VM rest state.
    pub(crate) fn run_thunk(&mut self, entry: u32) -> Result<Value, VmError> {
        debug_assert!(matches!(self.stack.get(self.stack.fp()), Slot::Marker));
        self.code = entry;
        self.pc = self.codes[entry as usize].base as usize;
        self.closure = Value::UNSPECIFIED;
        self.argc = 0;
        self.mv = None;
        let r = self.run();
        if r.is_err() {
            self.recover();
        }
        r
    }

    /// Calls a Scheme procedure from Rust with the given arguments.
    ///
    /// # Errors
    ///
    /// Runtime errors from the callee, or a type error if `f` is not
    /// applicable.
    pub fn call(&mut self, f: Value, args: &[Value]) -> Result<Value, VmError> {
        let r = (|| {
            self.ensure_or_raise(args.len() + 2, 1)?;
            let fp = self.stack.fp();
            for (i, a) in args.iter().enumerate() {
                self.stack.set(fp + 1 + i, Slot::Val(*a));
            }
            self.acc = f;
            self.mv = None;
            if let Some(v) = self.apply(f, args.len())? {
                return Ok(v);
            }
            self.run()
        })();
        // `run` intercepts `Condition` internally, but the pre-run `apply`
        // (or the initial ensure) can surface one directly; classify it as
        // uncaught while the stack is still intact for a backtrace.
        let r = r.map_err(|e| match e {
            VmError::Condition { kind, message } => {
                self.conditions_raised += 1;
                VmError::Uncaught {
                    condition: message,
                    kind: Some(kind.to_string()),
                    backtrace: self.backtrace(),
                }
            }
            other => other,
        });
        if r.is_err() {
            self.recover();
        }
        r
    }

    /// Grows the stack for `need` slots, turning a resource-ceiling refusal
    /// (segment budget or injected segment fault) into a catchable
    /// `stack-overflow` condition instead of growing past the limit.
    pub(crate) fn ensure_or_raise(&mut self, need: usize, live: usize) -> Result<(), VmError> {
        match self.stack.ensure(need, live, &crate::slot::slot_disp) {
            Overflow::Ceiling => self.ceiling_to_condition(need, live),
            _ => Ok(()),
        }
    }

    /// The [`Overflow::Ceiling`] slow path, kept out of line so the per-call
    /// `ensure_or_raise` stays small enough to inline.
    #[cold]
    #[inline(never)]
    fn ceiling_to_condition(&mut self, need: usize, live: usize) -> Result<(), VmError> {
        if self.stack.in_overflow_grace() {
            // Only an injected segment fault reports `Ceiling` with the
            // grace period already armed (a real ceiling leaves arming to
            // the embedder); no reclamation would help, so raise at once.
            self.faults_injected += 1;
            return Err(VmError::condition("stack-overflow", "stack segment ceiling exceeded"));
        }
        // A real ceiling can be pinned by dead segments awaiting a
        // sweep (e.g. the chain bypassed by a continuation escape);
        // collect once and retry before declaring overflow. The
        // `live` slots above fp are GC roots, so this is safe at
        // every ensure site.
        self.collect(live);
        match self.stack.ensure(need, live, &crate::slot::slot_disp) {
            Overflow::Ceiling => {
                self.stack.enter_overflow_grace();
                Err(VmError::condition("stack-overflow", "stack segment ceiling exceeded"))
            }
            _ => Ok(()),
        }
    }

    /// Resets control state after an error so the VM can keep evaluating.
    fn recover(&mut self) {
        self.stack.clear_to_empty();
        self.winders = Value::NIL;
        self.handlers = Value::NIL;
        self.oom_raised = false;
        self.mv = None;
        self.timer_on = false;
        self.closure = Value::UNSPECIFIED;
        // The accumulator is a GC root; a stale value from before the
        // error would pin an arbitrary object graph across the recovery.
        self.acc = Value::UNSPECIFIED;
    }

    // ------------------------------------------------------------------
    // Globals and symbols
    // ------------------------------------------------------------------

    pub(crate) fn global_id(&mut self, name: &str) -> u32 {
        if let Some(&i) = self.global_ids.get(name) {
            return i;
        }
        let i = self.globals.len() as u32;
        self.globals.push(Value::UNDEFINED);
        self.global_names.push(name.to_string());
        self.global_ids.insert(name.to_string(), i);
        i
    }

    /// Reads a global variable by name, if defined.
    pub fn global(&self, name: &str) -> Option<Value> {
        let &i = self.global_ids.get(name)?;
        let v = self.globals[i as usize];
        (v != Value::UNDEFINED).then_some(v)
    }

    /// Defines (or redefines) a global variable.
    pub fn set_global(&mut self, name: &str, v: Value) {
        let i = self.global_id(name) as usize;
        self.globals[i] = v;
    }

    /// Interns a symbol, returning it as a value.
    pub fn intern(&mut self, name: &str) -> Value {
        Value::sym(self.syms.intern(name))
    }

    // ------------------------------------------------------------------
    // Inspection
    // ------------------------------------------------------------------

    /// Formats a value with `display` conventions.
    pub fn display_value(&self, v: &Value) -> String {
        display_value(&self.heap, &self.syms, *v)
    }

    /// Formats a value with `write` conventions.
    pub fn write_value(&self, v: &Value) -> String {
        write_value(&self.heap, &self.syms, *v)
    }

    /// Takes the captured `display`/`write` output.
    pub fn take_output(&mut self) -> String {
        std::mem::take(&mut self.out)
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> VmStats {
        VmStats {
            instructions: self.instructions,
            calls: self.calls,
            gc_collections: self.gc_collections,
            gc_pause_ns: self.gc_pause_ns,
            gc_max_pause_ns: self.gc_max_pause_ns,
            gc_objects_freed: self.gc_objects_freed,
            conditions_raised: self.conditions_raised,
            faults_injected: self.faults_injected,
            value_word_bytes: std::mem::size_of::<Value>() as u64,
            segment_bytes_highwater: (self.stack.resident_slots_highwater()
                * std::mem::size_of::<Slot>()) as u64,
            heap: self.heap.stats(),
            stack: *self.stack.stats(),
        }
    }

    /// The control probe installed on the stack.
    pub fn probe(&self) -> &VmProbe {
        self.stack.probe()
    }

    /// Control-event totals observed by the probe, if a
    /// [`ProbeSpec::Counting`] probe is installed.
    ///
    /// Unlike [`Vm::stats`] (whose `stack` field counts from VM
    /// construction), these totals cover only events since construction or
    /// the last [`Vm::probe_reset`] — so an embedder can measure a region.
    pub fn probe_stats(&self) -> Option<Stats> {
        match self.stack.probe() {
            VmProbe::Counting(p) => Some(p.stats()),
            _ => None,
        }
    }

    /// Clears the probe's accumulated state (counters or trace ring).
    pub fn probe_reset(&mut self) {
        match self.stack.probe_mut() {
            VmProbe::Off => {}
            VmProbe::Counting(p) => p.reset(),
            VmProbe::Ring(p) => p.clear(),
        }
    }

    /// Renders the ring-trace buffer symbolically, one control event per
    /// line, oldest first — empty if no [`ProbeSpec::Ring`] probe is
    /// installed. A dropped-event note is appended when the ring has
    /// evicted older events.
    pub fn trace_dump(&self) -> String {
        let VmProbe::Ring(p) = self.stack.probe() else {
            return String::new();
        };
        let mut out = String::new();
        for ev in p.events() {
            out.push_str(&ev.to_string());
            out.push('\n');
        }
        if p.dropped() > 0 {
            out.push_str(&format!("({} earlier events dropped)\n", p.dropped()));
        }
        out
    }

    /// Per-opcode execution counts as `(mnemonic, count)` pairs, sorted by
    /// descending count with zero-count opcodes omitted. `None` unless
    /// opcode counting was enabled at construction
    /// ([`VmBuilder::opcode_histogram`]).
    pub fn opcode_histogram(&self) -> Option<Vec<(&'static str, u64)>> {
        let hist = self.opcode_hist.as_ref()?;
        let mut rows: Vec<(&'static str, u64)> = hist
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (MNEMONICS[i], n))
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        Some(rows)
    }

    /// Read access to the heap (for embedders inspecting values and live
    /// counts — e.g. the E10 leak check).
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Direct access to the heap (for embedders building values).
    pub fn heap_mut(&mut self) -> &mut Heap {
        &mut self.heap
    }

    /// Forces a full collection from outside the interpreter loop.
    ///
    /// Safe only between evaluations: the machine is quiescent, so no
    /// slot at or above the frame pointer is live (marking up to the
    /// segment's end would resurrect stale dead slots). The E10 leak
    /// check calls this twice around a workload and compares
    /// [`Heap::len`] — any growth is an unreclaimed object.
    pub fn collect_now(&mut self) {
        self.collect(0);
    }

    /// Total slot capacity of all live stack segments — the resident
    /// stack-memory measure behind the fragmentation experiment (§3.4).
    pub fn stack_resident_slots(&self) -> usize {
        self.stack.resident_slots()
    }

    /// Walks the control stack and returns the procedure names of every
    /// pending frame, innermost first — across segment boundaries and
    /// through the continuation chain. This is the §3.1 claim in action:
    /// the displacement carried by each return address (the paper's
    /// frame-size word) is what lets tools walk the stack.
    pub fn backtrace(&self) -> Vec<String> {
        let mut names = Vec::new();
        let code_name = |code: u32| self.codes[code as usize].name.clone();
        names.push(code_name(self.code));
        // The current record: from the active frame down to the base.
        let mut pos = self.stack.fp();
        let base = self.stack.base();
        loop {
            if names.len() > 4096 {
                return names; // runaway guard
            }
            match self.stack.get(pos) {
                Slot::Ret { code, disp, .. } => {
                    names.push(code_name(*code));
                    let d = *disp as usize;
                    if d == 0 || pos < base + d {
                        break;
                    }
                    pos -= d;
                }
                Slot::Resume { kind, disp } => {
                    names.push(format!("#<{kind:?}>"));
                    let d = *disp as usize;
                    if d == 0 || pos < base + d {
                        break;
                    }
                    pos -= d;
                }
                _ => break,
            }
        }
        // The continuation chain below.
        let mut cursor = self.stack.current_link();
        while let Some(k) = cursor {
            if names.len() > 4096 {
                break;
            }
            let kont = self.stack.kont(k);
            if kont.is_shot() {
                names.push("#<shot>".to_string());
                break;
            }
            let slice = self.stack.kont_slice(k);
            let mut pos = kont.occupied(); // one past the top frame region
            let mut ret = *kont.ret();
            loop {
                match &ret {
                    Slot::Ret { code, disp, .. } => {
                        names.push(code_name(*code));
                        let d = *disp as usize;
                        if d == 0 || pos < d {
                            break;
                        }
                        pos -= d;
                    }
                    Slot::Resume { kind, disp } => {
                        names.push(format!("#<{kind:?}>"));
                        let d = *disp as usize;
                        if d == 0 || pos < d {
                            break;
                        }
                        pos -= d;
                    }
                    _ => break,
                }
                if names.len() > 4096 {
                    break;
                }
                match slice.get(pos) {
                    Some(s) => ret = *s,
                    None => break,
                }
            }
            cursor = kont.link();
        }
        names
    }

    /// Number of live stack segments (cached ones included).
    pub fn stack_segment_count(&self) -> usize {
        self.stack.segment_count()
    }

    /// Allocates a pair.
    pub fn cons(&mut self, car: Value, cdr: Value) -> Value {
        Value::obj(self.heap.alloc(Obj::Pair(car, cdr)))
    }

    /// Builds a Scheme list from a slice.
    pub fn list(&mut self, items: &[Value]) -> Value {
        let mut v = Value::NIL;
        for &item in items.iter().rev() {
            v = self.cons(item, v);
        }
        v
    }

    /// Reads a pair's car and cdr, if `v` is a pair.
    pub fn pair(&self, v: Value) -> Option<(Value, Value)> {
        v.as_obj().and_then(|r| self.heap.pair(r))
    }
}

impl Default for Vm {
    fn default() -> Self {
        Vm::new()
    }
}
