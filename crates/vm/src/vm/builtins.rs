//! Builtin procedures.
//!
//! Registration order follows `oneshot_compiler::builtins::BUILTIN_NAMES`
//! (the canonical list shared with the CPS converter); construction panics
//! if an implementation is missing, so the two cannot drift.

use oneshot_runtime::{values_equal, Obj, ObjKind, ObjRef, Unpacked, Value};

use crate::error::VmError;
use crate::slot::{Resume, Slot};
use crate::vm::Vm;

type R<T> = Result<T, VmError>;

/// What the VM should do after a builtin runs.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Flow {
    /// `acc` (and possibly pending multiple values) is the result; return
    /// through the frame.
    Return,
    /// Tail-apply `f` to `argc` arguments already placed at `fp+1..`.
    Tail {
        /// The procedure.
        f: Value,
        /// Argument count.
        argc: usize,
    },
    /// Control was already transferred (registers set).
    Continue,
    /// The program completed with this value.
    Halt(Value),
}

/// A builtin: runs with the frame `[ret, args...]` at `fp`, `argc`
/// arguments.
pub(crate) type BuiltinFn = fn(&mut Vm, usize) -> R<Flow>;

fn err(msg: impl Into<String>) -> VmError {
    VmError::runtime(msg.into())
}

impl Vm {
    pub(crate) fn register_builtins(&mut self) {
        for (i, name) in oneshot_compiler::builtins::BUILTIN_NAMES.iter().enumerate() {
            let f = lookup(name).unwrap_or_else(|| panic!("builtin {name} has no implementation"));
            self.builtins.push(f);
            let idx = u16::try_from(i).expect("too many builtins");
            self.set_global(name, Value::builtin(idx));
        }
    }

    #[inline]
    pub(crate) fn arg(&self, i: usize) -> Value {
        self.local(1 + i)
    }

    fn args(&self, argc: usize) -> Vec<Value> {
        (0..argc).map(|i| self.arg(i)).collect()
    }

    /// Maps an inner `apply` outcome to builtin flow.
    fn transfer(&mut self, f: Value, argc: usize) -> R<Flow> {
        self.calls += 1;
        match self.apply(f, argc)? {
            Some(v) => Ok(Flow::Halt(v)),
            None => Ok(Flow::Continue),
        }
    }

    /// Collects a proper list into a vector.
    pub(crate) fn list_to_vec(&self, mut v: Value, who: &str) -> R<Vec<Value>> {
        let mut out = Vec::new();
        loop {
            if v == Value::NIL {
                return Ok(out);
            }
            match v.as_obj().and_then(|r| self.heap.pair(r)) {
                Some((a, d)) => {
                    out.push(a);
                    v = d;
                }
                None => return Err(err(format!("{who}: improper list"))),
            }
        }
    }

    fn string_of(&self, v: Value, who: &str) -> R<Vec<char>> {
        match v.as_obj().and_then(|r| self.heap.string(r)) {
            Some(s) => Ok(s.to_vec()),
            None => Err(self.type_error(who, "string", v)),
        }
    }

    fn alloc_string(&mut self, s: Vec<char>) -> Value {
        Value::obj(self.heap.alloc(Obj::Str(s)))
    }

    // --- staged builtins (resumed from exec.rs) ---

    /// `dynamic-wind` stage 2: `before` returned; push the winder and call
    /// the thunk.
    pub(crate) fn dynamic_wind_body(&mut self) -> R<Flow> {
        let before = self.arg(0);
        let thunk = self.arg(1);
        let after = self.arg(2);
        let winder = Value::obj(self.heap.alloc(Obj::Pair(before, after)));
        self.winders = Value::obj(self.heap.alloc(Obj::Pair(winder, self.winders)));
        let fp = self.stack.fp();
        self.stack.set(fp + 4, Slot::Resume { kind: Resume::WindAfter, disp: 4 });
        self.stack.set_fp(fp + 4);
        self.transfer(thunk, 0)
    }

    /// `dynamic-wind` stage 3: the thunk returned; stash its value(s), pop
    /// the winder, call `after`.
    pub(crate) fn dynamic_wind_after(&mut self) -> R<Flow> {
        let (stash, was_mv) = match self.mv.take() {
            Some(vals) => (Value::obj(self.heap.alloc(Obj::Vector(vals))), true),
            None => (self.acc, false),
        };
        self.set_local(1, stash);
        self.set_local(2, Value::boolean(was_mv));
        self.winders = self.cdr_of(self.winders)?;
        let after = self.local(3);
        let fp = self.stack.fp();
        self.stack.set(fp + 4, Slot::Resume { kind: Resume::WindDone, disp: 4 });
        self.stack.set_fp(fp + 4);
        self.transfer(after, 0)
    }

    /// `dynamic-wind` stage 4: `after` returned; restore the thunk's
    /// value(s).
    pub(crate) fn dynamic_wind_done(&mut self) -> R<Flow> {
        let stash = self.local(1);
        let was_mv = self.local(2);
        if was_mv == Value::TRUE {
            let Some(r) = stash.as_obj() else { return Err(err("wind stash corrupt")) };
            let Some(vals) = self.heap.vector(r) else { return Err(err("wind stash corrupt")) };
            self.mv = Some(vals.to_vec());
            self.acc = Value::UNSPECIFIED;
        } else {
            self.acc = stash;
            self.mv = None;
        }
        Ok(Flow::Return)
    }

    /// `call-with-values` stage 2: the producer returned; apply the
    /// consumer.
    pub(crate) fn cwv_consume(&mut self) -> R<Flow> {
        let vals = match self.mv.take() {
            Some(vals) => vals,
            None => vec![self.acc],
        };
        let consumer = self.local(2);
        self.ensure_or_raise(vals.len() + 3, 3)?;
        for (i, v) in vals.iter().enumerate() {
            self.set_local(1 + i, *v);
        }
        Ok(Flow::Tail { f: consumer, argc: vals.len() })
    }
}

fn check(argc: usize, expected: usize, who: &str) -> R<()> {
    if argc == expected {
        Ok(())
    } else {
        Err(err(format!("{who}: expected {expected} arguments, got {argc}")))
    }
}

fn at_least(argc: usize, min: usize, who: &str) -> R<()> {
    if argc >= min {
        Ok(())
    } else {
        Err(err(format!("{who}: expected at least {min} arguments, got {argc}")))
    }
}

fn fix(v: Value, who: &str) -> R<i64> {
    v.as_fixnum().ok_or_else(|| err(format!("{who}: expected integer")))
}

/// A fixnum result that must fit the 50-bit payload; raises the catchable
/// overflow condition otherwise (the word has no bignum fallback).
fn fixnum_or_overflow(n: i64, who: &str) -> R<Value> {
    Value::fixnum_checked(n)
        .ok_or_else(|| VmError::condition("error", format!("fixnum overflow in {who}")))
}

fn ufix(v: Value, who: &str) -> R<usize> {
    usize::try_from(fix(v, who)?).map_err(|_| err(format!("{who}: expected nonnegative integer")))
}

fn net_port(v: Value, who: &str) -> R<u16> {
    let n = fix(v, who)?;
    u16::try_from(n).map_err(|_| err(format!("{who}: expected a port in 0..=65535")))
}

fn chr(v: Value, who: &str) -> R<char> {
    v.as_char().ok_or_else(|| err(format!("{who}: expected character")))
}

/// Chained numeric comparison over all arguments.
fn cmp_chain(vm: &mut Vm, argc: usize, op: &'static str) -> R<Flow> {
    at_least(argc, 2, op)?;
    for i in 0..argc - 1 {
        let r = crate::vm::exec::num_cmp(vm.arg(i), vm.arg(i + 1), op)?;
        if r == Value::FALSE {
            vm.acc = Value::FALSE;
            return Ok(Flow::Return);
        }
    }
    vm.acc = Value::TRUE;
    Ok(Flow::Return)
}

fn char_cmp_chain(
    vm: &mut Vm,
    argc: usize,
    who: &'static str,
    f: fn(char, char) -> bool,
) -> R<Flow> {
    at_least(argc, 2, who)?;
    for i in 0..argc - 1 {
        let (a, b) = (chr(vm.arg(i), who)?, chr(vm.arg(i + 1), who)?);
        if !f(a, b) {
            vm.acc = Value::FALSE;
            return Ok(Flow::Return);
        }
    }
    vm.acc = Value::TRUE;
    Ok(Flow::Return)
}

fn string_cmp_chain(
    vm: &mut Vm,
    argc: usize,
    who: &'static str,
    f: fn(&[char], &[char]) -> bool,
) -> R<Flow> {
    at_least(argc, 2, who)?;
    for i in 0..argc - 1 {
        let a = vm.string_of(vm.arg(i), who)?;
        let b = vm.string_of(vm.arg(i + 1), who)?;
        if !f(&a, &b) {
            vm.acc = Value::FALSE;
            return Ok(Flow::Return);
        }
    }
    vm.acc = Value::TRUE;
    Ok(Flow::Return)
}

/// Simple value-returning builtins share this wrapper shape.
macro_rules! ret {
    ($vm:expr, $v:expr) => {{
        $vm.acc = $v;
        Ok(Flow::Return)
    }};
}

/// A unary predicate builtin.
macro_rules! pred {
    ($who:literal, $f:expr) => {
        |vm: &mut Vm, argc: usize| -> R<Flow> {
            check(argc, 1, $who)?;
            let v = vm.arg(0);
            let p: fn(&Vm, Value) -> bool = $f;
            vm.acc = Value::boolean(p(vm, v));
            Ok(Flow::Return)
        }
    };
}

#[allow(clippy::too_many_lines)]
fn lookup(name: &str) -> Option<BuiltinFn> {
    Some(match name {
        // --- numbers ---
        "+" => |vm, argc| {
            let mut acc = Value::fixnum(0);
            for i in 0..argc {
                acc = crate::vm::exec::num_add(acc, vm.arg(i))?;
            }
            ret!(vm, acc)
        },
        "-" => |vm, argc| {
            at_least(argc, 1, "-")?;
            if argc == 1 {
                return ret!(vm, crate::vm::exec::num_sub(Value::fixnum(0), vm.arg(0))?);
            }
            let mut acc = vm.arg(0);
            for i in 1..argc {
                acc = crate::vm::exec::num_sub(acc, vm.arg(i))?;
            }
            ret!(vm, acc)
        },
        "*" => |vm, argc| {
            let mut acc = Value::fixnum(1);
            for i in 0..argc {
                acc = crate::vm::exec::num_mul(acc, vm.arg(i))?;
            }
            ret!(vm, acc)
        },
        "/" => |vm, argc| {
            at_least(argc, 1, "/")?;
            let mut acc = if argc == 1 { Value::fixnum(1) } else { vm.arg(0) };
            let rest = if argc == 1 { 0..1 } else { 1..argc };
            for i in rest {
                let d = vm.arg(i);
                acc = match (acc.as_fixnum(), d.as_fixnum()) {
                    (Some(_), Some(0)) => return Err(err("/: division by zero")),
                    (Some(a), Some(b)) if a % b == 0 => Value::fixnum(a / b),
                    _ => {
                        let x = crate::vm::exec::as_f64(acc, "/")?;
                        let y = crate::vm::exec::as_f64(d, "/")?;
                        Value::flonum(x / y)
                    }
                };
            }
            ret!(vm, acc)
        },
        "quotient" => |vm, argc| {
            check(argc, 2, "quotient")?;
            let (a, b) = (fix(vm.arg(0), "quotient")?, fix(vm.arg(1), "quotient")?);
            if b == 0 {
                return Err(err("quotient: division by zero"));
            }
            ret!(vm, fixnum_or_overflow(a.wrapping_div(b), "quotient")?)
        },
        "remainder" => |vm, argc| {
            check(argc, 2, "remainder")?;
            let (a, b) = (fix(vm.arg(0), "remainder")?, fix(vm.arg(1), "remainder")?);
            if b == 0 {
                return Err(err("remainder: division by zero"));
            }
            ret!(vm, Value::fixnum(a.wrapping_rem(b)))
        },
        "modulo" => |vm, argc| {
            check(argc, 2, "modulo")?;
            let (a, b) = (fix(vm.arg(0), "modulo")?, fix(vm.arg(1), "modulo")?);
            if b == 0 {
                return Err(err("modulo: division by zero"));
            }
            let r = a % b;
            let m = if r != 0 && (r < 0) != (b < 0) { r + b } else { r };
            ret!(vm, Value::fixnum(m))
        },
        "abs" => |vm, argc| {
            check(argc, 1, "abs")?;
            match vm.arg(0).unpack() {
                Unpacked::Fixnum(n) => ret!(vm, fixnum_or_overflow(n.abs(), "abs")?),
                Unpacked::Flonum(x) => ret!(vm, Value::flonum(x.abs())),
                _ => Err(vm.type_error("abs", "number", vm.arg(0))),
            }
        },
        "min" => |vm, argc| {
            at_least(argc, 1, "min")?;
            let mut best = vm.arg(0);
            for i in 1..argc {
                let v = vm.arg(i);
                if crate::vm::exec::num_cmp(v, best, "<")? == Value::TRUE {
                    best = v;
                }
            }
            ret!(vm, best)
        },
        "max" => |vm, argc| {
            at_least(argc, 1, "max")?;
            let mut best = vm.arg(0);
            for i in 1..argc {
                let v = vm.arg(i);
                if crate::vm::exec::num_cmp(v, best, ">")? == Value::TRUE {
                    best = v;
                }
            }
            ret!(vm, best)
        },
        "gcd" => |vm, argc| {
            let mut g: i64 = 0;
            for i in 0..argc {
                g = gcd64(g, fix(vm.arg(i), "gcd")?.abs());
            }
            ret!(vm, fixnum_or_overflow(g, "gcd")?)
        },
        "lcm" => |vm, argc| {
            let mut l: i64 = 1;
            for i in 0..argc {
                let n = fix(vm.arg(i), "lcm")?.abs();
                if n == 0 {
                    return ret!(vm, Value::fixnum(0));
                }
                l = (l / gcd64(l, n))
                    .checked_mul(n)
                    .ok_or_else(|| VmError::condition("error", "fixnum overflow in lcm"))?;
            }
            ret!(vm, fixnum_or_overflow(l, "lcm")?)
        },
        "expt" => |vm, argc| {
            check(argc, 2, "expt")?;
            match (vm.arg(0).as_fixnum(), vm.arg(1).as_fixnum()) {
                (Some(a), Some(b)) if b >= 0 => {
                    let e = u32::try_from(b).map_err(|_| err("expt: exponent too large"))?;
                    let r = a.checked_pow(e).ok_or_else(|| err("fixnum overflow in expt"))?;
                    ret!(vm, fixnum_or_overflow(r, "expt")?)
                }
                _ => {
                    let x = crate::vm::exec::as_f64(vm.arg(0), "expt")?;
                    let y = crate::vm::exec::as_f64(vm.arg(1), "expt")?;
                    ret!(vm, Value::flonum(x.powf(y)))
                }
            }
        },
        "sqrt" => |vm, argc| {
            check(argc, 1, "sqrt")?;
            match vm.arg(0).as_fixnum() {
                Some(n) if n >= 0 => {
                    let r = (n as f64).sqrt();
                    let ri = r.round() as i64;
                    if ri.checked_mul(ri) == Some(n) {
                        ret!(vm, Value::fixnum(ri))
                    } else {
                        ret!(vm, Value::flonum(r))
                    }
                }
                _ => {
                    ret!(vm, Value::flonum(crate::vm::exec::as_f64(vm.arg(0), "sqrt")?.sqrt()))
                }
            }
        },
        "floor" => |vm, argc| round_like(vm, argc, "floor", f64::floor),
        "ceiling" => |vm, argc| round_like(vm, argc, "ceiling", f64::ceil),
        "truncate" => |vm, argc| round_like(vm, argc, "truncate", f64::trunc),
        "round" => |vm, argc| round_like(vm, argc, "round", round_even),
        "exact->inexact" => |vm, argc| {
            check(argc, 1, "exact->inexact")?;
            ret!(vm, Value::flonum(crate::vm::exec::as_f64(vm.arg(0), "exact->inexact")?))
        },
        "inexact->exact" => |vm, argc| {
            check(argc, 1, "inexact->exact")?;
            match vm.arg(0).unpack() {
                Unpacked::Fixnum(n) => ret!(vm, Value::fixnum(n)),
                Unpacked::Flonum(x) if x.fract() == 0.0 && Value::fits_fixnum(x as i64) => {
                    ret!(vm, Value::fixnum(x as i64))
                }
                _ => Err(err("inexact->exact: not representable as an exact integer")),
            }
        },
        "number?" => pred!("number?", |_, v| v.is_fixnum() || v.is_flonum()),
        "integer?" => pred!("integer?", |_, v| {
            v.is_fixnum() || matches!(v.as_flonum(), Some(x) if x.fract() == 0.0)
        }),
        "exact?" => pred!("exact?", |_, v| v.is_fixnum()),
        "inexact?" => pred!("inexact?", |_, v| v.is_flonum()),
        "zero?" => |vm, argc| {
            check(argc, 1, "zero?")?;
            match vm.arg(0).unpack() {
                Unpacked::Fixnum(n) => ret!(vm, Value::boolean(n == 0)),
                Unpacked::Flonum(x) => ret!(vm, Value::boolean(x == 0.0)),
                _ => Err(vm.type_error("zero?", "number", vm.arg(0))),
            }
        },
        "positive?" => |vm, argc| {
            check(argc, 1, "positive?")?;
            ret!(vm, crate::vm::exec::num_cmp(vm.arg(0), Value::fixnum(0), ">")?)
        },
        "negative?" => |vm, argc| {
            check(argc, 1, "negative?")?;
            ret!(vm, crate::vm::exec::num_cmp(vm.arg(0), Value::fixnum(0), "<")?)
        },
        "odd?" => |vm, argc| {
            check(argc, 1, "odd?")?;
            ret!(vm, Value::boolean(fix(vm.arg(0), "odd?")? % 2 != 0))
        },
        "even?" => |vm, argc| {
            check(argc, 1, "even?")?;
            ret!(vm, Value::boolean(fix(vm.arg(0), "even?")? % 2 == 0))
        },
        "=" => |vm, argc| cmp_chain(vm, argc, "="),
        "<" => |vm, argc| cmp_chain(vm, argc, "<"),
        ">" => |vm, argc| cmp_chain(vm, argc, ">"),
        "<=" => |vm, argc| cmp_chain(vm, argc, "<="),
        ">=" => |vm, argc| cmp_chain(vm, argc, ">="),
        "number->string" => |vm, argc| {
            at_least(argc, 1, "number->string")?;
            let radix = if argc >= 2 { fix(vm.arg(1), "number->string")? } else { 10 };
            let s = match (vm.arg(0).unpack(), radix) {
                (Unpacked::Fixnum(n), 10) => n.to_string(),
                (Unpacked::Fixnum(n), 2) => format!("{n:b}"),
                (Unpacked::Fixnum(n), 8) => format!("{n:o}"),
                (Unpacked::Fixnum(n), 16) => format!("{n:x}"),
                (Unpacked::Flonum(x), 10) => {
                    if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                        format!("{x:.1}")
                    } else {
                        format!("{x}")
                    }
                }
                _ => return Err(err("number->string: unsupported radix")),
            };
            let v = vm.alloc_string(s.chars().collect());
            ret!(vm, v)
        },
        "string->number" => |vm, argc| {
            at_least(argc, 1, "string->number")?;
            let s: String = vm.string_of(vm.arg(0), "string->number")?.into_iter().collect();
            let radix = if argc >= 2 { fix(vm.arg(1), "string->number")? } else { 10 };
            // Integers that parse but exceed the 50-bit fixnum payload
            // degrade to inexact flonums (there is no bignum layer).
            let v = if radix == 10 {
                if let Some(v) = s.parse::<i64>().ok().and_then(Value::fixnum_checked) {
                    v
                } else if let Ok(x) = s.parse::<f64>() {
                    Value::flonum(x)
                } else {
                    Value::FALSE
                }
            } else {
                match i64::from_str_radix(&s, radix as u32) {
                    Ok(n) => Value::fixnum_checked(n).unwrap_or_else(|| Value::flonum(n as f64)),
                    Err(_) => Value::FALSE,
                }
            };
            ret!(vm, v)
        },
        // --- predicates ---
        "eq?" | "eqv?" => |vm, argc| {
            check(argc, 2, "eq?")?;
            ret!(vm, Value::boolean(vm.arg(0) == vm.arg(1)))
        },
        "equal?" => |vm, argc| {
            check(argc, 2, "equal?")?;
            ret!(vm, Value::boolean(values_equal(&vm.heap, vm.arg(0), vm.arg(1))))
        },
        "not" => pred!("not", |_, v| !v.is_true()),
        "boolean?" => pred!("boolean?", |_, v| v.is_boolean()),
        "procedure?" => pred!("procedure?", |_, v| {
            v.is_builtin()
                || matches!(v.as_obj().map(ObjRef::kind), Some(ObjKind::Closure | ObjKind::Kont))
        }),
        "symbol?" => pred!("symbol?", |_, v| v.is_sym()),
        "string?" => {
            pred!("string?", |_, v| v.is_obj_kind(ObjKind::Str))
        }
        "char?" => pred!("char?", |_, v| v.is_char()),
        "vector?" => {
            pred!("vector?", |_, v| v.is_obj_kind(ObjKind::Vector))
        }
        "pair?" => {
            pred!("pair?", |_, v| v.is_pair())
        }
        "null?" => pred!("null?", |_, v| v == Value::NIL),
        // --- pairs and lists ---
        "cons" => |vm, argc| {
            check(argc, 2, "cons")?;
            let v = Value::obj(vm.heap.alloc_pair(vm.arg(0), vm.arg(1)));
            ret!(vm, v)
        },
        "car" => |vm, argc| {
            check(argc, 1, "car")?;
            ret!(vm, vm.car_of(vm.arg(0))?)
        },
        "cdr" => |vm, argc| {
            check(argc, 1, "cdr")?;
            ret!(vm, vm.cdr_of(vm.arg(0))?)
        },
        "set-car!" => |vm, argc| {
            check(argc, 2, "set-car!")?;
            let (p, v) = (vm.arg(0), vm.arg(1));
            let Some(r) = p.as_obj() else { return Err(vm.type_error("set-car!", "pair", p)) };
            let Some(pair) = vm.heap.pair_mut(r) else {
                return Err(vm.type_error("set-car!", "pair", p));
            };
            pair.0 = v;
            ret!(vm, Value::UNSPECIFIED)
        },
        "set-cdr!" => |vm, argc| {
            check(argc, 2, "set-cdr!")?;
            let (p, v) = (vm.arg(0), vm.arg(1));
            let Some(r) = p.as_obj() else { return Err(vm.type_error("set-cdr!", "pair", p)) };
            let Some(pair) = vm.heap.pair_mut(r) else {
                return Err(vm.type_error("set-cdr!", "pair", p));
            };
            pair.1 = v;
            ret!(vm, Value::UNSPECIFIED)
        },
        "list" => |vm, argc| {
            let items = vm.args(argc);
            let v = vm.list(&items);
            ret!(vm, v)
        },
        "length" => |vm, argc| {
            check(argc, 1, "length")?;
            let n = vm.list_to_vec(vm.arg(0), "length")?.len();
            ret!(vm, Value::fixnum(n as i64))
        },
        "append" => |vm, argc| {
            if argc == 0 {
                return ret!(vm, Value::NIL);
            }
            let mut out = vm.arg(argc - 1);
            for i in (0..argc - 1).rev() {
                let items = vm.list_to_vec(vm.arg(i), "append")?;
                for &item in items.iter().rev() {
                    out = vm.cons(item, out);
                }
            }
            ret!(vm, out)
        },
        "reverse" => |vm, argc| {
            check(argc, 1, "reverse")?;
            let items = vm.list_to_vec(vm.arg(0), "reverse")?;
            let mut out = Value::NIL;
            for &item in &items {
                out = vm.cons(item, out);
            }
            ret!(vm, out)
        },
        "list-tail" => |vm, argc| {
            check(argc, 2, "list-tail")?;
            let mut v = vm.arg(0);
            for _ in 0..ufix(vm.arg(1), "list-tail")? {
                v = vm.cdr_of(v)?;
            }
            ret!(vm, v)
        },
        "list-ref" => |vm, argc| {
            check(argc, 2, "list-ref")?;
            let mut v = vm.arg(0);
            for _ in 0..ufix(vm.arg(1), "list-ref")? {
                v = vm.cdr_of(v)?;
            }
            ret!(vm, vm.car_of(v)?)
        },
        "memq" | "memv" => |vm, argc| {
            check(argc, 2, "memv")?;
            let x = vm.arg(0);
            let mut v = vm.arg(1);
            loop {
                if v == Value::NIL {
                    return ret!(vm, Value::FALSE);
                }
                match v.as_obj().and_then(|r| vm.heap.pair(r)) {
                    Some((a, d)) => {
                        if a == x {
                            return ret!(vm, v);
                        }
                        v = d;
                    }
                    None => return Err(err("memv: improper list")),
                }
            }
        },
        "assq" | "assv" => |vm, argc| {
            check(argc, 2, "assv")?;
            let x = vm.arg(0);
            let mut v = vm.arg(1);
            loop {
                if v == Value::NIL {
                    return ret!(vm, Value::FALSE);
                }
                match v.as_obj().and_then(|r| vm.heap.pair(r)) {
                    Some((entry, d)) => {
                        let key = vm.car_of(entry)?;
                        if key == x {
                            return ret!(vm, entry);
                        }
                        v = d;
                    }
                    None => return Err(err("assv: improper list")),
                }
            }
        },
        "list?" => |vm, argc| {
            check(argc, 1, "list?")?;
            // Floyd cycle detection.
            let mut slow = vm.arg(0);
            let mut fast = vm.arg(0);
            loop {
                if fast == Value::NIL {
                    return ret!(vm, Value::TRUE);
                }
                if !fast.is_pair() {
                    return ret!(vm, Value::FALSE);
                }
                fast = vm.cdr_of(fast)?;
                if fast == Value::NIL {
                    return ret!(vm, Value::TRUE);
                }
                if !fast.is_pair() {
                    return ret!(vm, Value::FALSE);
                }
                fast = vm.cdr_of(fast)?;
                slow = vm.cdr_of(slow)?;
                if fast == slow {
                    return ret!(vm, Value::FALSE);
                }
            }
        },
        // --- symbols ---
        "symbol->string" => |vm, argc| {
            check(argc, 1, "symbol->string")?;
            let Some(s) = vm.arg(0).as_sym() else {
                return Err(vm.type_error("symbol->string", "symbol", vm.arg(0)));
            };
            let chars: Vec<char> = vm.syms.name(s).chars().collect();
            let v = vm.alloc_string(chars);
            ret!(vm, v)
        },
        "string->symbol" => |vm, argc| {
            check(argc, 1, "string->symbol")?;
            let s: String = vm.string_of(vm.arg(0), "string->symbol")?.into_iter().collect();
            let v = vm.intern(&s);
            ret!(vm, v)
        },
        "gensym" => |vm, argc| {
            let prefix = if argc >= 1 {
                vm.string_of(vm.arg(0), "gensym")?.into_iter().collect()
            } else {
                String::from("g")
            };
            let id = vm.syms.gensym(&prefix);
            ret!(vm, Value::sym(id))
        },
        // --- characters ---
        "char->integer" => |vm, argc| {
            check(argc, 1, "char->integer")?;
            ret!(vm, Value::fixnum(i64::from(u32::from(chr(vm.arg(0), "char->integer")?))))
        },
        "integer->char" => |vm, argc| {
            check(argc, 1, "integer->char")?;
            let n = fix(vm.arg(0), "integer->char")?;
            let c = u32::try_from(n)
                .ok()
                .and_then(char::from_u32)
                .ok_or_else(|| err("integer->char: not a character code"))?;
            ret!(vm, Value::character(c))
        },
        "char=?" => |vm, argc| char_cmp_chain(vm, argc, "char=?", |a, b| a == b),
        "char<?" => |vm, argc| char_cmp_chain(vm, argc, "char<?", |a, b| a < b),
        "char>?" => |vm, argc| char_cmp_chain(vm, argc, "char>?", |a, b| a > b),
        "char<=?" => |vm, argc| char_cmp_chain(vm, argc, "char<=?", |a, b| a <= b),
        "char>=?" => |vm, argc| char_cmp_chain(vm, argc, "char>=?", |a, b| a >= b),
        "char-upcase" => |vm, argc| {
            check(argc, 1, "char-upcase")?;
            ret!(vm, Value::character(chr(vm.arg(0), "char-upcase")?.to_ascii_uppercase()))
        },
        "char-downcase" => |vm, argc| {
            check(argc, 1, "char-downcase")?;
            ret!(vm, Value::character(chr(vm.arg(0), "char-downcase")?.to_ascii_lowercase()))
        },
        "char-alphabetic?" => |vm, argc| {
            check(argc, 1, "char-alphabetic?")?;
            ret!(vm, Value::boolean(chr(vm.arg(0), "char-alphabetic?")?.is_alphabetic()))
        },
        "char-numeric?" => |vm, argc| {
            check(argc, 1, "char-numeric?")?;
            ret!(vm, Value::boolean(chr(vm.arg(0), "char-numeric?")?.is_numeric()))
        },
        "char-whitespace?" => |vm, argc| {
            check(argc, 1, "char-whitespace?")?;
            ret!(vm, Value::boolean(chr(vm.arg(0), "char-whitespace?")?.is_whitespace()))
        },
        "char-upper-case?" => |vm, argc| {
            check(argc, 1, "char-upper-case?")?;
            ret!(vm, Value::boolean(chr(vm.arg(0), "char-upper-case?")?.is_uppercase()))
        },
        "char-lower-case?" => |vm, argc| {
            check(argc, 1, "char-lower-case?")?;
            ret!(vm, Value::boolean(chr(vm.arg(0), "char-lower-case?")?.is_lowercase()))
        },
        // --- strings ---
        "make-string" => |vm, argc| {
            at_least(argc, 1, "make-string")?;
            let n = ufix(vm.arg(0), "make-string")?;
            let c = if argc >= 2 { chr(vm.arg(1), "make-string")? } else { ' ' };
            let v = vm.alloc_string(vec![c; n]);
            ret!(vm, v)
        },
        "string" => |vm, argc| {
            let mut s = Vec::with_capacity(argc);
            for i in 0..argc {
                s.push(chr(vm.arg(i), "string")?);
            }
            let v = vm.alloc_string(s);
            ret!(vm, v)
        },
        "string-length" => |vm, argc| {
            check(argc, 1, "string-length")?;
            let n = vm.string_of(vm.arg(0), "string-length")?.len();
            ret!(vm, Value::fixnum(n as i64))
        },
        "string-ref" => |vm, argc| {
            check(argc, 2, "string-ref")?;
            let s = vm.string_of(vm.arg(0), "string-ref")?;
            let i = ufix(vm.arg(1), "string-ref")?;
            let c = s.get(i).ok_or_else(|| err("string-ref: index out of range"))?;
            ret!(vm, Value::character(*c))
        },
        "string-set!" => |vm, argc| {
            check(argc, 3, "string-set!")?;
            let i = ufix(vm.arg(1), "string-set!")?;
            let c = chr(vm.arg(2), "string-set!")?;
            let Some(r) = vm.arg(0).as_obj() else {
                return Err(vm.type_error("string-set!", "string", vm.arg(0)));
            };
            let Some(s) = vm.heap.string_mut(r) else {
                return Err(err("string-set!: expected string"));
            };
            let slot = s.get_mut(i).ok_or_else(|| err("string-set!: index out of range"))?;
            *slot = c;
            ret!(vm, Value::UNSPECIFIED)
        },
        "string=?" => |vm, argc| string_cmp_chain(vm, argc, "string=?", |a, b| a == b),
        "string<?" => |vm, argc| string_cmp_chain(vm, argc, "string<?", |a, b| a < b),
        "string>?" => |vm, argc| string_cmp_chain(vm, argc, "string>?", |a, b| a > b),
        "string<=?" => |vm, argc| string_cmp_chain(vm, argc, "string<=?", |a, b| a <= b),
        "string>=?" => |vm, argc| string_cmp_chain(vm, argc, "string>=?", |a, b| a >= b),
        "substring" => |vm, argc| {
            check(argc, 3, "substring")?;
            let s = vm.string_of(vm.arg(0), "substring")?;
            let start = ufix(vm.arg(1), "substring")?;
            let end = ufix(vm.arg(2), "substring")?;
            if start > end || end > s.len() {
                return Err(err("substring: index out of range"));
            }
            let v = vm.alloc_string(s[start..end].to_vec());
            ret!(vm, v)
        },
        "string-append" => |vm, argc| {
            let mut out = Vec::new();
            for i in 0..argc {
                out.extend(vm.string_of(vm.arg(i), "string-append")?);
            }
            let v = vm.alloc_string(out);
            ret!(vm, v)
        },
        "string->list" => |vm, argc| {
            check(argc, 1, "string->list")?;
            let items: Vec<Value> = vm
                .string_of(vm.arg(0), "string->list")?
                .into_iter()
                .map(Value::character)
                .collect();
            let v = vm.list(&items);
            ret!(vm, v)
        },
        "list->string" => |vm, argc| {
            check(argc, 1, "list->string")?;
            let items = vm.list_to_vec(vm.arg(0), "list->string")?;
            let mut s = Vec::with_capacity(items.len());
            for item in items {
                s.push(chr(item, "list->string")?);
            }
            let v = vm.alloc_string(s);
            ret!(vm, v)
        },
        "string-copy" => |vm, argc| {
            check(argc, 1, "string-copy")?;
            let s = vm.string_of(vm.arg(0), "string-copy")?;
            let v = vm.alloc_string(s);
            ret!(vm, v)
        },
        "string-fill!" => |vm, argc| {
            check(argc, 2, "string-fill!")?;
            let c = chr(vm.arg(1), "string-fill!")?;
            let Some(r) = vm.arg(0).as_obj() else {
                return Err(vm.type_error("string-fill!", "string", vm.arg(0)));
            };
            let Some(s) = vm.heap.string_mut(r) else {
                return Err(err("string-fill!: expected string"));
            };
            s.fill(c);
            ret!(vm, Value::UNSPECIFIED)
        },
        // --- vectors ---
        "make-vector" => |vm, argc| {
            at_least(argc, 1, "make-vector")?;
            let n = ufix(vm.arg(0), "make-vector")?;
            let fill = if argc >= 2 { vm.arg(1) } else { Value::UNSPECIFIED };
            let v = Value::obj(vm.heap.alloc(Obj::Vector(vec![fill; n])));
            ret!(vm, v)
        },
        "vector" => |vm, argc| {
            let items = vm.args(argc);
            let v = Value::obj(vm.heap.alloc(Obj::Vector(items)));
            ret!(vm, v)
        },
        "vector-length" => |vm, argc| {
            check(argc, 1, "vector-length")?;
            let Some(r) = vm.arg(0).as_obj() else {
                return Err(vm.type_error("vector-length", "vector", vm.arg(0)));
            };
            let Some(items) = vm.heap.vector(r) else {
                return Err(vm.type_error("vector-length", "vector", vm.arg(0)));
            };
            ret!(vm, Value::fixnum(items.len() as i64))
        },
        "vector-ref" => |vm, argc| {
            check(argc, 2, "vector-ref")?;
            ret!(vm, vm.vector_ref(vm.arg(0), vm.arg(1))?)
        },
        "vector-set!" => |vm, argc| {
            check(argc, 3, "vector-set!")?;
            let (v, i, x) = (vm.arg(0), vm.arg(1), vm.arg(2));
            vm.vector_set(v, i, x)?;
            ret!(vm, Value::UNSPECIFIED)
        },
        "vector->list" => |vm, argc| {
            check(argc, 1, "vector->list")?;
            let Some(r) = vm.arg(0).as_obj() else {
                return Err(vm.type_error("vector->list", "vector", vm.arg(0)));
            };
            let Some(items) = vm.heap.vector(r) else {
                return Err(vm.type_error("vector->list", "vector", vm.arg(0)));
            };
            let items = items.to_vec();
            let v = vm.list(&items);
            ret!(vm, v)
        },
        "list->vector" => |vm, argc| {
            check(argc, 1, "list->vector")?;
            let items = vm.list_to_vec(vm.arg(0), "list->vector")?;
            let v = Value::obj(vm.heap.alloc(Obj::Vector(items)));
            ret!(vm, v)
        },
        "vector-fill!" => |vm, argc| {
            check(argc, 2, "vector-fill!")?;
            let x = vm.arg(1);
            let Some(r) = vm.arg(0).as_obj() else {
                return Err(vm.type_error("vector-fill!", "vector", vm.arg(0)));
            };
            let Some(items) = vm.heap.vector_mut(r) else {
                return Err(err("vector-fill!: expected vector"));
            };
            items.fill(x);
            ret!(vm, Value::UNSPECIFIED)
        },
        // --- control ---
        "apply" => |vm, argc| {
            at_least(argc, 2, "apply")?;
            let f = vm.arg(0);
            let mut full: Vec<Value> = (1..argc - 1).map(|i| vm.arg(i)).collect();
            full.extend(vm.list_to_vec(vm.arg(argc - 1), "apply")?);
            vm.ensure_or_raise(full.len() + 3, 1 + argc)?;
            for (i, v) in full.iter().enumerate() {
                vm.set_local(1 + i, *v);
            }
            Ok(Flow::Tail { f, argc: full.len() })
        },
        "call/cc" | "call-with-current-continuation" => |vm, argc| {
            check(argc, 1, "call/cc")?;
            let p = vm.arg(0);
            let kont = vm.stack.capture_multi();
            let kv = Value::obj(vm.heap.alloc(Obj::Kont { kont, winders: vm.winders }));
            vm.set_local(1, kv);
            Ok(Flow::Tail { f: p, argc: 1 })
        },
        "call/1cc" => |vm, argc| {
            check(argc, 1, "call/1cc")?;
            let p = vm.arg(0);
            let kont = vm.stack.capture_one(4);
            let kv = Value::obj(vm.heap.alloc(Obj::Kont { kont, winders: vm.winders }));
            vm.set_local(1, kv);
            Ok(Flow::Tail { f: p, argc: 1 })
        },
        "dynamic-wind" => |vm, argc| {
            check(argc, 3, "dynamic-wind")?;
            vm.ensure_or_raise(8, 1 + argc)?;
            let before = vm.arg(0);
            let fp = vm.stack.fp();
            vm.stack.set(fp + 4, Slot::Resume { kind: Resume::WindBody, disp: 4 });
            vm.stack.set_fp(fp + 4);
            vm.transfer(before, 0)
        },
        "values" => |vm, argc| {
            if argc == 1 {
                vm.acc = vm.arg(0);
                vm.mv = None;
            } else {
                vm.mv = Some(vm.args(argc));
                vm.acc = Value::UNSPECIFIED;
            }
            Ok(Flow::Return)
        },
        "call-with-values" => |vm, argc| {
            check(argc, 2, "call-with-values")?;
            vm.ensure_or_raise(8, 1 + argc)?;
            let producer = vm.arg(0);
            let fp = vm.stack.fp();
            vm.stack.set(fp + 3, Slot::Resume { kind: Resume::CwvConsume, disp: 3 });
            vm.stack.set_fp(fp + 3);
            vm.transfer(producer, 0)
        },
        // --- i/o ---
        "display" => |vm, argc| {
            at_least(argc, 1, "display")?;
            let s = vm.display_value(&vm.arg(0));
            vm.emit_output(&s);
            ret!(vm, Value::UNSPECIFIED)
        },
        "write" => |vm, argc| {
            at_least(argc, 1, "write")?;
            let s = vm.write_value(&vm.arg(0));
            vm.emit_output(&s);
            ret!(vm, Value::UNSPECIFIED)
        },
        "newline" => |vm, _argc| {
            vm.emit_output("\n");
            ret!(vm, Value::UNSPECIFIED)
        },
        "write-char" => |vm, argc| {
            at_least(argc, 1, "write-char")?;
            let c = chr(vm.arg(0), "write-char")?;
            vm.emit_output(&c.to_string());
            ret!(vm, Value::UNSPECIFIED)
        },
        // --- system ---
        "error" => |vm, argc| {
            let mut msg = String::new();
            for i in 0..argc {
                if i > 0 {
                    msg.push(' ');
                }
                let v = vm.arg(i);
                if v.is_obj_kind(ObjKind::Str) {
                    msg.push_str(&vm.display_value(&v));
                } else {
                    msg.push_str(&vm.write_value(&v));
                }
            }
            // `(error ...)` is a raised condition of kind `error`: the
            // dispatch loop re-raises it through the prelude so guard
            // handlers can catch it; uncaught, it prints exactly as the old
            // Runtime variant did.
            Err(VmError::Condition { kind: "error", message: msg })
        },
        "void" => |vm, _argc| ret!(vm, Value::UNSPECIFIED),
        "gc" => |vm, argc| {
            vm.collect(1 + argc);
            ret!(vm, Value::UNSPECIFIED)
        },
        "set-timer!" => |vm, argc| {
            check(argc, 1, "set-timer!")?;
            let n = fix(vm.arg(0), "set-timer!")?;
            let old = if vm.timer_on { vm.fuel as i64 } else { 0 };
            if n > 0 {
                vm.timer_on = true;
                vm.fuel = n as u64;
            } else {
                vm.timer_on = false;
                vm.fuel = 0;
            }
            ret!(vm, Value::fixnum(old))
        },
        "timer-interrupt-handler!" => |vm, argc| {
            check(argc, 1, "timer-interrupt-handler!")?;
            let old = vm.timer_handler;
            vm.timer_handler = vm.arg(0);
            ret!(vm, old)
        },
        "eval" => |vm, argc| {
            // (eval datum) — compiles through the VM's pipeline and
            // tail-calls the resulting toplevel thunk. A second
            // (environment) argument is accepted and ignored: there is one
            // global environment.
            at_least(argc, 1, "eval")?;
            let datum = oneshot_runtime::value_to_datum(&vm.heap, &vm.syms, vm.arg(0))
                .map_err(VmError::Runtime)?;
            let prog = oneshot_compiler::compile_program(&[datum], vm.pipeline())
                .map_err(|e| err(e.to_string()))?;
            let entry = vm.link(&prog);
            let thunk = Value::obj(vm.heap.alloc(Obj::Closure { code: entry, free: Box::new([]) }));
            Ok(Flow::Tail { f: thunk, argc: 0 })
        },
        "backtrace" => |vm, _argc| {
            let names = vm.backtrace();
            let items: Vec<Value> = names
                .iter()
                .map(|n| {
                    let id = vm.syms.intern(n);
                    Value::sym(id)
                })
                .collect();
            let v = vm.list(&items);
            ret!(vm, v)
        },
        "vm-stats" => |vm, _argc| {
            let stats = vm.stats();
            let entries: Vec<(&str, i64)> = vec![
                ("instructions", stats.instructions as i64),
                ("calls", stats.calls as i64),
                ("heap-words", stats.heap.words_allocated as i64),
                ("heap-objects", stats.heap.objects_allocated as i64),
                ("closures", stats.heap.closures_allocated as i64),
                ("collections", stats.heap.collections as i64),
                ("segments", stats.stack.segments_allocated as i64),
                ("segment-cache-hits", stats.stack.cache_hits as i64),
                ("slots-copied", stats.stack.slots_copied as i64),
                ("captures-multi", stats.stack.captures_multi as i64),
                ("captures-one", stats.stack.captures_one as i64),
                ("reinstates-multi", stats.stack.reinstates_multi as i64),
                ("reinstates-one", stats.stack.reinstates_one as i64),
                ("promotions", stats.stack.promotions as i64),
                ("overflows", stats.stack.overflows as i64),
                ("underflows", stats.stack.underflows as i64),
                ("shots", stats.stack.shots as i64),
                ("gc-collections", stats.gc_collections as i64),
                ("gc-pause-ns", stats.gc_pause_ns as i64),
                ("gc-max-pause-ns", stats.gc_max_pause_ns as i64),
                ("gc-objects-freed", stats.gc_objects_freed as i64),
                ("resident-slots", vm.stack.resident_slots() as i64),
                ("live-segments", vm.stack.segment_count() as i64),
                ("live-uncached-segments", vm.stack.live_segment_count() as i64),
                ("conditions-raised", stats.conditions_raised as i64),
                ("faults-injected", stats.faults_injected as i64),
            ];
            let mut alist = Value::NIL;
            for (name, n) in entries.into_iter().rev() {
                let key = vm.intern(name);
                let pair = vm.cons(key, Value::fixnum(n));
                alist = vm.cons(pair, alist);
            }
            ret!(vm, alist)
        },
        "sleep-ms" => |vm, argc| {
            // (sleep-ms n): block the calling OS thread for n milliseconds.
            // Models a request handler waiting on I/O; the executor's mixed
            // workload uses it so multi-worker throughput scaling is
            // observable even on one core.
            check(argc, 1, "sleep-ms")?;
            let n = fix(vm.arg(0), "sleep-ms")?;
            if n < 0 {
                return Err(err("sleep-ms: expected a non-negative duration"));
            }
            std::thread::sleep(std::time::Duration::from_millis(n as u64));
            ret!(vm, Value::UNSPECIFIED)
        },
        "debug-panic!" => |vm, argc| {
            // (debug-panic! msg): abort via a Rust panic instead of a Scheme
            // error. Fault-injection hook for the executor's catch_unwind
            // isolation tests; never use it for ordinary error signalling.
            let msg =
                if argc > 0 { vm.display_value(&vm.arg(0)) } else { "debug-panic!".to_string() };
            panic!("debug-panic!: {msg}");
        },
        "now-us" => |vm, _argc| {
            // (now-us): microseconds since the first call in this process.
            // A monotonic clock for guest-side latency measurement; the
            // origin is arbitrary, only differences are meaningful.
            use std::sync::OnceLock;
            use std::time::Instant;
            static EPOCH: OnceLock<Instant> = OnceLock::new();
            let t0 = *EPOCH.get_or_init(Instant::now);
            let us = i64::try_from(t0.elapsed().as_micros()).unwrap_or(i64::MAX);
            ret!(vm, Value::fixnum(us))
        },
        // --- nonblocking loopback TCP ---
        // All `%tcp-*` builtins return immediately; #f means would-block.
        // The retry loops that suspend the running green thread live in
        // the threads crate's io.scm. I/O failures raise the catchable
        // `io-error` condition. Strings cross the socket as latin-1: one
        // char per byte, lossless for the full 0..=255 range.
        "%tcp-listen" => |vm, argc| {
            // (%tcp-listen port) binds loopback; (%tcp-listen host port)
            // binds a real AF_INET address ("0.0.0.0" for any).
            if argc == 1 {
                let port = net_port(vm.arg(0), "%tcp-listen")?;
                let tok = vm.net.listen(port)?;
                ret!(vm, Value::fixnum(tok))
            } else {
                check(argc, 2, "%tcp-listen")?;
                let host: String = vm.string_of(vm.arg(0), "%tcp-listen")?.iter().collect();
                let port = net_port(vm.arg(1), "%tcp-listen")?;
                let tok = vm.net.listen_on(&host, port)?;
                ret!(vm, Value::fixnum(tok))
            }
        },
        "%tcp-local-port" => |vm, argc| {
            check(argc, 1, "%tcp-local-port")?;
            let tok = fix(vm.arg(0), "%tcp-local-port")?;
            let port = vm.net.local_port(tok)?;
            ret!(vm, Value::fixnum(port))
        },
        "%tcp-accept" => |vm, argc| {
            check(argc, 1, "%tcp-accept")?;
            let tok = fix(vm.arg(0), "%tcp-accept")?;
            match vm.net.accept(tok)? {
                Some(t) => ret!(vm, Value::fixnum(t)),
                None => ret!(vm, Value::FALSE),
            }
        },
        "%tcp-connect" => |vm, argc| {
            // (%tcp-connect port) targets loopback; (%tcp-connect host
            // port) any AF_INET address.
            if argc == 1 {
                let port = net_port(vm.arg(0), "%tcp-connect")?;
                let tok = vm.net.connect(port)?;
                ret!(vm, Value::fixnum(tok))
            } else {
                check(argc, 2, "%tcp-connect")?;
                let host: String = vm.string_of(vm.arg(0), "%tcp-connect")?.iter().collect();
                let port = net_port(vm.arg(1), "%tcp-connect")?;
                let tok = vm.net.connect_to(&host, port)?;
                ret!(vm, Value::fixnum(tok))
            }
        },
        "%tcp-read" => |vm, argc| {
            // (%tcp-read tok max) -> string | 'eof | #f
            check(argc, 2, "%tcp-read")?;
            let tok = fix(vm.arg(0), "%tcp-read")?;
            let max = fix(vm.arg(1), "%tcp-read")?;
            if max <= 0 {
                return Err(err("%tcp-read: expected a positive byte count"));
            }
            match vm.net.read(tok, max as usize)? {
                crate::net::ReadOutcome::Data(bytes) => {
                    let chars: Vec<char> = bytes.iter().map(|&b| b as char).collect();
                    let s = vm.alloc_string(chars);
                    ret!(vm, s)
                }
                crate::net::ReadOutcome::Eof => {
                    let eof = vm.intern("eof");
                    ret!(vm, eof)
                }
                crate::net::ReadOutcome::WouldBlock => ret!(vm, Value::FALSE),
            }
        },
        "%tcp-write" => |vm, argc| {
            // (%tcp-write tok str start) -> chars-written | #f
            check(argc, 3, "%tcp-write")?;
            let tok = fix(vm.arg(0), "%tcp-write")?;
            let chars = vm.string_of(vm.arg(1), "%tcp-write")?;
            let start = fix(vm.arg(2), "%tcp-write")?;
            let start = usize::try_from(start)
                .ok()
                .filter(|&s| s <= chars.len())
                .ok_or_else(|| err("%tcp-write: start out of range"))?;
            let mut bytes = Vec::with_capacity(chars.len() - start);
            for &c in &chars[start..] {
                let b = u8::try_from(u32::from(c)).map_err(|_| VmError::Condition {
                    kind: "io-error",
                    message: "%tcp-write: string has chars above latin-1".to_string(),
                })?;
                bytes.push(b);
            }
            match vm.net.write(tok, &bytes)? {
                Some(n) => ret!(vm, Value::fixnum(n as i64)),
                None => ret!(vm, Value::FALSE),
            }
        },
        "%tcp-close" => |vm, argc| {
            check(argc, 1, "%tcp-close")?;
            let tok = fix(vm.arg(0), "%tcp-close")?;
            let closed = vm.net.close(tok);
            ret!(vm, Value::boolean(closed))
        },
        "%net-live" => |vm, _argc| {
            // Open sockets in this VM's table — the leak audit a server
            // runs after draining its connections.
            ret!(vm, Value::fixnum(vm.net.live() as i64))
        },
        "%conn-take" => |vm, _argc| {
            // The socket token of the oldest connection the embedder's
            // shared listener adopted into this VM and no handler has
            // taken yet; #f when none is pending. Handler jobs and
            // adoptions are both FIFO on one single-threaded VM, so
            // take-in-order pairs each handler with "its" connection.
            match vm.net.take_pending() {
                Some(tok) => ret!(vm, Value::fixnum(tok)),
                None => ret!(vm, Value::FALSE),
            }
        },
        // --- condition system support (used only by the prelude) ---
        "%push-handler!" => |vm, argc| {
            check(argc, 1, "%push-handler!")?;
            let h = vm.arg(0);
            vm.handlers = vm.cons(h, vm.handlers);
            ret!(vm, Value::UNSPECIFIED)
        },
        "%pop-handler!" => |vm, _argc| {
            // Popping an empty stack is a no-op: the prelude only pops
            // inside dynamic-wind brackets it pushed itself.
            vm.handlers = vm.cdr_of(vm.handlers).unwrap_or(Value::NIL);
            ret!(vm, Value::UNSPECIFIED)
        },
        "%top-handler" => |vm, _argc| {
            let h = vm.car_of(vm.handlers).map_err(|_| err("%top-handler: empty handler stack"))?;
            ret!(vm, h)
        },
        "%have-handler?" => |vm, _argc| {
            let b = Value::boolean(vm.handlers != Value::NIL);
            ret!(vm, b)
        },
        "%note-raise!" => |vm, _argc| {
            vm.conditions_raised += 1;
            ret!(vm, Value::UNSPECIFIED)
        },
        "%uncaught" => |vm, argc| {
            // Terminal: no handler was installed for a raised condition.
            // `(kind . "message")` conditions surface their message text
            // (matching the shape Runtime errors always printed); anything
            // else is written as a datum.
            at_least(argc, 1, "%uncaught")?;
            let c = vm.arg(0);
            let parts = c
                .as_obj()
                .and_then(|r| vm.heap.pair(r))
                .and_then(|(k, d)| k.as_sym().map(|k| (k, d)))
                .filter(|&(_, d)| d.is_obj_kind(ObjKind::Str));
            let (condition, kind) = match parts {
                Some((k, d)) => (vm.display_value(&d), Some(vm.syms.name(k).to_string())),
                None => (vm.write_value(&c), None),
            };
            Err(VmError::Uncaught { condition, kind, backtrace: vm.backtrace() })
        },
        // --- CPS support ---
        "%apply-args" => |vm, argc| {
            // (%apply-args k f spec): the CPS prelude's apply. Spreads
            // `spec` per apply's rules, then calls `f` with the
            // continuation prepended — unless `f` is a direct Rust builtin,
            // which takes no continuation; its result is delivered to `k`.
            check(argc, 3, "%apply-args")?;
            let k = vm.arg(0);
            let f = vm.arg(1);
            let spec = vm.list_to_vec(vm.arg(2), "apply")?;
            if spec.is_empty() {
                return Err(err("apply: expected at least one argument"));
            }
            let mut spread: Vec<Value> = spec[..spec.len() - 1].to_vec();
            spread.extend(vm.list_to_vec(spec[spec.len() - 1], "apply")?);
            if let Some(b) = f.as_builtin() {
                vm.ensure_or_raise(spread.len() + 3, 1 + argc)?;
                let n = spread.len();
                for (i, v) in spread.iter().enumerate() {
                    vm.set_local(1 + i, *v);
                }
                let func = vm.builtins[b as usize];
                match func(vm, n)? {
                    Flow::Return => {
                        if vm.mv.is_some() {
                            return Err(err("apply: multiple values are unsupported in CPS mode"));
                        }
                        let v = vm.acc;
                        vm.set_local(1, v);
                        return Ok(Flow::Tail { f: k, argc: 1 });
                    }
                    _ => return Err(err("apply: builtin transferred control in CPS mode")),
                }
            }
            let mut full = vec![k];
            full.extend(spread);
            vm.ensure_or_raise(full.len() + 3, 1 + argc)?;
            for (i, v) in full.iter().enumerate() {
                vm.set_local(1 + i, *v);
            }
            Ok(Flow::Tail { f, argc: full.len() })
        },
        _ => return None,
    })
}

fn gcd64(a: i64, b: i64) -> i64 {
    if b == 0 {
        a
    } else {
        gcd64(b, a % b)
    }
}

fn round_even(x: f64) -> f64 {
    let r = x.round();
    if (x - x.trunc()).abs() == 0.5 && r % 2.0 != 0.0 {
        r - x.signum()
    } else {
        r
    }
}

fn round_like(vm: &mut Vm, argc: usize, who: &str, f: fn(f64) -> f64) -> R<Flow> {
    check(argc, 1, who)?;
    match vm.arg(0).unpack() {
        Unpacked::Fixnum(n) => {
            vm.acc = Value::fixnum(n);
            Ok(Flow::Return)
        }
        Unpacked::Flonum(x) => {
            vm.acc = Value::flonum(f(x));
            Ok(Flow::Return)
        }
        _ => Err(vm.type_error(who, "number", vm.arg(0))),
    }
}
