//! The oneshot bytecode VM: a Scheme system whose control representation
//! is the segmented stack of Bruggeman, Waddell, and Dybvig (PLDI 1996).
//!
//! `call/cc` captures multi-shot continuations by sealing stack segments
//! (no copying at capture; bounded copying with splitting at
//! reinstatement); `call/1cc` captures one-shot continuations whose
//! reinstatement is O(1); stack overflow is an implicit `call/1cc` with
//! hysteresis; one-shot continuations are promoted when captured by
//! `call/cc`. The VM additionally supports `dynamic-wind`, multiple return
//! values, and Dybvig–Hieb-style engine timer interrupts (the
//! context-switch mechanism behind the paper's Figure 5).
//!
//! # Example
//!
//! ```
//! use oneshot_vm::Vm;
//!
//! let mut vm = Vm::new();
//! let v = vm.eval_str("(+ 1 (call/cc (lambda (k) (k 41))))").unwrap();
//! assert_eq!(vm.display_value(&v), "42");
//!
//! // One-shot continuations may be invoked only once.
//! let e = vm
//!     .eval_str(
//!         "(let ((k (call/1cc (lambda (k) k))))
//!            (if (procedure? k) (k 1) 'done))",
//!     )
//!     .unwrap_err();
//! assert!(e.to_string().contains("one-shot"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod net;
mod slot;
mod vm;

pub use error::VmError;
pub use slot::{slot_disp, Resume, Slot};
pub use vm::{ProbeSpec, Vm, VmBuilder, VmConfig, VmProbe, VmStats};

pub use oneshot_compiler::{CompiledProgram, CompilerOptions, Pipeline};
pub use oneshot_core::{FaultClock, FaultPlan};
pub use oneshot_runtime::{Obj, ObjRef, SymbolId, Value};
