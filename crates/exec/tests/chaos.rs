//! Pool-level chaos: deterministic fault plans in every worker VM, with
//! the transient/permanent retry taxonomy under test.
//!
//! Invariants:
//! - transient faults (injected out-of-memory) are retried and recover;
//! - permanent errors (type errors) fail fast, never burning retries;
//! - under arbitrary seeded schedules the pool stays live: every handle
//!   resolves, the counters balance, and shutdown aggregates the
//!   per-worker condition/fault/retry totals.

use std::time::Duration;

use oneshot_exec::{ErrorKind, JobSpec, Pool};
use oneshot_vm::{FaultPlan, VmConfig};

fn chaos_config(plan: FaultPlan) -> VmConfig {
    VmConfig { fault_plan: Some(plan), ..VmConfig::default() }
}

fn alloc_job(i: u64) -> JobSpec {
    JobSpec::new(
        format!("alloc-{i}"),
        "(define (chew n acc) (if (zero? n) acc (chew (- n 1) (cons n acc)))) \
         (length (chew 300 '()))",
    )
}

#[test]
fn transient_oom_is_retried_and_recovers() {
    // Every worker VM fails its 40th allocation; the victim job errors
    // with a catchable out-of-memory, is requeued, and succeeds on a VM
    // whose one-shot clock has already fired.
    let pool = Pool::builder()
        .workers(2)
        .max_retries(2)
        .vm_config(chaos_config(FaultPlan::none().with_alloc_fault(40)))
        .build()
        .unwrap();
    let handles: Vec<_> = (0..8).map(|i| pool.submit(alloc_job(i)).unwrap()).collect();
    for h in &handles {
        assert_eq!(h.wait().result.as_deref(), Ok("300"), "{}", h.name());
    }
    let report = pool.shutdown_timeout(Duration::from_secs(30)).unwrap();
    assert_eq!(report.counters.completed, 8);
    assert_eq!(report.counters.failed, 0);
    assert!(report.counters.retried >= 1, "at least one worker must have tripped its fault");
    let worker_retries: u64 = report.workers.iter().map(|w| w.retries).sum();
    assert_eq!(worker_retries, report.counters.retried);
    let faults: u64 = report.workers.iter().map(|w| w.vm.faults_injected).sum();
    assert_eq!(faults, report.counters.retried, "each retry stems from one injected fault");
}

#[test]
fn permanent_errors_fail_fast_without_retry() {
    let pool = Pool::builder().workers(1).max_retries(3).build().unwrap();
    let bad = pool.submit(JobSpec::new("bad", "(car 5)")).unwrap();
    let good = pool.submit(JobSpec::new("good", "(+ 1 2)")).unwrap();
    let err = bad.wait().result.unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Vm);
    assert_eq!(err.condition_kind(), Some("type-error"), "got: {err}");
    assert_eq!(good.wait().result.as_deref(), Ok("3"));
    let report = pool.shutdown_timeout(Duration::from_secs(30)).unwrap();
    assert_eq!(report.counters.retried, 0, "a type error must not burn retries");
    assert_eq!(report.counters.failed, 1);
    assert_eq!(report.counters.completed, 1);
}

#[test]
fn exhausted_retries_surface_the_transient_error() {
    // A heap budget far below the job's live set makes out-of-memory
    // permanent in practice: every attempt fails the same way, and after
    // max_retries the error is delivered rather than retried forever.
    let cfg = VmConfig { heap_budget: Some(3_000), ..VmConfig::default() };
    let pool = Pool::builder().workers(1).max_retries(2).vm_config(cfg).build().unwrap();
    let spec = JobSpec::new(
        "hog",
        "(define (chew n acc) (if (zero? n) acc (chew (- n 1) (cons n acc)))) \
         (length (chew 100000 '()))",
    );
    let h = pool.submit(spec).unwrap();
    let err = h.wait().result.unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Vm);
    assert_eq!(err.condition_kind(), Some("out-of-memory"), "got: {err}");
    let report = pool.shutdown_timeout(Duration::from_secs(30)).unwrap();
    assert_eq!(report.counters.retried, 2, "both retry attempts were spent");
    assert_eq!(report.counters.failed, 1);
}

#[test]
fn seeded_schedules_keep_the_pool_live() {
    for seed in 0..6u64 {
        let mut cfg = chaos_config(FaultPlan::seeded(seed, 5_000));
        cfg.heap_budget = Some(200_000);
        let pool = Pool::builder()
            .workers(3)
            .fuel_slice(512)
            .max_retries(2)
            .vm_config(cfg)
            .build()
            .unwrap();
        let handles: Vec<_> = (0..24)
            .map(|i| {
                let spec = match i % 3 {
                    0 => alloc_job(i),
                    1 => JobSpec::new(
                        format!("deep-{i}"),
                        "(define (deep n) (if (zero? n) 0 (+ 1 (deep (- n 1))))) (deep 500)",
                    ),
                    _ => JobSpec::new(
                        format!("fib-{i}"),
                        "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 12)",
                    ),
                };
                pool.submit(spec).unwrap()
            })
            .collect();
        // Liveness: every handle resolves; a retried transient either
        // recovers (expected — the clocks are one-shot) or reports a
        // structured error.
        for h in &handles {
            let outcome = h.wait();
            if let Err(e) = &outcome.result {
                assert!(
                    matches!(e.kind(), ErrorKind::Vm | ErrorKind::FuelExhausted),
                    "seed {seed}: job {} died unstructured: {e}",
                    h.name()
                );
            }
        }
        let report = pool.shutdown_timeout(Duration::from_secs(60)).unwrap();
        let c = report.counters;
        assert_eq!(c.submitted, 24, "seed {seed}");
        assert_eq!(c.completed + c.failed, 24, "seed {seed}: every job must resolve once");
        let worker_retries: u64 = report.workers.iter().map(|w| w.retries).sum();
        assert_eq!(worker_retries, c.retried, "seed {seed}: shutdown must aggregate retries");
        let conditions: u64 = report.workers.iter().map(|w| w.vm.conditions_raised).sum();
        assert!(
            conditions >= c.failed,
            "seed {seed}: every condition-failed job shows up in the totals"
        );
    }
}
