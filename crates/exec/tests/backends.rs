//! Poll-vs-epoll differential suite: the readiness backend must be
//! observationally invisible. The same seeded workload runs on a
//! poll-backed pool and an epoll-backed pool (selected programmatically
//! via `PoolBuilder::reactor_backend`, so both run in one process without
//! racing on `ONESHOT_REACTOR`), and everything the embedder can see —
//! job results, leak audits, failure counts — must agree.
//!
//! Also here: the integration-level stale-wakeup scenario for
//! edge-triggered mode (readiness arriving *after* the wait was cancelled
//! by a deadline must not resume the continuation a second time), and the
//! shared-listener accept path under both backends.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use oneshot_exec::{Backend, JobSpec, Pool, PoolBuilder};

fn pool_with(backend: Backend, workers: usize) -> PoolBuilder {
    Pool::builder().workers(workers).resident_cap(64).fuel_slice(2048).reactor_backend(backend)
}

const BACKENDS: [Backend; 2] = [Backend::Poll, Backend::Epoll];

/// xorshift64* — the repo's standard seeded PRNG, for a deterministic
/// workload shared by both backend runs.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// One seeded mixed workload: echo pairs over loopback sockets plus
/// timer sleeps, every job returning a value derived from the seed.
/// Returns (sorted results, final counters) after a clean shutdown.
fn run_seeded_workload(
    backend: Backend,
    seed: u64,
) -> (Vec<String>, oneshot_exec::PoolCountersSnapshot) {
    let pool = pool_with(backend, 2).build().unwrap();
    assert_eq!(pool.reactor_backend(), backend, "builder selection is authoritative");
    let mut rng = seed;
    let mut handles = Vec::new();
    for i in 0..12 {
        let r = xorshift(&mut rng);
        if r.is_multiple_of(3) {
            // A timer job: sleeps a seeded 5..40 ms, returns its label.
            let ms = 5 + r % 36;
            handles.push(
                pool.submit(JobSpec::new(
                    format!("timer-{i}"),
                    format!("(begin (timer-wait {ms}) (list 'timer {i}))"),
                ))
                .unwrap(),
            );
        } else {
            // An echo pair inside one job: listener, client, roundtrip.
            let msg = format!("msg-{i}-{:08x}", r & 0xFFFF_FFFF);
            handles.push(
                pool.submit(JobSpec::new(
                    format!("echo-{i}"),
                    format!(
                        "(let* ((l (tcp-listen 0))
                                (p (tcp-local-port l))
                                (c (tcp-connect p))
                                (a (tcp-accept l)))
                           (tcp-write c \"{msg}\")
                           (let ((d (tcp-read a {len})))
                             (tcp-close c) (tcp-close a) (tcp-close l)
                             (list (%net-live) d)))",
                        len = msg.len(),
                    ),
                ))
                .unwrap(),
            );
        }
    }
    let mut results: Vec<String> = handles
        .iter()
        .map(|h| h.wait().result.expect("seeded workload jobs all succeed"))
        .collect();
    results.sort();
    let report = pool.shutdown_timeout(Duration::from_secs(30)).unwrap();
    assert_eq!(report.counters.failed, 0, "{backend}: no failures");
    (results, report.counters)
}

#[test]
fn same_seeded_workload_gives_identical_results_on_both_backends() {
    for seed in [0x1BAD_5EED_u64, 0xFACE_FEED] {
        let (poll_results, poll_counters) = run_seeded_workload(Backend::Poll, seed);
        let (epoll_results, epoll_counters) = run_seeded_workload(Backend::Epoll, seed);
        assert_eq!(
            poll_results, epoll_results,
            "seed {seed:#x}: results must not depend on backend"
        );
        assert_eq!(poll_counters.completed, epoll_counters.completed);
        assert_eq!(poll_counters.reactor_backend, "poll");
        assert_eq!(epoll_counters.reactor_backend, "epoll");
        // Leak-free teardown on both: every echo job asserted its own
        // socket count via (%net-live) in its result; results matching
        // means the audits matched too.
        assert!(
            poll_results.iter().filter(|r| r.starts_with("((")).count() == 0,
            "echo results embed (%net-live) after close: 3 sockets open mid-roundtrip"
        );
    }
}

#[test]
fn deadline_cancelled_wait_ignores_late_readiness_on_both_backends() {
    // A job blocks reading a socket that stays silent past its deadline.
    // The deadline fails the job and cancels the wait; the peer THEN
    // writes, so readiness arrives for a cancelled wait (the stale-wakeup
    // case — under edge-triggered epoll the kernel event still fires).
    // The stale delivery must be dropped by the seq guard: no panic, no
    // double resume, and the worker keeps serving jobs afterwards.
    for backend in BACKENDS {
        let pool = pool_with(backend, 1).build().unwrap();
        let port: u16 = pool
            .submit(
                JobSpec::new("listen", "(define lst (tcp-listen 0)) (tcp-local-port lst)").pin(0),
            )
            .unwrap()
            .wait()
            .result
            .expect("listener binds")
            .parse()
            .unwrap();
        let doomed = pool
            .submit(
                JobSpec::new("doomed-read", "(let ((c (tcp-accept lst))) (tcp-read c 64))")
                    .pin(0)
                    .deadline(Duration::from_millis(120)),
            )
            .unwrap();
        let mut peer = TcpStream::connect(("127.0.0.1", port)).unwrap();
        // Wait out the deadline, then make the fd readable.
        let outcome = doomed.wait();
        assert_eq!(
            outcome.result.unwrap_err().kind(),
            oneshot_exec::ErrorKind::DeadlineExceeded,
            "{backend}"
        );
        peer.write_all(b"too-late").unwrap();
        // Give the late readiness time to reach the (cancelled) wait.
        std::thread::sleep(Duration::from_millis(60));
        // The worker must still be healthy: run a fresh job to completion.
        let after = pool.submit(JobSpec::new("after", "(+ 20 22)").pin(0)).unwrap();
        assert_eq!(after.wait().result.as_deref(), Ok("42"), "{backend}");
        drop(peer);
        let report = pool.shutdown_timeout(Duration::from_secs(30)).unwrap();
        assert_eq!(report.counters.failed, 1, "{backend}: only the doomed job failed");
    }
}

#[test]
fn shared_listener_distributes_and_echoes_on_both_backends() {
    // Pool::serve under both backends: N Rust-side clients against one
    // shared AF_INET listener, handlers fetched via (conn-take). Checks
    // echo correctness, completion accounting, accepts-per-worker
    // distribution, and a leak-free shutdown.
    const CLIENTS: usize = 8;
    for backend in BACKENDS {
        let pool = pool_with(backend, 2).build().unwrap();
        let done = Arc::new(AtomicU64::new(0));
        let done_cb = Arc::clone(&done);
        let handler = JobSpec::new(
            "echo-handler",
            "(let ((c (conn-take)))
               (let loop ()
                 (let ((d (tcp-read c 4096)))
                   (if (eq? d 'eof)
                       (begin (tcp-close c) 'served)
                       (begin (tcp-write c d) (loop))))))",
        )
        .on_complete(move |o| {
            assert_eq!(o.result.as_deref(), Ok("served"));
            done_cb.fetch_add(1, Ordering::SeqCst);
        });
        let serve = pool.serve("127.0.0.1:0", handler).unwrap();
        let port = serve.port();
        let clients: Vec<_> = (0..CLIENTS)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut s = TcpStream::connect(("127.0.0.1", port)).unwrap();
                    let msg = format!("shared-{i}");
                    s.write_all(msg.as_bytes()).unwrap();
                    let mut buf = vec![0u8; msg.len()];
                    s.read_exact(&mut buf).unwrap();
                    assert_eq!(buf, msg.as_bytes());
                    drop(s); // EOF ends the handler
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }
        // Handlers finish after the peers close; wait for the callbacks.
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        while done.load(Ordering::SeqCst) < CLIENTS as u64 {
            assert!(std::time::Instant::now() < deadline, "{backend}: handlers drained");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(serve.accepted(), CLIENTS as u64, "{backend}");
        let report = pool.shutdown_timeout(Duration::from_secs(30)).unwrap();
        assert_eq!(report.counters.failed, 0, "{backend}");
        assert_eq!(
            report.counters.accepts_per_worker.iter().sum::<u64>(),
            CLIENTS as u64,
            "{backend}: every accept was routed to a worker"
        );
        assert_eq!(report.counters.accept_overflow, 0, "{backend}");
        assert_eq!(report.counters.reactor_backend, backend.name());
    }
}

#[test]
fn counters_delta_since_subtracts_counters_and_carries_gauges() {
    let pool = pool_with(Backend::Poll, 2).build().unwrap();
    let before = pool.stats();
    for i in 0..4 {
        pool.submit(JobSpec::new(format!("n-{i}"), format!("(* {i} {i})"))).unwrap().wait();
    }
    pool.submit(JobSpec::new("nap", "(timer-wait 5)")).unwrap().wait();
    let after = pool.stats();
    let delta = after.delta_since(&before);
    assert_eq!(delta.submitted, 5);
    assert_eq!(delta.completed, 5);
    assert_eq!(delta.reactor_backend, "poll");
    // Gauges carry the later value rather than subtracting.
    assert_eq!(delta.blocked_highwater, after.blocked_highwater);
    assert_eq!(delta.resume_depth_highwater, after.resume_depth_highwater);
    assert_eq!(delta.accepts_per_worker.len(), 2);
    // The timer delivery landed in exactly one lateness bucket.
    assert_eq!(delta.wake_lateness.len(), oneshot_exec::WAKE_LATENESS_BUCKETS_MS.len() + 1);
    assert_eq!(delta.wake_lateness.iter().sum::<u64>(), 1);
    pool.shutdown().unwrap();
}
