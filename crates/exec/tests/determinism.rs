//! Cross-worker determinism: a set of pure jobs must produce the same
//! multiset of (name, result) pairs whether it runs on 1, 2, or 4 workers
//! — scheduling, stealing, and preemption order must be invisible in the
//! results.

use oneshot_exec::{JobSpec, Pool};
use proptest::prelude::*;

/// Pure job templates. Every template defines its helpers under its own
/// names with identical bodies, so interleaved jobs sharing a worker VM
/// can never observe a conflicting definition.
fn job_source(template: usize, n: u64) -> String {
    match template % 4 {
        0 => format!(
            "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib {})",
            6 + n % 9
        ),
        1 => format!(
            "(define (sum-to n acc) (if (zero? n) acc (sum-to (- n 1) (+ acc n)))) (sum-to {} 0)",
            100 + n * 37
        ),
        2 => format!(
            // A call/1cc escape inside the job: capture-based control must
            // be deterministic under preemption too.
            "(+ 1000 (call/1cc (lambda (k) (k {n}))))"
        ),
        _ => format!(
            "(define (build n) (if (zero? n) '() (cons n (build (- n 1)))))
             (length (build {}))",
            10 + n % 50
        ),
    }
}

fn run_jobs(workers: usize, fuel_slice: u64, specs: &[(String, String)]) -> Vec<(String, String)> {
    let pool = Pool::builder().workers(workers).fuel_slice(fuel_slice).build().unwrap();
    let handles: Vec<_> = specs
        .iter()
        .map(|(name, src)| pool.submit(JobSpec::new(name.clone(), src.clone())).unwrap())
        .collect();
    let mut results: Vec<(String, String)> = handles
        .iter()
        .map(|h| {
            let outcome = h.wait();
            let shown = match outcome.result {
                Ok(v) => v,
                Err(e) => panic!("pure job {} failed: {e}", outcome.name),
            };
            (outcome.name, shown)
        })
        .collect();
    pool.shutdown().unwrap();
    // Sort: completion order is scheduling-dependent, the multiset is not.
    results.sort();
    results
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn same_multiset_of_results_at_1_2_4_workers(
        params in proptest::collection::vec((0usize..4, 0u32..60), 3..10),
        fuel_slice in prop_oneof![Just(128u64), Just(1024), Just(16384)],
    ) {
        let specs: Vec<(String, String)> = params
            .iter()
            .enumerate()
            .map(|(i, &(t, n))| (format!("job-{i}"), job_source(t, u64::from(n))))
            .collect();
        let baseline = run_jobs(1, fuel_slice, &specs);
        for workers in [2, 4] {
            let got = run_jobs(workers, fuel_slice, &specs);
            prop_assert_eq!(&got, &baseline, "diverged at {} workers", workers);
        }
    }
}
