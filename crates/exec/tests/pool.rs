//! End-to-end pool tests: completion, backpressure, budgets, fault
//! isolation, and clean shutdown with no leaked worker threads.

use std::time::Duration;

use oneshot_exec::{JobError, JobSpec, Pool, SubmitError};

/// fib has identical toplevel definitions across jobs, so interleaved
/// jobs on a shared worker VM can't disagree about it.
fn fib_job(n: u64) -> JobSpec {
    JobSpec::new(
        format!("fib-{n}"),
        format!("(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib {n})"),
    )
}

fn spin_job(name: &str, iters: u64) -> JobSpec {
    JobSpec::new(name, format!("(let loop ((i 0)) (if (< i {iters}) (loop (+ i 1)) 'spun))"))
}

#[test]
fn jobs_complete_across_worker_counts() {
    for workers in [1, 2, 4] {
        let pool = Pool::builder().workers(workers).fuel_slice(512).build().unwrap();
        let handles: Vec<_> =
            (0..12).map(|i| pool.submit(fib_job(10 + (i % 5))).unwrap()).collect();
        for h in &handles {
            let outcome = h.wait();
            let expected = match h.name() {
                "fib-10" => "55",
                "fib-11" => "89",
                "fib-12" => "144",
                "fib-13" => "233",
                "fib-14" => "377",
                other => panic!("unexpected job {other}"),
            };
            assert_eq!(outcome.result.as_deref(), Ok(expected), "{}", h.name());
        }
        let report = pool.shutdown_timeout(Duration::from_secs(30)).unwrap();
        assert_eq!(report.counters.completed, 12, "workers={workers}");
        assert_eq!(report.counters.failed, 0);
        assert_eq!(report.workers.len(), workers);
        let ran: u64 = report.workers.iter().map(|w| w.jobs_ok).sum();
        assert_eq!(ran, 12);
    }
}

#[test]
fn long_jobs_are_preempted_not_starving() {
    // One long job plus quick jobs on a single worker: with a small fuel
    // slice the quick jobs finish long before the big one.
    let pool = Pool::builder().workers(1).fuel_slice(256).build().unwrap();
    let long = pool.submit(spin_job("long", 2_000_000).fuel_budget(u64::MAX)).unwrap();
    let quick: Vec<_> = (0..4).map(|_| pool.submit(fib_job(10)).unwrap()).collect();
    for h in &quick {
        assert_eq!(h.wait().result.as_deref(), Ok("55"));
    }
    let outcome = long.wait();
    assert_eq!(outcome.result.as_deref(), Ok("spun"));
    assert!(outcome.slices > 1, "the long job must have been preempted");
    let report = pool.shutdown().unwrap();
    assert!(report.counters.requeues > 0, "preemption shows up as requeues");
}

#[test]
fn try_submit_gives_backpressure() {
    // Capacity-1 queue and a worker wedged on a sleep: the second
    // enqueued job sits in the injector, so a third is refused.
    let pool = Pool::builder().workers(1).queue_capacity(1).resident_cap(1).build().unwrap();
    let blocker = pool.submit(JobSpec::new("blocker", "(sleep-ms 300)")).unwrap();
    // Wait for the worker to pick the blocker up so the queue is empty...
    while pool.queue_depth() > 0 {
        std::thread::yield_now();
    }
    // ...then fill the single queue slot.
    let queued = pool.submit(fib_job(10)).unwrap();
    let refused = pool.try_submit(fib_job(11));
    match refused {
        Err(SubmitError::Full(spec)) => assert_eq!(spec.name(), "fib-11"),
        other => panic!("expected Full, got {other:?}"),
    }
    assert_eq!(blocker.wait().result.as_deref(), Ok("#<void>"));
    assert_eq!(queued.wait().result.as_deref(), Ok("55"));
    pool.shutdown().unwrap();
}

#[test]
fn compile_errors_fail_at_submit() {
    let pool = Pool::builder().workers(1).build().unwrap();
    match pool.submit(JobSpec::new("bad", "(lambda)")) {
        Err(SubmitError::Compile(_)) => {}
        other => panic!("expected a compile error, got {other:?}"),
    }
    pool.shutdown().unwrap();
}

#[test]
fn fuel_budget_times_out_runaway_jobs() {
    let pool = Pool::builder().workers(1).fuel_slice(500).build().unwrap();
    let runaway = pool.submit(spin_job("runaway", 10_000_000_000).fuel_budget(5_000)).unwrap();
    let bystander = pool.submit(fib_job(12)).unwrap();
    let outcome = runaway.wait();
    match outcome.result {
        Err(JobError::TimedOut { budget, used }) => {
            assert_eq!(budget, 5_000);
            assert!(used >= budget, "budget must actually be consumed first");
        }
        other => panic!("expected TimedOut, got {other:?}"),
    }
    assert_eq!(bystander.wait().result.as_deref(), Ok("144"));
    let report = pool.shutdown().unwrap();
    assert_eq!(report.counters.timed_out, 1);
    assert_eq!(report.counters.completed, 1);
}

#[test]
fn scheme_errors_are_vm_job_errors_with_context() {
    let pool = Pool::builder().workers(1).build().unwrap();
    let bad = pool.submit(JobSpec::new("type-error", "(car 42)")).unwrap();
    match bad.wait().result {
        Err(JobError::Vm(e)) => {
            let msg = e.to_string();
            assert!(msg.contains("job 0"), "context names the job: {msg}");
            assert!(msg.contains("worker 0"), "context names the worker: {msg}");
            assert!(msg.contains("car"), "root cause survives: {msg}");
        }
        other => panic!("expected Vm error, got {other:?}"),
    }
    pool.shutdown().unwrap();
}

#[test]
fn shot_continuation_in_pooled_job_is_a_vm_error() {
    // The ISSUE's acceptance scenario: a call/1cc continuation shot twice
    // inside a pooled job surfaces as JobError::Vm — no panic, no wedged
    // worker.
    let pool = Pool::builder().workers(2).build().unwrap();
    let shot = pool.submit(JobSpec::new(
        "shot-twice",
        "(define k1 #f)
         (call/1cc (lambda (k) (set! k1 k)))
         (k1 0)",
    ));
    let shot = shot.unwrap();
    let after = pool.submit(fib_job(10)).unwrap();
    match shot.wait().result {
        Err(JobError::Vm(e)) => {
            assert!(e.to_string().contains("one-shot"), "{e}");
        }
        other => panic!("expected Vm(one-shot) error, got {other:?}"),
    }
    assert_eq!(after.wait().result.as_deref(), Ok("55"), "worker is not wedged");
    let report = pool.shutdown_timeout(Duration::from_secs(30)).unwrap();
    assert_eq!(report.counters.panicked, 0);
}

#[test]
fn panicking_job_is_isolated_and_pool_drains() {
    let pool = Pool::builder().workers(2).fuel_slice(512).build().unwrap();
    let before: Vec<_> = (0..4).map(|_| pool.submit(fib_job(11)).unwrap()).collect();
    let bomb = pool.submit(JobSpec::new("bomb", "(debug-panic! \"kaboom\")")).unwrap();
    let after: Vec<_> = (0..4).map(|_| pool.submit(fib_job(12)).unwrap()).collect();

    match bomb.wait().result {
        Err(JobError::Panicked(msg)) => assert!(msg.contains("kaboom"), "{msg}"),
        other => panic!("expected Panicked, got {other:?}"),
    }
    // Every other job still finishes: either normally, or failed-fast as
    // WorkerReset collateral if it was parked on the panicking VM.
    for h in before.iter().chain(&after) {
        let outcome = h.wait();
        match outcome.result {
            Ok(v) => assert!(v == "89" || v == "144"),
            Err(JobError::WorkerReset { culprit }) => assert_eq!(culprit, bomb.id()),
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    let report = pool.shutdown_timeout(Duration::from_secs(30)).unwrap();
    assert_eq!(report.counters.panicked, 1);
    assert_eq!(report.counters.vm_rebuilds, 1);
    assert_eq!(report.counters.completed + report.counters.failed, 9);
}

#[test]
fn shutdown_reports_every_worker_and_leaks_nothing() {
    let pool = Pool::builder().workers(3).build().unwrap();
    for i in 0..6 {
        pool.submit(fib_job(10 + i % 3)).unwrap();
    }
    // A short deadline that still comfortably covers the drain: if a
    // worker thread wedged or leaked, this returns Err and the test fails.
    let report = pool.shutdown_timeout(Duration::from_secs(20)).unwrap();
    assert_eq!(report.workers.len(), 3, "every worker joined and reported");
    assert_eq!(report.counters.completed, 6);
    let instructions: u64 = report.workers.iter().map(|w| w.vm.instructions).sum();
    assert!(instructions > 0, "per-worker VmStats were aggregated");
}

#[test]
fn submit_after_shutdown_is_refused() {
    let pool = Pool::builder().workers(1).build().unwrap();
    let stats = pool.stats();
    assert_eq!(stats.submitted, 0);
    // Close via drop path: build a second pool to keep using the API.
    drop(pool);
    let pool = Pool::builder().workers(1).build().unwrap();
    let h = pool.submit(fib_job(10)).unwrap();
    h.wait();
    pool.shutdown().unwrap();
}

#[test]
fn mixed_sleep_and_cpu_jobs_overlap_across_workers() {
    // Four 60 ms sleeps on four workers should take far less than the
    // 240 ms serial total — the scaling mechanism E11 measures.
    let pool = Pool::builder().workers(4).build().unwrap();
    let t0 = std::time::Instant::now();
    let handles: Vec<_> = (0..4)
        .map(|i| {
            pool.submit(JobSpec::new(format!("io-{i}"), "(begin (sleep-ms 60) 'served)")).unwrap()
        })
        .collect();
    for h in &handles {
        assert_eq!(h.wait().result.as_deref(), Ok("served"));
    }
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_millis(200),
        "4 sleeps of 60ms must overlap, took {elapsed:?}"
    );
    pool.shutdown().unwrap();
}
