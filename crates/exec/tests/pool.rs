//! End-to-end pool tests: completion, backpressure, budgets, fault
//! isolation, and clean shutdown with no leaked worker threads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use oneshot_exec::{Admission, ErrorKind, JobSpec, Pool};

/// fib has identical toplevel definitions across jobs, so interleaved
/// jobs on a shared worker VM can't disagree about it.
fn fib_job(n: u64) -> JobSpec {
    JobSpec::new(
        format!("fib-{n}"),
        format!("(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib {n})"),
    )
}

fn spin_job(name: &str, iters: u64) -> JobSpec {
    JobSpec::new(name, format!("(let loop ((i 0)) (if (< i {iters}) (loop (+ i 1)) 'spun))"))
}

#[test]
fn jobs_complete_across_worker_counts() {
    for workers in [1, 2, 4] {
        let pool = Pool::builder().workers(workers).fuel_slice(512).build().unwrap();
        let handles: Vec<_> =
            (0..12).map(|i| pool.submit(fib_job(10 + (i % 5))).unwrap()).collect();
        for h in &handles {
            let outcome = h.wait();
            let expected = match h.name() {
                "fib-10" => "55",
                "fib-11" => "89",
                "fib-12" => "144",
                "fib-13" => "233",
                "fib-14" => "377",
                other => panic!("unexpected job {other}"),
            };
            assert_eq!(outcome.result.as_deref(), Ok(expected), "{}", h.name());
        }
        let report = pool.shutdown_timeout(Duration::from_secs(30)).unwrap();
        assert_eq!(report.counters.completed, 12, "workers={workers}");
        assert_eq!(report.counters.failed, 0);
        assert_eq!(report.workers.len(), workers);
        let ran: u64 = report.workers.iter().map(|w| w.jobs_ok).sum();
        assert_eq!(ran, 12);
    }
}

#[test]
fn long_jobs_are_preempted_not_starving() {
    // One long job plus quick jobs on a single worker: with a small fuel
    // slice the quick jobs finish long before the big one.
    let pool = Pool::builder().workers(1).fuel_slice(256).build().unwrap();
    let long = pool.submit(spin_job("long", 2_000_000).fuel(u64::MAX)).unwrap();
    let quick: Vec<_> = (0..4).map(|_| pool.submit(fib_job(10)).unwrap()).collect();
    for h in &quick {
        assert_eq!(h.wait().result.as_deref(), Ok("55"));
    }
    let outcome = long.wait();
    assert_eq!(outcome.result.as_deref(), Ok("spun"));
    assert!(outcome.slices > 1, "the long job must have been preempted");
    let report = pool.shutdown().unwrap();
    assert!(report.counters.requeues > 0, "preemption shows up as requeues");
}

#[test]
fn nonblocking_admission_gives_backpressure() {
    // Capacity-1 queue and a worker wedged on a sleep: the second
    // enqueued job sits in the injector, so a third is refused.
    let pool = Pool::builder().workers(1).queue_capacity(1).resident_cap(1).build().unwrap();
    let blocker = pool.submit(JobSpec::new("blocker", "(sleep-ms 300)")).unwrap();
    // Wait for the worker to pick the blocker up so the queue is empty...
    while pool.queue_depth() > 0 {
        std::thread::yield_now();
    }
    // ...then fill the single queue slot.
    let queued = pool.submit(fib_job(10)).unwrap();
    let err = pool.submit(fib_job(11).admission(Admission::NonBlocking)).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::QueueFull);
    let spec = err.into_refused_spec().expect("the refused spec comes back");
    assert_eq!(spec.name(), "fib-11");
    assert_eq!(blocker.wait().result.as_deref(), Ok("#<void>"));
    assert_eq!(queued.wait().result.as_deref(), Ok("55"));
    pool.shutdown().unwrap();
}

#[test]
fn compile_errors_fail_at_submit() {
    let pool = Pool::builder().workers(1).build().unwrap();
    let err = pool.submit(JobSpec::new("bad", "(lambda)")).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Compile);
    assert!(err.vm_error().is_some(), "the compile diagnostic is chained");
    pool.shutdown().unwrap();
}

#[test]
fn fuel_budget_times_out_runaway_jobs() {
    let pool = Pool::builder().workers(1).fuel_slice(500).build().unwrap();
    let runaway = pool.submit(spin_job("runaway", 10_000_000_000).fuel(5_000)).unwrap();
    let bystander = pool.submit(fib_job(12)).unwrap();
    let err = runaway.wait().result.unwrap_err();
    assert_eq!(err.kind(), ErrorKind::FuelExhausted);
    assert!(err.message().contains("of 5000"), "budget is reported: {err}");
    assert_eq!(bystander.wait().result.as_deref(), Ok("144"));
    let report = pool.shutdown().unwrap();
    assert_eq!(report.counters.timed_out, 1);
    assert_eq!(report.counters.completed, 1);
}

#[test]
fn deadline_exceeded_fails_even_a_sleeping_job() {
    // The job's wall-clock deadline fires while it is blocked on a timer
    // far longer than anyone wants to wait — the safety valve.
    let pool = Pool::builder().workers(1).build().unwrap();
    let h = pool
        .submit(JobSpec::new("sleeper", "(timer-wait 60000)").deadline(Duration::from_millis(100)))
        .unwrap();
    let err = h.wait().result.unwrap_err();
    assert_eq!(err.kind(), ErrorKind::DeadlineExceeded);
    let report = pool.shutdown_timeout(Duration::from_secs(30)).unwrap();
    assert_eq!(report.counters.failed, 1);
}

#[test]
fn on_complete_runs_exactly_once_per_job() {
    let pool = Pool::builder().workers(2).build().unwrap();
    let hits = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..6)
        .map(|i| {
            let hits = Arc::clone(&hits);
            pool.submit(fib_job(10 + i % 3).on_complete(move |outcome| {
                assert!(outcome.result.is_ok());
                hits.fetch_add(1, Ordering::Relaxed);
            }))
            .unwrap()
        })
        .collect();
    for h in &handles {
        h.wait();
    }
    pool.shutdown().unwrap();
    assert_eq!(hits.load(Ordering::Relaxed), 6);
}

#[test]
fn scheme_errors_are_vm_errors_with_context() {
    let pool = Pool::builder().workers(1).build().unwrap();
    let bad = pool.submit(JobSpec::new("type-error", "(car 42)")).unwrap();
    let err = bad.wait().result.unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Vm);
    assert_eq!(err.condition_kind(), Some("type-error"));
    let msg = err.to_string();
    assert!(msg.contains("job 0"), "context names the job: {msg}");
    assert!(msg.contains("worker 0"), "context names the worker: {msg}");
    assert!(msg.contains("car"), "root cause survives: {msg}");
    assert!(
        std::error::Error::source(&err).is_some(),
        "the VmError is reachable through the source chain"
    );
    pool.shutdown().unwrap();
}

#[test]
fn shot_continuation_in_pooled_job_is_a_vm_error() {
    // A call/1cc continuation shot twice inside a pooled job surfaces as
    // ErrorKind::Vm — no panic, no wedged worker.
    let pool = Pool::builder().workers(2).build().unwrap();
    let shot = pool.submit(JobSpec::new(
        "shot-twice",
        "(define k1 #f)
         (call/1cc (lambda (k) (set! k1 k)))
         (k1 0)",
    ));
    let shot = shot.unwrap();
    let after = pool.submit(fib_job(10)).unwrap();
    let err = shot.wait().result.unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Vm);
    assert!(err.to_string().contains("one-shot"), "{err}");
    assert_eq!(after.wait().result.as_deref(), Ok("55"), "worker is not wedged");
    let report = pool.shutdown_timeout(Duration::from_secs(30)).unwrap();
    assert_eq!(report.counters.panicked, 0);
}

#[test]
fn panicking_job_is_isolated_and_pool_drains() {
    let pool = Pool::builder().workers(2).fuel_slice(512).build().unwrap();
    let before: Vec<_> = (0..4).map(|_| pool.submit(fib_job(11)).unwrap()).collect();
    let bomb = pool.submit(JobSpec::new("bomb", "(debug-panic! \"kaboom\")")).unwrap();
    let after: Vec<_> = (0..4).map(|_| pool.submit(fib_job(12)).unwrap()).collect();

    let err = bomb.wait().result.unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Panicked);
    assert!(err.message().contains("kaboom"), "{err}");
    // Every other job still finishes: either normally, or failed-fast as
    // WorkerReset collateral if it was parked on the panicking VM.
    for h in before.iter().chain(&after) {
        let outcome = h.wait();
        match outcome.result {
            Ok(v) => assert!(v == "89" || v == "144"),
            Err(e) => {
                assert_eq!(e.kind(), ErrorKind::WorkerReset);
                assert_eq!(e.culprit(), Some(bomb.id()));
            }
        }
    }
    let report = pool.shutdown_timeout(Duration::from_secs(30)).unwrap();
    assert_eq!(report.counters.panicked, 1);
    assert_eq!(report.counters.vm_rebuilds, 1);
    assert_eq!(report.counters.completed + report.counters.failed, 9);
}

#[test]
fn pinned_jobs_share_their_workers_vm_globals() {
    // Two pinned jobs on the same worker see each other's toplevel
    // definitions; pinning is the documented way to build listener +
    // handler constellations.
    let pool = Pool::builder().workers(2).build().unwrap();
    let setter =
        pool.submit(JobSpec::new("setter", "(define shared-cell 41) 'set").pin(0)).unwrap();
    assert_eq!(setter.wait().result.as_deref(), Ok("set"));
    let getter = pool.submit(JobSpec::new("getter", "(+ shared-cell 1)").pin(0)).unwrap();
    assert_eq!(getter.wait().result.as_deref(), Ok("42"));
    pool.shutdown().unwrap();
}

#[test]
fn shutdown_reports_every_worker_and_leaks_nothing() {
    let pool = Pool::builder().workers(3).build().unwrap();
    for i in 0..6 {
        pool.submit(fib_job(10 + i % 3)).unwrap();
    }
    // A short deadline that still comfortably covers the drain: if a
    // worker thread wedged or leaked, this returns Err and the test fails.
    let report = pool.shutdown_timeout(Duration::from_secs(20)).unwrap();
    assert_eq!(report.workers.len(), 3, "every worker joined and reported");
    assert_eq!(report.counters.completed, 6);
    let instructions: u64 = report.workers.iter().map(|w| w.vm.instructions).sum();
    assert!(instructions > 0, "per-worker VmStats were aggregated");
}

#[test]
fn submit_after_shutdown_is_refused() {
    let pool = Pool::builder().workers(1).build().unwrap();
    let stats = pool.stats();
    assert_eq!(stats.submitted, 0);
    // Close via drop path: build a second pool to keep using the API.
    drop(pool);
    let pool = Pool::builder().workers(1).build().unwrap();
    let h = pool.submit(fib_job(10)).unwrap();
    h.wait();
    pool.shutdown().unwrap();
}

#[test]
fn mixed_sleep_and_cpu_jobs_overlap_across_workers() {
    // Four 60 ms sleeps on four workers should take far less than the
    // 240 ms serial total — the scaling mechanism E11 measures.
    let pool = Pool::builder().workers(4).build().unwrap();
    let t0 = std::time::Instant::now();
    let handles: Vec<_> = (0..4)
        .map(|i| {
            pool.submit(JobSpec::new(format!("io-{i}"), "(begin (sleep-ms 60) 'served)")).unwrap()
        })
        .collect();
    for h in &handles {
        assert_eq!(h.wait().result.as_deref(), Ok("served"));
    }
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_millis(200),
        "4 sleeps of 60ms must overlap, took {elapsed:?}"
    );
    pool.shutdown().unwrap();
}

#[test]
fn timer_wait_suspends_instead_of_spinning() {
    // 8 concurrent 80 ms timer-waits on ONE worker finish in ~one timer
    // period, and the pool counts the suspensions: blocked time holds no
    // worker and burns no fuel.
    let pool = Pool::builder().workers(1).resident_cap(16).build().unwrap();
    let t0 = std::time::Instant::now();
    let handles: Vec<_> = (0..8)
        .map(|i| {
            pool.submit(JobSpec::new(format!("wait-{i}"), "(begin (timer-wait 80) 'woke)")).unwrap()
        })
        .collect();
    for h in &handles {
        assert_eq!(h.wait().result.as_deref(), Ok("woke"));
    }
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_millis(400),
        "8 overlapping 80ms waits on one worker took {elapsed:?}"
    );
    let report = pool.shutdown().unwrap();
    assert_eq!(report.counters.timer_waits, 8);
    assert!(report.counters.io_wakeups >= 8);
    assert!(report.counters.blocked_highwater >= 2, "the waits actually overlapped");
}
