//! End-to-end reactor tests: guest jobs blocking on real loopback
//! sockets and timers, woken by poll(2) readiness, with the pool's
//! accounting checked after every drain.
//!
//! The scenarios mirror the embedder contract:
//! - readiness wakeup: an echo server and its client, all green threads;
//! - timer ordering: staggered `timer-wait`s complete in deadline order;
//! - peer close mid-read: EOF, not a wedge;
//! - FD exhaustion: a catchable `io-error` condition, not a crash;
//! - determinism: N echo clients produce the same multiset of results
//!   under 1, 2, and 4 workers (proptest).

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use oneshot_exec::{JobSpec, Pool, PoolBuilder};
use oneshot_vm::VmConfig;
use proptest::prelude::*;

/// A pool sized for socket tests: enough residents per worker that one
/// worker can interleave a listener's handlers and their clients.
fn net_pool(workers: usize) -> PoolBuilder {
    Pool::builder().workers(workers).resident_cap(64).fuel_slice(2048)
}

/// Pinned to worker 0: bind a loopback listener into the worker's
/// globals, return its port.
const LISTEN: &str = "(define lst (tcp-listen 0)) (tcp-local-port lst)";

/// Serve exactly one connection on the worker-global `lst`, echoing every
/// chunk until the peer closes, then return what was served.
const SERVE_ONE: &str = "(define (serve-once)
       (let ((c (tcp-accept lst)))
         (let loop ((seen \"\"))
           (let ((d (tcp-read c 4096)))
             (if (eq? d 'eof)
                 (begin (tcp-close c) seen)
                 (begin (tcp-write c d) (loop (string-append seen d))))))))
     (serve-once)";

/// Connect to `port`, send `msg`, read it back in full, close, return it.
fn client_src(port: u16, msg: &str) -> String {
    format!(
        "(define (read-n s n acc)
           (if (>= (string-length acc) n)
               acc
               (let ((d (tcp-read s 4096)))
                 (if (eq? d 'eof) acc (read-n s n (string-append acc d))))))
         (let ((s (tcp-connect {port})))
           (tcp-write s \"{msg}\")
           (let ((r (read-n s (string-length \"{msg}\") \"\")))
             (tcp-close s)
             r))"
    )
}

fn setup_listener(pool: &Pool) -> u16 {
    let port = pool
        .submit(JobSpec::new("listen", LISTEN).pin(0))
        .unwrap()
        .wait()
        .result
        .expect("listener binds");
    port.parse().expect("port is a fixnum")
}

#[test]
fn echo_roundtrip_between_green_threads() {
    let pool = net_pool(2).build().unwrap();
    let port = setup_listener(&pool);
    let server = pool.submit(JobSpec::new("server", SERVE_ONE).pin(0)).unwrap();
    let client = pool.submit(JobSpec::new("client", client_src(port, "hello-reactor"))).unwrap();
    assert_eq!(client.wait().result.as_deref(), Ok("\"hello-reactor\""));
    assert_eq!(server.wait().result.as_deref(), Ok("\"hello-reactor\""));
    let report = pool.shutdown_timeout(Duration::from_secs(30)).unwrap();
    assert_eq!(report.counters.failed, 0);
    assert!(report.counters.io_blocked >= 1, "accept or read must have suspended");
    assert!(report.counters.io_wakeups >= 1, "the reactor must have delivered");
}

#[test]
fn staggered_timers_complete_in_deadline_order() {
    // Submitted longest-first on one worker; completion callbacks record
    // the order, which must follow the deadlines, not submission.
    use std::sync::{Arc, Mutex};
    let pool = net_pool(1).build().unwrap();
    let order = Arc::new(Mutex::new(Vec::new()));
    // Gaps are wide (150 ms) so a loaded one-core CI host can't delay a
    // later submit past an earlier job's deadline.
    let handles: Vec<_> = [450u64, 300, 150]
        .iter()
        .map(|ms| {
            let order = Arc::clone(&order);
            let ms = *ms;
            pool.submit(
                JobSpec::new(format!("t-{ms}"), format!("(begin (timer-wait {ms}) {ms})"))
                    .on_complete(move |_| order.lock().unwrap().push(ms)),
            )
            .unwrap()
        })
        .collect();
    for h in &handles {
        assert!(h.wait().result.is_ok());
    }
    assert_eq!(*order.lock().unwrap(), vec![150, 300, 450]);
    let report = pool.shutdown().unwrap();
    assert_eq!(report.counters.timer_waits, 3);
}

#[test]
fn peer_close_mid_read_is_eof_not_a_wedge() {
    let pool = net_pool(1).build().unwrap();
    let port = setup_listener(&pool);
    let server = pool
        .submit(
            JobSpec::new(
                "count-until-eof",
                "(let ((c (tcp-accept lst)))
                   (let loop ((n 0))
                     (let ((d (tcp-read c 4096)))
                       (if (eq? d 'eof)
                           (begin (tcp-close c) (list 'eof-after n))
                           (loop (+ n (string-length d)))))))",
            )
            .pin(0),
        )
        .unwrap();
    let mut peer = TcpStream::connect(("127.0.0.1", port)).unwrap();
    peer.write_all(b"abc").unwrap();
    drop(peer); // close mid-conversation: the blocked read must see EOF
    assert_eq!(server.wait().result.as_deref(), Ok("(eof-after 3)"));
    let report = pool.shutdown_timeout(Duration::from_secs(30)).unwrap();
    assert_eq!(report.counters.failed, 0);
}

#[test]
fn fd_exhaustion_is_a_catchable_condition() {
    let cfg = VmConfig { max_open_sockets: 2, ..VmConfig::default() };
    let pool = net_pool(1).vm_config(cfg).build().unwrap();
    let h = pool
        .submit(JobSpec::new(
            "exhaust",
            "(call-with-guard
               (lambda (c) (list 'caught (condition-kind c)))
               (lambda ()
                 (begin (tcp-listen 0) (tcp-listen 0) (tcp-listen 0) 'no-condition)))",
        ))
        .unwrap();
    assert_eq!(h.wait().result.as_deref(), Ok("(caught io-error)"));
    let report = pool.shutdown().unwrap();
    assert_eq!(report.counters.completed, 1, "the job recovered, it did not fail");
}

fn run_echo_fleet(workers: usize, msgs: &[String]) -> Vec<String> {
    let pool = net_pool(workers).build().unwrap();
    let port = setup_listener(&pool);
    let servers: Vec<_> = (0..msgs.len())
        .map(|i| pool.submit(JobSpec::new(format!("server-{i}"), SERVE_ONE).pin(0)).unwrap())
        .collect();
    let clients: Vec<_> = msgs
        .iter()
        .enumerate()
        .map(|(i, m)| {
            pool.submit(JobSpec::new(format!("client-{i}"), client_src(port, m))).unwrap()
        })
        .collect();
    let mut got: Vec<String> =
        clients.iter().map(|h| h.wait().result.expect("echo client succeeds")).collect();
    for s in &servers {
        assert!(s.wait().result.is_ok());
    }
    pool.shutdown_timeout(Duration::from_secs(60)).unwrap();
    got.sort();
    got
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]

    /// The multiset of echoed payloads is worker-count-invariant: the
    /// reactor's wakeup order and work stealing stay invisible in results.
    #[test]
    fn echo_results_are_worker_count_invariant(
        msgs in proptest::collection::vec("[a-z0-9]{1,24}", 1..8),
    ) {
        let mut expected: Vec<String> = msgs.iter().map(|m| format!("\"{m}\"")).collect();
        expected.sort();
        for workers in [1usize, 2, 4] {
            let got = run_echo_fleet(workers, &msgs);
            prop_assert_eq!(&got, &expected, "diverged at {} workers", workers);
        }
    }
}
