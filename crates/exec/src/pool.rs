//! The pool: submission, the shared listener, backpressure, shutdown, and
//! observability.

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use oneshot_vm::{CompiledProgram, CompilerOptions, Pipeline, Vm, VmConfig, VmStats};

use crate::error::Error;
use crate::job::{Admission, Job, JobHandle, JobId, JobSpec, OnComplete, OutcomeSlot};
use crate::queue::{Injector, PushRefused, StealQueue};
use crate::reactor::{Backend, ReactorCore, WakeHandle};
use crate::worker::{self, WorkerCtx};

/// Per-worker knobs, fixed at build time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WorkerConfig {
    /// Procedure calls per engine slice (the preemption quantum).
    pub(crate) fuel_slice: u64,
    /// Maximum jobs resident (started) on one worker at a time — running
    /// *or* blocked on I/O; both hold engine state in the worker's VM.
    pub(crate) resident_cap: usize,
    /// Jobs pulled from the injector per visit (the extras become
    /// stealable local work).
    pub(crate) grab_batch: usize,
    /// Times a job failing with a *transient* error is requeued before its
    /// failure is delivered (0 = fail on first error).
    pub(crate) max_retries: u32,
}

/// Configures and builds a [`Pool`].
#[derive(Debug, Clone)]
pub struct PoolBuilder {
    workers: usize,
    fuel_slice: u64,
    queue_capacity: usize,
    resident_cap: usize,
    grab_batch: usize,
    max_retries: u32,
    vm_config: VmConfig,
    backend: Option<Backend>,
}

impl Default for PoolBuilder {
    fn default() -> Self {
        PoolBuilder {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            fuel_slice: 4096,
            queue_capacity: 256,
            resident_cap: 8,
            grab_batch: 4,
            max_retries: 0,
            vm_config: VmConfig::default(),
            backend: None,
        }
    }
}

impl PoolBuilder {
    /// Number of OS worker threads (≥ 1). Defaults to the machine's
    /// available parallelism.
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Procedure calls a job runs before preemption (≥ 1). Small slices
    /// give fair latency, large slices give throughput — E11 measures the
    /// trade-off.
    #[must_use]
    pub fn fuel_slice(mut self, calls: u64) -> Self {
        self.fuel_slice = calls.max(1);
        self
    }

    /// Injector capacity (≥ 1): beyond this, a
    /// [`Admission::Blocking`](crate::Admission::Blocking) submit blocks
    /// and a [`Admission::NonBlocking`](crate::Admission::NonBlocking)
    /// submit refuses.
    #[must_use]
    pub fn queue_capacity(mut self, jobs: usize) -> Self {
        self.queue_capacity = jobs.max(1);
        self
    }

    /// Maximum jobs concurrently started (engine-resident) per worker
    /// (≥ 1), counting jobs blocked on I/O or timers. More residents mean
    /// fairer interleaving and more concurrent connections, but a bigger
    /// blast radius when a job panics. This is the knob that sets how many
    /// green threads a server pool holds open at once.
    #[must_use]
    pub fn resident_cap(mut self, jobs: usize) -> Self {
        self.resident_cap = jobs.max(1);
        self
    }

    /// How many times a job that fails with a *transient* error (see
    /// [`Error::transient`](crate::Error::transient)) is requeued — with
    /// exponential backoff — before its failure is delivered. Defaults to
    /// 0: every failure is final. [`JobSpec::retries`] overrides this per
    /// job.
    #[must_use]
    pub fn max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Configuration for every worker's VM (resource guards, fault plan,
    /// probes, GC threshold, socket-table cap, ...). Lets a pool run with
    /// per-job heap budgets or a deterministic chaos plan. Defaults to
    /// [`VmConfig::default`].
    #[must_use]
    pub fn vm_config(mut self, cfg: VmConfig) -> Self {
        self.vm_config = cfg;
        self
    }

    /// Forces a specific reactor backend instead of
    /// [`Backend::from_env`]'s choice (`epoll` where available, the
    /// `ONESHOT_REACTOR=poll|epoll` variable overriding). Programmatic
    /// selection is what lets a differential test run both backends in one
    /// process without racing on the environment.
    #[must_use]
    pub fn reactor_backend(mut self, backend: Backend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Builds the per-worker reactors and spawns the workers.
    ///
    /// # Errors
    ///
    /// Propagates the OS error if a thread (or a reactor's wakeup pipe)
    /// cannot be created.
    pub fn build(self) -> std::io::Result<Pool> {
        let injector = Arc::new(Injector::new(self.queue_capacity));
        let queues: Arc<Vec<StealQueue>> =
            Arc::new((0..self.workers).map(|_| StealQueue::default()).collect());
        let conns: Arc<Vec<ConnQueue>> =
            Arc::new((0..self.workers).map(|_| ConnQueue::default()).collect());
        // Build every reactor before spawning anything: a failure here
        // leaks no threads. The *actual* backend can differ from the
        // wanted one (epoll_create1 refused -> poll fallback).
        let want = self.backend.unwrap_or_else(Backend::from_env);
        let mut reactors = Vec::with_capacity(self.workers);
        for _ in 0..self.workers {
            reactors.push(ReactorCore::new(want)?);
        }
        let backend = reactors.first().map_or(want, ReactorCore::backend);
        let wakes: Vec<WakeHandle> = reactors.iter().map(ReactorCore::wake_handle).collect();
        let counters = Arc::new(PoolCounters::new(self.workers, backend));
        let (report_tx, report_rx) = mpsc::channel();
        let cfg = WorkerConfig {
            fuel_slice: self.fuel_slice,
            resident_cap: self.resident_cap,
            grab_batch: self.grab_batch,
            max_retries: self.max_retries,
        };
        let vm_config = Arc::new(self.vm_config);
        let next_conn = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::with_capacity(self.workers);
        for (index, reactor) in reactors.into_iter().enumerate() {
            let ctx = WorkerCtx {
                index,
                cfg,
                vm_config: Arc::clone(&vm_config),
                injector: Arc::clone(&injector),
                queues: Arc::clone(&queues),
                counters: Arc::clone(&counters),
                reactor: Some(reactor),
                conns: Arc::clone(&conns),
                next_conn: Arc::clone(&next_conn),
                report_tx: report_tx.clone(),
            };
            let handle = std::thread::Builder::new()
                .name(format!("oneshot-exec-{index}"))
                .spawn(move || worker::run(ctx))?;
            handles.push(handle);
        }
        Ok(Pool {
            injector,
            queues,
            conns,
            counters,
            handles,
            wakes,
            acceptors: Mutex::new(Vec::new()),
            report_rx,
            next_job: AtomicU64::new(0),
            workers: self.workers,
            backend,
        })
    }
}

/// Pool-wide event counters (all `Relaxed`: totals, not synchronization).
#[derive(Debug)]
pub(crate) struct PoolCounters {
    pub(crate) submitted: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) timed_out: AtomicU64,
    pub(crate) panicked: AtomicU64,
    pub(crate) retried: AtomicU64,
    pub(crate) steals: AtomicU64,
    pub(crate) requeues: AtomicU64,
    pub(crate) vm_rebuilds: AtomicU64,
    pub(crate) slices: AtomicU64,
    pub(crate) queue_depth_highwater: AtomicU64,
    pub(crate) io_blocked: AtomicU64,
    pub(crate) io_wakeups: AtomicU64,
    pub(crate) timer_waits: AtomicU64,
    pub(crate) blocked_highwater: AtomicU64,
    pub(crate) accept_queue_highwater: AtomicU64,
    pub(crate) accept_overflow: AtomicU64,
    accepts: Vec<AtomicU64>,
    resume_depth_highwater: Vec<AtomicU64>,
    wake_lateness: Vec<AtomicU64>,
    backend: Backend,
}

impl PoolCounters {
    fn new(workers: usize, backend: Backend) -> Self {
        PoolCounters {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            requeues: AtomicU64::new(0),
            vm_rebuilds: AtomicU64::new(0),
            slices: AtomicU64::new(0),
            queue_depth_highwater: AtomicU64::new(0),
            io_blocked: AtomicU64::new(0),
            io_wakeups: AtomicU64::new(0),
            timer_waits: AtomicU64::new(0),
            blocked_highwater: AtomicU64::new(0),
            accept_queue_highwater: AtomicU64::new(0),
            accept_overflow: AtomicU64::new(0),
            accepts: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            resume_depth_highwater: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            wake_lateness: (0..crate::reactor::WAKE_LATENESS_BUCKETS)
                .map(|_| AtomicU64::new(0))
                .collect(),
            backend,
        }
    }

    fn snapshot(&self) -> PoolCountersSnapshot {
        PoolCountersSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            panicked: self.panicked.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            requeues: self.requeues.load(Ordering::Relaxed),
            vm_rebuilds: self.vm_rebuilds.load(Ordering::Relaxed),
            slices: self.slices.load(Ordering::Relaxed),
            queue_depth_highwater: self.queue_depth_highwater.load(Ordering::Relaxed),
            io_blocked: self.io_blocked.load(Ordering::Relaxed),
            io_wakeups: self.io_wakeups.load(Ordering::Relaxed),
            timer_waits: self.timer_waits.load(Ordering::Relaxed),
            blocked_highwater: self.blocked_highwater.load(Ordering::Relaxed),
            accept_queue_highwater: self.accept_queue_highwater.load(Ordering::Relaxed),
            accept_overflow: self.accept_overflow.load(Ordering::Relaxed),
            accepts_per_worker: self.accepts.iter().map(|a| a.load(Ordering::Relaxed)).collect(),
            resume_depth_highwater: self
                .resume_depth_highwater
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
            wake_lateness: self.wake_lateness.iter().map(|a| a.load(Ordering::Relaxed)).collect(),
            reactor_backend: self.backend.name(),
        }
    }

    fn note_depth(&self, depth: usize) {
        self.queue_depth_highwater.fetch_max(depth as u64, Ordering::Relaxed);
    }

    pub(crate) fn note_accept(&self, worker: usize) {
        self.accepts[worker].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_resume_depth(&self, worker: usize, depth: usize) {
        self.resume_depth_highwater[worker].fetch_max(depth as u64, Ordering::Relaxed);
    }

    pub(crate) fn add_lateness(&self, hist: &[u64]) {
        for (slot, &n) in self.wake_lateness.iter().zip(hist) {
            if n > 0 {
                slot.fetch_add(n, Ordering::Relaxed);
            }
        }
    }
}

/// A point-in-time copy of the pool's counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolCountersSnapshot {
    /// Jobs accepted by [`Pool::submit`].
    pub submitted: u64,
    /// Jobs that finished with a value.
    pub completed: u64,
    /// Jobs that finished with any [`Error`](crate::Error).
    pub failed: u64,
    /// Subset of `failed`: fuel budget exhausted.
    pub timed_out: u64,
    /// Subset of `failed`: the job itself panicked.
    pub panicked: u64,
    /// Transient failures that were requeued for another attempt (not
    /// counted in `failed` unless the final attempt also failed).
    pub retried: u64,
    /// Jobs taken from another worker's deque.
    pub steals: u64,
    /// Preemptions: a job parked after its slice and was requeued.
    pub requeues: u64,
    /// Fresh VMs built after a panic.
    pub vm_rebuilds: u64,
    /// Engine fuel slices run.
    pub slices: u64,
    /// Deepest the injector queue ever got.
    pub queue_depth_highwater: u64,
    /// Suspensions on socket readiness (`tcp-accept`, `tcp-read`,
    /// `tcp-write` finding the fd not ready).
    pub io_blocked: u64,
    /// Readiness/deadline deliveries the per-worker reactors made (I/O
    /// and timers).
    pub io_wakeups: u64,
    /// Suspensions on `timer-wait`.
    pub timer_waits: u64,
    /// Most jobs simultaneously blocked on any single worker — the honest
    /// measure of peak per-worker green-thread concurrency.
    pub blocked_highwater: u64,
    /// Most accepted-but-unadopted connections pending across every
    /// worker's intake queue at once.
    pub accept_queue_highwater: u64,
    /// Accepted connections shed because the owning worker's socket table
    /// was full.
    pub accept_overflow: u64,
    /// Connections the shared listener routed to each worker — flat when
    /// the least-loaded/round-robin distribution is doing its job.
    pub accepts_per_worker: Vec<u64>,
    /// Largest single-harvest wakeup batch per worker: how many sealed
    /// continuations one reactor pass requeued at once.
    pub resume_depth_highwater: Vec<u64>,
    /// Timer wake-lateness histogram, summed across workers: delivery
    /// time minus deadline, bucketed by
    /// [`WAKE_LATENESS_BUCKETS_MS`](crate::WAKE_LATENESS_BUCKETS_MS)
    /// (the last bucket is the unbounded tail). Measured inside the
    /// reactor, so it is pure scheduler lag.
    pub wake_lateness: Vec<u64>,
    /// Which readiness backend the pool's reactors run (`"poll"` or
    /// `"epoll"`).
    pub reactor_backend: &'static str,
}

impl PoolCountersSnapshot {
    /// The counters accumulated between `earlier` and `self`: monotonic
    /// counters subtract (saturating), highwater gauges and the backend
    /// tag carry the later value — the same convention as
    /// `VmStats::delta_since`.
    #[must_use]
    pub fn delta_since(&self, earlier: &PoolCountersSnapshot) -> PoolCountersSnapshot {
        PoolCountersSnapshot {
            submitted: self.submitted.saturating_sub(earlier.submitted),
            completed: self.completed.saturating_sub(earlier.completed),
            failed: self.failed.saturating_sub(earlier.failed),
            timed_out: self.timed_out.saturating_sub(earlier.timed_out),
            panicked: self.panicked.saturating_sub(earlier.panicked),
            retried: self.retried.saturating_sub(earlier.retried),
            steals: self.steals.saturating_sub(earlier.steals),
            requeues: self.requeues.saturating_sub(earlier.requeues),
            vm_rebuilds: self.vm_rebuilds.saturating_sub(earlier.vm_rebuilds),
            slices: self.slices.saturating_sub(earlier.slices),
            queue_depth_highwater: self.queue_depth_highwater,
            io_blocked: self.io_blocked.saturating_sub(earlier.io_blocked),
            io_wakeups: self.io_wakeups.saturating_sub(earlier.io_wakeups),
            timer_waits: self.timer_waits.saturating_sub(earlier.timer_waits),
            blocked_highwater: self.blocked_highwater,
            accept_queue_highwater: self.accept_queue_highwater,
            accept_overflow: self.accept_overflow.saturating_sub(earlier.accept_overflow),
            accepts_per_worker: self
                .accepts_per_worker
                .iter()
                .zip(earlier.accepts_per_worker.iter().chain(std::iter::repeat(&0)))
                .map(|(now, then)| now.saturating_sub(*then))
                .collect(),
            resume_depth_highwater: self.resume_depth_highwater.clone(),
            wake_lateness: self
                .wake_lateness
                .iter()
                .zip(earlier.wake_lateness.iter().chain(std::iter::repeat(&0)))
                .map(|(now, then)| now.saturating_sub(*then))
                .collect(),
            reactor_backend: self.reactor_backend,
        }
    }
}

/// Key `VmStats` counters summed across a worker's VM incarnations
/// (a panic-triggered rebuild starts a new incarnation).
#[derive(Debug, Clone, Copy, Default)]
pub struct VmTotals {
    /// Bytecode instructions executed.
    pub instructions: u64,
    /// Procedure calls performed.
    pub calls: u64,
    /// Garbage collections run.
    pub gc_collections: u64,
    /// Nanoseconds spent in the collector.
    pub gc_pause_ns: u64,
    /// Objects reclaimed by the collector.
    pub gc_objects_freed: u64,
    /// Heap objects allocated.
    pub objects_allocated: u64,
    /// One-shot continuation captures (engine preemptions mostly).
    pub captures_one: u64,
    /// One-shot reinstatements (engine resumes mostly).
    pub reinstates_one: u64,
    /// Stack slots copied (stays near zero: one-shot switches copy
    /// nothing).
    pub slots_copied: u64,
    /// Conditions raised (caught or not) across all incarnations —
    /// survives panic-triggered VM rebuilds rather than being dropped with
    /// the poisoned VM.
    pub conditions_raised: u64,
    /// Deterministic faults the fault plan injected and the VM consumed.
    pub faults_injected: u64,
}

impl VmTotals {
    pub(crate) fn add(&mut self, s: &VmStats) {
        self.instructions += s.instructions;
        self.calls += s.calls;
        self.gc_collections += s.gc_collections;
        self.gc_pause_ns += s.gc_pause_ns;
        self.gc_objects_freed += s.gc_objects_freed;
        self.objects_allocated += s.heap.objects_allocated;
        self.captures_one += s.stack.captures_one;
        self.reinstates_one += s.stack.reinstates_one;
        self.slots_copied += s.stack.slots_copied;
        self.conditions_raised += s.conditions_raised;
        self.faults_injected += s.faults_injected;
    }
}

/// What one worker did over its lifetime, reported at shutdown.
#[derive(Debug, Clone)]
pub struct WorkerReport {
    /// The worker's index.
    pub worker: usize,
    /// Jobs this worker completed successfully.
    pub jobs_ok: u64,
    /// Jobs this worker reported as failed.
    pub jobs_failed: u64,
    /// Fuel slices this worker ran.
    pub slices: u64,
    /// Jobs this worker stole from peers.
    pub steals: u64,
    /// Transient failures this worker requeued for another attempt.
    pub retries: u64,
    /// VMs this worker built after panics.
    pub vm_rebuilds: u64,
    /// VM counters summed over all incarnations.
    pub vm: VmTotals,
}

impl WorkerReport {
    pub(crate) fn new(worker: usize) -> Self {
        WorkerReport {
            worker,
            jobs_ok: 0,
            jobs_failed: 0,
            slices: 0,
            steals: 0,
            retries: 0,
            vm_rebuilds: 0,
            vm: VmTotals::default(),
        }
    }
}

/// Everything a completed shutdown reports.
#[derive(Debug, Clone)]
pub struct PoolReport {
    /// Per-worker reports, sorted by worker index.
    pub workers: Vec<WorkerReport>,
    /// Final pool-wide counters.
    pub counters: PoolCountersSnapshot,
}

/// The handler blueprint [`Pool::serve`] compiles once and stamps into a
/// fresh [`Job`] per accepted connection.
pub(crate) struct HandlerTemplate {
    name: String,
    prog: Arc<CompiledProgram>,
    fuel: u64,
    deadline: Option<Duration>,
    retries: Option<u32>,
    on_complete: Option<OnComplete>,
}

impl std::fmt::Debug for ConnQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConnQueue").field("depth", &self.depth()).finish()
    }
}

impl HandlerTemplate {
    pub(crate) fn make_job(&self, id: u64) -> Job {
        Job {
            id: JobId(id),
            name: self.name.clone(),
            prog: Arc::clone(&self.prog),
            fuel_budget: self.fuel,
            deadline: self.deadline.map(|d| Instant::now() + d),
            retries: self.retries,
            pinned: true,
            submitted: Instant::now(),
            slot: Arc::new(OutcomeSlot::default()),
            on_complete: self.on_complete.clone(),
            attempts: 0,
        }
    }
}

/// One worker's intake queue of accepted connections, filled by the
/// shared-listener acceptor and drained by the owning worker.
#[derive(Default)]
pub(crate) struct ConnQueue {
    q: Mutex<std::collections::VecDeque<(TcpStream, Arc<HandlerTemplate>)>>,
}

impl ConnQueue {
    fn push(&self, stream: TcpStream, tmpl: Arc<HandlerTemplate>) -> usize {
        let mut q = self.q.lock().expect("conn queue poisoned");
        q.push_back((stream, tmpl));
        q.len()
    }

    pub(crate) fn pop(&self) -> Option<(TcpStream, Arc<HandlerTemplate>)> {
        self.q.lock().expect("conn queue poisoned").pop_front()
    }

    fn depth(&self) -> usize {
        self.q.lock().expect("conn queue poisoned").len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.depth() == 0
    }
}

/// Shared state between a running acceptor thread and its
/// [`ServeHandle`].
#[derive(Debug)]
struct AcceptorShared {
    stop: AtomicBool,
    accepted: AtomicU64,
}

#[derive(Debug)]
struct Acceptor {
    shared: Arc<AcceptorShared>,
    handle: JoinHandle<()>,
}

/// A running shared listener started by [`Pool::serve`]: reports the
/// bound port and accept count, and can stop accepting early (the
/// listener also stops at pool shutdown).
#[derive(Debug)]
pub struct ServeHandle {
    port: u16,
    shared: Arc<AcceptorShared>,
}

impl ServeHandle {
    /// The port the listener actually bound (useful with `:0`).
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Connections accepted and routed to workers so far.
    pub fn accepted(&self) -> u64 {
        self.shared.accepted.load(Ordering::Relaxed)
    }

    /// Asks the acceptor thread to stop listening. Connections already
    /// routed still get handled; the thread is joined at pool shutdown.
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::Relaxed);
    }
}

/// A pool of OS worker threads, each owning a VM that runs jobs as
/// engine-preempted green threads *and* its own reactor: a blocked job's
/// readiness wait lives on the worker that holds its sealed continuation,
/// so a wakeup is a local queue move, not a cross-thread handoff. See the
/// crate docs for the full model and an example.
#[derive(Debug)]
pub struct Pool {
    injector: Arc<Injector>,
    queues: Arc<Vec<StealQueue>>,
    conns: Arc<Vec<ConnQueue>>,
    counters: Arc<PoolCounters>,
    handles: Vec<JoinHandle<()>>,
    wakes: Vec<WakeHandle>,
    acceptors: Mutex<Vec<Acceptor>>,
    report_rx: mpsc::Receiver<WorkerReport>,
    next_job: AtomicU64,
    workers: usize,
    backend: Backend,
}

impl Pool {
    /// Starts configuring a pool.
    pub fn builder() -> PoolBuilder {
        PoolBuilder::default()
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// The readiness backend the pool's per-worker reactors run.
    pub fn reactor_backend(&self) -> Backend {
        self.backend
    }

    /// Current injector depth (jobs accepted but not yet picked up).
    pub fn queue_depth(&self) -> usize {
        self.injector.depth()
    }

    /// Accepted connections not yet adopted by their worker, summed over
    /// all intake queues — the live accept-queue depth.
    pub fn accept_queue_depth(&self) -> usize {
        self.conns.iter().map(ConnQueue::depth).sum()
    }

    /// A snapshot of the pool-wide counters.
    pub fn stats(&self) -> PoolCountersSnapshot {
        self.counters.snapshot()
    }

    /// Rings every worker's wake pipe so idle reactor waits re-check
    /// their queues promptly.
    fn ring_workers(&self) {
        for w in &self.wakes {
            w.ring();
        }
    }

    /// Compiles `spec` and enqueues it. The spec's
    /// [`admission`](JobSpec::admission) decides the full-queue policy:
    /// [`Admission::Blocking`] waits for room (backpressure),
    /// [`Admission::NonBlocking`] refuses with
    /// [`ErrorKind::QueueFull`](crate::ErrorKind::QueueFull) and hands the
    /// spec back via [`Error::into_refused_spec`].
    ///
    /// A [`pinned`](JobSpec::pin) spec bypasses the injector entirely: it
    /// goes straight to the chosen worker's queue (never stolen, never
    /// counted against `queue_capacity`), which is how jobs that must
    /// share one VM's globals are kept together.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Compile`](crate::ErrorKind::Compile),
    /// [`ErrorKind::QueueFull`](crate::ErrorKind::QueueFull) (nonblocking
    /// only), or [`ErrorKind::PoolClosed`](crate::ErrorKind::PoolClosed).
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, Error> {
        // Compile once, on the submitting thread; workers only link.
        let prog = Vm::compile_str(&spec.source, Pipeline::Direct, CompilerOptions::default())
            .map_err(Error::compile)?;
        let id = JobId(self.next_job.fetch_add(1, Ordering::Relaxed));
        let slot = Arc::new(OutcomeSlot::default());
        let job = Job {
            id,
            name: spec.name.clone(),
            prog: Arc::new(prog),
            fuel_budget: spec.fuel,
            deadline: spec.deadline.map(|d| Instant::now() + d),
            retries: spec.retries,
            pinned: spec.pin.is_some(),
            submitted: Instant::now(),
            slot: Arc::clone(&slot),
            on_complete: spec.on_complete.clone(),
            attempts: 0,
        };
        let handle = JobHandle { id, name: spec.name.clone(), slot };
        if let Some(pin) = spec.pin {
            if self.injector.is_closed() {
                return Err(Error::pool_closed());
            }
            let target = pin % self.workers;
            self.queues[target].push(job);
            self.injector.notify_workers();
            self.wakes[target].ring();
            self.counters.submitted.fetch_add(1, Ordering::Relaxed);
            return Ok(handle);
        }
        let pushed = match spec.admission {
            Admission::Blocking => self.injector.push(job),
            Admission::NonBlocking => self.injector.try_push(job),
        };
        match pushed {
            Ok(depth) => {
                self.counters.submitted.fetch_add(1, Ordering::Relaxed);
                self.counters.note_depth(depth);
                self.ring_workers();
                Ok(handle)
            }
            Err(PushRefused::Full) => Err(Error::queue_full(spec)),
            Err(PushRefused::Closed) => Err(Error::pool_closed()),
        }
    }

    /// Binds one shared `AF_INET` listener at `addr` (e.g.
    /// `"127.0.0.1:0"`) and spawns an acceptor thread that distributes
    /// accepted connections across the worker reactors — least-loaded by
    /// pending intake depth, round-robin among ties. Each connection is
    /// adopted into its worker's VM socket table and handled by a fresh
    /// instance of `handler` (compiled once), which fetches its socket
    /// token with `(conn-take)`.
    ///
    /// Handler outcomes are delivered to the spec's
    /// [`on_complete`](JobSpec::on_complete) callback; there is no
    /// per-connection [`JobHandle`].
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Compile`](crate::ErrorKind::Compile) for a bad
    /// handler, [`ErrorKind::Io`](crate::ErrorKind::Io) if the bind
    /// fails, [`ErrorKind::PoolClosed`](crate::ErrorKind::PoolClosed)
    /// after shutdown began.
    pub fn serve(&self, addr: &str, handler: JobSpec) -> Result<ServeHandle, Error> {
        if self.injector.is_closed() {
            return Err(Error::pool_closed());
        }
        let prog = Vm::compile_str(&handler.source, Pipeline::Direct, CompilerOptions::default())
            .map_err(Error::compile)?;
        let listener = TcpListener::bind(addr).map_err(|e| Error::io("bind", e))?;
        listener.set_nonblocking(true).map_err(|e| Error::io("set_nonblocking", e))?;
        let port = listener.local_addr().map_err(|e| Error::io("local_addr", e))?.port();
        let tmpl = Arc::new(HandlerTemplate {
            name: handler.name.clone(),
            prog: Arc::new(prog),
            fuel: handler.fuel,
            deadline: handler.deadline,
            retries: handler.retries,
            on_complete: handler.on_complete.clone(),
        });
        let shared =
            Arc::new(AcceptorShared { stop: AtomicBool::new(false), accepted: AtomicU64::new(0) });
        let thread_shared = Arc::clone(&shared);
        let conns = Arc::clone(&self.conns);
        let counters = Arc::clone(&self.counters);
        let injector = Arc::clone(&self.injector);
        let wakes = self.wakes.clone();
        let thread_tmpl = Arc::clone(&tmpl);
        let handle = std::thread::Builder::new()
            .name(format!("oneshot-accept-{port}"))
            .spawn(move || {
                accept_loop(
                    &listener,
                    &thread_shared,
                    &thread_tmpl,
                    &conns,
                    &counters,
                    &injector,
                    &wakes,
                );
            })
            .map_err(|e| Error::io("spawn acceptor", e))?;
        self.acceptors
            .lock()
            .expect("acceptor list poisoned")
            .push(Acceptor { shared: Arc::clone(&shared), handle });
        Ok(ServeHandle { port, shared })
    }

    /// Stops every acceptor and joins its thread. Connections already in
    /// the intake queues are still handled by the workers.
    fn stop_acceptors(&self) {
        let acceptors: Vec<Acceptor> =
            self.acceptors.lock().expect("acceptor list poisoned").drain(..).collect();
        for a in &acceptors {
            a.shared.stop.store(true, Ordering::Relaxed);
        }
        for a in acceptors {
            let _ = a.handle.join();
        }
    }

    /// Graceful shutdown with a 60-second deadline: stops the acceptors,
    /// closes the injector, lets the workers drain every queued,
    /// in-flight, *and blocked* job (blocked jobs finish when their I/O
    /// completes or their deadline fires), joins them, and aggregates the
    /// reports. Equivalent to `shutdown_timeout(Duration::from_secs(60))`.
    ///
    /// # Errors
    ///
    /// See [`Pool::shutdown_timeout`].
    pub fn shutdown(self) -> Result<PoolReport, Error> {
        self.shutdown_timeout(Duration::from_secs(60))
    }

    /// As [`Pool::shutdown`] with an explicit deadline.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::ShutdownTimeout`](crate::ErrorKind::ShutdownTimeout)
    /// if some worker failed to drain and check in before the deadline;
    /// its thread is left behind (leaked), which the CI leak test treats
    /// as a failure.
    pub fn shutdown_timeout(mut self, deadline: Duration) -> Result<PoolReport, Error> {
        // Acceptors first: no new connections may enter the intake queues
        // once the injector closes, or a worker could exit with
        // connections stranded.
        self.stop_acceptors();
        self.injector.close();
        self.ring_workers();
        let end = Instant::now() + deadline;
        let mut reports = Vec::with_capacity(self.workers);
        while reports.len() < self.workers {
            let left = end.saturating_duration_since(Instant::now());
            match self.report_rx.recv_timeout(left) {
                Ok(report) => reports.push(report),
                Err(_) => {
                    // Leave the handles unjoined: the caller learns exactly
                    // how many threads are wedged.
                    self.handles.clear();
                    return Err(Error::shutdown_timeout(reports.len(), self.workers));
                }
            }
        }
        // Every worker has sent its report, so joins return immediately.
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        reports.sort_by_key(|r| r.worker);
        Ok(PoolReport { workers: reports, counters: self.counters.snapshot() })
    }
}

impl Drop for Pool {
    /// Best-effort cleanup for pools dropped without [`Pool::shutdown`]:
    /// stops the acceptors, closes the injector, and joins the workers
    /// (they exit once drained).
    fn drop(&mut self) {
        self.stop_acceptors();
        self.injector.close();
        self.ring_workers();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The acceptor thread: polls the shared listener, accepts until
/// would-block, and routes each connection to the least-loaded worker's
/// intake queue (round-robin among equals), ringing that worker awake.
fn accept_loop(
    listener: &TcpListener,
    shared: &AcceptorShared,
    tmpl: &Arc<HandlerTemplate>,
    conns: &[ConnQueue],
    counters: &PoolCounters,
    injector: &Injector,
    wakes: &[WakeHandle],
) {
    use crate::reactor::sys;
    use std::os::fd::AsRawFd;

    let fd = listener.as_raw_fd();
    let mut rr: usize = 0;
    while !shared.stop.load(Ordering::Relaxed) {
        // A short poll tick bounds the stop-flag latency; readiness ends
        // the wait immediately.
        let mut fds = [sys::PollFd { fd, events: sys::POLLIN, revents: 0 }];
        sys::poll_fds(&mut fds, 50);
        let mut routed = false;
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        counters.accept_overflow.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    // Least pending intake wins; the rotating offset
                    // breaks ties round-robin so equal loads spread.
                    let n = conns.len();
                    let target = (0..n)
                        .min_by_key(|&w| (conns[w].depth(), (w + n - rr % n) % n))
                        .unwrap_or(0);
                    rr = rr.wrapping_add(1);
                    let depth = conns[target].push(stream, Arc::clone(tmpl));
                    counters.accept_queue_highwater.fetch_max(depth as u64, Ordering::Relaxed);
                    shared.accepted.fetch_add(1, Ordering::Relaxed);
                    wakes[target].ring();
                    routed = true;
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        if routed {
            injector.notify_workers();
        }
    }
}
