//! The pool: submission, backpressure, shutdown, and observability.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use oneshot_vm::{CompilerOptions, Pipeline, Vm, VmConfig, VmStats};

use crate::error::Error;
use crate::job::{Admission, Job, JobHandle, JobId, JobSpec, OutcomeSlot};
use crate::queue::{Injector, PushRefused, StealQueue};
use crate::reactor::{Reactor, ResumeQueues};
use crate::worker::{self, WorkerCtx};

/// Per-worker knobs, fixed at build time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WorkerConfig {
    /// Procedure calls per engine slice (the preemption quantum).
    pub(crate) fuel_slice: u64,
    /// Maximum jobs resident (started) on one worker at a time — running
    /// *or* blocked on I/O; both hold engine state in the worker's VM.
    pub(crate) resident_cap: usize,
    /// Jobs pulled from the injector per visit (the extras become
    /// stealable local work).
    pub(crate) grab_batch: usize,
    /// Times a job failing with a *transient* error is requeued before its
    /// failure is delivered (0 = fail on first error).
    pub(crate) max_retries: u32,
}

/// Configures and builds a [`Pool`].
#[derive(Debug, Clone)]
pub struct PoolBuilder {
    workers: usize,
    fuel_slice: u64,
    queue_capacity: usize,
    resident_cap: usize,
    grab_batch: usize,
    max_retries: u32,
    vm_config: VmConfig,
}

impl Default for PoolBuilder {
    fn default() -> Self {
        PoolBuilder {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            fuel_slice: 4096,
            queue_capacity: 256,
            resident_cap: 8,
            grab_batch: 4,
            max_retries: 0,
            vm_config: VmConfig::default(),
        }
    }
}

impl PoolBuilder {
    /// Number of OS worker threads (≥ 1). Defaults to the machine's
    /// available parallelism.
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Procedure calls a job runs before preemption (≥ 1). Small slices
    /// give fair latency, large slices give throughput — E11 measures the
    /// trade-off.
    #[must_use]
    pub fn fuel_slice(mut self, calls: u64) -> Self {
        self.fuel_slice = calls.max(1);
        self
    }

    /// Injector capacity (≥ 1): beyond this, a
    /// [`Admission::Blocking`](crate::Admission::Blocking) submit blocks
    /// and a [`Admission::NonBlocking`](crate::Admission::NonBlocking)
    /// submit refuses.
    #[must_use]
    pub fn queue_capacity(mut self, jobs: usize) -> Self {
        self.queue_capacity = jobs.max(1);
        self
    }

    /// Maximum jobs concurrently started (engine-resident) per worker
    /// (≥ 1), counting jobs blocked on I/O or timers. More residents mean
    /// fairer interleaving and more concurrent connections, but a bigger
    /// blast radius when a job panics. This is the knob that sets how many
    /// green threads a server pool holds open at once.
    #[must_use]
    pub fn resident_cap(mut self, jobs: usize) -> Self {
        self.resident_cap = jobs.max(1);
        self
    }

    /// How many times a job that fails with a *transient* error (see
    /// [`Error::transient`](crate::Error::transient)) is requeued — with
    /// exponential backoff — before its failure is delivered. Defaults to
    /// 0: every failure is final. [`JobSpec::retries`] overrides this per
    /// job.
    #[must_use]
    pub fn max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Configuration for every worker's VM (resource guards, fault plan,
    /// probes, GC threshold, socket-table cap, ...). Lets a pool run with
    /// per-job heap budgets or a deterministic chaos plan. Defaults to
    /// [`VmConfig::default`].
    #[must_use]
    pub fn vm_config(mut self, cfg: VmConfig) -> Self {
        self.vm_config = cfg;
        self
    }

    /// Spawns the reactor and the workers.
    ///
    /// # Errors
    ///
    /// Propagates the OS error if a thread (or the reactor's wakeup pipe)
    /// cannot be created.
    pub fn build(self) -> std::io::Result<Pool> {
        let injector = Arc::new(Injector::new(self.queue_capacity));
        let queues: Arc<Vec<StealQueue>> =
            Arc::new((0..self.workers).map(|_| StealQueue::default()).collect());
        let counters = Arc::new(PoolCounters::default());
        let resumes: ResumeQueues =
            Arc::new((0..self.workers).map(|_| Mutex::new(Vec::new())).collect());
        let reactor =
            Reactor::spawn(Arc::clone(&resumes), Arc::clone(&injector), Arc::clone(&counters))?;
        let (report_tx, report_rx) = mpsc::channel();
        let cfg = WorkerConfig {
            fuel_slice: self.fuel_slice,
            resident_cap: self.resident_cap,
            grab_batch: self.grab_batch,
            max_retries: self.max_retries,
        };
        let vm_config = Arc::new(self.vm_config);
        let mut handles = Vec::with_capacity(self.workers);
        for index in 0..self.workers {
            let ctx = WorkerCtx {
                index,
                cfg,
                vm_config: Arc::clone(&vm_config),
                injector: Arc::clone(&injector),
                queues: Arc::clone(&queues),
                counters: Arc::clone(&counters),
                reactor: Arc::clone(&reactor.shared),
                resumes: Arc::clone(&resumes),
                report_tx: report_tx.clone(),
            };
            let handle = std::thread::Builder::new()
                .name(format!("oneshot-exec-{index}"))
                .spawn(move || worker::run(ctx))?;
            handles.push(handle);
        }
        Ok(Pool {
            injector,
            queues,
            counters,
            handles,
            reactor: Some(reactor),
            report_rx,
            next_job: AtomicU64::new(0),
            workers: self.workers,
        })
    }
}

/// Pool-wide event counters (all `Relaxed`: totals, not synchronization).
#[derive(Debug, Default)]
pub(crate) struct PoolCounters {
    pub(crate) submitted: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) timed_out: AtomicU64,
    pub(crate) panicked: AtomicU64,
    pub(crate) retried: AtomicU64,
    pub(crate) steals: AtomicU64,
    pub(crate) requeues: AtomicU64,
    pub(crate) vm_rebuilds: AtomicU64,
    pub(crate) slices: AtomicU64,
    pub(crate) queue_depth_highwater: AtomicU64,
    pub(crate) io_blocked: AtomicU64,
    pub(crate) io_wakeups: AtomicU64,
    pub(crate) timer_waits: AtomicU64,
    pub(crate) blocked_highwater: AtomicU64,
}

impl PoolCounters {
    fn snapshot(&self) -> PoolCountersSnapshot {
        PoolCountersSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            panicked: self.panicked.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            requeues: self.requeues.load(Ordering::Relaxed),
            vm_rebuilds: self.vm_rebuilds.load(Ordering::Relaxed),
            slices: self.slices.load(Ordering::Relaxed),
            queue_depth_highwater: self.queue_depth_highwater.load(Ordering::Relaxed),
            io_blocked: self.io_blocked.load(Ordering::Relaxed),
            io_wakeups: self.io_wakeups.load(Ordering::Relaxed),
            timer_waits: self.timer_waits.load(Ordering::Relaxed),
            blocked_highwater: self.blocked_highwater.load(Ordering::Relaxed),
        }
    }

    fn note_depth(&self, depth: usize) {
        self.queue_depth_highwater.fetch_max(depth as u64, Ordering::Relaxed);
    }
}

/// A point-in-time copy of the pool's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolCountersSnapshot {
    /// Jobs accepted by [`Pool::submit`].
    pub submitted: u64,
    /// Jobs that finished with a value.
    pub completed: u64,
    /// Jobs that finished with any [`Error`](crate::Error).
    pub failed: u64,
    /// Subset of `failed`: fuel budget exhausted.
    pub timed_out: u64,
    /// Subset of `failed`: the job itself panicked.
    pub panicked: u64,
    /// Transient failures that were requeued for another attempt (not
    /// counted in `failed` unless the final attempt also failed).
    pub retried: u64,
    /// Jobs taken from another worker's deque.
    pub steals: u64,
    /// Preemptions: a job parked after its slice and was requeued.
    pub requeues: u64,
    /// Fresh VMs built after a panic.
    pub vm_rebuilds: u64,
    /// Engine fuel slices run.
    pub slices: u64,
    /// Deepest the injector queue ever got.
    pub queue_depth_highwater: u64,
    /// Suspensions on socket readiness (`tcp-accept`, `tcp-read`,
    /// `tcp-write` finding the fd not ready).
    pub io_blocked: u64,
    /// Readiness/deadline deliveries the reactor made (I/O and timers).
    pub io_wakeups: u64,
    /// Suspensions on `timer-wait`.
    pub timer_waits: u64,
    /// Most jobs simultaneously blocked on any single worker — the honest
    /// measure of peak per-worker green-thread concurrency.
    pub blocked_highwater: u64,
}

/// Key `VmStats` counters summed across a worker's VM incarnations
/// (a panic-triggered rebuild starts a new incarnation).
#[derive(Debug, Clone, Copy, Default)]
pub struct VmTotals {
    /// Bytecode instructions executed.
    pub instructions: u64,
    /// Procedure calls performed.
    pub calls: u64,
    /// Garbage collections run.
    pub gc_collections: u64,
    /// Nanoseconds spent in the collector.
    pub gc_pause_ns: u64,
    /// Objects reclaimed by the collector.
    pub gc_objects_freed: u64,
    /// Heap objects allocated.
    pub objects_allocated: u64,
    /// One-shot continuation captures (engine preemptions mostly).
    pub captures_one: u64,
    /// One-shot reinstatements (engine resumes mostly).
    pub reinstates_one: u64,
    /// Stack slots copied (stays near zero: one-shot switches copy
    /// nothing).
    pub slots_copied: u64,
    /// Conditions raised (caught or not) across all incarnations —
    /// survives panic-triggered VM rebuilds rather than being dropped with
    /// the poisoned VM.
    pub conditions_raised: u64,
    /// Deterministic faults the fault plan injected and the VM consumed.
    pub faults_injected: u64,
}

impl VmTotals {
    pub(crate) fn add(&mut self, s: &VmStats) {
        self.instructions += s.instructions;
        self.calls += s.calls;
        self.gc_collections += s.gc_collections;
        self.gc_pause_ns += s.gc_pause_ns;
        self.gc_objects_freed += s.gc_objects_freed;
        self.objects_allocated += s.heap.objects_allocated;
        self.captures_one += s.stack.captures_one;
        self.reinstates_one += s.stack.reinstates_one;
        self.slots_copied += s.stack.slots_copied;
        self.conditions_raised += s.conditions_raised;
        self.faults_injected += s.faults_injected;
    }
}

/// What one worker did over its lifetime, reported at shutdown.
#[derive(Debug, Clone)]
pub struct WorkerReport {
    /// The worker's index.
    pub worker: usize,
    /// Jobs this worker completed successfully.
    pub jobs_ok: u64,
    /// Jobs this worker reported as failed.
    pub jobs_failed: u64,
    /// Fuel slices this worker ran.
    pub slices: u64,
    /// Jobs this worker stole from peers.
    pub steals: u64,
    /// Transient failures this worker requeued for another attempt.
    pub retries: u64,
    /// VMs this worker built after panics.
    pub vm_rebuilds: u64,
    /// VM counters summed over all incarnations.
    pub vm: VmTotals,
}

impl WorkerReport {
    pub(crate) fn new(worker: usize) -> Self {
        WorkerReport {
            worker,
            jobs_ok: 0,
            jobs_failed: 0,
            slices: 0,
            steals: 0,
            retries: 0,
            vm_rebuilds: 0,
            vm: VmTotals::default(),
        }
    }
}

/// Everything a completed shutdown reports.
#[derive(Debug, Clone)]
pub struct PoolReport {
    /// Per-worker reports, sorted by worker index.
    pub workers: Vec<WorkerReport>,
    /// Final pool-wide counters.
    pub counters: PoolCountersSnapshot,
}

/// A pool of OS worker threads, each owning a VM that runs jobs as
/// engine-preempted green threads, plus one reactor thread multiplexing
/// every blocked job's I/O wait. See the crate docs for the full model
/// and an example.
#[derive(Debug)]
pub struct Pool {
    injector: Arc<Injector>,
    queues: Arc<Vec<StealQueue>>,
    counters: Arc<PoolCounters>,
    handles: Vec<JoinHandle<()>>,
    reactor: Option<Reactor>,
    report_rx: mpsc::Receiver<WorkerReport>,
    next_job: AtomicU64,
    workers: usize,
}

impl Pool {
    /// Starts configuring a pool.
    pub fn builder() -> PoolBuilder {
        PoolBuilder::default()
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// Current injector depth (jobs accepted but not yet picked up).
    pub fn queue_depth(&self) -> usize {
        self.injector.depth()
    }

    /// A snapshot of the pool-wide counters.
    pub fn stats(&self) -> PoolCountersSnapshot {
        self.counters.snapshot()
    }

    /// Compiles `spec` and enqueues it. The spec's
    /// [`admission`](JobSpec::admission) decides the full-queue policy:
    /// [`Admission::Blocking`] waits for room (backpressure),
    /// [`Admission::NonBlocking`] refuses with
    /// [`ErrorKind::QueueFull`](crate::ErrorKind::QueueFull) and hands the
    /// spec back via [`Error::into_refused_spec`].
    ///
    /// A [`pinned`](JobSpec::pin) spec bypasses the injector entirely: it
    /// goes straight to the chosen worker's queue (never stolen, never
    /// counted against `queue_capacity`), which is how jobs that must
    /// share one VM's globals are kept together.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Compile`](crate::ErrorKind::Compile),
    /// [`ErrorKind::QueueFull`](crate::ErrorKind::QueueFull) (nonblocking
    /// only), or [`ErrorKind::PoolClosed`](crate::ErrorKind::PoolClosed).
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, Error> {
        // Compile once, on the submitting thread; workers only link.
        let prog = Vm::compile_str(&spec.source, Pipeline::Direct, CompilerOptions::default())
            .map_err(Error::compile)?;
        let id = JobId(self.next_job.fetch_add(1, Ordering::Relaxed));
        let slot = Arc::new(OutcomeSlot::default());
        let job = Job {
            id,
            name: spec.name.clone(),
            prog: Arc::new(prog),
            fuel_budget: spec.fuel,
            deadline: spec.deadline.map(|d| Instant::now() + d),
            retries: spec.retries,
            pinned: spec.pin.is_some(),
            submitted: Instant::now(),
            slot: Arc::clone(&slot),
            on_complete: spec.on_complete.clone(),
            attempts: 0,
        };
        let handle = JobHandle { id, name: spec.name.clone(), slot };
        if let Some(pin) = spec.pin {
            if self.injector.is_closed() {
                return Err(Error::pool_closed());
            }
            self.queues[pin % self.workers].push(job);
            self.injector.notify_workers();
            self.counters.submitted.fetch_add(1, Ordering::Relaxed);
            return Ok(handle);
        }
        let pushed = match spec.admission {
            Admission::Blocking => self.injector.push(job),
            Admission::NonBlocking => self.injector.try_push(job),
        };
        match pushed {
            Ok(depth) => {
                self.counters.submitted.fetch_add(1, Ordering::Relaxed);
                self.counters.note_depth(depth);
                Ok(handle)
            }
            Err(PushRefused::Full) => Err(Error::queue_full(spec)),
            Err(PushRefused::Closed) => Err(Error::pool_closed()),
        }
    }

    /// Graceful shutdown with a 60-second deadline: closes the injector,
    /// lets the workers drain every queued, in-flight, *and blocked* job
    /// (blocked jobs finish when their I/O completes or their deadline
    /// fires), joins them, stops the reactor, and aggregates the reports.
    /// Equivalent to `shutdown_timeout(Duration::from_secs(60))`.
    ///
    /// # Errors
    ///
    /// See [`Pool::shutdown_timeout`].
    pub fn shutdown(self) -> Result<PoolReport, Error> {
        self.shutdown_timeout(Duration::from_secs(60))
    }

    /// As [`Pool::shutdown`] with an explicit deadline.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::ShutdownTimeout`](crate::ErrorKind::ShutdownTimeout)
    /// if some worker failed to drain and check in before the deadline;
    /// its thread — and the reactor, which it may still need — is left
    /// behind (leaked), which the CI leak test treats as a failure.
    pub fn shutdown_timeout(mut self, deadline: Duration) -> Result<PoolReport, Error> {
        self.injector.close();
        let end = Instant::now() + deadline;
        let mut reports = Vec::with_capacity(self.workers);
        while reports.len() < self.workers {
            let left = end.saturating_duration_since(Instant::now());
            match self.report_rx.recv_timeout(left) {
                Ok(report) => reports.push(report),
                Err(_) => {
                    // Leave the handles unjoined: the caller learns exactly
                    // how many threads are wedged. The reactor is detached,
                    // not stopped — a slow worker still needs its wakeups.
                    self.handles.clear();
                    self.reactor.take();
                    return Err(Error::shutdown_timeout(reports.len(), self.workers));
                }
            }
        }
        // Every worker has sent its report, so joins return immediately —
        // and only now is it safe to stop the reactor: no wait can be
        // outstanding once every worker has drained.
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        if let Some(reactor) = self.reactor.take() {
            reactor.shutdown();
        }
        reports.sort_by_key(|r| r.worker);
        Ok(PoolReport { workers: reports, counters: self.counters.snapshot() })
    }
}

impl Drop for Pool {
    /// Best-effort cleanup for pools dropped without [`Pool::shutdown`]:
    /// closes the injector, joins the workers (they exit once drained),
    /// then stops the reactor.
    fn drop(&mut self) {
        self.injector.close();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        if let Some(reactor) = self.reactor.take() {
            reactor.shutdown();
        }
    }
}
