//! Jobs: what users submit, what workers run, what callers get back.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use oneshot_vm::CompiledProgram;

use crate::error::Error;

/// Identifies a job within one [`Pool`](crate::Pool), in submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub(crate) u64);

impl JobId {
    /// The raw submission index.
    pub fn index(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// What [`Pool::submit`](crate::Pool::submit) does when the injector is
/// full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Admission {
    /// Block the submitting thread until there is room (backpressure by
    /// waiting). The default.
    #[default]
    Blocking,
    /// Refuse with [`ErrorKind::QueueFull`](crate::ErrorKind::QueueFull),
    /// returning the spec via
    /// [`Error::into_refused_spec`](crate::Error::into_refused_spec)
    /// (backpressure by shedding).
    NonBlocking,
}

/// Completion callback type: runs on the worker thread that finishes the
/// job, right after its outcome is delivered.
pub type OnComplete = Arc<dyn Fn(&JobOutcome) + Send + Sync>;

/// A job description: a named Scheme program plus execution policy, built
/// fluently:
///
/// ```
/// use std::time::Duration;
/// use oneshot_exec::{Admission, JobSpec};
///
/// let spec = JobSpec::new("fib", "(define (f n) (if (< n 2) n (+ (f (- n 1)) (f (- n 2))))) (f 18)")
///     .fuel(200_000)
///     .retries(2)
///     .deadline(Duration::from_secs(5))
///     .admission(Admission::NonBlocking);
/// assert_eq!(spec.name(), "fib");
/// ```
///
/// The program is compiled once, on the submitting thread; workers only
/// link and run it. Jobs share the worker VM's global environment (see the
/// fault-isolation contract in DESIGN.md), so toplevel definitions should
/// either be job-private names or identical across jobs.
pub struct JobSpec {
    pub(crate) name: String,
    pub(crate) source: String,
    pub(crate) fuel: u64,
    pub(crate) retries: Option<u32>,
    pub(crate) deadline: Option<Duration>,
    pub(crate) admission: Admission,
    pub(crate) pin: Option<usize>,
    pub(crate) on_complete: Option<OnComplete>,
}

impl JobSpec {
    /// Default per-job fuel budget: effectively unlimited.
    pub const DEFAULT_FUEL: u64 = u64::MAX;

    /// A job running `source`, labelled `name` for reporting. Defaults:
    /// unlimited fuel, no deadline, the pool's retry budget, blocking
    /// admission, no completion callback.
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> Self {
        JobSpec {
            name: name.into(),
            source: source.into(),
            fuel: Self::DEFAULT_FUEL,
            retries: None,
            deadline: None,
            admission: Admission::default(),
            pin: None,
            on_complete: None,
        }
    }

    /// Caps the total procedure calls the job may consume across all its
    /// fuel slices; exceeding the cap yields
    /// [`ErrorKind::FuelExhausted`](crate::ErrorKind::FuelExhausted).
    /// Time a job spends *blocked* on I/O or a timer burns no fuel.
    #[must_use]
    pub fn fuel(mut self, budget: u64) -> Self {
        self.fuel = budget.max(1);
        self
    }

    /// Overrides the pool's retry budget for this job: how many times a
    /// *transient* failure (see [`Error::transient`](crate::Error::transient))
    /// is requeued before it is delivered.
    #[must_use]
    pub fn retries(mut self, retries: u32) -> Self {
        self.retries = Some(retries);
        self
    }

    /// Wall-clock deadline, measured from submission. A job past its
    /// deadline fails with
    /// [`ErrorKind::DeadlineExceeded`](crate::ErrorKind::DeadlineExceeded)
    /// at its next scheduling point — including while blocked on I/O, which
    /// makes this the safety valve against a peer that never answers.
    #[must_use]
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Full-queue policy for [`Pool::submit`](crate::Pool::submit):
    /// block (default) or refuse.
    #[must_use]
    pub fn admission(mut self, admission: Admission) -> Self {
        self.admission = admission;
        self
    }

    /// Pins the job to worker `index` (wrapped modulo the worker count):
    /// it is handed straight to that worker's queue and is never stolen.
    /// Pinning is how jobs that must share one VM's globals — a listener
    /// and its accept loops, say — are kept together.
    #[must_use]
    pub fn pin(mut self, index: usize) -> Self {
        self.pin = Some(index);
        self
    }

    /// Registers a completion callback, invoked on the worker thread that
    /// finishes the job (successfully or not), after the outcome is
    /// visible to [`JobHandle::wait`]. Keep it short; it runs inside the
    /// worker loop.
    #[must_use]
    pub fn on_complete(mut self, f: impl Fn(&JobOutcome) + Send + Sync + 'static) -> Self {
        self.on_complete = Some(Arc::new(f));
        self
    }

    /// The job's label.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl Clone for JobSpec {
    fn clone(&self) -> Self {
        JobSpec {
            name: self.name.clone(),
            source: self.source.clone(),
            fuel: self.fuel,
            retries: self.retries,
            deadline: self.deadline,
            admission: self.admission,
            pin: self.pin,
            on_complete: self.on_complete.clone(),
        }
    }
}

impl std::fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobSpec")
            .field("name", &self.name)
            .field("fuel", &self.fuel)
            .field("retries", &self.retries)
            .field("deadline", &self.deadline)
            .field("admission", &self.admission)
            .field("pin", &self.pin)
            .field("on_complete", &self.on_complete.as_ref().map(|_| "<callback>"))
            .finish_non_exhaustive()
    }
}

/// The result of one finished job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Which job.
    pub id: JobId,
    /// Its label, from [`JobSpec::new`].
    pub name: String,
    /// Index of the worker that finished (or failed) it.
    pub worker: usize,
    /// Fuel slices the job ran for (1 = never preempted).
    pub slices: u64,
    /// Total fuel charged to the job, in procedure calls. Blocked time
    /// burns no fuel.
    pub fuel_used: u64,
    /// Submit-to-completion latency.
    pub latency: Duration,
    /// The job's value written in Scheme `write` notation, or why it
    /// failed. The string form is VM-independent, which is what makes
    /// results comparable across worker counts.
    pub result: Result<String, Error>,
}

/// Shared slot a worker fills and a waiter blocks on.
#[derive(Debug, Default)]
pub(crate) struct OutcomeSlot {
    /// First-delivery-wins marker, claimed *before* the completion
    /// callback runs so the callback finishes before any waiter is
    /// released.
    claimed: std::sync::atomic::AtomicBool,
    outcome: Mutex<Option<JobOutcome>>,
    ready: Condvar,
}

impl OutcomeSlot {
    /// Claims the right to deliver; a shutdown-time duplicate loses.
    pub(crate) fn claim(&self) -> bool {
        !self.claimed.swap(true, std::sync::atomic::Ordering::AcqRel)
    }

    pub(crate) fn fill(&self, outcome: JobOutcome) {
        let mut slot = self.outcome.lock().unwrap();
        if slot.is_none() {
            *slot = Some(outcome);
            self.ready.notify_all();
        }
    }

    pub(crate) fn wait(&self) -> JobOutcome {
        let mut slot = self.outcome.lock().unwrap();
        loop {
            if let Some(outcome) = slot.as_ref() {
                return outcome.clone();
            }
            slot = self.ready.wait(slot).unwrap();
        }
    }

    pub(crate) fn get(&self) -> Option<JobOutcome> {
        self.outcome.lock().unwrap().clone()
    }
}

/// A claim on a submitted job's eventual [`JobOutcome`].
#[derive(Debug, Clone)]
pub struct JobHandle {
    pub(crate) id: JobId,
    pub(crate) name: String,
    pub(crate) slot: Arc<OutcomeSlot>,
}

impl JobHandle {
    /// The job's id.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// The job's label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Blocks until the job finishes (successfully or not).
    pub fn wait(&self) -> JobOutcome {
        self.slot.wait()
    }

    /// The outcome, if the job has already finished.
    pub fn outcome(&self) -> Option<JobOutcome> {
        self.slot.get()
    }
}

/// The unit that moves through the queues: a compiled program plus the
/// bookkeeping to deliver its outcome.
#[derive(Clone)]
pub(crate) struct Job {
    pub(crate) id: JobId,
    pub(crate) name: String,
    pub(crate) prog: Arc<CompiledProgram>,
    pub(crate) fuel_budget: u64,
    /// Absolute wall-clock deadline, computed at submission.
    pub(crate) deadline: Option<Instant>,
    /// Per-job retry override ([`JobSpec::retries`]); `None` uses the
    /// pool's budget.
    pub(crate) retries: Option<u32>,
    /// Pinned jobs are never stolen from their worker's queue.
    pub(crate) pinned: bool,
    pub(crate) submitted: Instant,
    pub(crate) slot: Arc<OutcomeSlot>,
    pub(crate) on_complete: Option<OnComplete>,
    /// Times this job has already been retried after a transient fault.
    pub(crate) attempts: u32,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("fuel_budget", &self.fuel_budget)
            .field("deadline", &self.deadline)
            .field("pinned", &self.pinned)
            .field("attempts", &self.attempts)
            .finish_non_exhaustive()
    }
}

impl Job {
    pub(crate) fn deliver(
        &self,
        worker: usize,
        slices: u64,
        fuel_used: u64,
        result: Result<String, Error>,
    ) {
        let outcome = JobOutcome {
            id: self.id,
            name: self.name.clone(),
            worker,
            slices,
            fuel_used,
            latency: self.submitted.elapsed(),
            result,
        };
        if self.slot.claim() {
            // Callback before fill: a thread woken by `JobHandle::wait`
            // must be able to observe everything the callback did.
            if let Some(cb) = &self.on_complete {
                cb(&outcome);
            }
            self.slot.fill(outcome);
        }
    }
}
