//! Jobs: what users submit, what workers run, what callers get back.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use oneshot_vm::{CompiledProgram, VmError};

/// Identifies a job within one [`Pool`](crate::Pool), in submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub(crate) u64);

impl JobId {
    /// The raw submission index.
    pub fn index(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A job description: a named Scheme program plus an optional fuel budget.
///
/// The program is compiled once, on the submitting thread; workers only
/// link and run it. Jobs share the worker VM's global environment (see the
/// fault-isolation contract in DESIGN.md), so toplevel definitions should
/// either be job-private names or identical across jobs.
#[derive(Debug, Clone)]
pub struct JobSpec {
    pub(crate) name: String,
    pub(crate) source: String,
    pub(crate) fuel_budget: u64,
}

impl JobSpec {
    /// Default per-job fuel budget: effectively unlimited.
    pub const DEFAULT_FUEL_BUDGET: u64 = u64::MAX;

    /// A job running `source`, labelled `name` for reporting.
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> Self {
        JobSpec { name: name.into(), source: source.into(), fuel_budget: Self::DEFAULT_FUEL_BUDGET }
    }

    /// Caps the total procedure calls the job may consume across all its
    /// fuel slices; exceeding the cap yields [`JobError::TimedOut`].
    #[must_use]
    pub fn fuel_budget(mut self, budget: u64) -> Self {
        self.fuel_budget = budget.max(1);
        self
    }

    /// The job's label.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Why a job failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum JobError {
    /// The program failed to run: a Scheme error, a type error, a one-shot
    /// continuation shot twice. Wrapped with job/worker context via
    /// [`VmError::with_context`].
    Vm(VmError),
    /// The job exceeded its fuel budget and was dropped.
    TimedOut {
        /// The configured budget, in procedure calls.
        budget: u64,
        /// Fuel consumed before the pool gave up (a multiple of the slice).
        used: u64,
    },
    /// The job panicked inside the VM; the worker rebuilt its VM.
    Panicked(String),
    /// Another job (`culprit`) panicked on the same worker while this job
    /// was parked there; its VM — and this job's continuation — was lost.
    WorkerReset {
        /// The job whose panic destroyed the shared VM.
        culprit: JobId,
    },
}

impl JobError {
    /// Whether retrying the job could plausibly succeed.
    ///
    /// Transient: an uncaught `out-of-memory` condition (an injected
    /// allocation fault or a momentary heap-budget breach — the retried
    /// job starts on a freshly collected heap) and [`JobError::WorkerReset`]
    /// (the job was collateral damage of *another* job's panic). Everything
    /// else — type errors, arity errors, `(error ...)`, fuel exhaustion,
    /// panics in the job itself — is deterministic and fails fast.
    pub fn transient(&self) -> bool {
        match self {
            JobError::WorkerReset { .. } => true,
            JobError::Vm(e) => e.condition_kind() == Some("out-of-memory"),
            _ => false,
        }
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Vm(e) => write!(f, "{e}"),
            JobError::TimedOut { budget, used } => {
                write!(f, "fuel budget exhausted: used {used} of {budget}")
            }
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
            JobError::WorkerReset { culprit } => {
                write!(f, "worker VM was reset by panicking job {culprit}")
            }
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Vm(e) => Some(e),
            _ => None,
        }
    }
}

/// The result of one finished job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Which job.
    pub id: JobId,
    /// Its label, from [`JobSpec::new`].
    pub name: String,
    /// Index of the worker that finished (or failed) it.
    pub worker: usize,
    /// Fuel slices the job ran for (1 = never preempted).
    pub slices: u64,
    /// Total fuel charged to the job, in procedure calls.
    pub fuel_used: u64,
    /// Submit-to-completion latency.
    pub latency: Duration,
    /// The job's value written in Scheme `write` notation, or why it
    /// failed. The string form is VM-independent, which is what makes
    /// results comparable across worker counts.
    pub result: Result<String, JobError>,
}

/// Shared slot a worker fills and a waiter blocks on.
#[derive(Debug, Default)]
pub(crate) struct OutcomeSlot {
    outcome: Mutex<Option<JobOutcome>>,
    ready: Condvar,
}

impl OutcomeSlot {
    pub(crate) fn fill(&self, outcome: JobOutcome) {
        let mut slot = self.outcome.lock().unwrap();
        // First delivery wins; a shutdown-time duplicate is dropped.
        if slot.is_none() {
            *slot = Some(outcome);
            self.ready.notify_all();
        }
    }

    pub(crate) fn wait(&self) -> JobOutcome {
        let mut slot = self.outcome.lock().unwrap();
        loop {
            if let Some(outcome) = slot.as_ref() {
                return outcome.clone();
            }
            slot = self.ready.wait(slot).unwrap();
        }
    }

    pub(crate) fn get(&self) -> Option<JobOutcome> {
        self.outcome.lock().unwrap().clone()
    }
}

/// A claim on a submitted job's eventual [`JobOutcome`].
#[derive(Debug, Clone)]
pub struct JobHandle {
    pub(crate) id: JobId,
    pub(crate) name: String,
    pub(crate) slot: Arc<OutcomeSlot>,
}

impl JobHandle {
    /// The job's id.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// The job's label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Blocks until the job finishes (successfully or not).
    pub fn wait(&self) -> JobOutcome {
        self.slot.wait()
    }

    /// The outcome, if the job has already finished.
    pub fn outcome(&self) -> Option<JobOutcome> {
        self.slot.get()
    }
}

/// The unit that moves through the queues: a compiled program plus the
/// bookkeeping to deliver its outcome.
#[derive(Debug, Clone)]
pub(crate) struct Job {
    pub(crate) id: JobId,
    pub(crate) name: String,
    pub(crate) prog: Arc<CompiledProgram>,
    pub(crate) fuel_budget: u64,
    pub(crate) submitted: Instant,
    pub(crate) slot: Arc<OutcomeSlot>,
    /// Times this job has already been retried after a transient fault.
    pub(crate) attempts: u32,
}

impl Job {
    pub(crate) fn deliver(
        &self,
        worker: usize,
        slices: u64,
        fuel_used: u64,
        result: Result<String, JobError>,
    ) {
        self.slot.fill(JobOutcome {
            id: self.id,
            name: self.name.clone(),
            worker,
            slices,
            fuel_used,
            latency: self.submitted.elapsed(),
            result,
        });
    }
}
