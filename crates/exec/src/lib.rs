//! A multi-core execution subsystem for the oneshot VM.
//!
//! The paper's thesis is that `call/1cc` makes context switches cheap
//! enough to build real thread systems on; `oneshot-threads` demonstrates
//! that inside one VM. This crate adds the outer level: a [`Pool`] of N OS
//! worker threads, each owning its own [`Vm`](oneshot_vm::Vm), fed from a
//! bounded shared injector queue with per-worker deques and work stealing
//! of whole jobs.
//!
//! The two levels divide the work the way Kobayashi–Kameyama's one-shot
//! expressiveness results suggest: OS threads provide parallelism between
//! jobs; *within* a worker, jobs run as engine-fueled green threads
//! (Dybvig–Hieb engines over one-shot continuations, via
//! [`EngineHost`](oneshot_threads::EngineHost)), so a long job is preempted
//! after its fuel slice and requeued rather than starving the worker — a
//! preemption that costs no stack copying.
//!
//! Jobs are compiled once on submit ([`Pool::submit`] returns a
//! [`JobHandle`]); the resulting [`CompiledProgram`](oneshot_vm::CompiledProgram)
//! is plain `Send` data, so any worker can link and run it. Once a job has
//! *started* on a worker its continuation lives in that worker's VM heap,
//! so only unstarted jobs are stolen; preempted jobs requeue locally.
//!
//! Robustness is first-class:
//!
//! * a per-job fuel budget turns runaway jobs into [`JobError::TimedOut`];
//! * a panicking job is caught with `catch_unwind`; the worker reports it
//!   as [`JobError::Panicked`], rebuilds a fresh VM, and keeps draining;
//! * the bounded injector gives backpressure ([`Pool::submit`] blocks,
//!   [`Pool::try_submit`] refuses);
//! * [`Pool::shutdown`] drains all in-flight jobs and joins every worker
//!   (with a timeout, so a wedged worker is reported, not waited on
//!   forever).
//!
//! # Example
//!
//! ```
//! use oneshot_exec::{JobSpec, Pool};
//!
//! let pool = Pool::builder().workers(2).fuel_slice(4096).build().unwrap();
//! let jobs: Vec<_> = (0..8)
//!     .map(|i| {
//!         pool.submit(JobSpec::new(
//!             format!("square-{i}"),
//!             format!("(* {i} {i})"),
//!         ))
//!         .unwrap()
//!     })
//!     .collect();
//! for (i, h) in jobs.iter().enumerate() {
//!     assert_eq!(h.wait().result.unwrap(), (i * i).to_string());
//! }
//! let report = pool.shutdown().unwrap();
//! assert_eq!(report.counters.completed, 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod job;
mod pool;
mod queue;
mod worker;

pub use job::{JobError, JobHandle, JobId, JobOutcome, JobSpec};
pub use pool::{
    Pool, PoolBuilder, PoolCountersSnapshot, PoolReport, ShutdownError, SubmitError, VmTotals,
    WorkerReport,
};
