//! A multi-core execution subsystem for the oneshot VM.
//!
//! The paper's thesis is that `call/1cc` makes context switches cheap
//! enough to build real thread systems on; `oneshot-threads` demonstrates
//! that inside one VM. This crate adds the outer level: a [`Pool`] of N OS
//! worker threads, each owning its own [`Vm`](oneshot_vm::Vm), fed from a
//! bounded shared injector queue with per-worker deques and work stealing
//! of whole jobs — plus a *reactor* per worker that multiplexes that
//! worker's blocking guest I/O over edge-triggered `epoll(7)` (or
//! `poll(2)`: see [`Backend`]).
//!
//! The two levels divide the work the way Kobayashi–Kameyama's one-shot
//! expressiveness results suggest: OS threads provide parallelism between
//! jobs; *within* a worker, jobs run as engine-fueled green threads
//! (Dybvig–Hieb engines over one-shot continuations, via
//! [`EngineHost`](oneshot_threads::EngineHost)), so a long job is preempted
//! after its fuel slice and requeued rather than starving the worker — a
//! preemption that costs no stack copying.
//!
//! The same mechanism makes I/O non-blocking for free: when a job calls
//! `(tcp-read sock n)` on a socket with no data, the guest library captures
//! the job's one-shot continuation, the engine returns
//! [`EngineStep::Blocked`](oneshot_threads::EngineStep), and the worker
//! parks the job and registers the fd with *its own* reactor — readiness
//! turns into an ordinary engine resumption on the same thread, no
//! cross-thread handoff. Suspending ten thousand connections costs ten
//! thousand sealed stack segments — no OS threads, no callbacks, no stack
//! copies — and with the `epoll` backend each wakeup costs O(ready), not
//! O(blocked). [`Pool::serve`] adds the front door: one shared `AF_INET`
//! listener whose accepted connections are distributed least-loaded /
//! round-robin across the worker reactors.
//!
//! Jobs are described by a fluent [`JobSpec`] — fuel, retries, deadline,
//! [`Admission`] policy, worker pinning, completion callback — compiled
//! once on submit ([`Pool::submit`] returns a [`JobHandle`]); the resulting
//! [`CompiledProgram`](oneshot_vm::CompiledProgram) is plain `Send` data,
//! so any worker can link and run it. Once a job has *started* on a worker
//! its continuation lives in that worker's VM heap, so only unstarted jobs
//! are stolen; preempted jobs requeue locally.
//!
//! Everything that can go wrong surfaces as one [`Error`] with a stable
//! [`ErrorKind`]:
//!
//! * a per-job fuel budget turns runaway jobs into
//!   [`ErrorKind::FuelExhausted`], a wall-clock deadline into
//!   [`ErrorKind::DeadlineExceeded`] — even while blocked on a peer that
//!   never answers;
//! * a panicking job is caught with `catch_unwind`; the worker reports it
//!   as [`ErrorKind::Panicked`], rebuilds a fresh VM, and keeps draining;
//! * the bounded injector gives backpressure ([`Admission::Blocking`]
//!   waits, [`Admission::NonBlocking`] refuses with the spec returned);
//! * [`Pool::shutdown`] stops the acceptors, drains all in-flight and
//!   blocked jobs, and joins every worker (with a timeout, so a wedged
//!   worker is reported, not waited on forever).
//!
//! # Example
//!
//! ```
//! use oneshot_exec::{JobSpec, Pool};
//!
//! let pool = Pool::builder().workers(2).fuel_slice(4096).build().unwrap();
//! let jobs: Vec<_> = (0..8)
//!     .map(|i| {
//!         pool.submit(
//!             JobSpec::new(format!("square-{i}"), format!("(* {i} {i})"))
//!                 .fuel(100_000),
//!         )
//!         .unwrap()
//!     })
//!     .collect();
//! for (i, h) in jobs.iter().enumerate() {
//!     assert_eq!(h.wait().result.unwrap(), (i * i).to_string());
//! }
//! let report = pool.shutdown().unwrap();
//! assert_eq!(report.counters.completed, 8);
//! ```

#![deny(unsafe_code)] // one audited exception: reactor::sys wraps poll(2)/epoll(7)
#![warn(missing_docs)]

mod error;
mod job;
mod pool;
mod queue;
mod reactor;
mod worker;

pub use error::{Error, ErrorKind};
pub use job::{Admission, JobHandle, JobId, JobOutcome, JobSpec, OnComplete};
pub use pool::{
    Pool, PoolBuilder, PoolCountersSnapshot, PoolReport, ServeHandle, VmTotals, WorkerReport,
};
pub use reactor::{Backend, WAKE_LATENESS_BUCKETS_MS};
