//! The bounded shared injector and the per-worker stealable deques.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::job::Job;

/// The bounded multi-producer multi-consumer injector queue: submitters
/// push at the back, workers pop at the front. `Mutex<VecDeque>` plus two
/// condvars — deliberately boring; the interesting scheduling happens in
/// the workers.
///
/// The `not_empty` condvar doubles as the pool-wide activity signal:
/// [`Injector::notify_workers`] wakes workers sleeping in
/// [`Injector::pop_wait`] when work lands outside the injector, so they
/// re-check their queues promptly instead of riding out the idle timeout.
#[derive(Debug)]
pub(crate) struct Injector {
    state: Mutex<InjectorState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct InjectorState {
    queue: VecDeque<Job>,
    closed: bool,
}

/// Result of a blocking pop.
pub(crate) enum Popped {
    /// A job was dequeued.
    Job(Job),
    /// The queue is closed *and* empty: no job will ever arrive again.
    Drained,
    /// The wait ended (timeout *or* activity signal) with the queue open
    /// but empty. Callers loop, so spurious returns are harmless — and
    /// deliberate: a reactor wakeup must get the worker back to its
    /// resume queue.
    TimedOut,
}

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum PushRefused {
    /// The queue is at capacity (nonblocking admission only).
    Full,
    /// The queue was closed by shutdown.
    Closed,
}

impl Injector {
    pub(crate) fn new(capacity: usize) -> Self {
        Injector {
            state: Mutex::new(InjectorState { queue: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Blocking push: waits while the queue is full. Returns the queue
    /// depth after the push (for high-water tracking).
    pub(crate) fn push(&self, job: Job) -> Result<usize, PushRefused> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.closed {
                return Err(PushRefused::Closed);
            }
            if st.queue.len() < self.capacity {
                st.queue.push_back(job);
                let depth = st.queue.len();
                self.not_empty.notify_one();
                return Ok(depth);
            }
            st = self.not_full.wait(st).unwrap();
        }
    }

    /// Non-blocking push: refuses instead of waiting when full.
    pub(crate) fn try_push(&self, job: Job) -> Result<usize, PushRefused> {
        let mut st = self.state.lock().unwrap();
        if st.closed {
            return Err(PushRefused::Closed);
        }
        if st.queue.len() >= self.capacity {
            return Err(PushRefused::Full);
        }
        st.queue.push_back(job);
        let depth = st.queue.len();
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Non-blocking pop.
    pub(crate) fn try_pop(&self) -> Option<Job> {
        let mut st = self.state.lock().unwrap();
        let job = st.queue.pop_front();
        if job.is_some() {
            self.not_full.notify_one();
        }
        job
    }

    /// Pop, waiting up to `timeout`. Single-wait semantics: the first
    /// wakeup — job, timeout, or an activity signal from
    /// [`Injector::notify_workers`] — returns control to the worker loop,
    /// which has other queues (its own stash, its resume queue) to check.
    pub(crate) fn pop_wait(&self, timeout: Duration) -> Popped {
        let mut st = self.state.lock().unwrap();
        if let Some(job) = st.queue.pop_front() {
            self.not_full.notify_one();
            return Popped::Job(job);
        }
        if st.closed {
            return Popped::Drained;
        }
        let (mut st, _res) = self.not_empty.wait_timeout(st, timeout).unwrap();
        if let Some(job) = st.queue.pop_front() {
            self.not_full.notify_one();
            return Popped::Job(job);
        }
        if st.closed {
            return Popped::Drained;
        }
        Popped::TimedOut
    }

    /// Wakes every worker parked in [`Injector::pop_wait`] so it
    /// re-checks its queues. Called alongside wake-pipe rings when jobs
    /// or connections land outside the injector (pinned submits,
    /// shared-listener accepts).
    pub(crate) fn notify_workers(&self) {
        // Lock to order the wakeup after the delivering store; the
        // per-worker queues themselves are behind their own mutexes.
        let _st = self.state.lock().unwrap();
        self.not_empty.notify_all();
    }

    /// Closes the queue: future pushes are refused, and once the backlog
    /// drains every `pop_wait` returns [`Popped::Drained`].
    pub(crate) fn close(&self) {
        let mut st = self.state.lock().unwrap();
        st.closed = true;
        drop(st);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    pub(crate) fn depth(&self) -> usize {
        self.state.lock().unwrap().queue.len()
    }

    /// Whether [`Injector::close`] has been called. Best-effort: used to
    /// refuse pinned submissions (which bypass the queue) after shutdown.
    pub(crate) fn is_closed(&self) -> bool {
        self.state.lock().unwrap().closed
    }
}

/// One worker's stealable deque of *unstarted* jobs. The owner pushes and
/// pops at the front (LIFO for locality of freshly-grabbed batches);
/// thieves steal from the back — the classic work-stealing discipline,
/// restricted to whole jobs because a started job's continuation is pinned
/// to its worker's VM heap. Jobs submitted with [`JobSpec::pin`]
/// (crate::JobSpec::pin) are additionally never stolen at all.
#[derive(Debug, Default)]
pub(crate) struct StealQueue {
    queue: Mutex<VecDeque<Job>>,
}

impl StealQueue {
    /// Owner side: stash a job for later (or for a thief).
    pub(crate) fn push(&self, job: Job) {
        self.queue.lock().unwrap().push_front(job);
    }

    /// Owner side: take the most recently stashed job.
    pub(crate) fn pop(&self) -> Option<Job> {
        self.queue.lock().unwrap().pop_front()
    }

    /// Thief side: take the oldest *unpinned* stashed job.
    pub(crate) fn steal(&self) -> Option<Job> {
        let mut q = self.queue.lock().unwrap();
        // Scan from the back (oldest); pinned jobs are invisible to
        // thieves. Pinned jobs cluster at submission time, so in practice
        // this looks at one or two entries.
        let idx = q.iter().rposition(|job| !job.pinned)?;
        q.remove(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobId, JobSpec, OutcomeSlot};
    use std::sync::Arc;
    use std::time::Instant;

    fn job(id: u64) -> Job {
        job_pinned(id, false)
    }

    fn job_pinned(id: u64, pinned: bool) -> Job {
        let spec = JobSpec::new(format!("j{id}"), "#t");
        Job {
            id: JobId(id),
            name: spec.name,
            prog: Arc::new(
                oneshot_vm::Vm::compile_str(
                    &spec.source,
                    oneshot_vm::Pipeline::Direct,
                    Default::default(),
                )
                .unwrap(),
            ),
            fuel_budget: spec.fuel,
            deadline: None,
            retries: None,
            pinned,
            submitted: Instant::now(),
            slot: Arc::new(OutcomeSlot::default()),
            on_complete: None,
            attempts: 0,
        }
    }

    #[test]
    fn bounded_injector_refuses_when_full_and_closed() {
        let q = Injector::new(2);
        assert!(q.try_push(job(0)).is_ok());
        assert!(q.try_push(job(1)).is_ok());
        assert_eq!(q.try_push(job(2)).unwrap_err(), PushRefused::Full);
        assert_eq!(q.depth(), 2);
        q.close();
        assert_eq!(q.try_push(job(3)).unwrap_err(), PushRefused::Closed);
        // The backlog is still drainable after close.
        assert!(matches!(q.pop_wait(Duration::from_millis(1)), Popped::Job(_)));
        assert!(q.try_pop().is_some());
        assert!(matches!(q.pop_wait(Duration::from_millis(1)), Popped::Drained));
    }

    #[test]
    fn steal_queue_is_lifo_for_owner_fifo_for_thief() {
        let q = StealQueue::default();
        q.push(job(0));
        q.push(job(1));
        q.push(job(2));
        assert_eq!(q.steal().unwrap().id, JobId(0), "thief takes the oldest");
        assert_eq!(q.pop().unwrap().id, JobId(2), "owner takes the newest");
        assert_eq!(q.pop().unwrap().id, JobId(1));
        assert!(q.pop().is_none());
    }

    #[test]
    fn pinned_jobs_are_invisible_to_thieves_but_not_owners() {
        let q = StealQueue::default();
        q.push(job_pinned(0, true));
        q.push(job(1));
        q.push(job_pinned(2, true));
        assert_eq!(q.steal().unwrap().id, JobId(1), "thief skips pinned jobs");
        assert!(q.steal().is_none(), "only pinned jobs remain");
        assert_eq!(q.pop().unwrap().id, JobId(2), "owner sees everything");
        assert_eq!(q.pop().unwrap().id, JobId(0));
    }

    #[test]
    fn notify_workers_wakes_a_pop_wait_early() {
        let q = Arc::new(Injector::new(4));
        let q2 = Arc::clone(&q);
        let start = Instant::now();
        let t = std::thread::spawn(move || {
            // A full 10s wait would blow the test timeout; the notify must
            // cut it short with a TimedOut (spurious-wakeup) result.
            matches!(q2.pop_wait(Duration::from_secs(10)), Popped::TimedOut)
        });
        std::thread::sleep(Duration::from_millis(50));
        q.notify_workers();
        assert!(t.join().unwrap());
        assert!(start.elapsed() < Duration::from_secs(5));
    }
}
