//! Per-worker reactors: each worker owns a [`ReactorCore`] that
//! multiplexes every wait *its own* blocked green threads registered.
//!
//! When a job suspends on I/O (`EngineStep::Blocked`), its worker seals
//! the one-shot continuation inside the engine table, registers the wait
//! directly with its core — a plain method call, no message, no mutex —
//! and goes on running other jobs. Between slices (and whenever it has
//! nothing runnable) the worker asks the core for due wakeups; readiness,
//! timer expiry, or deadline expiry each deliver a `(job, seq)` pair that
//! the worker turns back into an ordinary engine resumption: O(1), no
//! stack copying, no cross-thread resume-queue handoff, exactly the
//! paper's suspension cost model.
//!
//! Two backends live behind the same seam, both raw syscalls in the one
//! audited `sys` module:
//!
//! * **poll** rebuilds the full pollfd set every wait — O(blocked fds)
//!   per wake, the PR 6 behaviour, kept as the portable fallback;
//! * **epoll** (Linux) keeps interest registered in the kernel
//!   *edge-triggered*, so a wait costs O(ready): per-wake cost stays flat
//!   as the blocked population grows (E15 measures both curves).
//!
//! The edge-triggered contract: interest here is one-shot — an fd is
//! deregistered the moment it delivers (mirroring the one-shot discipline
//! of the continuation it wakes), and re-registered only after the
//! resumed guest operation has retried and observed would-block again.
//! `epoll_ctl(ADD)` reports an already-ready fd even in edge-triggered
//! mode, so there is no lost-wakeup window between the retry and the
//! re-registration. A wait cancelled by its deadline deregisters the fd;
//! readiness arriving later is simply never reported — and a delivery
//! already harvested in the same batch is defused by the worker's `seq`
//! guard, which drops any wakeup whose generation is stale.
//!
//! The only cross-thread piece left is the wake pipe: the pool rings it
//! to interrupt an idle worker's wait (new submission, accepted
//! connection, shutdown). The pipe is drained level-triggered in bounded
//! full passes — read until `EAGAIN`, capped per pass — so any number of
//! rings coalesce into one wakeup and a burst can neither stall the loop
//! nor lose a wake (leftover bytes keep the pipe readable).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::io::{ErrorKind, Read, Write};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Raw poll(2)/epoll(7) bindings. The crate is `#![deny(unsafe_code)]`;
/// this module is the single audited exception, and the only unsafe
/// operations are the syscalls themselves over plain `#[repr(C)]` data.
#[allow(unsafe_code)]
pub(crate) mod sys {
    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;

    /// `struct epoll_event` is packed on x86-64 (a kernel ABI quirk);
    /// other architectures use natural alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Debug, Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        /// Carries the registered fd back out of `epoll_wait`.
        pub data: u64,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    /// Edge-triggered delivery: one event per readiness *edge*.
    pub const EPOLLET: u32 = 1 << 31;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// Polls `fds` for up to `timeout_ms` (-1 = forever). Returns the
    /// number of ready entries, 0 on timeout, or a negative errno-style
    /// result (EINTR included) which callers treat as "poll again".
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> i32 {
        unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) }
    }

    /// An owned epoll instance; the fd is closed on drop.
    #[derive(Debug)]
    pub struct EpollFd(i32);

    impl EpollFd {
        /// Creates an epoll instance, or `None` if the kernel refuses
        /// (the caller falls back to poll).
        pub fn create() -> Option<EpollFd> {
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                None
            } else {
                Some(EpollFd(fd))
            }
        }

        /// ADD/MOD/DEL interest in `fd`. Returns `false` on failure
        /// (stale fd, kernel limit); callers treat a failed ADD as
        /// instant readiness so a wait can never be silently lost.
        pub fn ctl(&self, op: i32, fd: i32, events: u32) -> bool {
            let mut ev = EpollEvent { events, data: fd as u32 as u64 };
            unsafe { epoll_ctl(self.0, op, fd, &mut ev) == 0 }
        }

        /// Waits up to `timeout_ms` (-1 = forever); fills `events` and
        /// returns the ready count, 0 on timeout, negative on EINTR.
        pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> i32 {
            unsafe { epoll_wait(self.0, events.as_mut_ptr(), events.len() as i32, timeout_ms) }
        }
    }

    impl Drop for EpollFd {
        fn drop(&mut self) {
            unsafe {
                close(self.0);
            }
        }
    }
}

/// Which readiness syscall a pool's per-worker reactors use.
///
/// Selected at build time by [`crate::PoolBuilder::reactor_backend`],
/// defaulting to the `ONESHOT_REACTOR` environment variable (`poll` |
/// `epoll`), else to epoll on Linux with poll as the universal fallback.
/// The two backends are observationally identical (the differential test
/// suite asserts it); they differ only in per-wake cost: poll re-scans
/// every blocked fd (O(blocked)), epoll reports only ready ones
/// (O(ready)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Rebuild-and-scan `poll(2)`: portable, O(blocked fds) per wake.
    Poll,
    /// Edge-triggered `epoll(7)`: Linux, O(ready fds) per wake.
    Epoll,
}

impl Backend {
    /// The default backend: the `ONESHOT_REACTOR` env override if set to
    /// `poll` or `epoll`, else epoll on Linux, else poll.
    pub fn from_env() -> Backend {
        match std::env::var("ONESHOT_REACTOR").as_deref() {
            Ok("poll") => Backend::Poll,
            Ok("epoll") => Backend::Epoll,
            _ => {
                if cfg!(target_os = "linux") {
                    Backend::Epoll
                } else {
                    Backend::Poll
                }
            }
        }
    }

    /// Stable lowercase name, used as the `reactor_backend` metrics tag.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Poll => "poll",
            Backend::Epoll => "epoll",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One readiness wakeup: which job (by raw id) and which wait generation.
/// The generation lets the worker discard deliveries for waits it has
/// already abandoned (deadline failure, worker reset).
pub(crate) type Wakeup = (u64, u64);

/// Upper bounds (milliseconds) of the wake-lateness histogram buckets: a
/// timer delivered within 1 ms of its deadline lands in bucket 0, within
/// 5 ms in bucket 1, and so on; the final bucket is unbounded. Lateness is
/// measured at delivery inside the reactor — it is scheduler lag, before
/// the resumed continuation even runs.
pub const WAKE_LATENESS_BUCKETS_MS: [u64; 5] = [1, 5, 20, 100, 500];

/// Number of histogram buckets (the bounds plus the unbounded tail).
pub(crate) const WAKE_LATENESS_BUCKETS: usize = WAKE_LATENESS_BUCKETS_MS.len() + 1;

/// The bucket a given lateness falls into.
fn lateness_bucket(late: Duration) -> usize {
    let ms = late.as_millis() as u64;
    WAKE_LATENESS_BUCKETS_MS
        .iter()
        .position(|&bound| ms < bound)
        .unwrap_or(WAKE_LATENESS_BUCKETS_MS.len())
}

/// A cheaply-cloneable handle that interrupts a worker's in-flight wait.
/// The pool rings it on submission, accepted connections, and shutdown.
#[derive(Debug, Clone)]
pub(crate) struct WakeHandle {
    tx: Arc<UnixStream>,
}

impl WakeHandle {
    /// Rings the wake pipe. A full pipe already guarantees a pending
    /// wakeup, so WouldBlock is success here.
    pub(crate) fn ring(&self) {
        let _ = (&*self.tx).write(&[1]);
    }
}

/// An fd wait in flight. A job's wall-clock deadline, when set, lives in
/// the `io_deadlines` heap: expiry wakes the job so the worker can fail
/// it with DeadlineExceeded.
#[derive(Debug)]
struct IoWait {
    fd: i32,
    write: bool,
    seq: u64,
}

/// Backend-specific readiness state.
#[derive(Debug)]
enum BackendState {
    /// The pollfd set is rebuilt from scratch every wait — poll's
    /// O(blocked) cost model, measured by E15.
    Poll { pollfds: Vec<sys::PollFd>, jobs: Vec<u64> },
    /// Interest lives in the kernel; `interest` mirrors the registered
    /// event mask per fd so multiple waits on one fd can share an entry.
    Epoll { ep: sys::EpollFd, events: Vec<sys::EpollEvent>, interest: HashMap<i32, u32> },
}

/// One worker's reactor: every wait its blocked jobs hold, the timer
/// heap, and the backend readiness state. Not shared — the owning worker
/// calls every method, which is what makes delivery handoff-free.
#[derive(Debug)]
pub(crate) struct ReactorCore {
    state: BackendState,
    wake_rx: UnixStream,
    wake_tx: Arc<UnixStream>,
    /// Outstanding fd waits, keyed by job id (one wait per job).
    io_waits: HashMap<u64, IoWait>,
    /// fd -> jobs waiting on it (usually one; a listener shared by
    /// several accepting green threads is the many case).
    by_fd: HashMap<i32, Vec<u64>>,
    /// Min-heap of I/O deadlines `(when, job, seq)`; entries are lazy —
    /// a wait delivered early leaves a stale entry that is skipped.
    io_deadlines: BinaryHeap<Reverse<(Instant, u64, u64)>>,
    /// Min-heap of timer waits `(when, job, seq)`.
    timers: BinaryHeap<Reverse<(Instant, u64, u64)>>,
    /// Wake-lateness histogram for delivered timers, drained by the
    /// worker into the pool counters ([`WAKE_LATENESS_BUCKETS_MS`]).
    lateness: [u64; WAKE_LATENESS_BUCKETS],
    backend: Backend,
}

impl ReactorCore {
    /// Builds a core for `want`, falling back to poll if the kernel
    /// refuses an epoll instance. The only fallible resource is the wake
    /// pipe.
    pub(crate) fn new(want: Backend) -> std::io::Result<ReactorCore> {
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        let (state, backend) = match want {
            Backend::Epoll => match sys::EpollFd::create() {
                Some(ep) => {
                    // The wake pipe is registered level-triggered (no
                    // EPOLLET): a bounded partial drain must leave it
                    // readable, or rings could be lost.
                    ep.ctl(sys::EPOLL_CTL_ADD, wake_rx.as_raw_fd(), sys::EPOLLIN);
                    let events = vec![sys::EpollEvent { events: 0, data: 0 }; 256];
                    (BackendState::Epoll { ep, events, interest: HashMap::new() }, Backend::Epoll)
                }
                None => {
                    (BackendState::Poll { pollfds: Vec::new(), jobs: Vec::new() }, Backend::Poll)
                }
            },
            Backend::Poll => {
                (BackendState::Poll { pollfds: Vec::new(), jobs: Vec::new() }, Backend::Poll)
            }
        };
        Ok(ReactorCore {
            state,
            wake_rx,
            wake_tx: Arc::new(wake_tx),
            io_waits: HashMap::new(),
            by_fd: HashMap::new(),
            io_deadlines: BinaryHeap::new(),
            timers: BinaryHeap::new(),
            lateness: [0; WAKE_LATENESS_BUCKETS],
            backend,
        })
    }

    /// The backend actually in use (after any fallback).
    pub(crate) fn backend(&self) -> Backend {
        self.backend
    }

    /// A handle other threads use to interrupt this core's wait.
    pub(crate) fn wake_handle(&self) -> WakeHandle {
        WakeHandle { tx: Arc::clone(&self.wake_tx) }
    }

    /// Whether any wait (fd or timer) is outstanding.
    pub(crate) fn has_waits(&self) -> bool {
        !self.io_waits.is_empty() || !self.timers.is_empty()
    }

    /// Registers an fd wait for `job`. Returns `false` if the kernel
    /// refused the registration (stale fd, limit): the caller must treat
    /// the job as instantly ready so the retried guest operation can
    /// surface the real error.
    pub(crate) fn register_io(
        &mut self,
        job: u64,
        seq: u64,
        fd: i32,
        write: bool,
        deadline: Option<Instant>,
    ) -> bool {
        debug_assert!(!self.io_waits.contains_key(&job), "one wait per job");
        if let BackendState::Epoll { ep, interest, .. } = &mut self.state {
            let bit = if write { sys::EPOLLOUT } else { sys::EPOLLIN };
            let ok = match interest.get(&fd) {
                None => {
                    if ep.ctl(sys::EPOLL_CTL_ADD, fd, bit | sys::EPOLLET) {
                        interest.insert(fd, bit);
                        true
                    } else {
                        false
                    }
                }
                Some(&mask) if mask & bit == 0 => {
                    if ep.ctl(sys::EPOLL_CTL_MOD, fd, (mask | bit) | sys::EPOLLET) {
                        interest.insert(fd, mask | bit);
                        true
                    } else {
                        false
                    }
                }
                Some(_) => true,
            };
            if !ok {
                return false;
            }
        }
        if let Some(d) = deadline {
            self.io_deadlines.push(Reverse((d, job, seq)));
        }
        self.io_waits.insert(job, IoWait { fd, write, seq });
        self.by_fd.entry(fd).or_default().push(job);
        true
    }

    /// Registers a timer wait for `job`.
    pub(crate) fn register_timer(&mut self, job: u64, seq: u64, deadline: Instant) {
        self.timers.push(Reverse((deadline, job, seq)));
    }

    /// Removes `job`'s fd wait (delivered, expired, or cancelled) and
    /// releases its share of the kernel interest.
    fn remove_io(&mut self, job: u64) -> Option<IoWait> {
        let w = self.io_waits.remove(&job)?;
        let remaining = match self.by_fd.get_mut(&w.fd) {
            Some(jobs) => {
                jobs.retain(|&j| j != job);
                if jobs.is_empty() {
                    self.by_fd.remove(&w.fd);
                    None
                } else {
                    Some(&self.by_fd[&w.fd])
                }
            }
            None => None,
        };
        if let BackendState::Epoll { ep, interest, .. } = &mut self.state {
            match remaining {
                None => {
                    // One-shot interest: the fd leaves the kernel set the
                    // moment its last wait resolves. A closed fd makes
                    // DEL fail with EBADF, which is fine — the kernel
                    // already dropped it.
                    ep.ctl(sys::EPOLL_CTL_DEL, w.fd, 0);
                    interest.remove(&w.fd);
                }
                Some(jobs) => {
                    let mask = jobs
                        .iter()
                        .filter_map(|j| self.io_waits.get(j))
                        .fold(0u32, |m, w| m | if w.write { sys::EPOLLOUT } else { sys::EPOLLIN });
                    if interest.get(&w.fd) != Some(&mask) {
                        ep.ctl(sys::EPOLL_CTL_MOD, w.fd, mask | sys::EPOLLET);
                        interest.insert(w.fd, mask);
                    }
                }
            }
        }
        Some(w)
    }

    /// Wakes every wait registered on `fd` — the guest closed the socket
    /// while peers were still blocked on it. The resumed retry observes
    /// the stale token and raises the guest-level `io-error` instead of
    /// wedging. (Under poll a closed fd also reports `POLLNVAL`; under
    /// edge-triggered epoll the kernel silently drops interest in a
    /// closed fd, so this explicit cancel is what keeps the two backends
    /// observationally identical.)
    pub(crate) fn cancel_fd(&mut self, fd: i32, out: &mut Vec<Wakeup>) {
        let Some(jobs) = self.by_fd.get(&fd) else { return };
        for job in jobs.clone() {
            if let Some(w) = self.remove_io(job) {
                out.push((job, w.seq));
            }
        }
    }

    /// Drops every outstanding wait without delivering. Called on worker
    /// reset (VM rebuild): every blocked job was already failed, their
    /// sockets died with the VM, and any late readiness would be filtered
    /// by the seq guard anyway.
    pub(crate) fn forget_all(&mut self) {
        if let BackendState::Epoll { ep, interest, .. } = &mut self.state {
            for (&fd, _) in interest.iter() {
                ep.ctl(sys::EPOLL_CTL_DEL, fd, 0);
            }
            interest.clear();
        }
        self.io_waits.clear();
        self.by_fd.clear();
        self.io_deadlines.clear();
        self.timers.clear();
    }

    /// The earliest deadline among timers and I/O waits, skipping lazy
    /// (already-resolved) deadline entries.
    fn next_deadline(&mut self) -> Option<Instant> {
        while let Some(Reverse((t, job, seq))) = self.io_deadlines.peek().copied() {
            match self.io_waits.get(&job) {
                Some(w) if w.seq == seq => break,
                _ => {
                    let _ = (t, self.io_deadlines.pop());
                }
            }
        }
        let io = self.io_deadlines.peek().map(|Reverse((t, ..))| *t);
        let timer = self.timers.peek().map(|Reverse((t, ..))| *t);
        match (io, timer) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Blocks until readiness, a due deadline/timer, a wake-pipe ring, or
    /// `max_wait` — whichever comes first — and appends due wakeups to
    /// `out`. `Duration::ZERO` is a nonblocking harvest. Returns the
    /// number of wakeups delivered.
    pub(crate) fn wait(&mut self, max_wait: Duration, out: &mut Vec<Wakeup>) -> usize {
        let before = out.len();
        let now = Instant::now();
        // Cheap fast path for the between-slices harvest: no fds to ask
        // the kernel about and no timer due yet means no syscall at all.
        if max_wait.is_zero()
            && self.io_waits.is_empty()
            && self.next_deadline().is_none_or(|t| t > now)
        {
            return 0;
        }
        let timeout_ms: i32 = {
            let cap = now + max_wait;
            let until = self.next_deadline().map_or(cap, |t| t.min(cap));
            let ms = until.saturating_duration_since(now).as_millis();
            // +1: round up so we never wake a hair *before* a deadline
            // and spin — except a zero wait stays zero (nonblocking).
            if max_wait.is_zero() && ms == 0 {
                0
            } else {
                i32::try_from(ms.saturating_add(1)).unwrap_or(i32::MAX)
            }
        };

        let wake_fd = self.wake_rx.as_raw_fd();
        let mut ready_jobs: Vec<u64> = Vec::new();
        let mut wake_rung = false;
        match &mut self.state {
            BackendState::Poll { pollfds, jobs } => {
                // Rebuild the whole set: poll's O(blocked) per-wake cost.
                pollfds.clear();
                jobs.clear();
                pollfds.push(sys::PollFd { fd: wake_fd, events: sys::POLLIN, revents: 0 });
                for (&job, w) in &self.io_waits {
                    let events = if w.write { sys::POLLOUT } else { sys::POLLIN };
                    pollfds.push(sys::PollFd { fd: w.fd, events, revents: 0 });
                    jobs.push(job);
                }
                let rc = sys::poll_fds(pollfds, timeout_ms);
                if rc > 0 {
                    wake_rung = pollfds[0].revents != 0;
                    // Any nonzero revents — POLLIN/POLLOUT, but also
                    // POLLERR/POLLHUP/POLLNVAL — wakes the job: the
                    // retried guest operation is what turns the state
                    // into data, EOF, or an io-error condition.
                    for (i, pfd) in pollfds.iter().enumerate().skip(1) {
                        if pfd.revents != 0 {
                            ready_jobs.push(jobs[i - 1]);
                        }
                    }
                }
            }
            BackendState::Epoll { ep, events, .. } => {
                let rc = ep.wait(events, timeout_ms);
                if rc > 0 {
                    for ev in &events[..rc as usize] {
                        let fd = ev.data as i32;
                        if fd == wake_fd {
                            wake_rung = true;
                            continue;
                        }
                        let bits = { ev.events };
                        if let Some(jobs) = self.by_fd.get(&fd) {
                            for &job in jobs {
                                let Some(w) = self.io_waits.get(&job) else { continue };
                                let want = if w.write { sys::EPOLLOUT } else { sys::EPOLLIN };
                                // Error/hangup count as readiness for
                                // every waiter regardless of direction.
                                if bits & (want | sys::EPOLLERR | sys::EPOLLHUP) != 0 {
                                    ready_jobs.push(job);
                                }
                            }
                        }
                    }
                }
            }
        }

        if wake_rung {
            self.drain_wake_pipe();
        }

        for job in ready_jobs {
            if let Some(w) = self.remove_io(job) {
                out.push((job, w.seq));
            }
        }

        // Expired I/O deadlines: the worker fails these with
        // DeadlineExceeded — this is what bounds a peer that never
        // answers. The wait is removed here, so readiness arriving later
        // is never delivered (and the seq guard catches same-batch races).
        let now = Instant::now();
        while let Some(Reverse((t, job, seq))) = self.io_deadlines.peek().copied() {
            if t > now {
                break;
            }
            self.io_deadlines.pop();
            match self.io_waits.get(&job) {
                Some(w) if w.seq == seq => {
                    self.remove_io(job);
                    out.push((job, seq));
                }
                _ => {} // lazy entry for an already-resolved wait
            }
        }

        // Due timers. Delivery minus deadline is the wake lateness — how
        // long past its due time the reactor got around to this timer.
        while let Some(Reverse((t, ..))) = self.timers.peek() {
            if *t > now {
                break;
            }
            let Reverse((due, job, seq)) = self.timers.pop().expect("peeked");
            self.lateness[lateness_bucket(now.duration_since(due))] += 1;
            out.push((job, seq));
        }

        out.len() - before
    }

    /// Returns and resets the wake-lateness histogram accumulated since
    /// the last call (buckets per [`WAKE_LATENESS_BUCKETS_MS`]).
    pub(crate) fn take_lateness(&mut self) -> [u64; WAKE_LATENESS_BUCKETS] {
        std::mem::replace(&mut self.lateness, [0; WAKE_LATENESS_BUCKETS])
    }

    /// Drains the wake pipe: reads until `EAGAIN`, bounded per pass so a
    /// ring burst cannot stall the loop. Bytes left by the bound keep the
    /// (level-triggered) pipe readable, so the next wait returns
    /// immediately and drains the rest — rings coalesce, none are lost.
    fn drain_wake_pipe(&mut self) {
        let mut sink = [0u8; 1024];
        for _ in 0..64 {
            match (&self.wake_rx).read(&mut sink) {
                Ok(n) if n == sink.len() => continue,
                Ok(_) => break,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(backend: Backend) -> ReactorCore {
        let c = ReactorCore::new(backend).unwrap();
        assert_eq!(c.backend(), backend, "no silent fallback in tests");
        c
    }

    fn both() -> Vec<ReactorCore> {
        vec![core(Backend::Poll), core(Backend::Epoll)]
    }

    #[test]
    fn backend_env_names_round_trip() {
        assert_eq!(Backend::Poll.name(), "poll");
        assert_eq!(Backend::Epoll.name(), "epoll");
    }

    #[test]
    fn readable_fd_wakes_the_registered_job_on_both_backends() {
        for mut c in both() {
            let (a, b) = UnixStream::pair().unwrap();
            assert!(c.register_io(42, 1, a.as_raw_fd(), false, None));
            let mut out = Vec::new();
            // Nothing readable yet: a short wait delivers nothing.
            c.wait(Duration::from_millis(20), &mut out);
            assert!(out.is_empty(), "{}: no spurious delivery", c.backend());
            (&b).write_all(b"x").unwrap();
            c.wait(Duration::from_secs(10), &mut out);
            assert_eq!(out, vec![(42, 1)], "{}", c.backend());
            assert!(!c.has_waits(), "interest is one-shot");
        }
    }

    #[test]
    fn already_ready_fd_delivers_on_registration_wait() {
        // The lost-wakeup window: data arrives *before* the wait is
        // registered. ADD on a ready fd must still report (epoll does,
        // even edge-triggered; poll rescans anyway).
        for mut c in both() {
            let (a, b) = UnixStream::pair().unwrap();
            (&b).write_all(b"x").unwrap();
            assert!(c.register_io(7, 1, a.as_raw_fd(), false, None));
            let mut out = Vec::new();
            c.wait(Duration::from_secs(10), &mut out);
            assert_eq!(out, vec![(7, 1)], "{}", c.backend());
        }
    }

    #[test]
    fn timers_fire_in_deadline_order() {
        for mut c in both() {
            let now = Instant::now();
            c.register_timer(2, 0, now + Duration::from_millis(40));
            c.register_timer(1, 0, now + Duration::from_millis(10));
            let mut out = Vec::new();
            while out.len() < 2 {
                c.wait(Duration::from_secs(10), &mut out);
            }
            let fired: Vec<u64> = out.iter().map(|&(j, _)| j).collect();
            assert_eq!(fired, vec![1, 2], "{}: earlier deadline first", c.backend());
        }
    }

    #[test]
    fn io_deadline_delivers_even_without_readiness() {
        for mut c in both() {
            let (a, _b) = UnixStream::pair().unwrap();
            let deadline = Instant::now() + Duration::from_millis(25);
            assert!(c.register_io(9, 3, a.as_raw_fd(), false, Some(deadline)));
            let mut out = Vec::new();
            while out.is_empty() {
                c.wait(Duration::from_secs(10), &mut out);
            }
            assert_eq!(out, vec![(9, 3)], "{}", c.backend());
            assert!(!c.has_waits());
        }
    }

    #[test]
    fn readiness_after_deadline_cancel_is_never_delivered() {
        // The edge-triggered stale-wakeup case: the wait is cancelled by
        // its deadline, interest is dropped, and readiness arriving
        // afterwards must not produce a second (stale) wakeup.
        for mut c in both() {
            let (a, b) = UnixStream::pair().unwrap();
            let deadline = Instant::now() + Duration::from_millis(10);
            assert!(c.register_io(5, 1, a.as_raw_fd(), false, Some(deadline)));
            let mut out = Vec::new();
            while out.is_empty() {
                c.wait(Duration::from_secs(10), &mut out);
            }
            assert_eq!(out, vec![(5, 1)], "{}: deadline delivery", c.backend());
            out.clear();
            // Readiness arrives after the cancel.
            (&b).write_all(b"late").unwrap();
            c.wait(Duration::from_millis(30), &mut out);
            assert!(out.is_empty(), "{}: no stale delivery", c.backend());
        }
    }

    #[test]
    fn cancel_fd_wakes_waiters_on_a_closed_socket() {
        for mut c in both() {
            let (a, _b) = UnixStream::pair().unwrap();
            let fd = a.as_raw_fd();
            assert!(c.register_io(5, 2, fd, false, None));
            let mut out = Vec::new();
            c.cancel_fd(fd, &mut out);
            assert_eq!(out, vec![(5, 2)], "{}", c.backend());
            assert!(!c.has_waits());
        }
    }

    #[test]
    fn poll_reports_a_closed_fd_as_readiness_not_a_wedge() {
        let mut c = core(Backend::Poll);
        let (a, b) = UnixStream::pair().unwrap();
        let fd = a.as_raw_fd();
        assert!(c.register_io(5, 0, fd, false, None));
        drop(a);
        drop(b);
        let mut out = Vec::new();
        c.wait(Duration::from_secs(10), &mut out);
        assert_eq!(out, vec![(5, 0)], "POLLNVAL counts as readiness");
    }

    #[test]
    fn shared_fd_waits_all_deliver() {
        // Two green threads accepting on one listener-like fd: readiness
        // wakes both (readiness is a hint; the losers re-block).
        for mut c in both() {
            let (a, b) = UnixStream::pair().unwrap();
            let fd = a.as_raw_fd();
            assert!(c.register_io(1, 1, fd, false, None));
            assert!(c.register_io(2, 1, fd, false, None));
            (&b).write_all(b"x").unwrap();
            let mut out = Vec::new();
            c.wait(Duration::from_secs(10), &mut out);
            out.sort_unstable();
            assert_eq!(out, vec![(1, 1), (2, 1)], "{}", c.backend());
            assert!(!c.has_waits());
        }
    }

    #[test]
    fn wake_pipe_rings_coalesce_and_fully_drain() {
        for mut c in both() {
            let handle = c.wake_handle();
            for _ in 0..100 {
                handle.ring();
            }
            let mut out = Vec::new();
            // One wait consumes the whole burst...
            let t0 = Instant::now();
            c.wait(Duration::from_secs(10), &mut out);
            assert!(t0.elapsed() < Duration::from_secs(1), "{}: ring interrupts", c.backend());
            assert!(out.is_empty(), "rings are not wakeups");
            // ...so the next wait actually waits (pipe fully drained).
            let t0 = Instant::now();
            c.wait(Duration::from_millis(40), &mut out);
            assert!(
                t0.elapsed() >= Duration::from_millis(30),
                "{}: pipe was not fully drained",
                c.backend()
            );
        }
    }

    #[test]
    fn failed_registration_reports_instead_of_wedging() {
        // A stale (closed) fd: epoll's ADD fails, which the caller must
        // treat as instant readiness. Poll accepts anything and reports
        // POLLNVAL, so only epoll's register can refuse.
        let mut c = core(Backend::Epoll);
        let fd = {
            let (a, _b) = UnixStream::pair().unwrap();
            a.as_raw_fd()
        }; // both ends dropped: fd is closed
        assert!(!c.register_io(3, 1, fd, false, None));
        assert!(!c.has_waits());
    }

    #[test]
    fn timer_deliveries_accumulate_lateness_buckets() {
        for mut c in both() {
            let now = Instant::now();
            // One timer due right now (bucket 0) and one 600 ms overdue
            // (the unbounded tail bucket).
            c.register_timer(1, 0, now);
            c.register_timer(2, 0, now - Duration::from_millis(600));
            let mut out = Vec::new();
            c.wait(Duration::from_secs(10), &mut out);
            assert_eq!(out.len(), 2, "{}", c.backend());
            let hist = c.take_lateness();
            assert_eq!(hist.iter().sum::<u64>(), 2, "{}", c.backend());
            assert_eq!(hist[WAKE_LATENESS_BUCKETS - 1], 1, "{}: overdue tail", c.backend());
            assert_eq!(c.take_lateness().iter().sum::<u64>(), 0, "take resets");
        }
    }

    #[test]
    fn forget_all_clears_waits_and_timers() {
        for mut c in both() {
            let (a, _b) = UnixStream::pair().unwrap();
            assert!(c.register_io(1, 1, a.as_raw_fd(), false, None));
            c.register_timer(2, 1, Instant::now());
            c.forget_all();
            assert!(!c.has_waits());
            let mut out = Vec::new();
            c.wait(Duration::ZERO, &mut out);
            assert!(out.is_empty());
        }
    }
}
