//! The reactor: one event-loop thread multiplexing every blocked green
//! thread's wait over poll(2).
//!
//! When a job suspends on I/O (`EngineStep::Blocked`), its worker seals
//! the one-shot continuation inside the engine table, registers the wait
//! here, and goes on running other jobs. The reactor polls all registered
//! fds plus a timer heap; on readiness (or deadline) it pushes a `(job,
//! seq)` wakeup onto the owning worker's resume queue and rings the
//! injector's activity signal. The worker then moves the job from its
//! blocked map back to its ready ring — a normal engine resumption, O(1),
//! no stack copying, exactly the paper's suspension cost model.
//!
//! Interest is one-shot: an entry delivers once and is forgotten, like
//! the continuation it wakes. Stale deliveries (the job has since blocked
//! again, or died with its worker's VM) are filtered by the `seq` check
//! on the worker side and are harmless here. An fd closed while
//! registered reports `POLLNVAL`, which counts as readiness: the resumed
//! retry loop then sees the guest-level `io-error`. Dependency-free by
//! design: the only foreign call is `poll(2)` itself.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io::{ErrorKind, Read, Write};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::pool::PoolCounters;
use crate::queue::Injector;

/// Raw poll(2) binding. The crate is `#![deny(unsafe_code)]`; this module
/// is the single audited exception, and the only unsafe operation is the
/// syscall itself over a plain `#[repr(C)]` slice.
#[allow(unsafe_code)]
mod sys {
    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// Polls `fds` for up to `timeout_ms` (-1 = forever). Returns the
    /// number of ready entries, 0 on timeout, or a negative errno-style
    /// result (EINTR included) which callers treat as "poll again".
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> i32 {
        unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) }
    }
}

/// One readiness wakeup: which job (by raw id) and which wait generation.
/// The generation lets a worker discard deliveries for waits it has
/// already abandoned (deadline failure, worker reset).
pub(crate) type Wakeup = (u64, u64);

/// Per-worker wakeup mailboxes, indexed by worker.
pub(crate) type ResumeQueues = Arc<Vec<Mutex<Vec<Wakeup>>>>;

/// A wait registration or control message for the reactor.
#[derive(Debug)]
pub(crate) enum Msg {
    /// Wake `(worker, job, seq)` when `fd` is readable (or writable), or
    /// when `deadline` passes, whichever comes first.
    Io { worker: usize, job: u64, seq: u64, fd: i32, write: bool, deadline: Option<Instant> },
    /// Wake `(worker, job, seq)` at `deadline`.
    Timer { worker: usize, job: u64, seq: u64, deadline: Instant },
    /// Exit the reactor loop. Sent after every worker has drained.
    Shutdown,
}

/// The handle workers use to register waits: a message box plus a
/// self-pipe that interrupts an in-flight poll.
#[derive(Debug)]
pub(crate) struct ReactorShared {
    msgs: Mutex<Vec<Msg>>,
    wake_tx: UnixStream,
}

impl ReactorShared {
    pub(crate) fn send(&self, msg: Msg) {
        self.msgs.lock().unwrap().push(msg);
        // A full pipe already guarantees a pending wakeup; WouldBlock is
        // success here.
        let _ = (&self.wake_tx).write(&[1]);
    }
}

/// The running reactor thread plus its shared mailbox.
#[derive(Debug)]
pub(crate) struct Reactor {
    pub(crate) shared: Arc<ReactorShared>,
    handle: Option<JoinHandle<()>>,
}

impl Reactor {
    /// Spawns the reactor thread.
    pub(crate) fn spawn(
        resumes: ResumeQueues,
        injector: Arc<Injector>,
        counters: Arc<PoolCounters>,
    ) -> std::io::Result<Reactor> {
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        let shared = Arc::new(ReactorShared { msgs: Mutex::new(Vec::new()), wake_tx });
        let shared2 = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("oneshot-exec-reactor".to_string())
            .spawn(move || run(shared2, wake_rx, resumes, injector, counters))?;
        Ok(Reactor { shared, handle: Some(handle) })
    }

    /// Asks the loop to exit and joins it. Call only after every worker
    /// has drained: a blocked job whose wait is dropped here would never
    /// wake.
    pub(crate) fn shutdown(mut self) {
        self.shared.send(Msg::Shutdown);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// An fd wait in flight.
#[derive(Debug)]
struct IoWait {
    fd: i32,
    write: bool,
    worker: usize,
    job: u64,
    seq: u64,
    deadline: Option<Instant>,
}

fn run(
    shared: Arc<ReactorShared>,
    wake_rx: UnixStream,
    resumes: ResumeQueues,
    injector: Arc<Injector>,
    counters: Arc<PoolCounters>,
) {
    let mut io_waits: Vec<IoWait> = Vec::new();
    // Min-heap of (deadline, worker, job, seq).
    let mut timers: BinaryHeap<Reverse<(Instant, usize, u64, u64)>> = BinaryHeap::new();
    let mut pollfds: Vec<sys::PollFd> = Vec::new();
    let wake_fd = wake_rx.as_raw_fd();

    loop {
        // Ingest registrations queued since the last iteration.
        let batch = std::mem::take(&mut *shared.msgs.lock().unwrap());
        for msg in batch {
            match msg {
                Msg::Io { worker, job, seq, fd, write, deadline } => {
                    io_waits.push(IoWait { fd, write, worker, job, seq, deadline });
                }
                Msg::Timer { worker, job, seq, deadline } => {
                    timers.push(Reverse((deadline, worker, job, seq)));
                }
                Msg::Shutdown => return,
            }
        }

        // Sleep until the nearest deadline (timer or I/O), or forever if
        // none: the self-pipe interrupts for new registrations.
        let now = Instant::now();
        let mut next: Option<Instant> = timers.peek().map(|Reverse((t, ..))| *t);
        for w in &io_waits {
            if let Some(d) = w.deadline {
                next = Some(next.map_or(d, |n| n.min(d)));
            }
        }
        let timeout_ms: i32 = match next {
            None => -1,
            Some(t) => {
                let ms = t.saturating_duration_since(now).as_millis();
                // +1: round up so we never wake a hair *before* the
                // deadline and spin.
                i32::try_from(ms.saturating_add(1)).unwrap_or(i32::MAX)
            }
        };

        pollfds.clear();
        pollfds.push(sys::PollFd { fd: wake_fd, events: sys::POLLIN, revents: 0 });
        for w in &io_waits {
            let events = if w.write { sys::POLLOUT } else { sys::POLLIN };
            pollfds.push(sys::PollFd { fd: w.fd, events, revents: 0 });
        }
        let rc = sys::poll_fds(&mut pollfds, timeout_ms);
        if rc < 0 {
            // EINTR or transient failure: re-ingest and poll again.
            continue;
        }

        if pollfds[0].revents != 0 {
            // Drain the self-pipe; the payload bytes carry no meaning.
            let mut sink = [0u8; 256];
            loop {
                match (&wake_rx).read(&mut sink) {
                    Ok(0) => break,
                    Ok(_) => continue,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }

        let now = Instant::now();
        let mut delivered: Vec<(usize, Wakeup)> = Vec::new();

        // I/O readiness and I/O deadlines. Any nonzero revents — POLLIN /
        // POLLOUT, but also POLLERR / POLLHUP / POLLNVAL — wakes the job:
        // the retried guest operation is what turns the underlying state
        // into data, EOF, or an io-error condition.
        let mut kept = Vec::with_capacity(io_waits.len());
        for (i, w) in io_waits.drain(..).enumerate() {
            let ready = pollfds[i + 1].revents != 0;
            let expired = w.deadline.is_some_and(|d| d <= now);
            if ready || expired {
                delivered.push((w.worker, (w.job, w.seq)));
            } else {
                kept.push(w);
            }
        }
        io_waits = kept;

        // Due timers.
        while let Some(Reverse((t, ..))) = timers.peek() {
            if *t > now {
                break;
            }
            let Reverse((_, worker, job, seq)) = timers.pop().unwrap();
            delivered.push((worker, (job, seq)));
        }

        if !delivered.is_empty() {
            counters.io_wakeups.fetch_add(delivered.len() as u64, Ordering::Relaxed);
            for (worker, wakeup) in delivered {
                resumes[worker].lock().unwrap().push(wakeup);
            }
            injector.notify_workers();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn harness(workers: usize) -> (Reactor, ResumeQueues, Arc<Injector>) {
        let resumes: ResumeQueues =
            Arc::new((0..workers).map(|_| Mutex::new(Vec::new())).collect());
        let injector = Arc::new(Injector::new(8));
        let counters = Arc::new(PoolCounters::default());
        let reactor =
            Reactor::spawn(Arc::clone(&resumes), Arc::clone(&injector), counters).unwrap();
        (reactor, resumes, injector)
    }

    fn wait_for<F: FnMut() -> bool>(mut f: F, what: &str) {
        let end = Instant::now() + Duration::from_secs(10);
        while !f() {
            assert!(Instant::now() < end, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn readable_fd_wakes_the_registered_job() {
        let (reactor, resumes, _inj) = harness(1);
        let (a, b) = UnixStream::pair().unwrap();
        reactor.shared.send(Msg::Io {
            worker: 0,
            job: 42,
            seq: 1,
            fd: a.as_raw_fd(),
            write: false,
            deadline: None,
        });
        // Nothing readable yet: no delivery.
        std::thread::sleep(Duration::from_millis(30));
        assert!(resumes[0].lock().unwrap().is_empty());
        (&b).write_all(b"x").unwrap();
        wait_for(|| !resumes[0].lock().unwrap().is_empty(), "readiness delivery");
        assert_eq!(resumes[0].lock().unwrap().pop(), Some((42, 1)));
        reactor.shutdown();
    }

    #[test]
    fn timers_fire_in_deadline_order() {
        let (reactor, resumes, _inj) = harness(1);
        let now = Instant::now();
        reactor.shared.send(Msg::Timer {
            worker: 0,
            job: 2,
            seq: 0,
            deadline: now + Duration::from_millis(60),
        });
        reactor.shared.send(Msg::Timer {
            worker: 0,
            job: 1,
            seq: 0,
            deadline: now + Duration::from_millis(15),
        });
        wait_for(|| resumes[0].lock().unwrap().len() == 2, "both timers");
        let fired: Vec<u64> = resumes[0].lock().unwrap().iter().map(|(j, _)| *j).collect();
        assert_eq!(fired, vec![1, 2], "earlier deadline delivers first");
        reactor.shutdown();
    }

    #[test]
    fn io_deadline_delivers_even_without_readiness() {
        let (reactor, resumes, _inj) = harness(1);
        let (a, _b) = UnixStream::pair().unwrap();
        reactor.shared.send(Msg::Io {
            worker: 0,
            job: 9,
            seq: 3,
            fd: a.as_raw_fd(),
            write: false,
            deadline: Some(Instant::now() + Duration::from_millis(25)),
        });
        wait_for(|| !resumes[0].lock().unwrap().is_empty(), "deadline delivery");
        assert_eq!(resumes[0].lock().unwrap().pop(), Some((9, 3)));
        reactor.shutdown();
    }

    #[test]
    fn closed_fd_counts_as_readiness_not_a_wedge() {
        let (reactor, resumes, _inj) = harness(1);
        let (a, b) = UnixStream::pair().unwrap();
        let fd = a.as_raw_fd();
        // Register, then close both ends: POLLNVAL/HUP must still deliver.
        reactor.shared.send(Msg::Io {
            worker: 0,
            job: 5,
            seq: 0,
            fd,
            write: false,
            deadline: None,
        });
        std::thread::sleep(Duration::from_millis(10));
        drop(a);
        drop(b);
        // Ring the pipe so the loop rebuilds its pollfd set promptly.
        reactor.shared.send(Msg::Timer { worker: 0, job: 999, seq: 0, deadline: Instant::now() });
        wait_for(|| resumes[0].lock().unwrap().iter().any(|(j, _)| *j == 5), "POLLNVAL delivery");
        reactor.shutdown();
    }
}
