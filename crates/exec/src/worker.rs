//! The worker loop: one OS thread, one VM, many engine-fueled jobs.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use oneshot_threads::{EngineHost, EngineId, EngineStep, Wait};
use oneshot_vm::{VmBuilder, VmConfig};

use crate::error::Error;
use crate::job::Job;
use crate::pool::{PoolCounters, WorkerConfig, WorkerReport};
use crate::queue::{Injector, Popped, StealQueue};
use crate::reactor::{Msg, ReactorShared, ResumeQueues};

/// How long an idle worker blocks on the injector before rechecking the
/// steal queues and its resume queue. Pure liveness tuning; correctness
/// never depends on it — the reactor's `notify_workers` cuts the wait
/// short whenever a wakeup is actually pending.
const IDLE_WAIT: Duration = Duration::from_millis(25);

/// A job that has started on this worker: its engine — and therefore the
/// one-shot continuation of its preempted state — lives in this worker's
/// VM heap, so it can never migrate. Only [`Job`]s (unstarted) are stolen.
struct Active {
    job: Job,
    engine: EngineId,
    slices: u64,
    fuel_used: u64,
}

/// An [`Active`] job suspended on I/O or a timer. Its sealed one-shot
/// continuation sits in the engine table; the reactor owns the wait. The
/// `seq` is the wait generation: a wakeup carrying a stale `seq` (the job
/// blocked again, or was failed while blocked) is discarded.
struct BlockedJob {
    active: Active,
    seq: u64,
}

/// Everything a worker thread needs, bundled for the spawn closure.
pub(crate) struct WorkerCtx {
    pub(crate) index: usize,
    pub(crate) cfg: WorkerConfig,
    pub(crate) vm_config: Arc<VmConfig>,
    pub(crate) injector: Arc<Injector>,
    pub(crate) queues: Arc<Vec<StealQueue>>,
    pub(crate) counters: Arc<PoolCounters>,
    pub(crate) reactor: Arc<ReactorShared>,
    pub(crate) resumes: ResumeQueues,
    pub(crate) report_tx: mpsc::Sender<WorkerReport>,
}

pub(crate) fn run(ctx: WorkerCtx) {
    let mut report = WorkerReport::new(ctx.index);
    let mut host = build_host(&ctx);
    let mut ready: VecDeque<Active> = VecDeque::new();
    let mut blocked: HashMap<u64, BlockedJob> = HashMap::new();
    let mut next_seq: u64 = 0;

    loop {
        // Reactor wakeups first: a resumed job re-enters the ready ring as
        // an ordinary engine resumption.
        drain_resumes(&ctx, &mut host, &mut ready, &mut blocked, &mut report);

        // Admit at most one new job per iteration: a started job is
        // pinned to this VM, so surplus work stays in the stealable stash
        // where an idle peer can still take it. The resident set fills
        // gradually — one admission per slice — up to the cap, which
        // counts blocked residents too: each holds a sealed stack segment
        // in this VM's heap.
        if ready.len() + blocked.len() < ctx.cfg.resident_cap {
            if let Some(job) = acquire(&ctx, &mut report) {
                admit(&ctx, &mut host, job, &mut ready, &mut blocked, &mut report);
            }
        }

        if let Some(active) = ready.pop_front() {
            step_active(
                &ctx,
                &mut host,
                active,
                &mut ready,
                &mut blocked,
                &mut next_seq,
                &mut report,
            );
            continue;
        }

        // Nothing runnable. Block for new work — or, if the pool has
        // drained but residents are still parked on I/O, for reactor
        // activity: those jobs finish (or hit their deadlines) before the
        // worker may exit.
        match ctx.injector.pop_wait(IDLE_WAIT) {
            Popped::Job(job) => {
                admit(&ctx, &mut host, job, &mut ready, &mut blocked, &mut report);
            }
            Popped::TimedOut => continue,
            Popped::Drained => {
                if let Some(job) = acquire(&ctx, &mut report) {
                    admit(&ctx, &mut host, job, &mut ready, &mut blocked, &mut report);
                    continue;
                }
                if !blocked.is_empty() {
                    ctx.injector.wait_activity(IDLE_WAIT);
                    continue;
                }
                break;
            }
        }
    }

    report.vm.add(&host.vm().stats());
    // The pool may already have given up on us (shutdown timeout); a dead
    // receiver is not our problem.
    let _ = ctx.report_tx.send(report);
}

/// A fresh engine host on a VM built from the pool's configuration
/// (resource guards, fault plan, probes).
fn build_host(ctx: &WorkerCtx) -> EngineHost {
    EngineHost::with_vm(VmBuilder::from_config((*ctx.vm_config).clone()).build())
}

/// Moves jobs the reactor has woken from the blocked map back to the
/// ready ring. Stale wakeups (unknown job, mismatched generation) are
/// dropped; a woken job already past its wall-clock deadline is failed
/// here instead of resumed — this is what bounds a peer that never
/// answers.
fn drain_resumes(
    ctx: &WorkerCtx,
    host: &mut EngineHost,
    ready: &mut VecDeque<Active>,
    blocked: &mut HashMap<u64, BlockedJob>,
    report: &mut WorkerReport,
) {
    let wakeups = std::mem::take(&mut *ctx.resumes[ctx.index].lock().unwrap());
    if wakeups.is_empty() {
        return;
    }
    let now = Instant::now();
    for (job_id, seq) in wakeups {
        let stale = match blocked.get(&job_id) {
            None => true,
            Some(b) => b.seq != seq,
        };
        if stale {
            continue;
        }
        let b = blocked.remove(&job_id).expect("checked above");
        if b.active.job.deadline.is_some_and(|d| d <= now) {
            host.drop_engine(b.active.engine);
            deliver_failure(
                ctx,
                report,
                &b.active.job,
                b.active.slices,
                b.active.fuel_used,
                Error::deadline_exceeded(),
            );
        } else {
            ready.push_back(b.active);
        }
    }
}

/// Next unstarted job, by locality: own stash, then the injector (grabbing
/// a batch), then stealing the oldest unpinned job from a peer.
fn acquire(ctx: &WorkerCtx, report: &mut WorkerReport) -> Option<Job> {
    if let Some(job) = ctx.queues[ctx.index].pop() {
        return Some(job);
    }
    if let Some(job) = ctx.injector.try_pop() {
        // Grab a few more while we hold nothing: they land in our steal
        // queue where a peer can still take them if we fall behind.
        for _ in 1..ctx.cfg.grab_batch {
            match ctx.injector.try_pop() {
                Some(extra) => ctx.queues[ctx.index].push(extra),
                None => break,
            }
        }
        return Some(job);
    }
    for offset in 1..ctx.queues.len() {
        let victim = (ctx.index + offset) % ctx.queues.len();
        if let Some(job) = ctx.queues[victim].steal() {
            ctx.counters.steals.fetch_add(1, Ordering::Relaxed);
            report.steals += 1;
            return Some(job);
        }
    }
    None
}

/// Registers a job as an engine. Runs no user code yet, but is still
/// panic-isolated: a defect while linking must not take the worker down.
fn admit(
    ctx: &WorkerCtx,
    host: &mut EngineHost,
    job: Job,
    ready: &mut VecDeque<Active>,
    blocked: &mut HashMap<u64, BlockedJob>,
    report: &mut WorkerReport,
) {
    match catch_unwind(AssertUnwindSafe(|| host.spawn_program(&job.prog))) {
        Ok(Ok(engine)) => {
            ready.push_back(Active { job, engine, slices: 0, fuel_used: 0 });
        }
        Ok(Err(e)) => {
            let err = Error::vm(e.with_context(job.id.0, ctx.index as u32));
            fail_or_retry(ctx, report, &job, 0, 0, err);
        }
        Err(payload) => {
            handle_panic(ctx, host, &job, 0, 0, ready, blocked, report, panic_message(payload));
        }
    }
}

/// Runs one fuel slice of a started job.
#[allow(clippy::too_many_arguments)]
fn step_active(
    ctx: &WorkerCtx,
    host: &mut EngineHost,
    mut active: Active,
    ready: &mut VecDeque<Active>,
    blocked: &mut HashMap<u64, BlockedJob>,
    next_seq: &mut u64,
    report: &mut WorkerReport,
) {
    if active.job.deadline.is_some_and(|d| d <= Instant::now()) {
        host.drop_engine(active.engine);
        deliver_failure(
            ctx,
            report,
            &active.job,
            active.slices,
            active.fuel_used,
            Error::deadline_exceeded(),
        );
        return;
    }
    let remaining = active.job.fuel_budget.saturating_sub(active.fuel_used);
    if remaining == 0 {
        host.drop_engine(active.engine);
        ctx.counters.timed_out.fetch_add(1, Ordering::Relaxed);
        let err = Error::fuel_exhausted(active.job.fuel_budget, active.fuel_used);
        deliver_failure(ctx, report, &active.job, active.slices, active.fuel_used, err);
        return;
    }
    let slice = ctx.cfg.fuel_slice.min(remaining);
    let engine = active.engine;
    match catch_unwind(AssertUnwindSafe(|| host.step(engine, slice))) {
        Ok(Ok(EngineStep::Done(value))) => {
            let shown = host.vm().write_value(&value);
            active.slices += 1;
            active.fuel_used += slice;
            ctx.counters.completed.fetch_add(1, Ordering::Relaxed);
            report.jobs_ok += 1;
            report.slices += 1;
            ctx.counters.slices.fetch_add(1, Ordering::Relaxed);
            active.job.deliver(ctx.index, active.slices, active.fuel_used, Ok(shown));
        }
        Ok(Ok(EngineStep::Parked)) => {
            active.slices += 1;
            active.fuel_used += slice;
            report.slices += 1;
            ctx.counters.slices.fetch_add(1, Ordering::Relaxed);
            ctx.counters.requeues.fetch_add(1, Ordering::Relaxed);
            ready.push_back(active);
        }
        Ok(Ok(EngineStep::Blocked(wait))) => {
            active.slices += 1;
            active.fuel_used += slice;
            report.slices += 1;
            ctx.counters.slices.fetch_add(1, Ordering::Relaxed);
            block_job(ctx, host, active, wait, ready, blocked, next_seq);
        }
        Ok(Err(e)) => {
            active.slices += 1;
            active.fuel_used += slice;
            report.slices += 1;
            ctx.counters.slices.fetch_add(1, Ordering::Relaxed);
            let err = Error::vm(e.with_context(active.job.id.0, ctx.index as u32));
            fail_or_retry(ctx, report, &active.job, active.slices, active.fuel_used, err);
        }
        Err(payload) => {
            handle_panic(
                ctx,
                host,
                &active.job,
                active.slices + 1,
                active.fuel_used + slice,
                ready,
                blocked,
                report,
                panic_message(payload),
            );
        }
    }
}

/// Parks a job whose engine suspended on I/O or a timer: registers the
/// wait with the reactor and moves the job to the blocked map. The sealed
/// continuation stays in the engine table untouched — suspension costs
/// one table insert and one message, never a stack copy.
fn block_job(
    ctx: &WorkerCtx,
    host: &mut EngineHost,
    active: Active,
    wait: Wait,
    ready: &mut VecDeque<Active>,
    blocked: &mut HashMap<u64, BlockedJob>,
    next_seq: &mut u64,
) {
    *next_seq += 1;
    let seq = *next_seq;
    let job_id = active.job.id.0;
    let worker = ctx.index;
    let msg = match wait {
        Wait::Readable(tok) | Wait::Writable(tok) => {
            let Some(fd) = host.vm().net_fd(tok) else {
                // Stale socket token (closed by another green thread):
                // resume immediately so the retried operation raises the
                // guest-level io-error instead of wedging forever.
                ready.push_back(active);
                return;
            };
            ctx.counters.io_blocked.fetch_add(1, Ordering::Relaxed);
            Msg::Io {
                worker,
                job: job_id,
                seq,
                fd: fd as i32,
                write: matches!(wait, Wait::Writable(_)),
                deadline: active.job.deadline,
            }
        }
        Wait::TimerMs(ms) => {
            ctx.counters.timer_waits.fetch_add(1, Ordering::Relaxed);
            let mut deadline = Instant::now() + Duration::from_millis(ms.max(0) as u64);
            if let Some(d) = active.job.deadline {
                // Wake at the job deadline if it lands first; the drain
                // path turns the early wakeup into DeadlineExceeded.
                deadline = deadline.min(d);
            }
            Msg::Timer { worker, job: job_id, seq, deadline }
        }
    };
    blocked.insert(job_id, BlockedJob { active, seq });
    ctx.counters.blocked_highwater.fetch_max(blocked.len() as u64, Ordering::Relaxed);
    ctx.reactor.send(msg);
}

/// A job panicked: report it, fail every other job whose continuation
/// lived in the now-poisoned VM — ready *and* blocked — rebuild, keep
/// draining. Blocked jobs cannot be retried in place (their reactor wait
/// may still deliver, but the stale `seq` makes that delivery a no-op).
#[allow(clippy::too_many_arguments)]
fn handle_panic(
    ctx: &WorkerCtx,
    host: &mut EngineHost,
    culprit: &Job,
    slices: u64,
    fuel_used: u64,
    ready: &mut VecDeque<Active>,
    blocked: &mut HashMap<u64, BlockedJob>,
    report: &mut WorkerReport,
    message: String,
) {
    ctx.counters.panicked.fetch_add(1, Ordering::Relaxed);
    deliver_failure(ctx, report, culprit, slices, fuel_used, Error::panicked(message));
    let culprit_id = culprit.id;
    for lost in ready.drain(..) {
        // WorkerReset is transient by definition (the lost job did nothing
        // wrong), so with retries enabled it goes around again on the
        // rebuilt VM instead of failing.
        fail_or_retry(
            ctx,
            report,
            &lost.job,
            lost.slices,
            lost.fuel_used,
            Error::worker_reset(culprit_id),
        );
    }
    for (_, lost) in blocked.drain() {
        fail_or_retry(
            ctx,
            report,
            &lost.active.job,
            lost.active.slices,
            lost.active.fuel_used,
            Error::worker_reset(culprit_id),
        );
    }
    // Salvage the poisoned VM's counters, then replace it wholesale; the
    // interpreter state under an unwound panic is unknown, the stats
    // fields are plain counters.
    report.vm.add(&host.vm().stats());
    *host = build_host(ctx);
    report.vm_rebuilds += 1;
    ctx.counters.vm_rebuilds.fetch_add(1, Ordering::Relaxed);
}

/// Requeues a transiently failed job for another attempt — bounded by the
/// job's retry budget (its spec override, else the pool's), with a small
/// exponential backoff — or delivers the failure. A retried job restarts
/// from its compiled program (its engine state is gone), keeping only the
/// attempt count.
fn fail_or_retry(
    ctx: &WorkerCtx,
    report: &mut WorkerReport,
    job: &Job,
    slices: u64,
    fuel_used: u64,
    err: Error,
) {
    let budget = job.retries.unwrap_or(ctx.cfg.max_retries);
    if err.transient() && job.attempts < budget {
        let mut retry = job.clone();
        retry.attempts += 1;
        // 2ms, 4ms, ... capped at 32ms: enough for transient heap pressure
        // to clear without parking the worker for long.
        std::thread::sleep(Duration::from_millis(1u64 << retry.attempts.min(5)));
        ctx.counters.retried.fetch_add(1, Ordering::Relaxed);
        report.retries += 1;
        ctx.queues[ctx.index].push(retry);
    } else {
        deliver_failure(ctx, report, job, slices, fuel_used, err);
    }
}

fn deliver_failure(
    ctx: &WorkerCtx,
    report: &mut WorkerReport,
    job: &Job,
    slices: u64,
    fuel_used: u64,
    err: Error,
) {
    ctx.counters.failed.fetch_add(1, Ordering::Relaxed);
    report.jobs_failed += 1;
    job.deliver(ctx.index, slices, fuel_used, Err(err));
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
