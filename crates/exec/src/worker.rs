//! The worker loop: one OS thread, one VM, many engine-fueled jobs — and,
//! since PR 8, the worker's own reactor. A job that blocks registers its
//! wait directly with this worker's [`ReactorCore`]; readiness is
//! harvested between slices and turned back into an ordinary engine
//! resumption without ever leaving the thread.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use oneshot_threads::{EngineHost, EngineId, EngineStep, Wait};
use oneshot_vm::{VmBuilder, VmConfig};

use crate::error::Error;
use crate::job::Job;
use crate::pool::{ConnQueue, PoolCounters, WorkerConfig, WorkerReport};
use crate::queue::{Injector, Popped, StealQueue};
use crate::reactor::{ReactorCore, Wakeup};

/// How long an idle worker blocks — on the injector when it has no waits,
/// on its reactor when it does — before rechecking every queue. Pure
/// liveness tuning; correctness never depends on it: readiness interrupts
/// the reactor wait directly, and the pool rings the worker's wake pipe
/// on submissions, accepted connections, and shutdown.
const IDLE_WAIT: Duration = Duration::from_millis(25);

/// A job that has started on this worker: its engine — and therefore the
/// one-shot continuation of its preempted state — lives in this worker's
/// VM heap, so it can never migrate. Only [`Job`]s (unstarted) are stolen.
struct Active {
    job: Job,
    engine: EngineId,
    slices: u64,
    fuel_used: u64,
}

/// An [`Active`] job suspended on I/O or a timer. Its sealed one-shot
/// continuation sits in the engine table; this worker's reactor owns the
/// wait. The `seq` is the wait generation: a wakeup carrying a stale
/// `seq` (the job blocked again, or was failed while blocked) is
/// discarded.
struct BlockedJob {
    active: Active,
    seq: u64,
}

/// Everything a worker thread needs, bundled for the spawn closure.
pub(crate) struct WorkerCtx {
    pub(crate) index: usize,
    pub(crate) cfg: WorkerConfig,
    pub(crate) vm_config: Arc<VmConfig>,
    pub(crate) injector: Arc<Injector>,
    pub(crate) queues: Arc<Vec<StealQueue>>,
    pub(crate) counters: Arc<PoolCounters>,
    /// This worker's reactor, installed at build (taken by `run`).
    pub(crate) reactor: Option<ReactorCore>,
    /// Accepted connections the shared-listener acceptor routed here.
    pub(crate) conns: Arc<Vec<ConnQueue>>,
    /// Pool-wide id counter for connection-handler jobs (high-bit range,
    /// disjoint from submitted JobIds).
    pub(crate) next_conn: Arc<std::sync::atomic::AtomicU64>,
    pub(crate) report_tx: mpsc::Sender<WorkerReport>,
}

pub(crate) fn run(mut ctx: WorkerCtx) {
    let mut reactor = ctx.reactor.take().expect("reactor installed at build");
    let ctx = ctx;
    let mut report = WorkerReport::new(ctx.index);
    let mut host = build_host(&ctx);
    let mut ready: VecDeque<Active> = VecDeque::new();
    let mut blocked: HashMap<u64, BlockedJob> = HashMap::new();
    let mut next_seq: u64 = 0;
    let mut wakeups: Vec<Wakeup> = Vec::new();
    let mut closed_fds: Vec<i32> = Vec::new();

    loop {
        // Wakeups harvested from our reactor first: a resumed job
        // re-enters the ready ring as an ordinary engine resumption.
        process_wakeups(&ctx, &mut host, &mut wakeups, &mut ready, &mut blocked, &mut report);

        // Adopt accepted connections the shared listener routed here,
        // capacity permitting: each becomes a resident handler job.
        intake_conns(&ctx, &mut host, &mut ready, &mut blocked, &mut report);

        // Admit at most one new job per iteration: a started job is
        // pinned to this VM, so surplus work stays in the stealable stash
        // where an idle peer can still take it. The resident set fills
        // gradually — one admission per slice — up to the cap, which
        // counts blocked residents too: each holds a sealed stack segment
        // in this VM's heap.
        if ready.len() + blocked.len() < ctx.cfg.resident_cap {
            if let Some(job) = acquire(&ctx, &mut report) {
                admit(&ctx, &mut host, job, &mut ready, &mut blocked, &mut report);
            }
        }

        if let Some(active) = ready.pop_front() {
            step_active(
                &ctx,
                &mut host,
                &mut reactor,
                active,
                &mut ready,
                &mut blocked,
                &mut next_seq,
                &mut report,
            );
            // The slice may have closed sockets other green threads are
            // still blocked on: cancel those waits so the resumed retry
            // raises io-error instead of wedging (edge-triggered epoll
            // would otherwise drop the interest silently).
            cancel_closed(&ctx, &mut host, &mut reactor, &mut wakeups, &mut closed_fds);
            // Nonblocking harvest between slices: CPU-bound residents
            // must not starve I/O wakeups.
            harvest(&ctx, &mut reactor, Duration::ZERO, &mut wakeups);
            continue;
        }

        // Nothing runnable. If residents are parked on I/O or timers,
        // wait on our own reactor — readiness, a due deadline, or a
        // wake-pipe ring (new submission, accepted connection, shutdown)
        // all interrupt it. Blocked jobs finish (or hit their deadlines)
        // before the worker may exit.
        if reactor.has_waits() {
            harvest(&ctx, &mut reactor, IDLE_WAIT, &mut wakeups);
            continue;
        }
        match ctx.injector.pop_wait(IDLE_WAIT) {
            Popped::Job(job) => {
                admit(&ctx, &mut host, job, &mut ready, &mut blocked, &mut report);
            }
            Popped::TimedOut => continue,
            Popped::Drained => {
                if let Some(job) = acquire(&ctx, &mut report) {
                    admit(&ctx, &mut host, job, &mut ready, &mut blocked, &mut report);
                    continue;
                }
                if !ctx.conns[ctx.index].is_empty() {
                    continue; // drain remaining accepted connections
                }
                debug_assert!(blocked.is_empty(), "blocked residents imply reactor waits");
                break;
            }
        }
    }

    report.vm.add(&host.vm().stats());
    // The pool may already have given up on us (shutdown timeout); a dead
    // receiver is not our problem.
    let _ = ctx.report_tx.send(report);
}

/// A fresh engine host on a VM built from the pool's configuration
/// (resource guards, fault plan, probes).
fn build_host(ctx: &WorkerCtx) -> EngineHost {
    EngineHost::with_vm(VmBuilder::from_config((*ctx.vm_config).clone()).build())
}

/// Asks the reactor for due wakeups, waiting up to `max_wait`, and notes
/// the delivery metrics (`io_wakeups`, per-worker resume-batch highwater).
fn harvest(ctx: &WorkerCtx, reactor: &mut ReactorCore, max_wait: Duration, out: &mut Vec<Wakeup>) {
    let n = reactor.wait(max_wait, out);
    if n > 0 {
        ctx.counters.io_wakeups.fetch_add(n as u64, Ordering::Relaxed);
        ctx.counters.note_resume_depth(ctx.index, out.len());
        ctx.counters.add_lateness(&reactor.take_lateness());
    }
}

/// Cancels reactor waits on any fd the guest closed during the last
/// slice, delivering their wakeups into `out`.
fn cancel_closed(
    ctx: &WorkerCtx,
    host: &mut EngineHost,
    reactor: &mut ReactorCore,
    out: &mut Vec<Wakeup>,
    buf: &mut Vec<i32>,
) {
    buf.clear();
    host.vm_mut().drain_closed_fds(buf);
    let before = out.len();
    for &fd in buf.iter() {
        reactor.cancel_fd(fd, out);
    }
    let n = out.len() - before;
    if n > 0 {
        ctx.counters.io_wakeups.fetch_add(n as u64, Ordering::Relaxed);
    }
}

/// Moves woken jobs from the blocked map back to the ready ring. Stale
/// wakeups (unknown job, mismatched generation) are dropped; a woken job
/// already past its wall-clock deadline is failed here instead of resumed
/// — this is what bounds a peer that never answers.
fn process_wakeups(
    ctx: &WorkerCtx,
    host: &mut EngineHost,
    wakeups: &mut Vec<Wakeup>,
    ready: &mut VecDeque<Active>,
    blocked: &mut HashMap<u64, BlockedJob>,
    report: &mut WorkerReport,
) {
    if wakeups.is_empty() {
        return;
    }
    let now = Instant::now();
    for (job_id, seq) in wakeups.drain(..) {
        let stale = match blocked.get(&job_id) {
            None => true,
            Some(b) => b.seq != seq,
        };
        if stale {
            continue;
        }
        let b = blocked.remove(&job_id).expect("checked above");
        if b.active.job.deadline.is_some_and(|d| d <= now) {
            host.drop_engine(b.active.engine);
            deliver_failure(
                ctx,
                report,
                &b.active.job,
                b.active.slices,
                b.active.fuel_used,
                Error::deadline_exceeded(),
            );
        } else {
            ready.push_back(b.active);
        }
    }
}

/// Adopts accepted connections routed to this worker by the shared
/// listener, capacity permitting: each connection's stream enters the
/// VM's socket table and a handler job (the template compiled once by
/// [`Pool::serve`](crate::Pool::serve)) is spawned to `(conn-take)` it.
fn intake_conns(
    ctx: &WorkerCtx,
    host: &mut EngineHost,
    ready: &mut VecDeque<Active>,
    blocked: &mut HashMap<u64, BlockedJob>,
    report: &mut WorkerReport,
) {
    while ready.len() + blocked.len() < ctx.cfg.resident_cap {
        let Some((stream, tmpl)) = ctx.conns[ctx.index].pop() else { return };
        match host.vm_mut().adopt_stream(stream) {
            Ok(_token) => {
                ctx.counters.note_accept(ctx.index);
                let id = (1 << 63) | ctx.next_conn.fetch_add(1, Ordering::Relaxed);
                let job = tmpl.make_job(id);
                admit(ctx, host, job, ready, blocked, report);
            }
            Err(_) => {
                // Socket table full: shed the connection (the peer sees
                // EOF/reset) rather than wedge the worker.
                ctx.counters.accept_overflow.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Next unstarted job, by locality: own stash, then the injector (grabbing
/// a batch), then stealing the oldest unpinned job from a peer.
fn acquire(ctx: &WorkerCtx, report: &mut WorkerReport) -> Option<Job> {
    if let Some(job) = ctx.queues[ctx.index].pop() {
        return Some(job);
    }
    if let Some(job) = ctx.injector.try_pop() {
        // Grab a few more while we hold nothing: they land in our steal
        // queue where a peer can still take them if we fall behind.
        for _ in 1..ctx.cfg.grab_batch {
            match ctx.injector.try_pop() {
                Some(extra) => ctx.queues[ctx.index].push(extra),
                None => break,
            }
        }
        return Some(job);
    }
    for offset in 1..ctx.queues.len() {
        let victim = (ctx.index + offset) % ctx.queues.len();
        if let Some(job) = ctx.queues[victim].steal() {
            ctx.counters.steals.fetch_add(1, Ordering::Relaxed);
            report.steals += 1;
            return Some(job);
        }
    }
    None
}

/// Registers a job as an engine. Runs no user code yet, but is still
/// panic-isolated: a defect while linking must not take the worker down.
fn admit(
    ctx: &WorkerCtx,
    host: &mut EngineHost,
    job: Job,
    ready: &mut VecDeque<Active>,
    blocked: &mut HashMap<u64, BlockedJob>,
    report: &mut WorkerReport,
) {
    match catch_unwind(AssertUnwindSafe(|| host.spawn_program(&job.prog))) {
        Ok(Ok(engine)) => {
            ready.push_back(Active { job, engine, slices: 0, fuel_used: 0 });
        }
        Ok(Err(e)) => {
            let err = Error::vm(e.with_context(job.id.0, ctx.index as u32));
            fail_or_retry(ctx, report, &job, 0, 0, err);
        }
        Err(payload) => {
            handle_panic(
                ctx,
                host,
                None,
                &job,
                0,
                0,
                ready,
                blocked,
                report,
                panic_message(payload),
            );
        }
    }
}

/// Runs one fuel slice of a started job.
#[allow(clippy::too_many_arguments)]
fn step_active(
    ctx: &WorkerCtx,
    host: &mut EngineHost,
    reactor: &mut ReactorCore,
    mut active: Active,
    ready: &mut VecDeque<Active>,
    blocked: &mut HashMap<u64, BlockedJob>,
    next_seq: &mut u64,
    report: &mut WorkerReport,
) {
    if active.job.deadline.is_some_and(|d| d <= Instant::now()) {
        host.drop_engine(active.engine);
        deliver_failure(
            ctx,
            report,
            &active.job,
            active.slices,
            active.fuel_used,
            Error::deadline_exceeded(),
        );
        return;
    }
    let remaining = active.job.fuel_budget.saturating_sub(active.fuel_used);
    if remaining == 0 {
        host.drop_engine(active.engine);
        ctx.counters.timed_out.fetch_add(1, Ordering::Relaxed);
        let err = Error::fuel_exhausted(active.job.fuel_budget, active.fuel_used);
        deliver_failure(ctx, report, &active.job, active.slices, active.fuel_used, err);
        return;
    }
    let slice = ctx.cfg.fuel_slice.min(remaining);
    let engine = active.engine;
    match catch_unwind(AssertUnwindSafe(|| host.step(engine, slice))) {
        Ok(Ok(EngineStep::Done(value))) => {
            let shown = host.vm().write_value(&value);
            active.slices += 1;
            active.fuel_used += slice;
            ctx.counters.completed.fetch_add(1, Ordering::Relaxed);
            report.jobs_ok += 1;
            report.slices += 1;
            ctx.counters.slices.fetch_add(1, Ordering::Relaxed);
            active.job.deliver(ctx.index, active.slices, active.fuel_used, Ok(shown));
        }
        Ok(Ok(EngineStep::Parked)) => {
            active.slices += 1;
            active.fuel_used += slice;
            report.slices += 1;
            ctx.counters.slices.fetch_add(1, Ordering::Relaxed);
            ctx.counters.requeues.fetch_add(1, Ordering::Relaxed);
            ready.push_back(active);
        }
        Ok(Ok(EngineStep::Blocked(wait))) => {
            active.slices += 1;
            active.fuel_used += slice;
            report.slices += 1;
            ctx.counters.slices.fetch_add(1, Ordering::Relaxed);
            block_job(ctx, host, reactor, active, wait, ready, blocked, next_seq);
        }
        Ok(Err(e)) => {
            active.slices += 1;
            active.fuel_used += slice;
            report.slices += 1;
            ctx.counters.slices.fetch_add(1, Ordering::Relaxed);
            let err = Error::vm(e.with_context(active.job.id.0, ctx.index as u32));
            fail_or_retry(ctx, report, &active.job, active.slices, active.fuel_used, err);
        }
        Err(payload) => {
            handle_panic(
                ctx,
                host,
                Some(reactor),
                &active.job,
                active.slices + 1,
                active.fuel_used + slice,
                ready,
                blocked,
                report,
                panic_message(payload),
            );
        }
    }
}

/// Parks a job whose engine suspended on I/O or a timer: registers the
/// wait with this worker's reactor (a direct call — no message, no
/// cross-thread handoff) and moves the job to the blocked map. The sealed
/// continuation stays in the engine table untouched — suspension costs
/// one table insert and one registration, never a stack copy.
#[allow(clippy::too_many_arguments)]
fn block_job(
    ctx: &WorkerCtx,
    host: &mut EngineHost,
    reactor: &mut ReactorCore,
    active: Active,
    wait: Wait,
    ready: &mut VecDeque<Active>,
    blocked: &mut HashMap<u64, BlockedJob>,
    next_seq: &mut u64,
) {
    *next_seq += 1;
    let seq = *next_seq;
    let job_id = active.job.id.0;
    match wait {
        Wait::Readable(tok) | Wait::Writable(tok) => {
            let Some(fd) = host.vm().net_fd(tok) else {
                // Stale socket token (closed by another green thread):
                // resume immediately so the retried operation raises the
                // guest-level io-error instead of wedging forever.
                ready.push_back(active);
                return;
            };
            let write = matches!(wait, Wait::Writable(_));
            if !reactor.register_io(job_id, seq, fd as i32, write, active.job.deadline) {
                // The kernel refused the registration (the fd went stale
                // under us): same immediate-retry treatment.
                ready.push_back(active);
                return;
            }
            ctx.counters.io_blocked.fetch_add(1, Ordering::Relaxed);
        }
        Wait::TimerMs(ms) => {
            ctx.counters.timer_waits.fetch_add(1, Ordering::Relaxed);
            let mut deadline = Instant::now() + Duration::from_millis(ms.max(0) as u64);
            if let Some(d) = active.job.deadline {
                // Wake at the job deadline if it lands first; the wakeup
                // path turns the early wake into DeadlineExceeded.
                deadline = deadline.min(d);
            }
            reactor.register_timer(job_id, seq, deadline);
        }
    }
    blocked.insert(job_id, BlockedJob { active, seq });
    ctx.counters.blocked_highwater.fetch_max(blocked.len() as u64, Ordering::Relaxed);
}

/// A job panicked: report it, fail every other job whose continuation
/// lived in the now-poisoned VM — ready *and* blocked — rebuild, keep
/// draining. Blocked jobs cannot be retried in place; their reactor waits
/// are forgotten wholesale (their sockets died with the VM), and any
/// late delivery would be dropped by the stale `seq` anyway.
#[allow(clippy::too_many_arguments)]
fn handle_panic(
    ctx: &WorkerCtx,
    host: &mut EngineHost,
    reactor: Option<&mut ReactorCore>,
    culprit: &Job,
    slices: u64,
    fuel_used: u64,
    ready: &mut VecDeque<Active>,
    blocked: &mut HashMap<u64, BlockedJob>,
    report: &mut WorkerReport,
    message: String,
) {
    ctx.counters.panicked.fetch_add(1, Ordering::Relaxed);
    deliver_failure(ctx, report, culprit, slices, fuel_used, Error::panicked(message));
    let culprit_id = culprit.id;
    for lost in ready.drain(..) {
        // WorkerReset is transient by definition (the lost job did nothing
        // wrong), so with retries enabled it goes around again on the
        // rebuilt VM instead of failing.
        fail_or_retry(
            ctx,
            report,
            &lost.job,
            lost.slices,
            lost.fuel_used,
            Error::worker_reset(culprit_id),
        );
    }
    for (_, lost) in blocked.drain() {
        fail_or_retry(
            ctx,
            report,
            &lost.active.job,
            lost.active.slices,
            lost.active.fuel_used,
            Error::worker_reset(culprit_id),
        );
    }
    if let Some(reactor) = reactor {
        reactor.forget_all();
    }
    // Salvage the poisoned VM's counters, then replace it wholesale; the
    // interpreter state under an unwound panic is unknown, the stats
    // fields are plain counters.
    report.vm.add(&host.vm().stats());
    *host = build_host(ctx);
    report.vm_rebuilds += 1;
    ctx.counters.vm_rebuilds.fetch_add(1, Ordering::Relaxed);
}

/// Requeues a transiently failed job for another attempt — bounded by the
/// job's retry budget (its spec override, else the pool's), with a small
/// exponential backoff — or delivers the failure. A retried job restarts
/// from its compiled program (its engine state is gone), keeping only the
/// attempt count.
fn fail_or_retry(
    ctx: &WorkerCtx,
    report: &mut WorkerReport,
    job: &Job,
    slices: u64,
    fuel_used: u64,
    err: Error,
) {
    let budget = job.retries.unwrap_or(ctx.cfg.max_retries);
    if err.transient() && job.attempts < budget {
        let mut retry = job.clone();
        retry.attempts += 1;
        // 2ms, 4ms, ... capped at 32ms: enough for transient heap pressure
        // to clear without parking the worker for long.
        std::thread::sleep(Duration::from_millis(1u64 << retry.attempts.min(5)));
        ctx.counters.retried.fetch_add(1, Ordering::Relaxed);
        report.retries += 1;
        ctx.queues[ctx.index].push(retry);
    } else {
        deliver_failure(ctx, report, job, slices, fuel_used, err);
    }
}

fn deliver_failure(
    ctx: &WorkerCtx,
    report: &mut WorkerReport,
    job: &Job,
    slices: u64,
    fuel_used: u64,
    err: Error,
) {
    ctx.counters.failed.fetch_add(1, Ordering::Relaxed);
    report.jobs_failed += 1;
    job.deliver(ctx.index, slices, fuel_used, Err(err));
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
