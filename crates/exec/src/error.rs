//! One error type for the whole embedder surface.
//!
//! Server code used to juggle `SubmitError`, `ShutdownError`, and
//! `JobError`, each with its own shape. This module collapses them into a
//! single [`Error`] with a stable [`ErrorKind`] to match on and a
//! `source()` chain down to the underlying [`VmError`], so the guest's
//! condition kinds (`"type-error"`, `"out-of-memory"`,
//! `VmError::Uncaught`, ...) stay reachable from one place:
//! [`Error::condition_kind`].

use std::sync::Arc;

use oneshot_vm::VmError;

use crate::job::{JobId, JobSpec};

/// Stable classification of an [`Error`]; match on this, not on message
/// text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorKind {
    /// The program failed to compile at submit; nothing was enqueued.
    Compile,
    /// Nonblocking admission found the injector full; the spec is
    /// recoverable via [`Error::into_refused_spec`].
    QueueFull,
    /// The pool is shut down (or shutting down).
    PoolClosed,
    /// Shutdown could not drain every worker before its deadline.
    ShutdownTimeout,
    /// The job failed inside the VM: a Scheme error, an uncaught
    /// condition, a one-shot continuation shot twice.
    Vm,
    /// The job exceeded its fuel budget and was dropped.
    FuelExhausted,
    /// The job exceeded its wall-clock deadline and was dropped.
    DeadlineExceeded,
    /// The job panicked inside the VM; the worker rebuilt its VM.
    Panicked,
    /// Another job's panic destroyed the shared worker VM while this job
    /// was resident there.
    WorkerReset,
    /// A host-side I/O operation failed (binding the shared listener,
    /// creating a reactor).
    Io,
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorKind::Compile => "compile",
            ErrorKind::QueueFull => "queue-full",
            ErrorKind::PoolClosed => "pool-closed",
            ErrorKind::ShutdownTimeout => "shutdown-timeout",
            ErrorKind::Vm => "vm",
            ErrorKind::FuelExhausted => "fuel-exhausted",
            ErrorKind::DeadlineExceeded => "deadline-exceeded",
            ErrorKind::Panicked => "panicked",
            ErrorKind::WorkerReset => "worker-reset",
            ErrorKind::Io => "io",
        };
        f.write_str(s)
    }
}

/// Anything the pool can fail with: submission, execution, or shutdown.
///
/// ```
/// use oneshot_exec::{ErrorKind, JobSpec, Pool};
///
/// let pool = Pool::builder().workers(1).build().unwrap();
/// let err = pool.submit(JobSpec::new("bad", "(unclosed")).unwrap_err();
/// assert_eq!(err.kind(), ErrorKind::Compile);
/// assert!(err.vm_error().is_some());
/// pool.shutdown().unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct Error {
    kind: ErrorKind,
    message: String,
    source: Option<Arc<VmError>>,
    refused: Option<Box<JobSpec>>,
    culprit: Option<JobId>,
}

impl Error {
    fn new(kind: ErrorKind, message: String) -> Self {
        Error { kind, message, source: None, refused: None, culprit: None }
    }

    pub(crate) fn compile(e: VmError) -> Self {
        let mut err = Error::new(ErrorKind::Compile, format!("job failed to compile: {e}"));
        err.source = Some(Arc::new(e));
        err
    }

    pub(crate) fn queue_full(spec: JobSpec) -> Self {
        let mut err =
            Error::new(ErrorKind::QueueFull, format!("queue full, job {:?} refused", spec.name()));
        err.refused = Some(Box::new(spec));
        err
    }

    pub(crate) fn pool_closed() -> Self {
        Error::new(ErrorKind::PoolClosed, "pool is shut down".to_string())
    }

    pub(crate) fn shutdown_timeout(reported: usize, total: usize) -> Self {
        Error::new(
            ErrorKind::ShutdownTimeout,
            format!("shutdown timed out: {reported} of {total} workers reported"),
        )
    }

    pub(crate) fn vm(e: VmError) -> Self {
        let mut err = Error::new(ErrorKind::Vm, e.to_string());
        err.source = Some(Arc::new(e));
        err
    }

    pub(crate) fn fuel_exhausted(budget: u64, used: u64) -> Self {
        Error::new(
            ErrorKind::FuelExhausted,
            format!("fuel budget exhausted: used {used} of {budget}"),
        )
    }

    pub(crate) fn deadline_exceeded() -> Self {
        Error::new(ErrorKind::DeadlineExceeded, "wall-clock deadline exceeded".to_string())
    }

    pub(crate) fn panicked(msg: String) -> Self {
        Error::new(ErrorKind::Panicked, format!("job panicked: {msg}"))
    }

    pub(crate) fn io(context: &str, e: std::io::Error) -> Self {
        Error::new(ErrorKind::Io, format!("{context}: {e}"))
    }

    pub(crate) fn worker_reset(culprit: JobId) -> Self {
        let mut err = Error::new(
            ErrorKind::WorkerReset,
            format!("worker VM was reset by panicking job {culprit}"),
        );
        err.culprit = Some(culprit);
        err
    }

    /// The stable classification.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// The human-readable description (also what `Display` prints).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The underlying VM error, when the failure came from the VM
    /// ([`ErrorKind::Vm`], [`ErrorKind::Compile`]).
    pub fn vm_error(&self) -> Option<&VmError> {
        self.source.as_deref()
    }

    /// The Scheme condition kind (`"type-error"`, `"out-of-memory"`,
    /// `"io-error"`, ...) behind this error, when the guest raised one —
    /// reached through the [`VmError`] chain, including
    /// `VmError::Uncaught`.
    pub fn condition_kind(&self) -> Option<&str> {
        self.source.as_deref().and_then(VmError::condition_kind)
    }

    /// For [`ErrorKind::QueueFull`]: recovers the refused spec so the
    /// caller can retry or shed load.
    pub fn into_refused_spec(self) -> Option<JobSpec> {
        self.refused.map(|b| *b)
    }

    /// For [`ErrorKind::WorkerReset`]: the job whose panic destroyed the
    /// shared worker VM.
    pub fn culprit(&self) -> Option<JobId> {
        self.culprit
    }

    /// Whether retrying the job could plausibly succeed.
    ///
    /// Transient: [`ErrorKind::WorkerReset`] (the job was collateral
    /// damage of another job's panic) and an uncaught `out-of-memory`
    /// condition (the retried job starts on a freshly collected heap).
    /// Everything else — type errors, `(error ...)`, fuel or deadline
    /// exhaustion, panics in the job itself — is deterministic and fails
    /// fast.
    pub fn transient(&self) -> bool {
        match self.kind {
            ErrorKind::WorkerReset => true,
            ErrorKind::Vm => self.condition_kind() == Some("out-of-memory"),
            _ => false,
        }
    }
}

/// Two errors are equal when their [`kind`](Error::kind) and message
/// agree — enough for `assert_eq!` in tests; the chained source and the
/// refused spec are deliberately ignored.
impl PartialEq for Error {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind && self.message == other.message
    }
}

impl Eq for Error {}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.source.as_ref().map(|e| e.as_ref() as &(dyn std::error::Error + 'static))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_chains_survive_construction() {
        let e = Error::vm(VmError::Condition { kind: "type-error", message: "car: pair".into() });
        assert_eq!(e.kind(), ErrorKind::Vm);
        assert_eq!(e.condition_kind(), Some("type-error"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(!e.transient());

        let oom = Error::vm(VmError::Condition { kind: "out-of-memory", message: "heap".into() });
        assert!(oom.transient());

        let reset = Error::worker_reset(JobId(7));
        assert_eq!(reset.culprit(), Some(JobId(7)));
        assert!(reset.transient());

        let full = Error::queue_full(JobSpec::new("j", "#t"));
        assert_eq!(full.kind(), ErrorKind::QueueFull);
        assert_eq!(full.into_refused_spec().unwrap().name(), "j");
    }
}
