//! Continuation-based thread systems for the oneshot VM.
//!
//! Implements the three thread systems benchmarked in §4 / Figure 5 of the
//! paper, each as a Scheme library driven through a Rust API:
//!
//! * [`Strategy::CallCc`] — context switches capture multi-shot
//!   continuations (stack copying on every resumption);
//! * [`Strategy::Call1Cc`] — context switches capture one-shot
//!   continuations (O(1) suspension and resumption, fed by the segment
//!   cache) — the paper's contribution applied to threads;
//! * [`Strategy::Cps`] — threads written in continuation-passing style:
//!   control lives in heap closures (the heap-based baseline).
//!
//! Preemption uses the VM's engine timer for the two capture-based systems
//! and a source-level fuel counter for the CPS system; in both cases the
//! knob is "procedure calls per context switch", Figure 5's x-axis.
//!
//! Also provides Dybvig–Hieb engines (`make-engine`) built on one-shot
//! continuations.
//!
//! # Example
//!
//! ```
//! use oneshot_threads::{Strategy, ThreadSystem};
//!
//! let mut ts = ThreadSystem::new(Strategy::Call1Cc);
//! ts.eval("(define out '())").unwrap();
//! ts.spawn("(lambda () (set! out (cons 'a out)) (thread-yield!) (set! out (cons 'c out)))")
//!     .unwrap();
//! ts.spawn("(lambda () (set! out (cons 'b out)))").unwrap();
//! ts.run(0).unwrap();
//! assert_eq!(ts.eval_to_string("(reverse out)").unwrap(), "(a b c)");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};

use oneshot_runtime::Value;
use oneshot_vm::{CompiledProgram, Vm, VmConfig, VmError, VmStats};

const CALLCC_SCHED: &str = include_str!("../scheme/threads-callcc.scm");
const CALL1CC_SCHED: &str = include_str!("../scheme/threads-call1cc.scm");
const CPS_SCHED: &str = include_str!("../scheme/threads-cps.scm");
/// Dybvig–Hieb engines source, loaded by [`ThreadSystem::load_engines`].
pub const ENGINES: &str = include_str!("../scheme/engines.scm");
/// The executor driver: an id-keyed engine registry stepped from Rust,
/// loaded by [`EngineHost`] on top of [`ENGINES`].
pub const EXEC_DRIVER: &str = include_str!("../scheme/exec-driver.scm");
/// Guest-facing nonblocking I/O (`tcp-*`, `timer-wait`): would-block
/// retry loops that suspend the running green thread via
/// `%engine-block`. Loaded by [`EngineHost`] on top of [`EXEC_DRIVER`].
pub const IO: &str = include_str!("../scheme/io.scm");

/// Which control representation the thread system uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Multi-shot continuations (`call/cc`): stack copying per switch.
    CallCc,
    /// One-shot continuations (`call/1cc`): O(1) switches.
    Call1Cc,
    /// Continuation-passing style: heap closures, no stack capture.
    Cps,
}

impl Strategy {
    /// All three systems, in the paper's presentation order.
    pub const ALL: [Strategy; 3] = [Strategy::Cps, Strategy::CallCc, Strategy::Call1Cc];

    /// A short label (used by the experiment harness).
    pub fn label(self) -> &'static str {
        match self {
            Strategy::CallCc => "call/cc",
            Strategy::Call1Cc => "call/1cc",
            Strategy::Cps => "cps",
        }
    }

    fn scheduler_source(self) -> &'static str {
        match self {
            Strategy::CallCc => CALLCC_SCHED,
            Strategy::Call1Cc => CALL1CC_SCHED,
            Strategy::Cps => CPS_SCHED,
        }
    }
}

/// A VM plus a loaded scheduler.
#[derive(Debug)]
pub struct ThreadSystem {
    vm: Vm,
    strategy: Strategy,
}

impl ThreadSystem {
    /// Creates a fresh VM with the chosen scheduler loaded.
    ///
    /// # Panics
    ///
    /// Panics if the embedded scheduler source fails to load (a build
    /// defect, covered by tests).
    pub fn new(strategy: Strategy) -> Self {
        Self::with_config(strategy, VmConfig::default())
    }

    /// As [`ThreadSystem::new`] with explicit VM configuration (stack
    /// policies, probes, etc.). Equivalent to wrapping
    /// `Vm::builder().config(cfg).build()`.
    ///
    /// # Panics
    ///
    /// Panics if the embedded scheduler source fails to load.
    pub fn with_config(strategy: Strategy, cfg: VmConfig) -> Self {
        Self::with_vm(strategy, Vm::builder().config(cfg).build())
    }

    /// Loads the chosen scheduler into an already-built VM — the builder
    /// path: `ThreadSystem::with_vm(strategy, Vm::builder()...build())`.
    ///
    /// # Panics
    ///
    /// Panics if the embedded scheduler source fails to load.
    pub fn with_vm(strategy: Strategy, mut vm: Vm) -> Self {
        vm.eval_str(strategy.scheduler_source()).expect("scheduler must load");
        ThreadSystem { vm, strategy }
    }

    /// The strategy this system uses.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The underlying VM.
    pub fn vm_mut(&mut self) -> &mut Vm {
        &mut self.vm
    }

    /// Evaluates arbitrary Scheme in the system's VM.
    ///
    /// # Errors
    ///
    /// Propagates read/compile/runtime errors.
    pub fn eval(&mut self, src: &str) -> Result<Value, VmError> {
        self.vm.eval_str(src)
    }

    /// Evaluates and formats with `write` conventions.
    ///
    /// # Errors
    ///
    /// Propagates read/compile/runtime errors.
    pub fn eval_to_string(&mut self, src: &str) -> Result<String, VmError> {
        let v = self.vm.eval_str(src)?;
        Ok(self.vm.write_value(&v))
    }

    /// Spawns a thread. For the capture-based systems `thunk_src` must
    /// evaluate to a zero-argument procedure; for the CPS system, to a
    /// one-argument CPS procedure (receiving its continuation).
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from `thunk_src`.
    pub fn spawn(&mut self, thunk_src: &str) -> Result<(), VmError> {
        let call = match self.strategy {
            Strategy::Cps => format!("(cps-spawn! {thunk_src})"),
            _ => format!("(thread-spawn! {thunk_src})"),
        };
        self.vm.eval_str(&call)?;
        Ok(())
    }

    /// Runs all spawned threads to completion. `switch_every` is the
    /// context-switch frequency in procedure calls (0 = cooperative only).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors from thread bodies.
    pub fn run(&mut self, switch_every: u64) -> Result<Value, VmError> {
        let call = match self.strategy {
            Strategy::Cps => format!("(cps-threads-run! {switch_every})"),
            _ => format!("(threads-run! {switch_every})"),
        };
        self.vm.eval_str(&call)
    }

    /// Loads the engines library (capture-based systems only — engines use
    /// `call/1cc` and the VM timer).
    ///
    /// # Errors
    ///
    /// Propagates load errors.
    pub fn load_engines(&mut self) -> Result<(), VmError> {
        self.vm.eval_str(ENGINES)?;
        Ok(())
    }

    /// Statistics snapshot from the underlying VM.
    pub fn stats(&self) -> VmStats {
        self.vm.stats()
    }
}

/// Identifier of an engine registered with an [`EngineHost`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EngineId(i64);

impl std::fmt::Display for EngineId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Outcome of one [`EngineHost::step`] fuel slice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineStep {
    /// The computation finished with this value.
    Done(Value),
    /// Fuel ran out; the engine was parked and can be stepped again.
    Parked,
    /// The engine suspended itself on an I/O or timer wait
    /// (`%engine-block`). Do not step it again until the wait is
    /// satisfied; stepping early just re-runs the would-block retry
    /// loop, which suspends again.
    Blocked(Wait),
}

/// What a [`EngineStep::Blocked`] engine is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wait {
    /// Readable data (or an acceptable connection) on the guest socket
    /// with this token — resolve to an fd via `Vm::net_fd`.
    Readable(i64),
    /// Writable buffer space on the guest socket with this token.
    Writable(i64),
    /// At least this many milliseconds of wall-clock delay.
    TimerMs(i64),
}

/// A VM hosting a registry of Dybvig–Hieb engines, stepped one fuel slice
/// at a time from Rust.
///
/// This is the scheduling substrate of the `oneshot-exec` worker pool:
/// each pooled job becomes one engine (a green thread preempted by the VM
/// timer via `call/1cc`), and the worker loop decides which engine to step
/// next. Parked engines are rooted through a Scheme global, so their
/// captured one-shot continuations survive GC — and survive *other* jobs
/// erroring out (an error only unwinds the current stack segment).
///
/// # Example
///
/// ```
/// use oneshot_threads::{EngineHost, EngineStep};
/// use oneshot_vm::{CompilerOptions, Pipeline, Vm};
///
/// let mut host = EngineHost::new();
/// let prog = Vm::compile_str(
///     "(let loop ((i 0)) (if (< i 10000) (loop (+ i 1)) 'done))",
///     Pipeline::Direct,
///     CompilerOptions::default(),
/// )
/// .unwrap();
/// let id = host.spawn_program(&prog).unwrap();
/// let mut slices = 0;
/// loop {
///     match host.step(id, 256).unwrap() {
///         EngineStep::Parked => slices += 1,
///         EngineStep::Done(v) => {
///             assert_eq!(host.vm().display_value(&v), "done");
///             break;
///         }
///         EngineStep::Blocked(w) => panic!("a pure loop never blocks: {w:?}"),
///     }
/// }
/// assert!(slices > 0, "a 10k-iteration loop must not finish in 256 calls");
/// assert_eq!(host.live(), 0);
/// ```
#[derive(Debug)]
pub struct EngineHost {
    vm: Vm,
    next: i64,
    live: HashSet<EngineId>,
    /// Driver-table slot per live engine. Slots are reused through
    /// `free_slots` so the guest-side vector stays dense — every driver
    /// operation is O(1) no matter how many engines are resident.
    slot_of: HashMap<EngineId, i64>,
    free_slots: Vec<i64>,
    high_slot: i64,
}

impl EngineHost {
    /// A host on a fresh default VM.
    ///
    /// # Panics
    ///
    /// Panics if the embedded engines/driver sources fail to load (a build
    /// defect, covered by tests).
    pub fn new() -> Self {
        Self::with_vm(Vm::new())
    }

    /// Loads the engines library and the executor driver into `vm`.
    ///
    /// # Panics
    ///
    /// Panics if the embedded engines/driver sources fail to load.
    pub fn with_vm(mut vm: Vm) -> Self {
        vm.eval_str(ENGINES).expect("engines library must load");
        vm.eval_str(EXEC_DRIVER).expect("exec driver must load");
        vm.eval_str(IO).expect("io library must load");
        EngineHost {
            vm,
            next: 0,
            live: HashSet::new(),
            slot_of: HashMap::new(),
            free_slots: Vec::new(),
            high_slot: 0,
        }
    }

    /// The underlying VM.
    pub fn vm(&self) -> &Vm {
        &self.vm
    }

    /// The underlying VM, mutably.
    pub fn vm_mut(&mut self) -> &mut Vm {
        &mut self.vm
    }

    /// Number of engines spawned but not yet finished or dropped.
    pub fn live(&self) -> usize {
        self.live.len()
    }

    /// Links `prog` into the host VM and registers its toplevel thunk as a
    /// new engine. Nothing runs until the first [`EngineHost::step`].
    ///
    /// # Errors
    ///
    /// Propagates VM errors from engine registration.
    pub fn spawn_program(&mut self, prog: &CompiledProgram) -> Result<EngineId, VmError> {
        let id = EngineId(self.next);
        let slot = self.free_slots.pop().unwrap_or_else(|| {
            let s = self.high_slot;
            self.high_slot += 1;
            s
        });
        let thunk = self.vm.load_program(prog);
        let spawn = self.vm.global("exec-spawn!").expect("driver defines exec-spawn!");
        if let Err(e) = self.vm.call(spawn, &[Value::fixnum(slot), thunk]) {
            self.free_slots.push(slot);
            return Err(e);
        }
        self.next += 1;
        self.live.insert(id);
        self.slot_of.insert(id, slot);
        Ok(id)
    }

    /// Returns `id`'s driver-table slot to the free list. The guest-side
    /// table entry must already be cleared (by the engine completing, or
    /// by `exec-drop!`).
    fn release_slot(&mut self, id: EngineId) {
        if let Some(slot) = self.slot_of.remove(&id) {
            self.free_slots.push(slot);
        }
    }

    /// Runs engine `id` for one slice of `fuel` procedure calls.
    ///
    /// Returns [`EngineStep::Done`] when the job finishes within the slice
    /// and [`EngineStep::Parked`] when it is preempted (step again to
    /// resume). The `Done` value is unrooted — format or store it before
    /// running anything else on this VM.
    ///
    /// # Errors
    ///
    /// A Scheme error raised by the job (including a one-shot continuation
    /// shot twice) is returned as `Err`; the engine is dropped and the VM
    /// stays usable — other parked engines are unaffected.
    pub fn step(&mut self, id: EngineId, fuel: u64) -> Result<EngineStep, VmError> {
        let Some(&slot) = self.slot_of.get(&id) else {
            return Err(VmError::Runtime(format!("step: unknown engine {id}")));
        };
        let step = self.vm.global("exec-step!").expect("driver defines exec-step!");
        let fuel = i64::try_from(fuel.max(1)).unwrap_or(i64::MAX);
        match self.vm.call(step, &[Value::fixnum(slot), Value::fixnum(fuel)]) {
            Ok(v) => {
                if v == self.vm.intern("parked") {
                    return Ok(EngineStep::Parked);
                }
                if let Some((tag, value)) = self.vm.pair(v) {
                    if tag == self.vm.intern("done") {
                        self.live.remove(&id);
                        self.release_slot(id);
                        return Ok(EngineStep::Done(value));
                    }
                    if tag == self.vm.intern("blocked") {
                        if let Some(wait) = self.parse_wait(value) {
                            return Ok(EngineStep::Blocked(wait));
                        }
                    }
                }
                let shown = self.vm.write_value(&v);
                self.drop_engine(id);
                Err(VmError::Runtime(format!("exec-step! returned an unexpected value: {shown}")))
            }
            Err(e) => {
                // The errored engine never reached complete/expire, so the
                // driver still holds it; drop it before reporting.
                self.drop_engine(id);
                Err(e)
            }
        }
    }

    /// Decodes the `(kind handle)` tail of a `(blocked kind handle)`
    /// driver result into a [`Wait`].
    fn parse_wait(&mut self, tail: Value) -> Option<Wait> {
        let (kind, rest) = self.vm.pair(tail)?;
        let (handle, _) = self.vm.pair(rest)?;
        let handle = handle.as_fixnum()?;
        if kind == self.vm.intern("read") {
            Some(Wait::Readable(handle))
        } else if kind == self.vm.intern("write") {
            Some(Wait::Writable(handle))
        } else if kind == self.vm.intern("timer") {
            Some(Wait::TimerMs(handle))
        } else {
            None
        }
    }

    /// Unregisters a parked engine without running it (fuel budget
    /// exhausted, worker shutdown). Returns whether the engine was live.
    pub fn drop_engine(&mut self, id: EngineId) -> bool {
        if !self.live.remove(&id) {
            return false;
        }
        if let Some(&slot) = self.slot_of.get(&id) {
            let drop_fn = self.vm.global("exec-drop!").expect("driver defines exec-drop!");
            // exec-drop! cannot raise; ignore the (always #t) result.
            let _ = self.vm.call(drop_fn, &[Value::fixnum(slot)]);
        }
        self.release_slot(id);
        true
    }
}

impl Default for EngineHost {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_workload(ts: &mut ThreadSystem, threads: usize, n: usize) {
        ts.eval("(define done 0)").unwrap();
        match ts.strategy() {
            Strategy::Cps => {
                ts.eval(&format!(
                    "(define (work k)
                       (let loop ((i 0))
                         (cps-call (lambda ()
                           (if (< i {n})
                               (loop (+ i 1))
                               (begin (set! done (+ done 1)) (k 0)))))))"
                ))
                .unwrap();
            }
            _ => {
                ts.eval(&format!(
                    "(define (work)
                       (let loop ((i 0))
                         (if (< i {n}) (loop (+ i 1)) (set! done (+ done 1)))))"
                ))
                .unwrap();
            }
        }
        for _ in 0..threads {
            ts.spawn("work").unwrap();
        }
    }

    fn done_count(ts: &mut ThreadSystem) -> i64 {
        let v = ts.eval("done").unwrap();
        v.as_fixnum().unwrap_or_else(|| panic!("done was {v:?}"))
    }

    #[test]
    fn cooperative_round_robin_interleaves() {
        for strategy in [Strategy::CallCc, Strategy::Call1Cc] {
            let mut ts = ThreadSystem::new(strategy);
            ts.eval("(define out '())").unwrap();
            ts.spawn("(lambda () (set! out (cons 1 out)) (thread-yield!) (set! out (cons 3 out)))")
                .unwrap();
            ts.spawn("(lambda () (set! out (cons 2 out)) (thread-yield!) (set! out (cons 4 out)))")
                .unwrap();
            ts.run(0).unwrap();
            assert_eq!(ts.eval_to_string("(reverse out)").unwrap(), "(1 2 3 4)", "{strategy:?}");
        }
    }

    #[test]
    fn preemptive_switching_completes_all_threads() {
        for strategy in Strategy::ALL {
            let mut ts = ThreadSystem::new(strategy);
            counter_workload(&mut ts, 5, 2000);
            ts.run(16).unwrap();
            assert_eq!(done_count(&mut ts), 5, "{strategy:?}");
        }
    }

    #[test]
    fn one_shot_system_copies_nothing_call_cc_copies() {
        let mut one = ThreadSystem::new(Strategy::Call1Cc);
        counter_workload(&mut one, 4, 4000);
        let before = one.stats();
        one.run(8).unwrap();
        let d1 = one.stats().delta_since(&before);
        assert_eq!(d1.stack.slots_copied, 0, "one-shot switches copy nothing");
        assert!(d1.stack.reinstates_one > 100);

        let mut multi = ThreadSystem::new(Strategy::CallCc);
        counter_workload(&mut multi, 4, 4000);
        let before = multi.stats();
        multi.run(8).unwrap();
        let dm = multi.stats().delta_since(&before);
        assert!(dm.stack.slots_copied > 1000, "call/cc switches copy: {:?}", dm.stack);
    }

    #[test]
    fn cps_system_captures_no_continuations_at_all() {
        let mut cps = ThreadSystem::new(Strategy::Cps);
        counter_workload(&mut cps, 3, 2000);
        let before = cps.stats();
        cps.run(4).unwrap();
        let d = cps.stats().delta_since(&before);
        assert_eq!(d.stack.captures_multi, 0);
        assert_eq!(d.stack.captures_one, 0);
        assert!(d.heap.closures_allocated > 1000, "control became closures");
        assert_eq!(done_count(&mut cps), 3);
    }

    #[test]
    fn many_threads_complete() {
        for strategy in Strategy::ALL {
            let mut ts = ThreadSystem::new(strategy);
            counter_workload(&mut ts, 100, 200);
            ts.run(32).unwrap();
            assert_eq!(done_count(&mut ts), 100, "{strategy:?}");
        }
    }

    #[test]
    fn switching_preserves_thread_results() {
        // Each thread computes a distinct value into a vector slot; rapid
        // preemption must not corrupt any of them.
        for strategy in [Strategy::CallCc, Strategy::Call1Cc] {
            let mut ts = ThreadSystem::new(strategy);
            ts.eval("(define results (make-vector 8 #f))").unwrap();
            ts.eval(
                "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
                 (define (job i) (lambda () (vector-set! results i (fib (+ 10 i)))))",
            )
            .unwrap();
            for i in 0..8 {
                ts.spawn(&format!("(job {i})")).unwrap();
            }
            ts.run(3).unwrap();
            assert_eq!(
                ts.eval_to_string("(vector->list results)").unwrap(),
                "(55 89 144 233 377 610 987 1597)",
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn engines_complete_and_expire() {
        let mut ts = ThreadSystem::new(Strategy::Call1Cc);
        ts.load_engines().unwrap();
        let r = ts
            .eval_to_string(
                "(define (spin n) (let loop ((i 0)) (if (= i n) i (loop (+ i 1)))))
                 (define e (make-engine (lambda () (spin 1000))))
                 (define expirations 0)
                 (let retry ((e e))
                   (e 100
                      (lambda (v left) (list 'value v 'many-expirations (> expirations 5)))
                      (lambda (e2) (set! expirations (+ expirations 1)) (retry e2))))",
            )
            .unwrap();
        assert_eq!(r, "(value 1000 many-expirations #t)");
    }

    #[test]
    fn engines_round_robin_fairness() {
        let mut ts = ThreadSystem::new(Strategy::Call1Cc);
        ts.load_engines().unwrap();
        let r = ts
            .eval_to_string(
                "(define (spin n v) (let loop ((i 0)) (if (= i n) v (loop (+ i 1)))))
                 (engines-round-robin
                   (list (make-engine (lambda () (spin 500 'a)))
                         (make-engine (lambda () (spin 100 'b)))
                         (make-engine (lambda () (spin 300 'c))))
                   50)",
            )
            .unwrap();
        // Shorter computations finish earlier under round robin.
        assert_eq!(r, "(b c a)");
    }

    #[test]
    fn stats_are_exposed() {
        let ts = ThreadSystem::new(Strategy::Call1Cc);
        assert!(ts.stats().instructions > 0);
    }

    fn compile(src: &str) -> oneshot_vm::CompiledProgram {
        Vm::compile_str(src, oneshot_vm::Pipeline::Direct, Default::default()).unwrap()
    }

    #[test]
    fn host_interleaves_independent_engines() {
        let mut host = EngineHost::new();
        let mk = |n: u64, tag: &str| {
            compile(&format!("(let loop ((i 0)) (if (< i {n}) (loop (+ i 1)) '{tag}))"))
        };
        let a = host.spawn_program(&mk(5000, "a")).unwrap();
        let b = host.spawn_program(&mk(800, "b")).unwrap();
        assert_eq!(host.live(), 2);
        let mut done = Vec::new();
        let mut queue = std::collections::VecDeque::from([a, b]);
        while let Some(id) = queue.pop_front() {
            match host.step(id, 300).unwrap() {
                EngineStep::Parked => queue.push_back(id),
                EngineStep::Done(v) => done.push(host.vm().display_value(&v)),
                EngineStep::Blocked(w) => panic!("no engine here blocks: {w:?}"),
            }
        }
        // The shorter job finishes first under round-robin slicing.
        assert_eq!(done, ["b", "a"]);
        assert_eq!(host.live(), 0);
    }

    #[test]
    fn host_job_error_leaves_parked_engines_intact() {
        let mut host = EngineHost::new();
        let ok = host
            .spawn_program(&compile("(let loop ((i 0)) (if (< i 9000) (loop (+ i 1)) 'fine))"))
            .unwrap();
        // Park the good job mid-run so its one-shot continuation is live.
        assert_eq!(host.step(ok, 100).unwrap(), EngineStep::Parked);
        let bad = host.spawn_program(&compile("(car 42)")).unwrap();
        let e = host.step(bad, 100).unwrap_err();
        assert!(e.to_string().contains("car"), "{e}");
        assert_eq!(host.live(), 1, "errored engine was dropped");
        // The parked engine's captured continuation still works.
        let mut last = EngineStep::Parked;
        while last == EngineStep::Parked {
            last = host.step(ok, 300).unwrap();
        }
        let EngineStep::Done(v) = last else { unreachable!() };
        assert_eq!(host.vm().display_value(&v), "fine");
    }

    #[test]
    fn host_shot_continuation_is_an_error_not_a_wedge() {
        let mut host = EngineHost::new();
        let id = host
            .spawn_program(&compile(
                "(define k1 #f)
                 (call/1cc (lambda (k) (set! k1 k)))
                 (k1 0)",
            ))
            .unwrap();
        let mut r = host.step(id, 50);
        while r == Ok(EngineStep::Parked) {
            r = host.step(id, 50);
        }
        let e = r.unwrap_err();
        assert!(e.to_string().contains("one-shot"), "{e}");
        // The host is still usable for fresh work.
        let id2 = host.spawn_program(&compile("(+ 1 2)")).unwrap();
        let EngineStep::Done(v) = host.step(id2, 10_000).unwrap() else {
            panic!("trivial job should finish in one slice")
        };
        assert_eq!(host.vm().display_value(&v), "3");
    }

    #[test]
    fn host_drop_engine_forgets_parked_work() {
        let mut host = EngineHost::new();
        let id = host
            .spawn_program(&compile("(let loop ((i 0)) (if (< i 90000) (loop (+ i 1)) i))"))
            .unwrap();
        assert_eq!(host.step(id, 50).unwrap(), EngineStep::Parked);
        assert!(host.drop_engine(id));
        assert!(!host.drop_engine(id), "double drop is a no-op");
        assert_eq!(host.live(), 0);
        assert!(host.step(id, 50).is_err(), "stepping a dropped engine errors");
    }

    #[test]
    fn host_timer_wait_blocks_and_resumes() {
        let mut host = EngineHost::new();
        let id = host.spawn_program(&compile("(begin (timer-wait 3) 'woke)")).unwrap();
        let mut step = host.step(id, 4096).unwrap();
        while step == EngineStep::Parked {
            step = host.step(id, 4096).unwrap();
        }
        assert_eq!(step, EngineStep::Blocked(Wait::TimerMs(3)));
        // The host decides when the wait is over; stepping again resumes
        // the sealed one-shot continuation, which returns from timer-wait.
        let mut step = host.step(id, 4096).unwrap();
        loop {
            match step {
                EngineStep::Done(v) => {
                    assert_eq!(host.vm().display_value(&v), "woke");
                    break;
                }
                EngineStep::Parked => step = host.step(id, 4096).unwrap(),
                EngineStep::Blocked(w) => panic!("timer-wait must block once, got {w:?}"),
            }
        }
        assert_eq!(host.live(), 0);
    }

    #[test]
    fn host_accept_blocks_until_a_peer_connects() {
        let mut host = EngineHost::new();
        let id = host
            .spawn_program(&compile(
                "(define lst (tcp-listen 0))
                 (let ((c (tcp-accept lst)))
                   (let ((msg (tcp-read c 64)))
                     (tcp-write c msg)
                     (tcp-close c)
                     (tcp-close lst)
                     'served))",
            ))
            .unwrap();
        let mut step = host.step(id, 100_000).unwrap();
        while step == EngineStep::Parked {
            step = host.step(id, 100_000).unwrap();
        }
        let EngineStep::Blocked(Wait::Readable(tok)) = step else {
            panic!("accept with no peer must block readable, got {step:?}");
        };
        assert!(host.vm().net_fd(tok).is_some(), "the wait token resolves to an fd");
        // Connect from plain Rust while the green thread is suspended.
        let port = {
            let v = host.vm_mut().eval_str("(tcp-local-port lst)").unwrap();
            host.vm().display_value(&v).parse::<u16>().unwrap()
        };
        use std::io::{Read, Write};
        let mut peer = std::net::TcpStream::connect(("127.0.0.1", port)).unwrap();
        peer.write_all(b"hi").unwrap();
        // Step until served: intermediate blocks (read readiness races)
        // are allowed; readiness is a hint, not a promise.
        let mut echoed = Vec::new();
        loop {
            match host.step(id, 100_000).unwrap() {
                EngineStep::Done(v) => {
                    assert_eq!(host.vm().display_value(&v), "served");
                    break;
                }
                EngineStep::Parked => {}
                EngineStep::Blocked(_) => std::thread::sleep(std::time::Duration::from_millis(1)),
            }
        }
        peer.read_to_end(&mut echoed).unwrap();
        assert_eq!(echoed, b"hi");
        assert_eq!(host.vm().net_live(), 0, "guest closed everything it opened");
    }
}
