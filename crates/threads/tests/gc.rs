//! GC stress for the thread systems: collections while many threads sit
//! suspended on one-shot continuations.

use oneshot_threads::{Strategy, ThreadSystem};
use oneshot_vm::VmConfig;

#[test]
fn suspended_threads_survive_collections() {
    let mut ts = ThreadSystem::with_config(Strategy::Call1Cc, VmConfig::default());
    ts.vm_mut().heap_mut().set_gc_threshold(256);
    ts.eval("(define acc '())").unwrap();
    ts.eval(
        "(define (job i)
           (lambda ()
             (let loop ((n 0) (l '()))
               (if (< n 200)
                   (begin (thread-yield!) (loop (+ n 1) (cons n l)))
                   (set! acc (cons (cons i (length l)) acc))))))",
    )
    .unwrap();
    for i in 0..8 {
        ts.spawn(&format!("(job {i})")).unwrap();
    }
    ts.run(0).unwrap();
    let done = ts.eval_to_string("(length acc)").unwrap();
    assert_eq!(done, "8");
    assert!(ts.stats().heap.collections > 0, "collections happened mid-run");
}

#[test]
fn preemptive_threads_survive_collections_across_strategies() {
    for strategy in Strategy::ALL {
        let mut ts = ThreadSystem::new(strategy);
        ts.vm_mut().heap_mut().set_gc_threshold(512);
        ts.eval("(define total 0)").unwrap();
        match strategy {
            Strategy::Cps => {
                ts.eval(
                    "(define (job k)
                       (let loop ((n 0) (l '()))
                         (cps-call (lambda ()
                           (if (< n 300)
                               (loop (+ n 1) (cons n l))
                               (begin (set! total (+ total (length l))) (k 0)))))))",
                )
                .unwrap();
            }
            _ => {
                ts.eval(
                    "(define (job)
                       (let loop ((n 0) (l '()))
                         (if (< n 300)
                             (loop (+ n 1) (cons n l))
                             (set! total (+ total (length l))))))",
                )
                .unwrap();
            }
        }
        for _ in 0..4 {
            ts.spawn("job").unwrap();
        }
        ts.run(8).unwrap();
        assert_eq!(ts.eval_to_string("total").unwrap(), "1200", "{strategy:?}");
        assert!(ts.stats().heap.collections > 0, "{strategy:?}");
    }
}
