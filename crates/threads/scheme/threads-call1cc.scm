;; The same thread system built on one-shot continuations (call/1cc), the
;; paper's motivating application: a suspended thread's continuation is
;; invoked exactly once (when it is resumed), so capture encapsulates the
;; segment and resumption is O(1) — no stack copying at all, with the
;; segment cache absorbing the capture/invoke churn.

(define %thread-queue '())
(define %thread-tail '())
(define %scheduler-k #f)
(define %switch-fuel 0)

(define (%enqueue k)
  (let ((cell (cons k '())))
    (if (null? %thread-queue)
        (begin (set! %thread-queue cell) (set! %thread-tail cell))
        (begin (set-cdr! %thread-tail cell) (set! %thread-tail cell)))))

(define (%dequeue)
  (if (null? %thread-queue)
      #f
      (let ((k (car %thread-queue)))
        (set! %thread-queue (cdr %thread-queue))
        (if (null? %thread-queue) (set! %thread-tail '()))
        k)))

(define (thread-spawn! thunk)
  (%enqueue (lambda (ignore)
              (thunk)
              (thread-exit!))))

;; One-shot capture: each suspended continuation is resumed exactly once.
(define (thread-yield!)
  (call/1cc (lambda (k)
              (%enqueue k)
              (%run-next!))))

(define (thread-exit!)
  (%run-next!))

(define (%run-next!)
  (let ((next (%dequeue)))
    (if next
        (begin
          (if (> %switch-fuel 0) (set-timer! %switch-fuel))
          (next 0))
        (%scheduler-k 'all-done))))

(define (threads-run! fuel)
  (set! %switch-fuel fuel)
  (if (> fuel 0)
      (timer-interrupt-handler! (lambda () (thread-yield!))))
  ;; The scheduler's own continuation is also invoked once.
  (call/1cc (lambda (k)
              (set! %scheduler-k k)
              (%run-next!)))
  (set-timer! 0)
  'done)
