;; The CPS thread system of §4: threads are written in explicit
;; continuation-passing style, so suspending a thread is just saving a
;; closure — control lives entirely in the heap ("simulates a heap-based
;; representation of control"). There is no call/cc, no call/1cc, and no
;; stack capture anywhere; the cost moved into one closure allocation per
;; (checked) call.
;;
;; This file is plain direct-style Scheme whose *conventions* are CPS; it
;; is loaded into a normal (direct pipeline) VM.
;;
;; Context-switch frequency: workloads route every procedure call through
;; `cps-call`, which decrements the fuel counter and yields when it hits
;; zero — the source-level analogue of the engine timer.

(define %cps-queue '())
(define %cps-tail '())
(define %cps-fuel 0)
(define %cps-slice 0)

(define (%cps-enqueue thunk)
  (let ((cell (cons thunk '())))
    (if (null? %cps-queue)
        (begin (set! %cps-queue cell) (set! %cps-tail cell))
        (begin (set-cdr! %cps-tail cell) (set! %cps-tail cell)))))

(define (%cps-dequeue)
  (if (null? %cps-queue)
      #f
      (let ((thunk (car %cps-queue)))
        (set! %cps-queue (cdr %cps-queue))
        (if (null? %cps-queue) (set! %cps-tail '()))
        thunk)))

;; Spawn a CPS procedure of one argument (its continuation).
(define (cps-spawn! proc-cps)
  (%cps-enqueue (lambda () (proc-cps (lambda (v) (%cps-run-next!))))))

(define (%cps-run-next!)
  (let ((next (%cps-dequeue)))
    (if next
        (begin
          (set! %cps-fuel %cps-slice)
          (next))
        'all-done)))

;; The per-call fuel check: runs `thunk` now, or suspends it (a heap
;; closure) and switches to the next thread.
(define (cps-call thunk)
  (set! %cps-fuel (- %cps-fuel 1))
  (if (<= %cps-fuel 0)
      (begin (%cps-enqueue thunk) (%cps-run-next!))
      (thunk)))

;; Run all spawned threads with the given context-switch frequency
;; (procedure calls per switch; 0 disables switching).
(define (cps-threads-run! fuel)
  (set! %cps-slice (if (> fuel 0) fuel 1000000000))
  (set! %cps-fuel %cps-slice)
  (%cps-run-next!))
