;; A cooperative/preemptive thread system built on multi-shot
;; continuations (call/cc), as in §4 of the paper. Context switches
;; capture the running thread's continuation with call/cc and reinstate
;; the next thread's saved continuation.
;;
;; Preemption uses the engine timer: the interrupt handler yields.
;; The scheduler is a simple FIFO run queue.

(define %thread-queue '())
(define %thread-tail '())
(define %scheduler-k #f)
(define %switch-fuel 0)

(define (%enqueue k)
  (let ((cell (cons k '())))
    (if (null? %thread-queue)
        (begin (set! %thread-queue cell) (set! %thread-tail cell))
        (begin (set-cdr! %thread-tail cell) (set! %thread-tail cell)))))

(define (%dequeue)
  (if (null? %thread-queue)
      #f
      (let ((k (car %thread-queue)))
        (set! %thread-queue (cdr %thread-queue))
        (if (null? %thread-queue) (set! %thread-tail '()))
        k)))

;; Start a thread: the thunk runs when the scheduler reaches it.
(define (thread-spawn! thunk)
  (%enqueue (lambda (ignore)
              (thunk)
              (thread-exit!))))

;; Give up the processor: capture with call/cc, queue, run the next thread.
(define (thread-yield!)
  (call/cc (lambda (k)
             (%enqueue k)
             (%run-next!))))

(define (thread-exit!)
  (%run-next!))

(define (%run-next!)
  (let ((next (%dequeue)))
    (if next
        (begin
          (if (> %switch-fuel 0) (set-timer! %switch-fuel))
          (next 0))
        (%scheduler-k 'all-done))))

;; Run all spawned threads to completion. `fuel` > 0 enables preemption
;; every `fuel` procedure calls (Figure 5's context-switch frequency).
(define (threads-run! fuel)
  (set! %switch-fuel fuel)
  (if (> fuel 0)
      (timer-interrupt-handler! (lambda () (thread-yield!))))
  (call/cc (lambda (k)
             (set! %scheduler-k k)
             (%run-next!)))
  (set-timer! 0)
  'done)
