;; Executor driver: a registry of engines keyed by fixnum id, stepped one
;; fuel slice at a time from Rust (the oneshot-exec worker loop).
;;
;; Each pooled job becomes one engine (engines.scm must be loaded first).
;; The table is a toplevel global, so parked engines — and with them the
;; one-shot continuations of preempted jobs — are GC roots between slices.

(define %exec-table '())

;; Register a new engine for `thunk` under `id` (chosen by the host).
(define (exec-spawn! id thunk)
  (set! %exec-table (cons (cons id (make-engine thunk)) %exec-table))
  id)

(define (%exec-remove! id)
  (set! %exec-table
        (let loop ((t %exec-table))
          (cond ((null? t) '())
                ((= (car (car t)) id) (cdr t))
                (else (cons (car t) (loop (cdr t))))))))

;; Forget an engine without running it (budget exhausted, worker reset).
(define (exec-drop! id)
  (%exec-remove! id)
  #t)

;; Run engine `id` for one fuel slice. Returns (done . value) if the job
;; finished, or the symbol `parked` if it was preempted (the resuming
;; engine replaces the old one in the table).
(define (exec-step! id fuel)
  ;; A job that errored out of a previous slice escapes %run-engine
  ;; without popping the engine globals; the pool never nests engines,
  ;; so reset them outright before every slice.
  (set! %engine-escape #f)
  (set! %engine-parents '())
  (let ((entry (assv id %exec-table)))
    (if (not entry)
        (error "exec-step!: unknown engine " id))
    ((cdr entry)
     fuel
     (lambda (v left)
       (%exec-remove! id)
       (cons 'done v))
     (lambda (e2)
       (set-cdr! entry e2)
       'parked))))
