;; Executor driver: a registry of engines in a growable vector indexed by
;; a host-chosen slot, stepped one fuel slice at a time from Rust (the
;; oneshot-exec worker loop).
;;
;; Each pooled job becomes one engine (engines.scm must be loaded first).
;; The table is a toplevel global, so parked engines — and with them the
;; one-shot continuations of preempted or I/O-blocked jobs — are GC roots
;; between slices. The host allocates slots densely from a free list, so
;; register, lookup, and remove are all O(1): a worker can keep tens of
;; thousands of engines resident, and an association list scanned per
;; step would make every slice O(residents).

(define %exec-table (make-vector 64 #f))

(define (%exec-grow! slot)
  (if (>= slot (vector-length %exec-table))
      (let ((new (make-vector (* 2 (vector-length %exec-table)) #f)))
        (let loop ((i 0))
          (if (< i (vector-length %exec-table))
              (begin (vector-set! new i (vector-ref %exec-table i))
                     (loop (+ i 1)))))
        (set! %exec-table new)
        (%exec-grow! slot))))

;; Register a new engine for `thunk` under `slot` (chosen by the host).
(define (exec-spawn! slot thunk)
  (%exec-grow! slot)
  (vector-set! %exec-table slot (make-engine thunk))
  slot)

;; Forget an engine without running it (budget exhausted, worker reset).
(define (exec-drop! slot)
  (if (< slot (vector-length %exec-table))
      (vector-set! %exec-table slot #f))
  #t)

;; Run the engine in `slot` for one fuel slice. Returns (done . value) if
;; the job finished, the symbol `parked` if it was preempted, or (blocked
;; kind handle) if it suspended on an I/O or timer wait via %engine-block.
;; In both suspension cases the resuming engine replaces the old one in
;; the table; for a blocked job the host must not step it again until
;; its wait is satisfied (the reactor's readiness wakeup).
(define (exec-step! slot fuel)
  ;; A job that errored out of a previous slice escapes %run-engine
  ;; without popping the engine globals; the pool never nests engines,
  ;; so reset them outright before every slice.
  (set! %engine-escape #f)
  (set! %engine-parents '())
  (let ((eng (vector-ref %exec-table slot)))
    (if (not eng)
        (error "exec-step!: unknown engine " slot))
    (eng
     fuel
     (lambda (v left)
       (vector-set! %exec-table slot #f)
       (cons 'done v))
     (lambda (e2)
       ;; e2 is either the resuming engine (timer expiry) or a
       ;; (blocked kind handle resume-engine) tuple (%engine-block).
       (if (and (pair? e2) (eq? (car e2) 'blocked))
           (begin
             (vector-set! %exec-table slot (cadr (cddr e2)))
             (list 'blocked (cadr e2) (caddr e2)))
           (begin
             (vector-set! %exec-table slot e2)
             'parked))))))
