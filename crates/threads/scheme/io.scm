;; Guest-facing nonblocking I/O, built on the `%tcp-*` VM builtins and
;; `%engine-block` (engines.scm must be loaded first).
;;
;; The builtins never block: they return #f when the OS says would-block.
;; The retry loops here are where a green thread actually suspends —
;; `%engine-block` captures the running job's one-shot continuation,
;; escapes the engine with a (blocked kind handle) tuple, and the exec
;; worker registers the wait with the pool's reactor. On readiness the
;; sealed continuation is requeued and the loop retries the syscall.
;; Readiness is a hint, not a promise (another green thread may win the
;; race for the same listener), so every loop re-checks.

;; (tcp-listen port) -> listener  ; port 0 picks a free port
(define (tcp-listen port) (%tcp-listen port))

;; (tcp-listen-on host port) -> listener bound to a real AF_INET address
;; ("0.0.0.0" listens on every interface).
(define (tcp-listen-on host port) (%tcp-listen host port))

;; (tcp-local-port sock) -> port number actually bound
(define (tcp-local-port sock) (%tcp-local-port sock))

;; (tcp-accept listener) -> stream, suspending until a peer connects.
(define (tcp-accept listener)
  (let ((s (%tcp-accept listener)))
    (if s
        s
        (begin (%engine-block 'read listener)
               (tcp-accept listener)))))

;; (tcp-connect port) -> stream connected to 127.0.0.1:port.
(define (tcp-connect port) (%tcp-connect port))

;; (tcp-connect-to host port) -> stream connected to host:port.
(define (tcp-connect-to host port) (%tcp-connect host port))

;; (conn-take) -> the socket adopted for this handler job by the pool's
;; shared listener. Adoptions and handler spawns are both FIFO on this
;; worker's VM, so taking in order pairs each handler with its own
;; connection; raises io-error if called with nothing pending.
(define (conn-take)
  (let ((s (%conn-take)))
    (if s
        s
        (raise (cons 'io-error "conn-take: no pending connection")))))

;; (tcp-read sock max) -> string of 1..max bytes, or 'eof when the peer
;; closed; suspends until bytes arrive.
(define (tcp-read sock max)
  (let ((r (%tcp-read sock max)))
    (if r
        r
        (begin (%engine-block 'read sock)
               (tcp-read sock max)))))

;; (tcp-write sock str) -> #t after the whole string is written,
;; suspending whenever the send buffer is full.
(define (tcp-write sock str)
  (let ((len (string-length str)))
    (let loop ((start 0))
      (if (>= start len)
          #t
          (let ((n (%tcp-write sock str start)))
            (if n
                (loop (+ start n))
                (begin (%engine-block 'write sock)
                       (loop start))))))))

;; (tcp-close sock) -> #t if it was open.
(define (tcp-close sock) (%tcp-close sock))

;; (timer-wait ms) -> suspends this green thread for at least ms
;; milliseconds without holding a worker. The engine timer keeps
;; preempting CPU-bound jobs; this is the I/O-flavoured sleep.
(define (timer-wait ms)
  (if (> ms 0)
      (%engine-block 'timer ms))
  #t)
