;; Engines (Dybvig & Hieb, "Engines from continuations"), built on
;; one-shot continuations and the VM timer.
;;
;; An engine is a procedure (engine fuel complete expire):
;;   - fuel: positive number of procedure calls to run for;
;;   - complete: called as (complete value remaining-fuel) if the
;;     computation finishes within the budget;
;;   - expire: called as (expire new-engine) when fuel runs out; the new
;;     engine resumes the computation.
;;
;; Every continuation here is invoked exactly once, so call/1cc applies
;; throughout: suspending an engine costs no stack copying.

(define %engine-escape #f)
(define %engine-parents '())

(define (%run-engine proc fuel complete expire)
  (let ((result
         (call/1cc
          (lambda (esc)
            (set! %engine-parents (cons %engine-escape %engine-parents))
            (set! %engine-escape esc)
            (timer-interrupt-handler! %engine-interrupt)
            (set-timer! fuel)
            (proc)))))
    (if (eq? (car result) 'done)
        (complete (cadr result) (caddr result))
        (expire (cadr result)))))

;; Normal completion: escape through the *current* run's continuation
;; (the lexical one may belong to an earlier, already-shot run).
(define (%engine-return v)
  (let ((left (set-timer! 0))
        (esc %engine-escape))
    (set! %engine-escape (car %engine-parents))
    (set! %engine-parents (cdr %engine-parents))
    (esc (list 'done v left))))

;; Timer expiry: capture the interrupted computation one-shot and hand
;; back a resuming engine.
(define (%engine-interrupt)
  (call/1cc
   (lambda (resume)
     (let ((esc %engine-escape))
       (set! %engine-escape (car %engine-parents))
       (set! %engine-parents (cdr %engine-parents))
       (esc (list 'expired
                  (lambda (fuel complete expire)
                    (if (<= fuel 0) (error "engine: fuel must be positive"))
                    (%run-engine (lambda () (resume 0)) fuel complete expire))))))))

(define (make-engine thunk)
  (lambda (fuel complete expire)
    (if (<= fuel 0) (error "engine: fuel must be positive"))
    (%run-engine (lambda () (%engine-return (thunk))) fuel complete expire)))

;; Round-robin N engines to completion; returns the list of results in
;; completion order.
(define (engines-round-robin engines fuel)
  (let loop ((queue engines) (results '()))
    (if (null? queue)
        (reverse results)
        (let ((e (car queue)) (rest (cdr queue)))
          (e fuel
             (lambda (v left) (loop rest (cons v results)))
             (lambda (e2) (loop (append rest (list e2)) results)))))))
