;; Engines (Dybvig & Hieb, "Engines from continuations"), built on
;; one-shot continuations and the VM timer.
;;
;; An engine is a procedure (engine fuel complete expire):
;;   - fuel: positive number of procedure calls to run for;
;;   - complete: called as (complete value remaining-fuel) if the
;;     computation finishes within the budget;
;;   - expire: called as (expire new-engine) when fuel runs out; the new
;;     engine resumes the computation.
;;
;; Every continuation here is invoked exactly once, so call/1cc applies
;; throughout: suspending an engine costs no stack copying.

(define %engine-escape #f)
(define %engine-parents '())

(define (%run-engine proc fuel complete expire)
  (let ((result
         (call/1cc
          (lambda (esc)
            (set! %engine-parents (cons %engine-escape %engine-parents))
            (set! %engine-escape esc)
            (timer-interrupt-handler! %engine-interrupt)
            (set-timer! fuel)
            (proc)))))
    (cond ((eq? (car result) 'done)
           (complete (cadr result) (caddr result)))
          ((eq? (car result) 'blocked)
           ;; Escaped by %engine-block: (blocked kind handle resume-engine).
           ;; Not a completion and not an expiry — hand the whole tuple to
           ;; expire's caller via the same expire channel, tagged so the
           ;; exec driver can tell the two suspensions apart.
           (expire result))
          (else (expire (cadr result))))))

;; Normal completion: escape through the *current* run's continuation
;; (the lexical one may belong to an earlier, already-shot run).
(define (%engine-return v)
  (let ((left (set-timer! 0))
        (esc %engine-escape))
    (set! %engine-escape (car %engine-parents))
    (set! %engine-parents (cdr %engine-parents))
    (esc (list 'done v left))))

;; Timer expiry: capture the interrupted computation one-shot and hand
;; back a resuming engine.
(define (%engine-interrupt)
  (call/1cc
   (lambda (resume)
     (let ((esc %engine-escape))
       (set! %engine-escape (car %engine-parents))
       (set! %engine-parents (cdr %engine-parents))
       (esc (list 'expired
                  (lambda (fuel complete expire)
                    (if (<= fuel 0) (error "engine: fuel must be positive"))
                    (%run-engine (lambda () (resume 0)) fuel complete expire))))))))

;; Voluntary suspension on an I/O or timer wait: capture the running
;; computation one-shot and escape with a resuming engine, exactly like
;; timer expiry — but tagged 'blocked and carrying (kind handle) so the
;; host can register interest with its reactor before requeueing. The
;; VM timer is still running here (unlike %engine-interrupt, which is
;; invoked by its expiry), so stop it first; the resume engine re-arms
;; it with fresh fuel through %run-engine. Every continuation involved
;; is invoked at most once, so call/1cc applies: suspending ten
;; thousand green threads on sockets costs no stack copying.
(define (%engine-block kind handle)
  (call/1cc
   (lambda (resume)
     (set-timer! 0)
     (let ((esc %engine-escape))
       (set! %engine-escape (car %engine-parents))
       (set! %engine-parents (cdr %engine-parents))
       (esc (list 'blocked kind handle
                  (lambda (fuel complete expire)
                    (if (<= fuel 0) (error "engine: fuel must be positive"))
                    (%run-engine (lambda () (resume 0)) fuel complete expire))))))))

(define (make-engine thunk)
  (lambda (fuel complete expire)
    (if (<= fuel 0) (error "engine: fuel must be positive"))
    (%run-engine (lambda () (%engine-return (thunk))) fuel complete expire)))

;; Round-robin N engines to completion; returns the list of results in
;; completion order.
(define (engines-round-robin engines fuel)
  (let loop ((queue engines) (results '()))
    (if (null? queue)
        (reverse results)
        (let ((e (car queue)) (rest (cdr queue)))
          (e fuel
             (lambda (v left) (loop rest (cons v results)))
             (lambda (e2) (loop (append rest (list e2)) results)))))))
