//! Sampling strategies.

use crate::{Strategy, TestRng};

/// The result of [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    items: Vec<T>,
}

/// A strategy picking uniformly from `items`.
///
/// # Panics
///
/// Panics (at generation time) if `items` is empty.
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    Select { items }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.items.is_empty(), "select over an empty list");
        self.items[rng.below(self.items.len() as u64) as usize].clone()
    }
}
