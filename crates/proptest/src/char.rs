//! Character strategies.

use crate::{Strategy, TestRng};

/// A strategy over an inclusive range of scalar values (see [`range`]).
#[derive(Debug, Clone, Copy)]
pub struct CharRange {
    lo: u32,
    hi: u32,
}

/// A strategy generating chars uniformly in `[lo, hi]`, skipping the
/// surrogate gap.
pub fn range(lo: char, hi: char) -> CharRange {
    assert!(lo <= hi, "inverted char range");
    CharRange { lo: lo as u32, hi: hi as u32 }
}

impl Strategy for CharRange {
    type Value = char;
    fn generate(&self, rng: &mut TestRng) -> char {
        loop {
            let v = rng.range_u64(u64::from(self.lo), u64::from(self.hi)) as u32;
            if let Some(c) = std::char::from_u32(v) {
                return c;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_stays_in_bounds() {
        let mut rng = TestRng::new(9);
        let strat = range('!', '~');
        for _ in 0..200 {
            let c = strat.generate(&mut rng);
            assert!(('!'..='~').contains(&c));
        }
    }
}
