//! `Option` strategies.

use crate::{Strategy, TestRng};

/// The result of [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

/// A strategy producing `Some` values from `inner` most of the time and
/// `None` about a quarter of the time.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
