//! A minimal, dependency-free property-testing harness.
//!
//! This crate implements the *subset* of the `proptest` crate's API that
//! this workspace uses, so that `cargo test` needs no network access (the
//! build environment has no crates.io mirror). It is not a fork: generation
//! is a simple seeded-PRNG pipeline with **no shrinking** — on failure the
//! offending inputs and the seed are printed instead, and the fixed default
//! seed makes every failure reproducible by rerunning the test.
//!
//! Supported surface:
//!
//! * [`Strategy`] with `prop_map`, `prop_recursive`, `boxed`;
//! * ranges (`0..n`, `a..=b`), tuples, [`Just`], `&str` regex-subset
//!   patterns (`[class]{m,n}` sequences);
//! * [`any`]`::<bool | i64 | u32 | usize | char | String>()`;
//! * `proptest::option::of`, `proptest::collection::vec`,
//!   `proptest::char::range`, `proptest::sample::select`;
//! * the [`proptest!`] macro with `#![proptest_config(...)]`, and
//!   `prop_assert!` / `prop_assert_eq!`;
//! * [`test_runner::ProptestConfig`] (the `cases` knob).
//!
//! Set `PROPTEST_SEED=<u64>` to rerun with a different seed.

#![forbid(unsafe_code)]

use std::rc::Rc;

pub mod char;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy};

/// The rolled-up prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The pseudo-random source driving generation: xorshift64* — small, fast,
/// and deterministic for a given seed.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded with `seed` (zero is remapped — xorshift has a
    /// zero fixed point).
    pub fn new(seed: u64) -> Self {
        TestRng { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift rejection-free mapping; bias is negligible for
        // test-case generation.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform in `[lo, hi]` (inclusive).
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }

    /// Uniform in `[lo, hi]` (inclusive) over signed values.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add(self.below(span.wrapping_add(1).max(1)) as i64)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A strategy for any [`Arbitrary`] type, mirroring `proptest::any`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Types with a canonical generation strategy.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

macro_rules! arbitrary_fn {
    ($t:ty, $body:expr) => {
        impl Arbitrary for $t {
            type Strategy = strategy::FnStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                strategy::FnStrategy::new($body)
            }
        }
    };
}

arbitrary_fn!(bool, |rng| rng.next_u64() & 1 == 1);
arbitrary_fn!(i64, |rng| {
    // Mix small values (where most edge cases live) with full-range ones.
    match rng.below(4) {
        0 => rng.range_i64(-16, 16),
        1 => *[i64::MIN, i64::MAX, 0, -1, 1].get(rng.below(5) as usize).unwrap(),
        _ => rng.next_u64() as i64,
    }
});
arbitrary_fn!(u32, |rng| rng.next_u64() as u32);
arbitrary_fn!(usize, |rng| rng.below(1 << 32) as usize);
arbitrary_fn!(char, |rng| {
    // Mostly ASCII, sometimes arbitrary scalar values.
    if rng.below(4) == 0 {
        loop {
            if let Some(c) = std::char::from_u32(rng.below(0x11_0000) as u32) {
                break c;
            }
        }
    } else {
        std::char::from_u32(rng.range_u64(0x20, 0x7E) as u32).unwrap()
    }
});
arbitrary_fn!(String, |rng| {
    let len = rng.below(24) as usize;
    let mut s = String::new();
    for _ in 0..len {
        let c = if rng.below(4) == 0 {
            loop {
                if let Some(c) = std::char::from_u32(rng.below(0x11_0000) as u32) {
                    break c;
                }
            }
        } else {
            std::char::from_u32(rng.range_u64(0x20, 0x7E) as u32).unwrap()
        };
        s.push(c);
    }
    s
});

/// Shared boxed generator function (the representation behind
/// [`BoxedStrategy`] and [`strategy::FnStrategy`]).
pub(crate) type GenFn<T> = Rc<dyn Fn(&mut TestRng) -> T>;

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            assert!(rng.below(13) < 13);
        }
    }

    #[test]
    fn combinators_compose() {
        let strat = prop_oneof![
            2 => (0u32..10).prop_map(|n| n as i64),
            1 => Just(-1i64),
        ];
        let mut rng = TestRng::new(3);
        let mut saw_neg = false;
        let mut saw_small = false;
        for _ in 0..200 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((-1..10).contains(&v));
            saw_neg |= v == -1;
            saw_small |= (0..10).contains(&v);
        }
        assert!(saw_neg && saw_small);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn macro_generates_in_bounds(x in 0usize..50, s in "[a-z]{0,4}") {
            prop_assert!(x < 50);
            prop_assert!(s.len() <= 4);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }
}
