//! Collection strategies.

use std::ops::{Range, RangeInclusive};

use crate::{Strategy, TestRng};

/// A length specification for [`vec`]; built from `usize`, `Range`, or
/// `RangeInclusive` like the real crate's `SizeRange`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

/// The result of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// A strategy for `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.range_u64(self.size.min as u64, self.size.max as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Just;

    #[test]
    fn vec_length_in_bounds() {
        let mut rng = TestRng::new(13);
        let strat = vec(Just(7u8), 2..9);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..=8).contains(&v.len()));
            assert!(v.iter().all(|&x| x == 7));
        }
    }
}
