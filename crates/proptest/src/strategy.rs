//! The [`Strategy`] trait and combinators.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::{GenFn, TestRng};

/// A recipe for generating values of one type.
///
/// Unlike the real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives a strategy for the
    /// levels below and returns the strategy for one level up; recursion is
    /// structurally bounded by `depth`. The `_desired_size` and
    /// `_expected_branch_size` hints of the real API are accepted and
    /// ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut cur = base.clone();
        for _ in 0..depth {
            let rec = recurse(cur).boxed();
            let leaf = base.clone();
            // Bias toward the leaf so generated sizes stay moderate even
            // when every level recurses with several children.
            cur = BoxedStrategy::from_fn(move |rng| {
                if rng.below(3) == 0 {
                    leaf.generate(rng)
                } else {
                    rec.generate(rng)
                }
            });
        }
        cur
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy::from_fn(move |rng| self.generate(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    f: GenFn<T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { f: self.f.clone() }
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> BoxedStrategy<T> {
    pub(crate) fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy { f: Rc::new(f) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// A strategy from a plain function (used by [`crate::Arbitrary`] impls).
pub struct FnStrategy<T> {
    f: fn(&mut TestRng) -> T,
}

impl<T> FnStrategy<T> {
    /// Wraps a generator function.
    pub fn new(f: fn(&mut TestRng) -> T) -> Self {
        FnStrategy { f }
    }
}

impl<T> Strategy for FnStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// A weighted union of strategies (what [`crate::prop_oneof!`] builds).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// A union of the given `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights summed incorrectly")
    }
}

/// Builds a union strategy from weighted arms.
///
/// ```
/// use proptest::prelude::*;
/// let s = prop_oneof![
///     3 => Just(1),
///     1 => Just(2),
/// ];
/// let unweighted = prop_oneof![Just('a'), Just('b')];
/// # let _ = (s, unweighted);
/// ```
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
}

// ---------------------------------------------------------------------
// Ranges
// ---------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.range_i64(self.start as i64, self.end as i64 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.range_i64(*self.start() as i64, *self.end() as i64) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                $(let $v = $s.generate(rng);)+
                ($($v,)+)
            }
        }
    };
}

tuple_strategy!(A / a);
tuple_strategy!(A / a, B / b);
tuple_strategy!(A / a, B / b, C / c);
tuple_strategy!(A / a, B / b, C / c, D / d);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f, G / g);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f, G / g, H / h);

// ---------------------------------------------------------------------
// &str regex-subset patterns
// ---------------------------------------------------------------------

/// One parsed pattern element: a set of candidate characters and a
/// repetition range.
#[derive(Debug, Clone)]
struct PatternPiece {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Parses the regex subset used for string strategies: a sequence of
/// `[class]` character classes (ranges, escapes, literal chars) or literal
/// characters, each optionally followed by `{m,n}`.
fn parse_pattern(pat: &str) -> Vec<PatternPiece> {
    let mut pieces = Vec::new();
    let mut it = pat.chars().peekable();
    while let Some(c) = it.next() {
        let chars = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let Some(c) = it.next() else {
                        panic!("unterminated character class in pattern {pat:?}")
                    };
                    match c {
                        ']' => break,
                        '\\' => {
                            let e = it.next().expect("dangling escape in pattern");
                            let e = match e {
                                'n' => '\n',
                                't' => '\t',
                                'r' => '\r',
                                other => other,
                            };
                            set.push(e);
                            prev = Some(e);
                        }
                        '-' if prev.is_some() && it.peek() != Some(&']') => {
                            let hi = it.next().expect("dangling range in pattern");
                            let lo = prev.take().expect("range without start");
                            set.pop();
                            let (lo, hi) = (lo as u32, hi as u32);
                            assert!(lo <= hi, "inverted range in pattern {pat:?}");
                            for v in lo..=hi {
                                if let Some(ch) = std::char::from_u32(v) {
                                    set.push(ch);
                                }
                            }
                        }
                        other => {
                            set.push(other);
                            prev = Some(other);
                        }
                    }
                }
                assert!(!set.is_empty(), "empty character class in pattern {pat:?}");
                set
            }
            '\\' => {
                let e = it.next().expect("dangling escape in pattern");
                vec![match e {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                }]
            }
            other => vec![other],
        };
        let (min, max) = if it.peek() == Some(&'{') {
            it.next();
            let mut digits = String::new();
            let mut lo = None;
            loop {
                match it.next().expect("unterminated repetition in pattern") {
                    '}' => break,
                    ',' => lo = Some(std::mem::take(&mut digits)),
                    d => digits.push(d),
                }
            }
            let parse = |s: &str| s.parse::<usize>().expect("bad repetition bound");
            match lo {
                Some(lo) => (parse(&lo), parse(&digits)),
                None => {
                    let n = parse(&digits);
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push(PatternPiece { chars, min, max });
    }
    pieces
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let n = rng.range_u64(piece.min as u64, piece.max as u64) as usize;
            for _ in 0..n {
                out.push(piece.chars[rng.below(piece.chars.len() as u64) as usize]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_classes_ranges_and_escapes() {
        let pieces = parse_pattern("[a-c][x\\n-]{0,3}");
        assert_eq!(pieces.len(), 2);
        assert_eq!(pieces[0].chars, vec!['a', 'b', 'c']);
        assert_eq!(pieces[0].min, 1);
        assert_eq!(pieces[1].chars, vec!['x', '\n', '-']);
        assert_eq!((pieces[1].min, pieces[1].max), (0, 3));
    }

    #[test]
    fn str_strategy_respects_bounds() {
        let mut rng = TestRng::new(11);
        for _ in 0..100 {
            let s = "[a-z]{2,5}".generate(&mut rng);
            assert!((2..=5).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::new(5);
        for _ in 0..200 {
            let (a, b, c) = (0u32..7, 1usize..=3, -5i64..5).generate(&mut rng);
            assert!(a < 7);
            assert!((1..=3).contains(&b));
            assert!((-5..5).contains(&c));
        }
    }

    #[test]
    fn f64_range_in_bounds() {
        let mut rng = TestRng::new(5);
        for _ in 0..200 {
            let x = (-2.0..3.0f64).generate(&mut rng);
            assert!((-2.0..3.0).contains(&x));
        }
    }
}
