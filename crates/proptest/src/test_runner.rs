//! The case runner behind the [`proptest!`](crate::proptest) macro.

use crate::{Strategy, TestRng};

/// The default seed when `PROPTEST_SEED` is unset: fixed, so failures
/// reproduce by rerunning the same test binary.
const DEFAULT_SEED: u64 = 0xD1B5_4A32_D192_ED03;

/// Runner configuration. Only `cases` is meaningful in this shim; the other
/// fields exist so `..ProptestConfig::default()` struct updates written
/// against the real crate keep compiling.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; local-rejection is not implemented.
    pub max_local_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0, max_local_rejects: 65_536 }
    }
}

fn seed() -> u64 {
    match std::env::var("PROPTEST_SEED") {
        Ok(s) => {
            s.trim().parse().unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got {s:?}"))
        }
        Err(_) => DEFAULT_SEED,
    }
}

/// Runs `body` against `config.cases` values generated from `strategy`.
///
/// There is no shrinking: when a case panics, the generated inputs and the
/// seed are printed and the panic is propagated so the harness reports the
/// test as failed.
pub fn run<S, F>(config: ProptestConfig, strategy: S, body: F)
where
    S: Strategy,
    S::Value: std::fmt::Debug,
    F: Fn(S::Value),
{
    let seed = seed();
    let mut rng = TestRng::new(seed);
    for case in 0..config.cases {
        let value = strategy.generate(&mut rng);
        let repr = format!("{value:?}");
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(value)));
        if let Err(panic) = outcome {
            eprintln!(
                "proptest case {case} of {} failed (seed {seed}, set PROPTEST_SEED to vary)\n\
                 \x20   inputs: {repr}",
                config.cases
            );
            std::panic::resume_unwind(panic);
        }
    }
}

/// Declares property tests: each `#[test] fn name(x in strategy, ...)` item
/// becomes a `#[test]` that runs its body over generated inputs. An optional
/// leading `#![proptest_config(...)]` sets the [`ProptestConfig`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run($cfg, ($($strat,)+), |($($pat,)+)| $body);
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Asserts a condition inside a property test (panicking form; the real
/// crate's early-return-with-`Err` machinery is unnecessary here).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}
