//! The mark phase is allocation-free: a counting global allocator observes
//! zero heap (Rust) allocations between `begin_gc` and `sweep` once the
//! collector's worklist buffers are warm, and the object heap itself
//! allocates nothing during a collection.
//!
//! This lives in an integration test (its own crate) because the library
//! forbids unsafe code and a `GlobalAlloc` impl is necessarily unsafe.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use oneshot_runtime::{Heap, Obj, Value};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// Builds a heap with a mix of live shapes (a deep list, a vector, a
/// closure, a string, a cell) plus `garbage` dead pairs, returning the
/// roots.
fn populate(h: &mut Heap, garbage: i64) -> Vec<Value> {
    let mut list = Value::NIL;
    for i in 0..1_000 {
        list = Value::obj(h.alloc(Obj::Pair(Value::fixnum(i), list)));
    }
    let vec = Value::obj(h.alloc(Obj::Vector((0..100).map(Value::fixnum).collect())));
    let clo = Value::obj(h.alloc(Obj::Closure { code: 0, free: vec![list, vec].into() }));
    let s = Value::obj(h.alloc(Obj::Str("one-shot".chars().collect())));
    let cell = Value::obj(h.alloc(Obj::Cell(vec)));
    for i in 0..garbage {
        h.alloc(Obj::Pair(Value::fixnum(i), Value::NIL));
    }
    vec![list, vec, clo, s, cell]
}

/// One embedder-driven collection cycle: clear marks, mark from roots,
/// drain both worklists, sweep.
fn collect(h: &mut Heap, roots: &[Value]) {
    h.begin_gc();
    for &r in roots {
        h.mark_value(r);
    }
    loop {
        let mut progressed = false;
        while let Some(o) = h.pop_gray() {
            progressed = true;
            h.mark_children(o);
        }
        // No stack here: continuation ids surface but root nothing further.
        while h.pop_kont().is_some() {
            progressed = true;
        }
        if !progressed {
            break;
        }
    }
    h.sweep();
}

#[test]
fn warm_mark_phase_performs_zero_allocations() {
    let mut h = Heap::new();
    let roots = populate(&mut h, 2_000);

    // Cycle 1 warms the worklist buffers (the gray stack grows to cover
    // the largest marking front seen so far).
    collect(&mut h, &roots);
    let live_after_first = h.len();

    // Fresh garbage, same volume as before, so cycle 2 does real marking
    // and sweeping work without needing larger buffers.
    for i in 0..2_000 {
        h.alloc(Obj::Pair(Value::fixnum(i), Value::NIL));
    }

    let objects_before = h.stats().objects_allocated;
    let rust_allocs_before = alloc_calls();
    h.begin_gc();
    for &r in &roots {
        h.mark_value(r);
    }
    while let Some(o) = h.pop_gray() {
        h.mark_children(o);
    }
    while h.pop_kont().is_some() {}
    let rust_allocs_during_mark = alloc_calls() - rust_allocs_before;
    h.sweep();

    assert_eq!(rust_allocs_during_mark, 0, "the warm mark phase must not call the allocator");
    assert_eq!(
        h.stats().objects_allocated,
        objects_before,
        "a collection must not allocate heap objects"
    );
    assert_eq!(h.len(), live_after_first, "everything but the garbage survives");
}
