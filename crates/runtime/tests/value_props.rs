//! Property tests for the NaN-boxed value word: encode/decode round trips
//! for every variant at its edges, class exclusivity (no two classes ever
//! alias a bit pattern), and the fixnum-range fallback decisions.

use oneshot_runtime::{Heap, ObjKind, ObjRef, Symbols, Unpacked, Value, FIXNUM_MAX, FIXNUM_MIN};
use proptest::prelude::*;

/// Fixnum payloads weighted toward the edges of the 50-bit range.
fn fixnum_strategy() -> impl Strategy<Value = i64> {
    prop_oneof![
        3 => FIXNUM_MIN..=FIXNUM_MAX,
        1 => prop_oneof![
            Just(FIXNUM_MIN),
            Just(FIXNUM_MAX),
            Just(FIXNUM_MIN + 1),
            Just(FIXNUM_MAX - 1),
            Just(0i64),
            Just(-1i64),
        ],
    ]
}

/// f64 bit patterns including every special the encoder must canonicalize
/// or preserve: NaNs (quiet, signalling-shaped, negative), infinities,
/// signed zeros, subnormals.
fn flonum_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        3 => -1.0e300..1.0e300_f64,
        1 => prop_oneof![
            Just(f64::NAN),
            Just(-f64::NAN),
            Just(f64::from_bits(0x7FF0_0000_0000_0001)), // signalling-shaped NaN
            Just(f64::from_bits(0xFFF8_DEAD_BEEF_0001)), // negative NaN with payload
            Just(f64::INFINITY),
            Just(f64::NEG_INFINITY),
            Just(0.0),
            Just(-0.0),
            Just(f64::MIN_POSITIVE),
            Just(f64::from_bits(1)), // smallest subnormal
            Just(f64::MAX),
            Just(f64::MIN),
        ],
    ]
}

/// Chars weighted toward the scalar-value boundaries (surrogate gap edges,
/// 1/2/3/4-byte UTF-8 boundaries, char::MAX).
fn char_strategy() -> impl Strategy<Value = char> {
    prop_oneof![
        2 => any::<char>(),
        1 => prop_oneof![
            Just('\0'),
            Just('\u{7F}'),
            Just('\u{80}'),
            Just('\u{7FF}'),
            Just('\u{800}'),
            Just('\u{D7FF}'), // last scalar before the surrogate gap
            Just('\u{E000}'), // first scalar after it
            Just('\u{FFFF}'),
            Just('\u{10000}'),
            Just(char::MAX),
        ],
    ]
}

proptest! {
    #[test]
    fn fixnum_round_trips(n in fixnum_strategy()) {
        let v = Value::fixnum(n);
        prop_assert_eq!(v.as_fixnum(), Some(n));
        prop_assert!(matches!(v.unpack(), Unpacked::Fixnum(m) if m == n));
        prop_assert!(v.is_fixnum() && !v.is_flonum() && !v.is_obj());
        prop_assert_eq!(Value::fixnum_checked(n), Some(v));
    }

    #[test]
    fn out_of_range_fixnums_are_rejected_not_wrapped(bits in any::<i64>()) {
        // The bignum-or-error decision: a checked producer must see None
        // for anything outside the 50-bit payload (i64::MIN/MAX included
        // by the i64 strategy's edge mix), never a silently wrapped word.
        let expect = (FIXNUM_MIN..=FIXNUM_MAX).contains(&bits);
        prop_assert_eq!(Value::fixnum_checked(bits).is_some(), expect);
    }

    #[test]
    fn flonum_round_trips(x in flonum_strategy()) {
        let v = Value::flonum(x);
        prop_assert!(v.is_flonum() && !v.is_fixnum() && !v.is_obj());
        let back = v.as_flonum().expect("flonum decodes");
        if x.is_nan() {
            // Every NaN canonicalizes to the one quiet positive NaN, so no
            // hardware NaN payload can alias a tagged word.
            prop_assert!(back.is_nan());
            prop_assert_eq!(Value::flonum(x), Value::flonum(f64::NAN));
        } else {
            // Bit-exact otherwise: -0.0 and subnormals survive.
            prop_assert_eq!(back.to_bits(), x.to_bits());
        }
        prop_assert!(matches!(v.unpack(), Unpacked::Flonum(_)));
    }

    #[test]
    fn char_round_trips(c in char_strategy()) {
        let v = Value::character(c);
        prop_assert_eq!(v.as_char(), Some(c));
        prop_assert!(v.is_char() && !v.is_boolean() && !v.is_fixnum());
        prop_assert!(matches!(v.unpack(), Unpacked::Char(d) if d == c));
    }

    #[test]
    fn builtin_indices_round_trip(raw in any::<u32>()) {
        // The builtin table index is a u16; cover 0, the max, and the field.
        let i = raw as u16;
        let v = Value::builtin(i);
        prop_assert_eq!(v.as_builtin(), Some(i));
        prop_assert!(v.is_builtin() && !v.is_sym() && !v.is_obj());
        prop_assert!(matches!(v.unpack(), Unpacked::Builtin(j) if j == i));
    }

    #[test]
    fn obj_refs_round_trip(count in 1usize..64) {
        // Heap-allocated refs of every kind: the word must carry the kind
        // in its tag bits (is_pair with no heap access) and the pool index
        // intact as the free list hands out scattered slots.
        let mut h = Heap::new();
        use oneshot_runtime::Obj;
        for i in 0..count {
            let refs = [
                h.alloc_pair(Value::fixnum(i as i64), Value::NIL),
                h.alloc(Obj::Vector(vec![Value::TRUE; i % 3])),
                h.alloc(Obj::Str("x".chars().collect())),
                h.alloc(Obj::Closure { code: i as u32, free: Box::new([]) }),
                h.alloc(Obj::Cell(Value::NIL)),
            ];
            let kinds =
                [ObjKind::Pair, ObjKind::Vector, ObjKind::Str, ObjKind::Closure, ObjKind::Cell];
            for (r, kind) in refs.into_iter().zip(kinds) {
                let v = Value::obj(r);
                prop_assert_eq!(v.as_obj(), Some(r));
                prop_assert_eq!(v.as_obj().map(ObjRef::kind), Some(kind));
                prop_assert!(v.is_obj_kind(kind));
                prop_assert_eq!(v.is_pair(), kind == ObjKind::Pair);
                prop_assert!(v.is_obj() && !v.is_fixnum() && !v.is_flonum());
            }
        }
    }

    #[test]
    fn classes_never_alias(n in fixnum_strategy(), x in flonum_strategy(), c in char_strategy(), i in any::<u32>()) {
        let i = i as u16;
        // Distinct classes must produce distinct words: bitwise equality is
        // eqv?, so any collision would conflate Scheme values.
        let vals = [
            Value::fixnum(n),
            Value::flonum(x),
            Value::character(c),
            Value::builtin(i),
            Value::TRUE,
            Value::FALSE,
            Value::NIL,
            Value::EOF,
            Value::UNSPECIFIED,
            Value::UNDEFINED,
        ];
        for (a_i, a) in vals.iter().enumerate() {
            for (b_i, b) in vals.iter().enumerate() {
                if a_i != b_i {
                    prop_assert_ne!(a, b, "class {} aliased class {}", a_i, b_i);
                }
            }
        }
    }
}

#[test]
fn symbol_index_limits_round_trip() {
    // SymbolId indices are dense interner handles; exercise the word path
    // with real interned symbols plus the index extremes via sym/as_sym.
    let mut syms = Symbols::new();
    let a = syms.intern("a");
    let v = Value::sym(a);
    assert_eq!(v.as_sym(), Some(a));
    assert!(v.is_sym() && !v.is_builtin());
    assert!(matches!(v.unpack(), Unpacked::Sym(s) if s == a));
}

#[test]
fn i64_extremes_fall_back_to_flonum_literals() {
    // A program literal outside the fixnum range converts, not raises:
    // the reader's i64 becomes an inexact flonum (no bignum layer).
    use oneshot_runtime::datum_to_value;
    let mut h = Heap::new();
    let mut s = Symbols::new();
    for n in [i64::MIN, i64::MAX, FIXNUM_MAX + 1, FIXNUM_MIN - 1] {
        let v = datum_to_value(&mut h, &mut s, &oneshot_sexp::Datum::Fixnum(n));
        assert!(v.is_flonum(), "{n} should degrade to a flonum literal");
        assert_eq!(v.as_flonum(), Some(n as f64));
    }
    for n in [FIXNUM_MAX, FIXNUM_MIN, 0] {
        let v = datum_to_value(&mut h, &mut s, &oneshot_sexp::Datum::Fixnum(n));
        assert_eq!(v.as_fixnum(), Some(n), "{n} stays exact");
    }
}

#[test]
fn value_word_is_one_machine_word() {
    assert_eq!(std::mem::size_of::<Value>(), 8);
    assert_eq!(std::mem::size_of::<Option<Value>>(), 16);
}
